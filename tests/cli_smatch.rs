//! End-to-end tests of the `smatch` binary: write graphs to disk, invoke
//! the CLI, check its report.

use std::path::PathBuf;
use std::process::Command;

fn write_fixtures() -> (PathBuf, PathBuf, tempdir::Dir) {
    let dir = tempdir::Dir::new("smatch_cli_test");
    let qpath = dir.path.join("q.graph");
    let gpath = dir.path.join("g.graph");
    std::fs::write(
        &qpath,
        "t 3 3\nv 0 0 2\nv 1 1 2\nv 2 2 2\ne 0 1\ne 1 2\ne 0 2\n",
    )
    .unwrap();
    std::fs::write(
        &gpath,
        "t 5 7\nv 0 0 4\nv 1 1 3\nv 2 2 2\nv 3 1 2\nv 4 2 3\n\
         e 0 1\ne 1 2\ne 0 2\ne 0 3\ne 3 4\ne 0 4\ne 1 4\n",
    )
    .unwrap();
    (qpath, gpath, dir)
}

/// Minimal self-cleaning temp dir (no external crates).
mod tempdir {
    pub struct Dir {
        pub path: std::path::PathBuf,
    }
    impl Dir {
        pub fn new(tag: &str) -> Dir {
            let path = std::env::temp_dir().join(format!("{tag}_{}", std::process::id()));
            std::fs::create_dir_all(&path).unwrap();
            Dir { path }
        }
    }
    impl Drop for Dir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

fn smatch() -> Command {
    Command::new(env!("CARGO_BIN_EXE_smatch"))
}

#[test]
fn framework_algorithms_report_three_matches() {
    let (q, g, _dir) = write_fixtures();
    for alg in ["gql", "dp", "ri", "cfl", "ceci", "qsi", "2pp"] {
        let out = smatch()
            .args([
                "--query",
                q.to_str().unwrap(),
                "--data",
                g.to_str().unwrap(),
            ])
            .args(["--algorithm", alg])
            .output()
            .expect("smatch runs");
        assert!(out.status.success(), "{alg}: {:?}", out);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("3 match(es)"), "{alg}: {stdout}");
    }
}

#[test]
fn baselines_and_glasgow_agree() {
    let (q, g, _dir) = write_fixtures();
    for alg in ["glasgow", "vf2", "ullmann"] {
        let out = smatch()
            .args([
                "--query",
                q.to_str().unwrap(),
                "--data",
                g.to_str().unwrap(),
            ])
            .args(["--algorithm", alg])
            .output()
            .expect("smatch runs");
        assert!(out.status.success(), "{alg}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("3 match(es)"), "{alg}: {stdout}");
    }
}

#[test]
fn print_flag_lists_embeddings() {
    let (q, g, _dir) = write_fixtures();
    let out = smatch()
        .args([
            "--query",
            q.to_str().unwrap(),
            "--data",
            g.to_str().unwrap(),
        ])
        .args(["--print", "10"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("u0->").count(), 3, "{stdout}");
}

#[test]
fn limit_flag_caps_output() {
    let (q, g, _dir) = write_fixtures();
    let out = smatch()
        .args([
            "--query",
            q.to_str().unwrap(),
            "--data",
            g.to_str().unwrap(),
        ])
        .args(["--limit", "1"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 match(es)"), "{stdout}");
    assert!(stdout.contains("CapReached"), "{stdout}");
}

#[test]
fn explain_prints_the_plan() {
    let (q, g, _dir) = write_fixtures();
    let out = smatch()
        .args([
            "--query",
            q.to_str().unwrap(),
            "--data",
            g.to_str().unwrap(),
        ])
        .args(["--explain", "--algorithm", "ri"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("plan RI"), "{stdout}");
    assert!(stdout.contains("|C| ="), "{stdout}");
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = smatch().output().unwrap();
    assert!(!out.status.success());
    let out = smatch()
        .args(["--query", "/nonexistent", "--data", "/nonexistent"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
