//! Dataset stand-ins and workloads behave as specified: shapes track
//! Table 3, query sets fill per Table 4, caching round-trips.

use subgraph_matching::datasets::{all_datasets, glasgow_capable, query_set_specs, Dataset};
use subgraph_matching::glasgow::estimate_memory;
use subgraph_matching::graph::gen::query::Density;
use subgraph_matching::prelude::*;

#[test]
fn every_standin_loads_with_spec_shape() {
    for spec in all_datasets() {
        let ds = Dataset::load(spec.abbrev).unwrap();
        assert_eq!(ds.stats.num_vertices, spec.num_vertices, "{}", spec.abbrev);
        let d = ds.stats.avg_degree;
        assert!(
            (d - spec.avg_degree).abs() / spec.avg_degree < 0.25,
            "{}: avg degree {d} vs target {}",
            spec.abbrev,
            spec.avg_degree
        );
        assert!(
            ds.stats.num_labels <= spec.num_labels,
            "{}: {} labels",
            spec.abbrev,
            ds.stats.num_labels
        );
    }
}

#[test]
fn default_query_sets_fill_for_every_dataset() {
    for spec in all_datasets() {
        let ds = Dataset::load(spec.abbrev).unwrap();
        for qs in query_set_specs(&spec, 5) {
            let queries = subgraph_matching::datasets::queries(&ds.graph, &spec, qs);
            assert!(
                queries.len() >= 3,
                "{}: {} produced only {} queries",
                spec.abbrev,
                qs.name(),
                queries.len()
            );
            for q in &queries {
                assert_eq!(q.num_vertices(), qs.num_vertices);
                assert!(q.is_connected());
                match qs.density {
                    Density::Dense => assert!(q.avg_degree() >= 3.0),
                    Density::Sparse => assert!(q.avg_degree() < 3.0),
                    Density::Any => {}
                }
            }
        }
    }
}

#[test]
fn glasgow_memory_gate_matches_paper_partition() {
    // With the scaled 64 MiB budget of the Figure 16 experiment, exactly
    // hp, ye and hu fit — the paper's observed partition.
    let budget = 64usize << 20;
    let probe = subgraph_matching::graph::builder::graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
    for spec in all_datasets() {
        let ds = Dataset::load(spec.abbrev).unwrap();
        let required = estimate_memory(&probe, &ds.graph);
        let fits = required <= budget;
        let expected = glasgow_capable().contains(&spec.abbrev);
        assert_eq!(
            fits,
            expected,
            "{}: required {} MiB vs budget 64 MiB",
            spec.abbrev,
            required >> 20
        );
    }
}

#[test]
fn wordnet_label_skew_dominates() {
    let ds = Dataset::load("wn").unwrap();
    let g = &ds.graph;
    let zero = g.vertices().filter(|&v| g.label(v) == 0).count();
    assert!(zero as f64 / g.num_vertices() as f64 > 0.78);
}

#[test]
fn labels_are_zipf_skewed_on_relabeled_datasets() {
    // yt models an unlabeled graph relabeled with a heavy-tailed
    // distribution; the most frequent label must dominate the rarest.
    let ds = Dataset::load("yt").unwrap();
    let g = &ds.graph;
    let mut freqs: Vec<usize> = (0..ds.stats.num_labels as u32)
        .map(|l| g.vertices_with_label(l).len())
        .collect();
    freqs.sort_unstable();
    assert!(freqs[freqs.len() - 1] > freqs[0] * 5);
}

#[test]
fn pipelines_run_on_every_dataset() {
    // One tiny query per dataset end-to-end; guards against stand-ins that
    // break an engine assumption.
    use subgraph_matching::graph::gen::query::{generate_query_set, QuerySetSpec};
    for spec in all_datasets() {
        let ds = Dataset::load(spec.abbrev).unwrap();
        let ctx = DataContext::new(&ds.graph);
        let queries = generate_query_set(
            &ds.graph,
            QuerySetSpec {
                num_vertices: 6,
                density: Density::Any,
                count: 2,
            },
            1,
        );
        for q in &queries {
            let a = Algorithm::GraphQl
                .optimized()
                .run(q, &ctx, &MatchConfig::default());
            let b = Algorithm::Ri
                .optimized()
                .run(q, &ctx, &MatchConfig::default());
            assert_eq!(a.matches, b.matches, "{}", spec.abbrev);
        }
    }
}

#[test]
fn edge_list_import_to_matching_path() {
    // SNAP-style import -> Zipf labeling -> matching: the adoption path
    // for users with their own datasets.
    let text = "# my dataset\n10 20\n20 30\n30 10\n30 40\n40 50\n";
    let g = subgraph_matching::graph::io_edgelist::read_edge_list(text.as_bytes()).unwrap();
    assert_eq!(g.num_vertices(), 5);
    let g = subgraph_matching::graph::gen::random::assign_labels_zipf(&g, 3, 1.0, 7);
    let ctx = DataContext::new(&g);
    // count unlabeled-ish triangles by querying each label combo that the
    // one triangle (10,20,30) actually carries
    let tri_labels: Vec<u32> = vec![g.label(0), g.label(1), g.label(2)];
    let q =
        subgraph_matching::graph::builder::graph_from_edges(&tri_labels, &[(0, 1), (1, 2), (0, 2)]);
    let out = Algorithm::GraphQl
        .optimized()
        .run(&q, &ctx, &MatchConfig::find_all());
    assert!(out.matches >= 1, "the imported triangle must be found");
}
