//! Measurement-protocol invariants: the 10^5 match cap, time limits, and
//! the paper's unsolved-query semantics.

use std::time::Duration;
use subgraph_matching::datasets::Dataset;
use subgraph_matching::graph::builder::graph_from_edges;
use subgraph_matching::graph::gen::rmat::{rmat_graph, RmatParams};
use subgraph_matching::prelude::*;

#[test]
fn match_cap_is_respected_exactly() {
    // An unlabeled edge query on a dense-ish graph has a huge match count.
    let g = rmat_graph(2000, 20.0, 1, RmatParams::PAPER, 5);
    let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
    let ctx = DataContext::new(&g);
    for cap in [1u64, 100, 10_000] {
        let cfg = MatchConfig {
            max_matches: Some(cap),
            ..Default::default()
        };
        let out = Algorithm::GraphQl.optimized().run(&q, &ctx, &cfg);
        assert_eq!(out.matches, cap);
        assert_eq!(out.outcome, Outcome::CapReached);
    }
}

#[test]
fn time_limit_kills_pathological_queries() {
    // A 12-vertex unlabeled clique-ish query on a single-label graph
    // explodes; a tiny limit must stop it and report TimedOut.
    let g = rmat_graph(20_000, 16.0, 1, RmatParams::PAPER, 9);
    // dense query: 10 vertices, all consecutive pairs + chords
    let mut edges = Vec::new();
    for i in 0..10u32 {
        for j in (i + 1)..10u32 {
            if (i + j) % 2 == 0 || j == i + 1 {
                edges.push((i, j));
            }
        }
    }
    let q = graph_from_edges(&[0; 10], &edges);
    let ctx = DataContext::new(&g);
    let mut cfg = MatchConfig::find_all();
    cfg.time_limit = Some(Duration::from_millis(50));
    let out = Algorithm::Ri.optimized().run(&q, &ctx, &cfg);
    assert!(
        out.unsolved() || out.outcome == Outcome::Complete,
        "must either finish or time out cleanly"
    );
    if out.unsolved() {
        // The kill must be prompt (well under 10x the limit).
        assert!(
            out.enum_time < Duration::from_millis(500),
            "{:?}",
            out.enum_time
        );
    }
}

#[test]
fn complete_outcome_counts_are_exact() {
    let ds = Dataset::load("ye").unwrap();
    let ctx = DataContext::new(&ds.graph);
    let q = graph_from_edges(&[0, 1], &[(0, 1)]);
    let out = Algorithm::QuickSi
        .optimized()
        .run(&q, &ctx, &MatchConfig::find_all());
    assert_eq!(out.outcome, Outcome::Complete);
    // Count A-B edges directly.
    let want = ds
        .graph
        .edges()
        .filter(|&(u, v)| {
            let (a, b) = (ds.graph.label(u), ds.graph.label(v));
            (a == 0 && b == 1) || (a == 1 && b == 0)
        })
        .count() as u64;
    assert_eq!(out.matches, want);
}

#[test]
fn failing_sets_never_change_complete_counts() {
    let ds = Dataset::load("hp").unwrap();
    let ctx = DataContext::new(&ds.graph);
    use subgraph_matching::graph::gen::query::{generate_query_set, Density, QuerySetSpec};
    let queries = generate_query_set(
        &ds.graph,
        QuerySetSpec {
            num_vertices: 10,
            density: Density::Any,
            count: 6,
        },
        3,
    );
    for q in &queries {
        let plain = Algorithm::DpIso
            .optimized()
            .run(q, &ctx, &MatchConfig::find_all());
        let fs = Algorithm::DpIso.optimized().run(
            q,
            &ctx,
            &MatchConfig::find_all().with_failing_sets(true),
        );
        assert_eq!(plain.matches, fs.matches);
        // Pruning may only shrink the search tree.
        assert!(fs.recursions <= plain.recursions);
    }
}
