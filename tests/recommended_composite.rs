//! The paper's Section 6 recommendation, end to end: correct on real
//! workloads and configured per the data graph's density.

use subgraph_matching::datasets::Dataset;
use subgraph_matching::graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use subgraph_matching::matching::algorithm::recommended;
use subgraph_matching::prelude::*;

#[test]
fn recommended_is_correct_on_sparse_and_dense_datasets() {
    for ab in ["ye", "hu"] {
        let ds = Dataset::load(ab).unwrap();
        let ctx = DataContext::new(&ds.graph);
        let queries = generate_query_set(
            &ds.graph,
            QuerySetSpec {
                num_vertices: 8,
                density: Density::Any,
                count: 5,
            },
            0x6EC,
        );
        for q in &queries {
            let (pipeline, config) = recommended(&ds.stats, q.num_vertices());
            let rec = pipeline.run(q, &ctx, &config);
            let reference = Algorithm::DpIso
                .optimized()
                .run(q, &ctx, &MatchConfig::default());
            assert_eq!(rec.matches, reference.matches, "{ab}");
        }
    }
}

#[test]
fn recommended_switches_ordering_on_density() {
    let sparse = Dataset::load("yt").unwrap(); // d = 5.3
    let dense = Dataset::load("hu").unwrap(); // d = 36.9
    let (p_sparse, _) = recommended(&sparse.stats, 8);
    let (p_dense, c_dense) = recommended(&dense.stats, 8);
    assert_eq!(p_sparse.order, OrderKind::Ri);
    assert_eq!(p_dense.order, OrderKind::GraphQl);
    // very dense -> QFilter intersection
    assert_eq!(
        c_dense.intersect,
        subgraph_matching::intersect::IntersectKind::Bsr
    );
}

#[test]
fn recommended_gates_failing_sets_on_query_size() {
    let ds = Dataset::load("ye").unwrap();
    let (_, small) = recommended(&ds.stats, 8);
    let (_, large) = recommended(&ds.stats, 32);
    assert!(!small.failing_sets);
    assert!(large.failing_sets);
}
