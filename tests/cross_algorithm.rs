//! Cross-crate agreement: every framework algorithm (original and
//! optimized, with and without failing sets) and the Glasgow CP solver
//! report the same match counts on real workload queries drawn from the
//! Yeast stand-in.

use subgraph_matching::datasets::Dataset;
use subgraph_matching::glasgow::{glasgow_match, GlasgowConfig};
use subgraph_matching::graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use subgraph_matching::prelude::*;

fn workload(sizes: &[usize]) -> (Dataset, Vec<Graph>) {
    let ds = Dataset::load("ye").expect("yeast stand-in");
    let mut queries = Vec::new();
    for &size in sizes {
        queries.extend(generate_query_set(
            &ds.graph,
            QuerySetSpec {
                num_vertices: size,
                density: Density::Any,
                count: 4,
            },
            0xC0FFEE + size as u64,
        ));
    }
    (ds, queries)
}

#[test]
fn all_framework_algorithms_agree() {
    let (ds, queries) = workload(&[4, 6, 8]);
    let ctx = DataContext::new(&ds.graph);
    let cfg = MatchConfig::default();
    let cfg_fs = MatchConfig::default().with_failing_sets(true);
    assert!(!queries.is_empty());
    for (qi, q) in queries.iter().enumerate() {
        let reference = Algorithm::GraphQl.optimized().run(q, &ctx, &cfg).matches;
        for alg in Algorithm::all() {
            let orig = alg.original().run(q, &ctx, &cfg).matches;
            assert_eq!(orig, reference, "O-{} on query {qi}", alg.abbrev());
            let opt = alg.optimized().run(q, &ctx, &cfg).matches;
            assert_eq!(opt, reference, "{} on query {qi}", alg.abbrev());
            let fs = alg.optimized().run(q, &ctx, &cfg_fs).matches;
            assert_eq!(fs, reference, "{}fs on query {qi}", alg.abbrev());
        }
    }
}

#[test]
fn glasgow_agrees_with_framework() {
    let (ds, queries) = workload(&[4, 6]);
    let ctx = DataContext::new(&ds.graph);
    let cfg = MatchConfig::default();
    let glw = GlasgowConfig::default();
    for (qi, q) in queries.iter().enumerate() {
        let want = Algorithm::DpIso.optimized().run(q, &ctx, &cfg).matches;
        let got = glasgow_match(q, &ds.graph, &glw)
            .expect("yeast fits the budget")
            .matches;
        assert_eq!(got, want, "glasgow vs framework on query {qi}");
    }
}

#[test]
fn intersection_kernels_agree_end_to_end() {
    use subgraph_matching::intersect::IntersectKind;
    let (ds, queries) = workload(&[6, 8]);
    let ctx = DataContext::new(&ds.graph);
    for (qi, q) in queries.iter().enumerate() {
        let mut counts = Vec::new();
        for kind in [
            IntersectKind::Merge,
            IntersectKind::Galloping,
            IntersectKind::Hybrid,
            IntersectKind::Bsr,
        ] {
            let cfg = MatchConfig {
                intersect: kind,
                ..Default::default()
            };
            counts.push(Algorithm::Ceci.optimized().run(q, &ctx, &cfg).matches);
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "query {qi}: {counts:?}"
        );
    }
}

#[test]
fn deterministic_across_runs() {
    let (ds, queries) = workload(&[8]);
    let ctx = DataContext::new(&ds.graph);
    let cfg = MatchConfig::default();
    for q in &queries {
        let a = Algorithm::Cfl.optimized().run(q, &ctx, &cfg);
        let b = Algorithm::Cfl.optimized().run(q, &ctx, &cfg);
        assert_eq!(a.matches, b.matches);
        assert_eq!(a.recursions, b.recursions);
    }
}
