#!/usr/bin/env sh
# Full local gate: release build, workspace tests, clippy with warnings
# denied. Run from anywhere; everything executes at the repo root.
set -eu

cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
