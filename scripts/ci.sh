#!/usr/bin/env sh
# Full local gate: formatting, release build, workspace tests, clippy with
# warnings denied, rustdoc with warnings denied, plus the observability
# smoke checks (trace overhead stays inside the bound; JSONL run profiles
# round-trip and validate), the service-layer concurrency smoke (two
# clients on a shared Service; asserts sequential-vs-concurrent count
# agreement and a nonzero plan-cache hit rate) and the dynamic-graph
# smoke (seeded update stream; asserts incremental standing-query
# maintenance equals full recompute after every batch) and the sharding
# smoke (scatter-gather over partitioned shards; asserts sharded counts
# equal single-service ground truth at every shard count) and the match-
# semantics smoke (asserts count-only == materialized length per mode and
# the homo >= edge-injective >= iso containment chain) and the
# durability smoke (WAL + snapshot kill-and-recover; asserts the
# recovered service answers identically to the pre-crash one and the
# post-compaction reopen replays zero batches) and the planner smoke
# (self-tuning cost-model planner; asserts warm auto stays within 1.5x
# of the per-query best fixed combo and a forced misprediction triggers
# at least one jump-redo replan). Run from anywhere; everything executes
# at the repo root.
set -eu

cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

cargo build --release -p sm-bench
./target/release/experiments trace-overhead --queries 2 --threads 4
./target/release/experiments check-profile --queries 1 --threads 4
./target/release/experiments serve --queries 4 --clients 2 --threads 2
./target/release/experiments update --queries 2 --threads 2 --seed 42
./target/release/experiments shard --queries 2 --clients 2 --threads 2 --seed 42 --shards 1,2
./target/release/experiments semantics --queries 2 --threads 2 --seed 42
./target/release/experiments metrics-overhead --threads 4
./target/release/experiments durability --threads 2 --seed 42
./target/release/experiments planner --queries 2 --threads 1 --seed 42
