//! Algorithm shootout: all eight competitors (the seven framework
//! algorithms plus the Glasgow CP solver) on one dataset and query set —
//! a miniature of the paper's Figure 16.
//!
//! ```sh
//! cargo run --release --example algorithm_shootout [dataset] [query_size]
//! ```
//!
//! `dataset` defaults to `ye`; `query_size` to 12.

use std::time::Duration;
use subgraph_matching::datasets::Dataset;
use subgraph_matching::glasgow::{glasgow_match, GlasgowConfig, GlasgowError};
use subgraph_matching::graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use subgraph_matching::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let dataset = args.next().unwrap_or_else(|| "ye".to_string());
    let qsize: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);

    let ds = Dataset::load(&dataset).unwrap_or_else(|| {
        eprintln!("unknown dataset '{dataset}' (try ye, hu, hp, wn, up, yt, db, eu)");
        std::process::exit(2);
    });
    println!(
        "dataset {} ({}): {}",
        ds.spec.abbrev, ds.spec.name, ds.stats
    );
    let ctx = DataContext::new(&ds.graph);

    let queries = generate_query_set(
        &ds.graph,
        QuerySetSpec {
            num_vertices: qsize,
            density: Density::Dense,
            count: 10,
        },
        42,
    );
    println!("queries: {} dense {qsize}-vertex patterns\n", queries.len());

    let config = MatchConfig::default().with_time_limit(Duration::from_secs(2));
    let fs_config = config.clone().with_failing_sets(true);

    println!(
        "{:<10} {:>14} {:>14} {:>10}",
        "algorithm", "avg total (us)", "avg matches", "unsolved"
    );
    for alg in Algorithm::all() {
        let pipeline = alg.optimized();
        report(&pipeline.name, &queries, |q| {
            let out = pipeline.run(q, &ctx, &fs_config);
            (out.total_time(), out.matches, out.unsolved())
        });
    }
    // Glasgow, outside the framework.
    let glw = GlasgowConfig {
        time_limit: Some(Duration::from_secs(2)),
        ..Default::default()
    };
    match glasgow_match(&queries[0], &ds.graph, &glw) {
        Err(GlasgowError::OutOfMemory { required, budget }) => {
            println!(
                "{:<10} out of memory (needs {} MiB, budget {} MiB)",
                "GLW",
                required >> 20,
                budget >> 20
            );
        }
        Ok(_) => {
            report("GLW", &queries, |q| {
                let s = glasgow_match(q, &ds.graph, &glw).expect("checked above");
                (s.elapsed, s.matches, s.timed_out)
            });
        }
    }
}

fn report(
    name: &str,
    queries: &[subgraph_matching::graph::Graph],
    mut run: impl FnMut(&subgraph_matching::graph::Graph) -> (Duration, u64, bool),
) {
    let mut time = Duration::ZERO;
    let mut matches = 0u64;
    let mut unsolved = 0usize;
    for q in queries {
        let (t, m, u) = run(q);
        time += t;
        matches += m;
        unsolved += u as usize;
    }
    let n = queries.len().max(1) as u32;
    println!(
        "{:<10} {:>14} {:>14} {:>10}",
        name,
        (time / n).as_micros(),
        matches / n as u64,
        unsolved
    );
}
