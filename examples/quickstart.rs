//! Quickstart: run the paper's running example (Figure 1) end to end and
//! print every phase of Algorithm 1 — candidates, matching order, and the
//! matches found.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use subgraph_matching::matching::enumerate::CollectSink;
use subgraph_matching::matching::filter::run_filter;
use subgraph_matching::matching::fixtures::{paper_data, paper_query};
use subgraph_matching::prelude::*;

fn main() {
    let q = paper_query();
    let g = paper_data();
    println!("query:  {}", GraphStats::of(&q));
    println!("data:   {}", GraphStats::of(&g));

    let ctx = DataContext::new(&g);

    // Phase 1: candidate filtering (GraphQL's method).
    let qc = QueryContext::new(&q);
    let filtered = run_filter(FilterKind::GraphQl, &qc, &ctx).expect("query is satisfiable");
    println!("\ncandidate sets after GraphQL filtering:");
    for u in q.vertices() {
        println!("  C(u{u}) = {:?}", filtered.candidates.get(u));
    }

    // The paper's Section-6 recommendation picks components from the
    // data graph's shape.
    let (rec, rec_cfg) =
        subgraph_matching::matching::algorithm::recommended(&GraphStats::of(&g), q.num_vertices());
    let rec_out = rec.run(&q, &ctx, &rec_cfg);
    println!(
        "\nrecommended composite ({}): {} match(es) in {:?}",
        rec.name,
        rec_out.matches,
        rec_out.total_time()
    );

    // Phases 2-4 via a pipeline, collecting the actual embeddings.
    for alg in Algorithm::all() {
        let pipeline = alg.optimized();
        let mut sink = CollectSink::default();
        let out = pipeline.run_with_sink(&q, &ctx, &MatchConfig::default(), &mut sink);
        println!(
            "\n{}: {} match(es) in {:?} (preprocessing {:?}, enumeration {:?})",
            pipeline.name,
            out.matches,
            out.total_time(),
            out.preprocessing_time(),
            out.enum_time,
        );
        for m in &sink.matches {
            let pairs: Vec<String> = m
                .iter()
                .enumerate()
                .map(|(u, v)| format!("(u{u},v{v})"))
                .collect();
            println!("  {{{}}}", pairs.join(", "));
        }
    }
}
