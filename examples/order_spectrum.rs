//! Matching-order spectrum explorer — the paper's Section 5.3 analysis as
//! an interactive tool. Samples random matching orders for one query,
//! shows the distribution of enumeration times, and places each ordering
//! heuristic inside it.
//!
//! ```sh
//! cargo run --release --example order_spectrum [dataset] [query_size] [orders]
//! ```

use std::time::Duration;
use subgraph_matching::datasets::Dataset;
use subgraph_matching::graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use subgraph_matching::matching::spectrum::spectrum_analysis;
use subgraph_matching::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let dataset = args.next().unwrap_or_else(|| "ye".to_string());
    let qsize: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let orders: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);

    let ds = Dataset::load(&dataset).unwrap_or_else(|| {
        eprintln!("unknown dataset '{dataset}'");
        std::process::exit(2);
    });
    println!("dataset {}: {}", ds.spec.abbrev, ds.stats);
    let ctx = DataContext::new(&ds.graph);
    let q = generate_query_set(
        &ds.graph,
        QuerySetSpec {
            num_vertices: qsize,
            density: Density::Dense,
            count: 1,
        },
        7,
    )
    .into_iter()
    .next()
    .unwrap_or_else(|| {
        eprintln!("could not extract a dense {qsize}-vertex query");
        std::process::exit(1);
    });
    println!("query: {}", GraphStats::of(&q));

    // Sample the spectrum.
    let res = spectrum_analysis(&q, &ctx, orders, Duration::from_secs(1), 99);
    let mut times: Vec<f64> = res
        .points
        .iter()
        .filter_map(|p| p.enum_time.map(|d| d.as_secs_f64() * 1e3))
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "\nspectrum of {} random connected orders ({} completed within 1s):",
        orders,
        times.len()
    );
    if !times.is_empty() {
        let pick = |p: f64| times[((times.len() - 1) as f64 * p) as usize];
        println!(
            "  min {:.3} ms | p25 {:.3} | median {:.3} | p75 {:.3} | max {:.3}",
            times[0],
            pick(0.25),
            pick(0.5),
            pick(0.75),
            times[times.len() - 1]
        );
        // poor-man's histogram over log-spaced buckets
        let lo = times[0].max(1e-4);
        let hi = times[times.len() - 1].max(lo * 1.0001);
        let buckets = 10usize;
        let mut hist = vec![0usize; buckets];
        for &t in &times {
            let frac = ((t.max(lo)).ln() - lo.ln()) / (hi.ln() - lo.ln());
            hist[((frac * (buckets - 1) as f64).round() as usize).min(buckets - 1)] += 1;
        }
        println!("  log-time histogram:");
        for (i, &c) in hist.iter().enumerate() {
            let left = (lo.ln() + (hi.ln() - lo.ln()) * i as f64 / buckets as f64).exp();
            println!("    {:>9.3} ms | {}", left, "#".repeat(c));
        }
    }

    // Where do the heuristics land?
    println!("\nheuristic orders inside the spectrum:");
    let cfg = MatchConfig::default().with_time_limit(Duration::from_secs(1));
    for alg in Algorithm::all() {
        let out = alg.optimized().run(&q, &ctx, &cfg);
        let label = if out.unsolved() {
            ">1000 (unsolved)".to_string()
        } else {
            format!("{:.3}", out.enum_time.as_secs_f64() * 1e3)
        };
        let beaten = times
            .iter()
            .filter(|&&t| t < out.enum_time.as_secs_f64() * 1e3)
            .count();
        println!(
            "  {:<5} {:>16} ms   (beaten by {}/{} random orders)",
            alg.abbrev(),
            label,
            beaten,
            times.len()
        );
    }
}
