//! Protein-interaction motif search — the bioinformatics workload that
//! motivates RI and VF2++ in the paper's introduction.
//!
//! Searches a yeast-scale protein-interaction stand-in for classic
//! network motifs (labeled triangles, feed-forward-like squares, and a
//! bi-fan), comparing a direct-enumeration algorithm (RI) against a
//! preprocessing-enumeration one (DP-iso).
//!
//! ```sh
//! cargo run --release --example protein_motifs
//! ```

use subgraph_matching::datasets::Dataset;
use subgraph_matching::graph::builder::graph_from_edges;
use subgraph_matching::prelude::*;

fn motifs() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "labeled triangle (complex core)",
            graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]),
        ),
        (
            "square (4-cycle of alternating families)",
            graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]),
        ),
        (
            "bi-fan (two regulators, two targets)",
            graph_from_edges(&[0, 0, 1, 1], &[(0, 2), (0, 3), (1, 2), (1, 3)]),
        ),
        (
            "tailed triangle (core + interactor)",
            graph_from_edges(&[0, 1, 2, 3], &[(0, 1), (1, 2), (0, 2), (2, 3)]),
        ),
    ]
}

fn main() {
    let ds = Dataset::load("ye").expect("yeast stand-in");
    println!(
        "protein-interaction stand-in ({}): {}",
        ds.spec.name, ds.stats
    );
    let ctx = DataContext::new(&ds.graph);
    let config = MatchConfig::default(); // paper's 10^5 match cap

    println!(
        "\n{:<42} {:>12} {:>12} {:>12}",
        "motif", "matches", "RI (us)", "DP-iso (us)"
    );
    for (name, motif) in motifs() {
        let ri = Algorithm::Ri.optimized().run(&motif, &ctx, &config);
        // collect DP-iso's embeddings and spot-check their validity
        let mut sink = subgraph_matching::matching::enumerate::CollectSink::default();
        let dp = Algorithm::DpIso
            .optimized()
            .run_with_sink(&motif, &ctx, &config, &mut sink);
        assert_eq!(ri.matches, dp.matches, "algorithms must agree");
        for m in sink.matches.iter().take(100) {
            assert!(subgraph_matching::matching::reference::is_valid_match(
                &motif, &ds.graph, m
            ));
        }
        println!(
            "{:<42} {:>12} {:>12} {:>12}",
            name,
            ri.matches,
            ri.total_time().as_micros(),
            dp.total_time().as_micros(),
        );
    }
    println!("\n(matches capped at 10^5 per the paper's measurement protocol)");
}
