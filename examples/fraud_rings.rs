//! Fraud-ring detection in a transaction network — the social/financial
//! graph workload the paper's introduction cites (labeled pattern queries
//! over large sparse graphs).
//!
//! Builds a synthetic account graph (RMAT, power-law) whose labels model
//! account types — 0: person, 1: merchant, 2: mule, 3: shell company —
//! and hunts for suspicious structures: a "cycle ring" of mules and a
//! "fan-in" shell pattern. Shows failing-set pruning paying off on the
//! larger pattern, as in the paper's Figure 15.
//!
//! ```sh
//! cargo run --release --example fraud_rings
//! ```

use subgraph_matching::graph::builder::graph_from_edges;
use subgraph_matching::graph::gen::rmat::{rmat_graph, RmatParams};
use subgraph_matching::prelude::*;

fn main() {
    // 50k accounts, average 12 relationships, 10 account types (4 shown).
    let g = rmat_graph(50_000, 12.0, 10, RmatParams::PAPER, 2024);
    println!("transaction network: {}", GraphStats::of(&g));
    let ctx = DataContext::new(&g);

    // Pattern 1: a mule ring — person -> mule -> mule -> mule -> back.
    let ring = graph_from_edges(&[0, 2, 2, 2], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    // Pattern 2: fan-in through a shell company: three mules feeding one
    // shell that pays out to a merchant; the mules also transact among
    // themselves and the merchant reaches back to one of the persons —
    // a rare, cyclic 8-vertex structure with many dead-end partial
    // embeddings (where failing-set pruning earns its keep).
    let shell = graph_from_edges(
        &[3, 2, 2, 2, 1, 0, 0, 0],
        &[
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 5),
            (2, 6),
            (3, 7),
            (1, 2),
            (2, 3),
            (4, 5),
        ],
    );

    let config = MatchConfig::find_all();
    let config_fs = MatchConfig::find_all().with_failing_sets(true);

    for (name, pattern) in [
        ("mule ring (4 vertices)", &ring),
        ("shell fan-in (8 vertices)", &shell),
    ] {
        let base = Algorithm::GraphQl.optimized().run(pattern, &ctx, &config);
        let fs = Algorithm::GraphQl
            .optimized()
            .run(pattern, &ctx, &config_fs);
        assert_eq!(base.matches, fs.matches);
        println!("\n{name}: {} suspicious instance(s)", base.matches);
        println!(
            "  GQL          : {:?} ({} search nodes)",
            base.total_time(),
            base.recursions
        );
        println!(
            "  GQL + failing sets: {:?} ({} search nodes)",
            fs.total_time(),
            fs.recursions
        );
    }
    println!(
        "\n(on easy patterns the filters leave little to prune; run \
         `experiments fig15` for the paper's Figure 15 crossover, where \
         failing sets win by orders of magnitude on 24-32 vertex queries)"
    );
}
