//! Kill-and-recover equivalence for the durable service: a recovered
//! [`Service`] must be indistinguishable — epoch, full sorted embedding
//! sets, standing-query sets — from an uninterrupted twin that applied
//! the same batches in memory, including when the crash tears the final
//! WAL record at an arbitrary byte.

use sm_delta::{UpdateBatch, UpdateStream, UpdateStreamSpec};
use sm_graph::builder::graph_from_edges;
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_graph::{Graph, VertexId};
use sm_runtime::trace::Counter;
use sm_service::{DurabilityOptions, FsyncPolicy, QueryRequest, Service, ServiceConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "sm-service-durable-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read durable dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy file");
    }
}

fn base_graph() -> Graph {
    rmat_graph(150, 4.0, 3, RmatParams::PAPER, 17)
}

fn edge_query() -> Graph {
    graph_from_edges(&[0, 0], &[(0, 1)])
}

fn wedge_query() -> Graph {
    graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)])
}

fn no_snapshot_opts() -> DurabilityOptions {
    DurabilityOptions {
        fsync: FsyncPolicy::Off,
        snapshot_threshold_bytes: 0, // manual snapshots only
        ..Default::default()
    }
}

fn sorted_embeddings(svc: &Service, q: &Graph) -> Vec<Vec<VertexId>> {
    let mut m: Vec<Vec<VertexId>> = svc.submit(QueryRequest::streaming(q.clone())).collect();
    m.sort_unstable();
    m
}

/// Generate `n` batches by running a seeded stream against `svc`'s own
/// evolving graph, applying each as it is generated. Returns the batches
/// so a second service can replay the identical sequence.
fn drive(svc: &Service, n: usize, seed: u64) -> Vec<UpdateBatch> {
    let mut stream = UpdateStream::new(
        UpdateStreamSpec {
            batch_size: 6,
            ..Default::default()
        },
        seed,
    );
    (0..n)
        .map(|_| {
            let b = stream.next_batch(&svc.snapshot());
            svc.apply_update(&b);
            b
        })
        .collect()
}

fn assert_equivalent(recovered: &Service, twin: &Service) {
    assert_eq!(recovered.epoch(), twin.epoch(), "epoch");
    for q in [edge_query(), wedge_query()] {
        assert_eq!(
            sorted_embeddings(recovered, &q),
            sorted_embeddings(twin, &q),
            "query embedding sets"
        );
    }
}

#[test]
fn kill_and_recover_matches_uninterrupted_twin() {
    let dir = tmp_dir("twin");
    let cfg = ServiceConfig::default();
    let twin = Service::new(base_graph(), cfg.clone());
    let durable =
        Service::new_durable(base_graph(), cfg.clone(), &dir, no_snapshot_opts()).unwrap();
    assert!(durable.is_durable() && !twin.is_durable());

    // Standing query registered mid-stream: its registration record sits
    // between batch records in the WAL.
    let twin_batches = drive(&twin, 8, 99);
    let sid_twin = twin.register_standing(&wedge_query()).unwrap();
    let twin_batches_tail = drive(&twin, 8, 100);

    for b in &twin_batches {
        durable.apply_update(b);
    }
    let sid = durable.register_standing(&wedge_query()).unwrap();
    for b in &twin_batches_tail {
        durable.apply_update(b);
    }
    let effective = durable.counters().get(Counter::UpdatesApplied);
    assert!(effective > 0, "stream produced effective batches");
    drop(durable); // kill

    let recovered = Service::open(&dir, cfg, no_snapshot_opts()).unwrap();
    assert_equivalent(&recovered, &twin);
    assert_eq!(
        recovered.standing_matches(sid),
        twin.standing_matches(sid_twin),
        "standing sets"
    );
    let report = recovered.recovery_report().unwrap();
    assert_eq!(report.snapshot_epoch, 0, "no compaction happened");
    assert_eq!(report.replayed_batches, effective);
    assert_eq!(report.replayed_registrations, 1);
    let c = recovered.counters();
    assert_eq!(c.get(Counter::Recoveries), 1);
    assert_eq!(c.get(Counter::ReplayedBatches), effective);

    // The recovered service keeps logging: one more batch survives a
    // second crash.
    let more = drive(&recovered, 1, 101);
    for b in &more {
        twin.apply_update(b);
    }
    drop(recovered);
    let again = Service::open(&dir, ServiceConfig::default(), no_snapshot_opts()).unwrap();
    assert_equivalent(&again, &twin);
}

/// Frame-walk a WAL segment: byte offset where the final record starts.
fn last_record_start(seg: &[u8]) -> usize {
    let mut pos = 0usize;
    let mut last = 0usize;
    while pos + 8 <= seg.len() {
        let len = u32::from_le_bytes(seg[pos..pos + 4].try_into().unwrap()) as usize;
        if pos + 8 + len > seg.len() {
            break;
        }
        last = pos;
        pos += 8 + len;
    }
    assert_eq!(pos, seg.len(), "writer left no torn tail of its own");
    last
}

#[test]
fn recovery_lands_on_last_committed_epoch_at_every_cut() {
    let dir = tmp_dir("cuts");
    let cfg = ServiceConfig {
        workers: 1,
        ..Default::default()
    };
    // Small graph and batches keep the final record short enough to cut
    // at every byte without the test crawling.
    let g = rmat_graph(60, 3.0, 3, RmatParams::PAPER, 5);
    let twin = Service::new(g.clone(), cfg.clone());
    let durable = Service::new_durable(g, cfg.clone(), &dir, no_snapshot_opts()).unwrap();
    let mut stream = UpdateStream::new(
        UpdateStreamSpec {
            batch_size: 3,
            ..Default::default()
        },
        21,
    );
    // Twin states after each effective batch: epoch + probe embeddings.
    let mut prefix_states = vec![(twin.epoch(), sorted_embeddings(&twin, &edge_query()))];
    let mut applied = 0;
    while applied < 5 {
        let b = stream.next_batch(&twin.snapshot());
        let r = twin.apply_update(&b);
        durable.apply_update(&b);
        if !r.noop {
            prefix_states.push((twin.epoch(), sorted_embeddings(&twin, &edge_query())));
            applied += 1;
        }
    }
    drop(durable);

    let seg_path = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "seg"))
        .expect("one WAL segment");
    let seg = std::fs::read(&seg_path).unwrap();
    let last = last_record_start(&seg);
    let full_state = prefix_states.last().unwrap();
    let cut_state = &prefix_states[prefix_states.len() - 2];

    for cut in last..=seg.len() {
        // Truncate the final record at `cut` bytes...
        let scratch = tmp_dir("cut-case");
        copy_dir(&dir, &scratch);
        std::fs::write(
            seg_path.file_name().map(|f| scratch.join(f)).unwrap(),
            &seg[..cut],
        )
        .unwrap();
        let rec = Service::open(&scratch, cfg.clone(), no_snapshot_opts()).unwrap();
        let expect = if cut == seg.len() {
            full_state
        } else {
            cut_state
        };
        assert_eq!(rec.epoch(), expect.0, "epoch after cut at byte {cut}");
        assert_eq!(
            sorted_embeddings(&rec, &edge_query()),
            expect.1,
            "embeddings after cut at byte {cut}"
        );
        drop(rec);
        // ...and corrupt one byte there instead (skip cut == len: no
        // byte to flip).
        if cut < seg.len() {
            let mut bad = seg.clone();
            bad[cut] ^= 0x5A;
            let scratch = tmp_dir("flip-case");
            copy_dir(&dir, &scratch);
            std::fs::write(seg_path.file_name().map(|f| scratch.join(f)).unwrap(), &bad).unwrap();
            let rec = Service::open(&scratch, cfg.clone(), no_snapshot_opts()).unwrap();
            assert_eq!(rec.epoch(), cut_state.0, "epoch after flip at byte {cut}");
            assert_eq!(
                sorted_embeddings(&rec, &edge_query()),
                cut_state.1,
                "embeddings after flip at byte {cut}"
            );
        }
    }
}

#[test]
fn updates_acknowledged_after_a_torn_tail_recovery_survive_a_second_crash() {
    let dir = tmp_dir("torn-then-crash");
    let cfg = ServiceConfig {
        workers: 1,
        ..Default::default()
    };
    let g = rmat_graph(60, 3.0, 3, RmatParams::PAPER, 5);
    let twin = Service::new(g.clone(), cfg.clone());
    let durable = Service::new_durable(g, cfg.clone(), &dir, no_snapshot_opts()).unwrap();
    for b in drive(&twin, 4, 31) {
        durable.apply_update(&b);
    }
    drop(durable);
    // Crash tears the final WAL record mid-write.
    let seg_path = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "seg"))
        .expect("one WAL segment");
    let seg = std::fs::read(&seg_path).unwrap();
    let cut = last_record_start(&seg) + 5;
    std::fs::write(&seg_path, &seg[..cut]).unwrap();

    // First recovery drops the torn record; updates it acknowledges
    // afterwards must survive the NEXT crash — before recovery truncated
    // the torn bytes off disk, the second scan stopped at them and
    // silently discarded everything logged after the first crash.
    let recovered = Service::open(&dir, cfg.clone(), no_snapshot_opts()).unwrap();
    assert!(recovered.recovery_report().unwrap().dropped_bytes > 0);
    let post = drive(&recovered, 3, 57);
    let expect_epoch = recovered.epoch();
    let expect = sorted_embeddings(&recovered, &edge_query());
    drop(recovered);

    let again = Service::open(&dir, cfg, no_snapshot_opts()).unwrap();
    let report = again.recovery_report().unwrap();
    assert_eq!(
        report.dropped_bytes, 0,
        "first recovery removed the torn bytes"
    );
    assert_eq!(
        again.epoch(),
        expect_epoch,
        "post-recovery batches replayed"
    );
    assert_eq!(sorted_embeddings(&again, &edge_query()), expect);
    assert!(!post.is_empty());
}

#[test]
fn threshold_snapshot_compacts_wal() {
    let dir = tmp_dir("threshold");
    let cfg = ServiceConfig::default();
    let opts = DurabilityOptions {
        fsync: FsyncPolicy::Off,
        snapshot_threshold_bytes: 1, // every effective batch compacts
        ..Default::default()
    };
    let twin = Service::new(base_graph(), cfg.clone());
    let durable = Service::new_durable(base_graph(), cfg.clone(), &dir, opts).unwrap();
    durable.register_standing(&wedge_query()).unwrap();
    twin.register_standing(&wedge_query()).unwrap();
    for b in drive(&twin, 6, 7) {
        durable.apply_update(&b);
    }
    let snaps = durable.counters().get(Counter::SnapshotsWritten);
    assert!(snaps > 1, "threshold snapshots were written: {snaps}");
    drop(durable);

    let recovered = Service::open(&dir, cfg, opts).unwrap();
    let report = recovered.recovery_report().unwrap();
    assert_eq!(
        report.replayed_batches, 0,
        "the snapshot absorbed the whole log"
    );
    assert_eq!(report.snapshot_epoch, recovered.epoch());
    assert_equivalent(&recovered, &twin);
}

#[test]
fn manual_snapshot_and_swap_graph_reset_the_lineage() {
    let dir = tmp_dir("swap");
    let cfg = ServiceConfig::default();
    let opts = no_snapshot_opts();
    let durable = Service::new_durable(base_graph(), cfg.clone(), &dir, opts).unwrap();
    let sid = durable.register_standing(&wedge_query()).unwrap();
    drive(&durable, 4, 3);
    assert!(durable.snapshot_now().unwrap());

    // swap_graph starts a new lineage: fresh snapshot, WAL pruned.
    let other = rmat_graph(80, 3.0, 3, RmatParams::PAPER, 23);
    durable.swap_graph(other.clone());
    let expect_standing = durable.standing_matches(sid);
    let expect_epoch = durable.epoch();
    drop(durable);

    let recovered = Service::open(&dir, cfg.clone(), opts).unwrap();
    assert_eq!(recovered.epoch(), expect_epoch);
    assert_eq!(recovered.recovery_report().unwrap().replayed_batches, 0);
    assert_eq!(recovered.standing_matches(sid), expect_standing);
    // A fresh service over the swapped-in graph answers identically
    // (epochs differ by construction: the twin never saw the updates).
    let twin = Service::new(other, cfg);
    for q in [edge_query(), wedge_query()] {
        assert_eq!(
            sorted_embeddings(&recovered, &q),
            sorted_embeddings(&twin, &q),
            "query embedding sets after swap"
        );
    }

    // A fresh `new_durable` refuses to clobber the directory.
    let err = Service::new_durable(base_graph(), ServiceConfig::default(), &dir, opts)
        .err()
        .expect("create over existing lineage must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
}
