//! Service-level dynamic-graph tests: in-place updates keep query
//! results exact, scoped plan-cache invalidation spares label-disjoint
//! plans, standing queries stay correct incrementally, and pinned
//! snapshots survive churn.

use sm_delta::{UpdateBatch, UpdateStream, UpdateStreamSpec};
use sm_graph::builder::graph_from_edges;
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_graph::{Graph, VertexId};
use sm_match::enumerate::CollectSink;
use sm_match::{DataContext, FilterKind, LcMethod, MatchConfig, OrderKind, Pipeline};
use sm_runtime::trace::Counter;
use sm_service::{QueryRequest, Service, ServiceConfig, ServiceOutcome};

fn triangle() -> Graph {
    graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)])
}

fn full_matches(q: &Graph, g: &Graph) -> Vec<Vec<VertexId>> {
    let ctx = DataContext::new(g);
    let p = Pipeline::new("ref", FilterKind::Ldf, OrderKind::Ri, LcMethod::Direct);
    let mut sink = CollectSink::default();
    p.run_with_sink(q, &ctx, &MatchConfig::default(), &mut sink);
    let mut m = sink.matches;
    m.sort_unstable();
    m
}

#[test]
fn apply_update_changes_query_results_exactly() {
    // Path 0-1-2 with labels 0,1,0: no triangles yet.
    let g = graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3)]);
    let svc = Service::new(g, ServiceConfig::default());
    let q = graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]);
    assert_eq!(svc.run_count(q.clone()).matches, 0);

    // Close the 0-1-2 triangle.
    let report = svc.apply_update(&UpdateBatch::new().add_edge(0, 2));
    assert!(!report.noop);
    assert_eq!(report.epoch, 1);
    assert_eq!(report.edges_inserted, 1);
    assert_eq!(svc.epoch(), 1);
    // Two automorphic images: (0,1,2) and (2,1,0).
    assert_eq!(svc.run_count(q.clone()).matches, 2);

    // Delete an edge of the triangle again.
    let report = svc.apply_update(&UpdateBatch::new().delete_edge(1, 2));
    assert_eq!(report.edges_deleted, 1);
    assert_eq!(svc.run_count(q).matches, 0);
}

#[test]
fn noop_batch_keeps_epoch_and_cache() {
    let svc = Service::new(triangle(), ServiceConfig::default());
    // Inserting a present edge + deleting an absent one normalizes away.
    let report = svc.apply_update(&UpdateBatch::new().add_edge(0, 1).delete_edge(1, 3));
    assert!(report.noop);
    assert_eq!(report.epoch, 0);
    assert_eq!(svc.epoch(), 0);
}

#[test]
fn label_disjoint_plans_survive_updates() {
    // Two label islands: labels {0} vertices 0..4, labels {1} vertices 4..8.
    let g = graph_from_edges(
        &[0, 0, 0, 0, 1, 1, 1, 1],
        &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)],
    );
    let svc = Service::new(g, ServiceConfig::default());
    let q0 = graph_from_edges(&[0, 0], &[(0, 1)]); // label-0 edge query
    let q1 = graph_from_edges(&[1, 1], &[(0, 1)]); // label-1 edge query
    svc.run_count(q0.clone());
    svc.run_count(q1.clone());
    let (_, misses_before, _, _) = svc.cache_stats();

    // Update touching only label 1: the label-0 plan must be retained.
    let report = svc.apply_update(&UpdateBatch::new().add_edge(4, 6));
    assert_eq!(report.plans_retained, 1);
    assert_eq!(report.plans_evicted, 1);

    // Resubmitting q0 hits the retargeted entry; q1 recompiles.
    let r0 = svc.submit(QueryRequest::count(q0)).wait();
    assert!(r0.cache_hit, "label-disjoint plan survived the update");
    assert_eq!(r0.matches, 6); // 3 label-0 edges x 2 directions
    let r1 = svc.submit(QueryRequest::count(q1)).wait();
    assert!(!r1.cache_hit, "touched-label plan was evicted");
    assert_eq!(r1.matches, 8); // (3 + 1 new) label-1 edges x 2 directions
    let (_, misses_after, _, _) = svc.cache_stats();
    assert_eq!(misses_after, misses_before + 1, "only q1 recompiled");
}

#[test]
fn standing_query_tracks_full_recompute_over_stream() {
    let g0 = rmat_graph(150, 5.0, 3, RmatParams::PAPER, 71);
    let svc = Service::new(g0, ServiceConfig::default());
    let q = triangle();
    let id = svc.register_standing(&q).expect("triangle is supported");
    let mut stream = UpdateStream::new(UpdateStreamSpec::default(), 17);
    for step in 0..8 {
        let batch = stream.next_batch(&svc.snapshot());
        svc.apply_update(&batch);
        let current = {
            let snap = svc.snapshot();
            let (mat, _) = snap.materialize();
            full_matches(&q, &mat)
        };
        assert_eq!(svc.standing_matches(id), current, "step {step}");
        assert_eq!(svc.standing_count(id), current.len(), "step {step}");
    }
    let counters = svc.counters();
    assert_eq!(counters.get(Counter::UpdatesApplied), 8);
    assert!(counters.get(Counter::SnapshotsPinned) >= 8);
}

#[test]
fn unsupported_standing_queries_are_rejected() {
    let svc = Service::new(triangle(), ServiceConfig::default());
    // Edgeless and disconnected queries are not incrementally maintainable.
    assert!(svc
        .register_standing(&graph_from_edges(&[0], &[]))
        .is_none());
    let disconnected = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
    assert!(svc.register_standing(&disconnected).is_none());
}

#[test]
fn swap_graph_resets_standing_and_versioned_state() {
    let svc = Service::new(triangle(), ServiceConfig::default());
    let q = graph_from_edges(&[0, 0], &[(0, 1)]);
    let id = svc.register_standing(&q).expect("edge query");
    assert_eq!(svc.standing_count(id), 6); // 3 edges x 2 directions
    svc.apply_update(&UpdateBatch::new().delete_edge(0, 1));
    assert_eq!(svc.standing_count(id), 4);

    // Swap to a fresh 2-path: standing results are re-enumerated.
    svc.swap_graph(graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]));
    assert_eq!(svc.standing_count(id), 4);
    assert_eq!(svc.epoch(), 2); // one update + one swap
                                // Updates keep working against the swapped graph.
    let report = svc.apply_update(&UpdateBatch::new().add_edge(0, 2));
    assert!(!report.noop);
    assert_eq!(svc.standing_count(id), 6);
}

#[test]
fn snapshot_pinned_before_update_is_stable() {
    let svc = Service::new(triangle(), ServiceConfig::default());
    let pinned = svc.snapshot();
    svc.apply_update(&UpdateBatch::new().delete_edge(0, 1).delete_edge(1, 2));
    let (old, _) = pinned.materialize();
    assert_eq!(
        old.num_edges(),
        3,
        "pinned snapshot still sees the triangle"
    );
    let (new, _) = svc.snapshot().materialize();
    assert_eq!(new.num_edges(), 1);
}

#[test]
fn concurrent_submissions_and_updates_stay_consistent() {
    let g0 = rmat_graph(200, 6.0, 3, RmatParams::PAPER, 73);
    let svc = std::sync::Arc::new(Service::new(g0, ServiceConfig::default()));
    let q = triangle();
    let svc2 = svc.clone();
    let q2 = q.clone();
    // Reader thread hammers counts while the main thread applies updates;
    // every observed outcome must be a clean terminal one.
    let reader = std::thread::spawn(move || {
        for _ in 0..30 {
            let report = svc2.run_count(q2.clone());
            assert_eq!(report.outcome, ServiceOutcome::Complete);
        }
    });
    let mut stream = UpdateStream::new(UpdateStreamSpec::default(), 29);
    for _ in 0..10 {
        let batch = stream.next_batch(&svc.snapshot());
        svc.apply_update(&batch);
    }
    reader.join().expect("reader thread");
    // Post-churn: a fresh count agrees with a from-scratch enumeration.
    let (mat, _) = svc.snapshot().materialize();
    assert_eq!(
        svc.run_count(q.clone()).matches,
        full_matches(&q, &mat).len() as u64
    );
}
