//! End-to-end service tests: concurrent-vs-sequential agreement, plan
//! sharing across permuted submissions, deterministic deadline handling
//! on empty work, admission rejection, and streamed-embedding validity.

use sm_graph::builder::graph_from_edges;
use sm_graph::{Graph, VertexId};
use sm_match::{DataContext, MatchConfig, Pipeline};
use sm_service::{QueryRequest, Service, ServiceConfig, ServiceOutcome};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Deterministic pseudo-random data graph: `n` vertices, `labels`
/// label values, about `m` distinct edges.
fn random_graph(n: u32, labels: u32, m: usize, mut seed: u64) -> Graph {
    let mut step = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as u32
    };
    let vlabels: Vec<u32> = (0..n).map(|_| step() % labels).collect();
    let mut edges = Vec::new();
    let mut seen = std::collections::HashSet::new();
    while edges.len() < m {
        let a = step() % n;
        let b = step() % n;
        if a != b && seen.insert((a.min(b), a.max(b))) {
            edges.push((a, b));
        }
    }
    graph_from_edges(&vlabels, &edges)
}

/// Apply a vertex permutation to a graph: vertex `v` becomes `perm[v]`.
fn permuted(g: &Graph, perm: &[VertexId]) -> Graph {
    let n = g.num_vertices();
    let mut labels = vec![0u32; n];
    for v in 0..n as VertexId {
        labels[perm[v as usize] as usize] = g.label(v);
    }
    let mut edges = Vec::new();
    for v in 0..n as VertexId {
        for &w in g.neighbors(v) {
            if v < w {
                edges.push((perm[v as usize], perm[w as usize]));
            }
        }
    }
    graph_from_edges(&labels, &edges)
}

fn sequential_count(q: &Graph, g: &Graph, pipeline: &Pipeline, cap: Option<u64>) -> u64 {
    let ctx = DataContext::new(g);
    let cfg = MatchConfig {
        max_matches: cap,
        ..MatchConfig::find_all()
    };
    pipeline.run(q, &ctx, &cfg).matches
}

fn test_queries() -> Vec<Graph> {
    vec![
        // triangle
        graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]),
        // path of 4
        graph_from_edges(&[0, 1, 0, 2], &[(0, 1), (1, 2), (2, 3)]),
        // star
        graph_from_edges(&[1, 0, 0, 2], &[(0, 1), (0, 2), (0, 3)]),
        // triangle with tail
        graph_from_edges(&[0, 0, 1, 2], &[(0, 1), (1, 2), (0, 2), (2, 3)]),
    ]
}

#[test]
fn concurrent_counts_agree_with_sequential() {
    let g = random_graph(250, 3, 900, 0xC0FFEE);
    let queries = test_queries();
    let pipeline = ServiceConfig::default().pipeline.clone();
    let expected: Vec<u64> = queries
        .iter()
        .map(|q| sequential_count(q, &g, &pipeline, None))
        .collect();
    assert!(
        expected.iter().any(|&c| c > 0),
        "fixture should have matches"
    );

    let svc = Arc::new(Service::new(
        g,
        ServiceConfig {
            workers: 4,
            max_active: 4,
            ..ServiceConfig::default()
        },
    ));
    let handles: Vec<_> = (0..4)
        .map(|client| {
            let svc = svc.clone();
            let queries = queries.clone();
            let expected = expected.clone();
            thread::spawn(move || {
                // Each client walks the query set from a different offset
                // so distinct plans are in flight simultaneously.
                for round in 0..3 {
                    for i in 0..queries.len() {
                        let idx = (client + round + i) % queries.len();
                        let report = svc.run_count(queries[idx].clone());
                        assert_eq!(report.outcome, ServiceOutcome::Complete);
                        assert_eq!(
                            report.matches, expected[idx],
                            "query {idx} count drifted under concurrency"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // 4 distinct plans, 48 submissions. Concurrent cold-start misses can
    // double-compile a plan (each of the 4 clients may miss each plan
    // once before anyone populates it), but never more than that.
    let (hits, misses, _, len) = svc.cache_stats();
    assert_eq!(hits + misses, 48);
    assert_eq!(len, queries.len());
    assert!(misses <= 16, "at most one cold miss per client per plan");
    assert!(hits >= 32, "got only {hits} hits");
}

#[test]
fn permuted_queries_share_one_plan_and_counts() {
    let g = random_graph(150, 3, 500, 0xBEEF);
    let q = graph_from_edges(&[0, 0, 1, 2], &[(0, 1), (1, 2), (0, 2), (2, 3)]);
    // a nontrivial relabeling of the same query
    let q_perm = permuted(&q, &[2, 0, 3, 1]);

    let svc = Service::new(g, ServiceConfig::default());
    let first = svc.run_count(q.clone());
    let second = svc.run_count(q_perm);
    let third = svc.run_count(q);
    assert!(!first.cache_hit);
    assert!(second.cache_hit, "permuted query must reuse the plan");
    assert!(third.cache_hit);
    assert_eq!(first.matches, second.matches);
    assert_eq!(first.matches, third.matches);
    assert_eq!(second.plan_build_ns, 0, "hits compile nothing");
    let (hits, misses, _, len) = svc.cache_stats();
    assert_eq!((hits, misses, len), (2, 1, 1));
}

#[test]
fn empty_work_finishes_deterministically() {
    let g = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
    let svc = Service::new(g, ServiceConfig::default());
    // label 9 exists nowhere: the filter proves unsatisfiability.
    let q = graph_from_edges(&[9, 9], &[(0, 1)]);

    // Without a deadline: Complete with zero matches, immediately.
    let r = svc.submit(QueryRequest::count(q.clone())).wait();
    assert_eq!(r.outcome, ServiceOutcome::Complete);
    assert_eq!(r.matches, 0);

    // With an already-expired deadline: Deadline, never a hang — the
    // run is finalized at submission, no worker is involved.
    let r = svc
        .submit(QueryRequest::count(q.clone()).with_deadline(Duration::ZERO))
        .wait();
    assert_eq!(r.outcome, ServiceOutcome::Deadline);
    assert_eq!(r.matches, 0);

    // Unsatisfiable outcomes are cached too (negative-result entry).
    let r = svc.submit(QueryRequest::count(q)).wait();
    assert!(r.cache_hit);
    assert_eq!(r.outcome, ServiceOutcome::Complete);
}

#[test]
fn expired_deadline_on_runnable_plan_reports_deadline() {
    let g = random_graph(100, 2, 400, 0xABCD);
    let q = graph_from_edges(&[0, 1], &[(0, 1)]);
    let svc = Service::new(g, ServiceConfig::default());
    let r = svc
        .submit(QueryRequest::count(q).with_deadline(Duration::ZERO))
        .wait();
    // Workers observe the expired token before running any morsel.
    assert_eq!(r.outcome, ServiceOutcome::Deadline);
    assert_eq!(r.matches, 0);
}

#[test]
fn cap_hit_is_exact() {
    // Edge query on a clique: plenty of matches, cap at 7.
    let k6: Vec<(u32, u32)> = (0..6u32)
        .flat_map(|a| ((a + 1)..6).map(move |b| (a, b)))
        .collect();
    let g = graph_from_edges(&[0; 6], &k6);
    let q = graph_from_edges(&[0, 0], &[(0, 1)]);
    let svc = Service::new(
        g,
        ServiceConfig {
            workers: 3,
            ..ServiceConfig::default()
        },
    );
    for _ in 0..4 {
        let r = svc
            .submit(QueryRequest::count(q.clone()).with_cap(7))
            .wait();
        assert_eq!(r.outcome, ServiceOutcome::CapHit);
        assert_eq!(r.matches, 7, "capped counts must be exact across workers");
    }
}

#[test]
fn saturation_rejects_and_recovers() {
    let k8: Vec<(u32, u32)> = (0..8u32)
        .flat_map(|a| ((a + 1)..8).map(move |b| (a, b)))
        .collect();
    let g = graph_from_edges(&[0; 8], &k8);
    // 4-paths in K8: lots of embeddings to stream.
    let q = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
    let svc = Service::new(
        g,
        ServiceConfig {
            workers: 1,
            max_active: 1,
            queue_capacity: 0,
            stream_capacity: 1,
            ..ServiceConfig::default()
        },
    );
    // The first query fills its 1-slot buffer and blocks the worker.
    let mut s1 = svc.submit(QueryRequest::streaming(q.clone()));
    let first = s1.next();
    assert!(first.is_some(), "streaming query yields embeddings");

    // System full (1 active, queue capacity 0): reject immediately.
    let r = svc.submit(QueryRequest::count(q.clone())).wait();
    assert_eq!(r.outcome, ServiceOutcome::Rejected);

    // Abandoning the stream cancels the query; the slot frees once the
    // worker observes the cancellation (bounded retry, not a fixed sleep).
    drop(s1);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let r = svc.run_count(q.clone());
        if r.outcome == ServiceOutcome::Complete {
            break;
        }
        assert_eq!(r.outcome, ServiceOutcome::Rejected);
        assert!(
            std::time::Instant::now() < deadline,
            "slot never freed after stream drop"
        );
        thread::sleep(Duration::from_millis(5));
    }
    let counters = svc.counters();
    assert!(
        counters.get(sm_runtime::Counter::QueriesRejected) >= 1,
        "rejections counted"
    );
}

#[test]
fn pending_queue_promotes_in_order() {
    let g = random_graph(120, 3, 400, 0x5EED);
    let queries = test_queries();
    let pipeline = ServiceConfig::default().pipeline.clone();
    let expected: Vec<u64> = queries
        .iter()
        .map(|q| sequential_count(q, &g, &pipeline, None))
        .collect();
    let svc = Service::new(
        g,
        ServiceConfig {
            workers: 1,
            max_active: 1,
            queue_capacity: 16,
            ..ServiceConfig::default()
        },
    );
    // Submit everything at once: one runs, the rest queue and promote.
    let streams: Vec<_> = queries
        .iter()
        .map(|q| svc.submit(QueryRequest::count(q.clone())))
        .collect();
    for (i, s) in streams.into_iter().enumerate() {
        let r = s.wait();
        assert_eq!(r.outcome, ServiceOutcome::Complete);
        assert_eq!(r.matches, expected[i]);
    }
}

#[test]
fn streamed_embeddings_are_valid_and_remapped() {
    let g = random_graph(80, 3, 300, 0xFACE);
    let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]);
    let q_perm = permuted(&q, &[1, 2, 0]);
    let svc = Service::new(g.clone(), ServiceConfig::default());

    let check = |query: &Graph, expect_hit: bool| {
        let mut stream = svc.submit(QueryRequest::streaming(query.clone()));
        let mut n = 0u64;
        while let Some(m) = stream.next() {
            assert_eq!(m.len(), query.num_vertices());
            for u in 0..query.num_vertices() as VertexId {
                assert_eq!(
                    g.label(m[u as usize]),
                    query.label(u),
                    "label-preserving in the client's vertex ids"
                );
                for &w in query.neighbors(u) {
                    assert!(
                        g.has_edge(m[u as usize], m[w as usize]),
                        "edge-preserving in the client's vertex ids"
                    );
                }
            }
            n += 1;
        }
        let report = stream.report().expect("terminal after None");
        assert_eq!(report.outcome, ServiceOutcome::Complete);
        assert_eq!(report.cache_hit, expect_hit);
        assert_eq!(report.matches, n, "every counted match was delivered");
        n
    };

    let direct = check(&q, false);
    // The permuted query hits the same plan; its embeddings must be
    // expressed in *its* vertex ids (the remap), and be just as many.
    let remapped = check(&q_perm, true);
    assert_eq!(direct, remapped);
    assert!(direct > 0, "fixture should match");
    let streamed = svc.counters().get(sm_runtime::Counter::EmbeddingsStreamed);
    assert_eq!(streamed, direct + remapped);
}

#[test]
fn swap_graph_invalidates_cached_plans() {
    let g1 = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
    let g2 = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
    let q = graph_from_edges(&[0, 0], &[(0, 1)]);
    let svc = Service::new(g1, ServiceConfig::default());
    assert_eq!(svc.run_count(q.clone()).matches, 4);
    assert!(svc.run_count(q.clone()).cache_hit);
    svc.swap_graph(g2);
    assert_eq!(svc.epoch(), 1);
    let r = svc.run_count(q.clone());
    assert!(!r.cache_hit, "old epoch's plan must be unreachable");
    assert_eq!(r.matches, 6);
    assert!(svc.run_count(q).cache_hit);
}

#[test]
fn adaptive_pipeline_runs_whole_plan_morsels() {
    let g = random_graph(120, 3, 450, 0xD1CE);
    let queries = test_queries();
    let pipeline = sm_match::Algorithm::DpIso.optimized();
    let expected: Vec<u64> = queries
        .iter()
        .map(|q| sequential_count(q, &g, &pipeline, None))
        .collect();
    let svc = Service::new(
        g,
        ServiceConfig {
            pipeline,
            ..ServiceConfig::default()
        },
    );
    for (q, &want) in queries.iter().zip(&expected) {
        let r = svc.run_count(q.clone());
        assert_eq!(r.outcome, ServiceOutcome::Complete);
        assert_eq!(r.matches, want);
    }
}
