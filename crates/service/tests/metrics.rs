//! End-to-end telemetry tests: the metrics report covers the full
//! query lifecycle, drop-cancellation is counted, the slow-query log's
//! adaptive tail capture attaches a profile, reports merge, and the
//! Prometheus exposition round-trips.

use sm_graph::builder::graph_from_edges;
use sm_graph::gen::random::erdos_renyi;
use sm_graph::Graph;
use sm_runtime::metrics::prom;
use sm_runtime::Counter;
use sm_service::{MetricsConfig, QueryRequest, Service, ServiceConfig, ServiceOutcome};
use std::time::{Duration, Instant};

fn triangle() -> Graph {
    graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)])
}

/// A graph with plenty of triangles so streaming queries stay alive
/// long enough to cancel.
fn busy_graph() -> Graph {
    erdos_renyi(300, 3_000, 1, 0xBEEF)
}

/// Poll `get` until it returns true or `timeout` passes. Counters are
/// bumped by worker threads during finalization, which can land after
/// the client observes the terminal report.
fn eventually(timeout: Duration, get: impl Fn() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < timeout {
        if get() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    get()
}

#[test]
fn report_covers_query_lifecycle() {
    let svc = Service::new(busy_graph(), ServiceConfig::default());
    let n = 5;
    let mut matches = 0;
    for _ in 0..n {
        let rep = svc.run_count(triangle());
        assert_eq!(rep.outcome, ServiceOutcome::Complete);
        matches += rep.matches;
    }
    assert!(matches > 0, "workload must actually match");
    let ok = eventually(Duration::from_secs(5), || {
        svc.metrics_report().total().count() == n
    });
    let r = svc.metrics_report();
    assert!(r.enabled, "metrics default on");
    assert!(ok, "every query reaches the total histogram");
    // Per-phase histograms all saw every query.
    for (name, h) in [
        ("queue_wait", &r.queue_wait),
        ("plan", &r.plan),
        ("execute", &r.execute),
        ("result_size", &r.result_size),
    ] {
        assert_eq!(h.count(), n, "{name} histogram count");
    }
    // All runs completed: the per-outcome split puts them under
    // "complete" and nowhere else.
    for (outcome, h) in &r.total_by_outcome {
        let expect = if *outcome == "complete" { n } else { 0 };
        assert_eq!(h.count(), expect, "outcome {outcome}");
    }
    // One canonical form, submitted n times: first compile is a miss,
    // the rest hit — visible in both the counters and the window rates.
    assert_eq!(r.counters.get(Counter::QueriesAdmitted), n);
    assert_eq!(r.counters.get(Counter::PlanCacheHits), n - 1);
    assert_eq!(r.win_queries, n, "rolling window saw every query");
    assert_eq!(r.win_embeddings, matches);
    assert!(r.cache_hit_rate() > 0.5);
    assert!(r.qps() > 0.0);
    // The slow log converged to the single form's worst occurrence.
    assert_eq!(r.slow.len(), 1);
    assert!(r.slow[0].elapsed > Duration::ZERO);
    assert_eq!(r.slow[0].matches, matches / n);
    // Latency sanity: phases nest inside the total.
    let total = r.total();
    assert!(total.sum() >= r.execute.sum());
    assert!(total.quantile(0.5) >= r.execute.quantile(0.5) / 2);
}

#[test]
fn dropping_stream_counts_drop_cancel() {
    // Tiny buffer keeps the producer blocked (query alive) while the
    // client walks away.
    let svc = Service::new(
        busy_graph(),
        ServiceConfig {
            stream_capacity: 2,
            ..ServiceConfig::default()
        },
    );
    let mut stream = svc.submit(QueryRequest::streaming(triangle()));
    assert!(stream.next().is_some(), "graph has triangles");
    drop(stream);
    assert!(
        eventually(Duration::from_secs(5), || {
            svc.counters().get(Counter::QueriesCancelledByDrop) >= 1
        }),
        "abandoning a live stream is counted as a drop-cancel"
    );
    // The cancelled run still lands in the telemetry, under its own
    // outcome series.
    assert!(eventually(Duration::from_secs(5), || {
        svc.metrics_report()
            .total_by_outcome
            .iter()
            .any(|(o, h)| *o == "cancelled" && h.count() == 1)
    }));
}

#[test]
fn explicit_cancel_counts_drop_cancel() {
    let svc = Service::new(
        busy_graph(),
        ServiceConfig {
            stream_capacity: 2,
            ..ServiceConfig::default()
        },
    );
    let stream = svc.submit(QueryRequest::streaming(triangle()));
    stream.cancel();
    let rep = stream.wait();
    assert_eq!(rep.outcome, ServiceOutcome::Cancelled);
    assert!(eventually(Duration::from_secs(5), || {
        svc.counters().get(Counter::QueriesCancelledByDrop) >= 1
    }));
}

#[test]
fn disabled_metrics_report_is_inert_but_counters_live() {
    let svc = Service::new(
        busy_graph(),
        ServiceConfig {
            metrics: MetricsConfig {
                enabled: false,
                ..MetricsConfig::default()
            },
            ..ServiceConfig::default()
        },
    );
    let rep = svc.run_count(triangle());
    assert_eq!(rep.outcome, ServiceOutcome::Complete);
    let r = svc.metrics_report();
    assert!(!r.enabled);
    assert_eq!(r.total().count(), 0, "no histogram records when disabled");
    assert_eq!(r.win_queries, 0);
    assert!(r.slow.is_empty());
    // The registry counters are service state, not telemetry — they
    // stay correct either way.
    assert_eq!(r.counters.get(Counter::QueriesAdmitted), 1);
}

#[test]
fn tail_capture_attaches_profile_on_reoccurrence() {
    // Threshold zero: every query crosses it, arming its canonical
    // form — the second submission of the same form runs traced.
    let svc = Service::new(
        busy_graph(),
        ServiceConfig {
            metrics: MetricsConfig {
                slow_threshold: Some(Duration::ZERO),
                ..MetricsConfig::default()
            },
            ..ServiceConfig::default()
        },
    );
    assert_eq!(svc.run_count(triangle()).outcome, ServiceOutcome::Complete);
    assert!(
        eventually(Duration::from_secs(5), || {
            svc.metrics_report().slow.len() == 1
        }),
        "first occurrence logged"
    );
    assert!(
        svc.metrics_report().slow[0].profile.is_none(),
        "no profile yet — capture arms for the next occurrence"
    );
    assert_eq!(svc.run_count(triangle()).outcome, ServiceOutcome::Complete);
    assert!(
        eventually(Duration::from_secs(5), || {
            svc.metrics_report().slow[0].profile.is_some()
        }),
        "re-occurrence of an armed form carries a rendered profile"
    );
    let r = svc.metrics_report();
    let profile = r.slow[0].profile.as_ref().expect("profile attached");
    assert!(!profile.is_empty());
}

#[test]
fn reports_merge_like_one_service() {
    let svc_a = Service::new(busy_graph(), ServiceConfig::default());
    let svc_b = Service::new(busy_graph(), ServiceConfig::default());
    svc_a.run_count(triangle());
    svc_b.run_count(triangle());
    svc_b.run_count(triangle());
    assert!(eventually(Duration::from_secs(5), || {
        svc_a.metrics_report().total().count() == 1 && svc_b.metrics_report().total().count() == 2
    }));
    let mut merged = svc_a.metrics_report();
    merged.merge_from(&svc_b.metrics_report());
    assert_eq!(merged.total().count(), 3);
    assert_eq!(merged.win_queries, 3);
    assert_eq!(merged.counters.get(Counter::QueriesAdmitted), 3);
    // Merged extrema bracket both sides'.
    let (a, b) = (
        svc_a.metrics_report().total(),
        svc_b.metrics_report().total(),
    );
    assert_eq!(merged.total().min(), a.min().min(b.min()));
    assert_eq!(merged.total().max(), a.max().max(b.max()));
}

#[test]
fn prometheus_exposition_round_trips() {
    let svc = Service::new(busy_graph(), ServiceConfig::default());
    let n = 3;
    for _ in 0..n {
        svc.run_count(triangle());
    }
    assert!(eventually(Duration::from_secs(5), || {
        svc.metrics_report().total().count() == n
    }));
    let text = svc.metrics_report().to_prometheus();
    let samples = prom::parse(&text).expect("exposition parses back");
    let get = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .unwrap_or_else(|| panic!("sample {name} missing"))
            .value
    };
    assert_eq!(get("sm_queries_admitted"), n as f64);
    assert_eq!(get("sm_query_execute_ns_count"), n as f64);
    assert!(get("sm_rate_queries_per_sec") > 0.0);
    // The per-outcome latency family keeps its outcome label through
    // the round-trip, and its sum is real time.
    assert!(samples.iter().any(|s| {
        s.name == "sm_query_total_ns_sum"
            && s.labels
                .iter()
                .any(|(k, v)| k == "outcome" && v == "complete")
            && s.value > 0.0
    }));
}
