//! Service-level [`MatchSemantics`] behavior: plans are shared within a
//! mode but never across modes, count-only reports agree with streamed
//! materialization, top-k is exact, sample-k is rejected up front,
//! standing queries refuse non-isomorphism semantics, and the three new
//! semantics counters surface through [`Service::counters`].

use sm_graph::builder::graph_from_edges;
use sm_graph::{Graph, VertexId};
use sm_match::{Injectivity, MatchSemantics};
use sm_runtime::Counter;
use sm_service::{QueryRequest, Service, ServiceConfig, ServiceOutcome, StandingError};
use std::sync::Arc;

/// Deterministic pseudo-random data graph (same generator the main
/// service tests use).
fn random_graph(n: u32, labels: u32, m: usize, mut seed: u64) -> Graph {
    let mut step = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as u32
    };
    let vlabels: Vec<u32> = (0..n).map(|_| step() % labels).collect();
    let mut edges = Vec::new();
    let mut seen = std::collections::HashSet::new();
    while edges.len() < m {
        let a = step() % n;
        let b = step() % n;
        if a != b && seen.insert((a.min(b), a.max(b))) {
            edges.push((a, b));
        }
    }
    graph_from_edges(&vlabels, &edges)
}

fn permuted(g: &Graph, perm: &[VertexId]) -> Graph {
    let n = g.num_vertices();
    let mut labels = vec![0u32; n];
    for v in 0..n as VertexId {
        labels[perm[v as usize] as usize] = g.label(v);
    }
    let mut edges = Vec::new();
    for v in 0..n as VertexId {
        for &w in g.neighbors(v) {
            if v < w {
                edges.push((perm[v as usize], perm[w as usize]));
            }
        }
    }
    graph_from_edges(&labels, &edges)
}

fn mode(inj: Injectivity) -> MatchSemantics {
    MatchSemantics {
        injectivity: inj,
        ..MatchSemantics::default().count_only()
    }
}

#[test]
fn plans_shared_within_a_mode_never_across() {
    let g = random_graph(120, 3, 400, 0x5E11A);
    let q = graph_from_edges(&[0, 0, 1, 2], &[(0, 1), (1, 2), (0, 2), (2, 3)]);
    let svc = Service::new(g, ServiceConfig::default());

    let iso = svc
        .submit(QueryRequest::count(q.clone()).with_semantics(mode(Injectivity::Isomorphism)))
        .wait();
    assert!(!iso.cache_hit);

    // Same base query under homomorphism: a different plan, never shared.
    let homo = svc
        .submit(QueryRequest::count(q.clone()).with_semantics(mode(Injectivity::Homomorphism)))
        .wait();
    assert!(!homo.cache_hit, "modes must never share a cached plan");
    assert!(
        homo.matches >= iso.matches,
        "homomorphisms contain isomorphisms: {} >= {}",
        homo.matches,
        iso.matches
    );

    // A permuted twin in the *same* mode reuses the cached plan.
    let twin = svc
        .submit(
            QueryRequest::count(permuted(&q, &[2, 0, 3, 1]))
                .with_semantics(mode(Injectivity::Homomorphism)),
        )
        .wait();
    assert!(twin.cache_hit, "permuted twin within a mode must hit");
    assert_eq!(twin.matches, homo.matches);

    // Two entries for one base query ⇒ the cache observed a split.
    let (_, _, _, len) = svc.cache_stats();
    assert_eq!(len, 2);
    assert!(
        svc.counters().get(Counter::SemanticsCacheSplits) >= 1,
        "split counter must record the iso/homo divergence"
    );
}

#[test]
fn count_only_agrees_with_streamed_materialization() {
    let g = random_graph(120, 3, 400, 0xFACADE);
    let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]);
    let svc = Service::new(g, ServiceConfig::default());

    let mut stream = svc.submit(QueryRequest::streaming(q.clone()));
    let mut materialized = 0u64;
    while stream.next().is_some() {
        materialized += 1;
    }
    let streamed_report = stream.wait();
    assert_eq!(streamed_report.outcome, ServiceOutcome::Complete);
    assert_eq!(streamed_report.matches, materialized);

    // The count-only run reports the same total without materializing.
    let counted = svc.submit(QueryRequest::count(q)).wait();
    assert_eq!(counted.outcome, ServiceOutcome::Complete);
    assert_eq!(counted.matches, materialized);
    assert!(
        svc.counters().get(Counter::CountOnlyRuns) >= 1,
        "count-only submissions must bump the counter"
    );
}

#[test]
fn top_k_is_exact_and_counted() {
    let k6: Vec<(u32, u32)> = (0..6u32)
        .flat_map(|a| ((a + 1)..6).map(move |b| (a, b)))
        .collect();
    let g = graph_from_edges(&[0; 6], &k6);
    let q = graph_from_edges(&[0, 0], &[(0, 1)]);
    let svc = Service::new(
        g,
        ServiceConfig {
            workers: 3,
            ..ServiceConfig::default()
        },
    );
    for _ in 0..3 {
        let r = svc
            .submit(
                QueryRequest::count(q.clone()).with_semantics(MatchSemantics::default().top_k(5)),
            )
            .wait();
        assert_eq!(r.outcome, ServiceOutcome::CapHit);
        assert_eq!(r.matches, 5, "top-k must be exact across workers");
    }
    assert!(svc.counters().get(Counter::TopkEarlyExits) >= 3);

    // Top-k also streams exactly k embeddings.
    let mut stream =
        svc.submit(QueryRequest::streaming(q).with_semantics(MatchSemantics::default().top_k(4)));
    let mut seen = 0u64;
    while stream.next().is_some() {
        seen += 1;
    }
    let r = stream.wait();
    assert_eq!(r.outcome, ServiceOutcome::CapHit);
    assert_eq!(seen, 4);
}

#[test]
fn sample_k_is_rejected_before_admission() {
    let g = random_graph(60, 2, 150, 0xD1CE);
    let q = graph_from_edges(&[0, 1], &[(0, 1)]);
    let svc = Service::new(g, ServiceConfig::default());
    let r = svc
        .submit(QueryRequest::count(q).with_semantics(MatchSemantics::default().sample_k(3, 7)))
        .wait();
    assert_eq!(
        r.outcome,
        ServiceOutcome::Rejected,
        "reservoir sampling is a sequential-executor mode; the service refuses it"
    );
    assert_eq!(r.matches, 0);
}

#[test]
fn count_filter_tallies_only_accepted_embeddings() {
    let g = random_graph(100, 2, 350, 0xF117E4);
    let q = graph_from_edges(&[0, 1], &[(0, 1)]);
    let svc = Service::new(g, ServiceConfig::default());

    let mut stream = svc.submit(QueryRequest::streaming(q.clone()));
    let mut expected = 0u64;
    while let Some(emb) = stream.next() {
        if emb[0] % 2 == 0 {
            expected += 1;
        }
    }
    stream.wait();

    let r = svc
        .submit(QueryRequest::count(q).with_count_filter(Arc::new(|m: &[VertexId]| m[0] % 2 == 0)))
        .wait();
    assert_eq!(r.outcome, ServiceOutcome::Complete);
    assert_eq!(
        r.matches, expected,
        "filtered count must match client-side filtering"
    );
}

#[test]
fn standing_queries_refuse_relaxed_semantics() {
    let g = random_graph(60, 2, 150, 0xBEE);
    let q = graph_from_edges(&[0, 1], &[(0, 1)]);
    let svc = Service::new(g, ServiceConfig::default());
    assert!(matches!(
        svc.register_standing_with(&q, mode(Injectivity::Homomorphism)),
        Err(StandingError::UnsupportedSemantics)
    ));
    assert!(matches!(
        svc.register_standing_with(&q, MatchSemantics::default().top_k(3)),
        Err(StandingError::UnsupportedSemantics)
    ));
    // Default semantics go through the normal registration path.
    assert!(svc
        .register_standing_with(&q, MatchSemantics::default())
        .is_ok());
}
