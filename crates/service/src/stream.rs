//! Pull-based streaming result delivery with bounded buffering.
//!
//! A [`ResultStream`] is the client half of one submitted query: a
//! bounded embedding queue plus, eventually, a terminal
//! [`QueryReport`]. Workers push embeddings through the producer half
//! ([`StreamCore::push`]) and **block when the buffer is full** — that is
//! the backpressure: a slow consumer throttles enumeration instead of
//! growing an unbounded buffer. Producers never deadlock on an absent
//! consumer because every blocking wait re-checks the run's cancellation
//! token and the consumer-dropped flag; dropping the stream cancels the
//! query, which unblocks and drains everything within a poll interval.
//!
//! The terminal report carries one of the five service outcomes
//! ([`ServiceOutcome`]) along with the partial counts accumulated up to
//! that point, so a deadline kill still tells the client how far it got.

use sm_graph::VertexId;
use sm_runtime::metrics::Histogram;
use sm_runtime::{CancelReason, CancelToken};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a blocked producer sleeps between cancellation re-checks.
/// Bounds the time a deadline/cancel takes to unblock a full buffer.
const PUSH_RECHECK: Duration = Duration::from_millis(20);

/// Why a query finished — the terminal state of every [`ResultStream`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceOutcome {
    /// Enumeration ran to completion; counts are exact.
    Complete,
    /// The per-query embedding cap was hit; counts equal the cap.
    CapHit,
    /// The per-query deadline expired; counts are partial.
    Deadline,
    /// The client cancelled (explicitly or by dropping the stream).
    Cancelled,
    /// Admission control refused the query; nothing ran.
    Rejected,
}

impl ServiceOutcome {
    /// Stable lowercase name (table/JSONL friendly).
    pub fn name(self) -> &'static str {
        match self {
            ServiceOutcome::Complete => "complete",
            ServiceOutcome::CapHit => "cap_hit",
            ServiceOutcome::Deadline => "deadline",
            ServiceOutcome::Cancelled => "cancelled",
            ServiceOutcome::Rejected => "rejected",
        }
    }

    /// Severity rank for merging the outcomes of fanned-out sub-queries:
    /// `Complete < CapHit < Deadline < Cancelled < Rejected`. A router
    /// that scatters one query across shards reports the worst per-shard
    /// outcome, so a deadline on any shard marks the merged counts
    /// partial.
    pub fn severity(self) -> u8 {
        match self {
            ServiceOutcome::Complete => 0,
            ServiceOutcome::CapHit => 1,
            ServiceOutcome::Deadline => 2,
            ServiceOutcome::Cancelled => 3,
            ServiceOutcome::Rejected => 4,
        }
    }

    /// The more severe of two outcomes (see
    /// [`severity`](ServiceOutcome::severity)).
    pub fn worst(self, other: ServiceOutcome) -> ServiceOutcome {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }
}

/// Terminal report of one query: the outcome plus whatever was counted
/// before the run ended.
#[derive(Clone, Debug)]
pub struct QueryReport {
    /// Why the query finished.
    pub outcome: ServiceOutcome,
    /// Embeddings counted (exact across workers, even at the cap).
    pub matches: u64,
    /// Search-tree nodes visited.
    pub recursions: u64,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Plan-compile time in nanoseconds (0 on a cache hit).
    pub plan_build_ns: u64,
    /// Wall-clock time from admission to the terminal state.
    pub elapsed: Duration,
}

struct StreamInner {
    buf: VecDeque<Vec<VertexId>>,
    report: Option<QueryReport>,
    consumer_gone: bool,
    /// When the terminal report was installed — the start of the drain
    /// phase the metrics layer measures.
    finished_at: Option<Instant>,
    /// Metrics histogram receiving the drain duration once the consumer
    /// reaches the terminal `None` (absent when metrics are disabled).
    drain_hist: Option<Arc<Histogram>>,
}

/// Shared state between the service's workers (producers) and one
/// [`ResultStream`] (the consumer).
pub(crate) struct StreamCore {
    inner: Mutex<StreamInner>,
    /// Consumer waits here for an embedding or the terminal report.
    avail: Condvar,
    /// Producers wait here for buffer space.
    space: Condvar,
    capacity: usize,
    /// The run's cancellation token: producers re-check it while blocked
    /// so a deadline or cancel never strands them on a full buffer.
    cancel: CancelToken,
    /// Set by [`ResultStream::cancel`] or by dropping the stream —
    /// distinguishes a client abort from a cap kill on the shared token.
    pub(crate) client_cancelled: AtomicBool,
}

impl StreamCore {
    /// `drain_hist` is the metrics histogram the drain duration is
    /// recorded into when the consumer reaches the terminal `None`
    /// (`None` when metrics are disabled) — taken at construction so the
    /// submit path pays no extra lock to install it.
    pub(crate) fn new(
        capacity: usize,
        cancel: CancelToken,
        drain_hist: Option<Arc<Histogram>>,
    ) -> Arc<Self> {
        Arc::new(StreamCore {
            inner: Mutex::new(StreamInner {
                buf: VecDeque::new(),
                report: None,
                consumer_gone: false,
                finished_at: None,
                drain_hist,
            }),
            avail: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
            cancel,
            client_cancelled: AtomicBool::new(false),
        })
    }

    /// Deliver one embedding, blocking while the buffer is full. Returns
    /// `false` when the embedding was dropped instead (consumer gone or
    /// client cancelled) — the caller may stop producing.
    pub(crate) fn push(&self, embedding: Vec<VertexId>) -> bool {
        let mut inner = self.inner.lock().expect("stream poisoned");
        loop {
            if inner.consumer_gone || self.client_cancelled.load(Ordering::Relaxed) {
                return false;
            }
            if inner.buf.len() < self.capacity {
                inner.buf.push_back(embedding);
                self.avail.notify_one();
                return true;
            }
            // Deadline kills drop further deliveries (partial results are
            // partial); cap kills keep delivering — every within-cap match
            // must reach the client for counts to agree.
            if self.cancel.poll() == Some(CancelReason::Deadline) {
                return false;
            }
            let (guard, _) = self
                .space
                .wait_timeout(inner, PUSH_RECHECK)
                .expect("stream poisoned");
            inner = guard;
        }
    }

    /// Install the terminal report and wake everyone.
    pub(crate) fn finish(&self, report: QueryReport) {
        let mut inner = self.inner.lock().expect("stream poisoned");
        inner.report = Some(report);
        inner.finished_at = Some(Instant::now());
        self.avail.notify_all();
        self.space.notify_all();
    }
}

/// The producer half of an externally-driven [`ResultStream`], created
/// by [`result_channel`]. This is the router hook of the sharded
/// serving tier: a gather thread that merges per-shard streams pushes
/// the merged embeddings through a `ResultSink` and the client consumes
/// an ordinary `ResultStream` with the full service semantics —
/// backpressure, drop-to-cancel, terminal [`QueryReport`].
pub struct ResultSink {
    core: Arc<StreamCore>,
    /// The run's cancellation token, shared with the stream. The
    /// producer may cancel it (e.g. on a cross-shard cap hit) and poll
    /// it for deadline kills.
    pub cancel: CancelToken,
}

impl ResultSink {
    /// Deliver one embedding, blocking while the buffer is full.
    /// Returns `false` when the embedding was dropped instead (consumer
    /// gone, client cancelled, or deadline) — the producer should stop.
    pub fn push(&self, embedding: Vec<VertexId>) -> bool {
        self.core.push(embedding)
    }

    /// Install the terminal report and wake the consumer. Call exactly
    /// once; the stream yields buffered embeddings first, then `None`.
    pub fn finish(&self, report: QueryReport) {
        self.core.finish(report);
    }

    /// Whether the client aborted (cancelled explicitly or dropped the
    /// stream). Producers of count-only queries never push, so they
    /// poll this instead of learning it from a failed `push`.
    pub fn client_cancelled(&self) -> bool {
        self.core.client_cancelled.load(Ordering::Relaxed)
            || self
                .core
                .inner
                .lock()
                .expect("stream poisoned")
                .consumer_gone
    }
}

/// A producer/consumer pair over one bounded stream: the consumer half
/// behaves exactly like a service-issued [`ResultStream`] (dropping it
/// cancels `cancel` with [`CancelReason::Stopped`]), while the producer
/// half is driven externally — by a sharded router's gather thread
/// rather than by this service's own workers.
pub fn result_channel(capacity: usize, cancel: CancelToken) -> (ResultSink, ResultStream) {
    let core = StreamCore::new(capacity, cancel.clone(), None);
    (
        ResultSink {
            core: core.clone(),
            cancel,
        },
        ResultStream { core },
    )
}

/// The client half of one submitted query: pull embeddings with
/// [`Iterator::next`], then read the terminal [`QueryReport`].
/// Dropping the stream cancels the query.
pub struct ResultStream {
    core: Arc<StreamCore>,
}

impl ResultStream {
    pub(crate) fn new(core: Arc<StreamCore>) -> Self {
        ResultStream { core }
    }

    /// A stream that is born terminal (admission rejection).
    pub(crate) fn terminal(report: QueryReport) -> Self {
        let core = StreamCore::new(1, CancelToken::new(), None);
        core.finish(report);
        ResultStream { core }
    }

    /// The terminal report, once [`Iterator::next`] has returned
    /// `None`. `None` while the query is still running or the buffer
    /// still holds embeddings.
    pub fn report(&self) -> Option<QueryReport> {
        let inner = self.core.inner.lock().expect("stream poisoned");
        if inner.buf.is_empty() {
            inner.report.clone()
        } else {
            None
        }
    }

    /// Abort the query. Enumeration stops at the next poll; the stream
    /// still terminates with a report (outcome
    /// [`ServiceOutcome::Cancelled`]).
    pub fn cancel(&self) {
        self.core.client_cancelled.store(true, Ordering::Relaxed);
        self.core.cancel.cancel(CancelReason::Stopped);
        // Unblock producers stuck on a full buffer so they observe the flag.
        self.core.space.notify_all();
    }

    /// Drain the stream (discarding any remaining embeddings) and return
    /// the terminal report.
    pub fn wait(mut self) -> QueryReport {
        while self.next().is_some() {}
        self.report()
            .expect("next() returned None without a report")
    }
}

impl Iterator for ResultStream {
    type Item = Vec<VertexId>;

    /// Pull the next embedding (client vertex ids, indexed by query
    /// vertex), blocking while the buffer is empty and the query still
    /// runs. `None` means the query reached a terminal state and the
    /// buffer is drained — [`report`](ResultStream::report) is now
    /// available. Count-only queries yield no embeddings, just the
    /// terminal `None`.
    fn next(&mut self) -> Option<Vec<VertexId>> {
        let mut inner = self.core.inner.lock().expect("stream poisoned");
        loop {
            if let Some(e) = inner.buf.pop_front() {
                self.core.space.notify_one();
                return Some(e);
            }
            if inner.report.is_some() {
                // First terminal read closes the drain phase.
                if let Some(hist) = inner.drain_hist.take() {
                    if let Some(at) = inner.finished_at {
                        hist.record(at.elapsed().as_nanos() as u64);
                    }
                }
                return None;
            }
            inner = self.core.avail.wait(inner).expect("stream poisoned");
        }
    }
}

impl Drop for ResultStream {
    fn drop(&mut self) {
        let terminal = {
            let mut inner = self.core.inner.lock().expect("stream poisoned");
            inner.consumer_gone = true;
            inner.report.is_some()
        };
        if !terminal {
            // Abandoning a live query cancels it — don't burn workers on
            // results nobody will read.
            self.cancel();
        } else {
            self.core.space.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn report(outcome: ServiceOutcome) -> QueryReport {
        QueryReport {
            outcome,
            matches: 0,
            recursions: 0,
            cache_hit: false,
            plan_build_ns: 0,
            elapsed: Duration::ZERO,
        }
    }

    #[test]
    fn push_then_pull_then_terminal() {
        let core = StreamCore::new(4, CancelToken::new(), None);
        assert!(core.push(vec![1, 2]));
        assert!(core.push(vec![3, 4]));
        core.finish(report(ServiceOutcome::Complete));
        let mut s = ResultStream::new(core);
        assert_eq!(s.next(), Some(vec![1, 2]));
        assert_eq!(s.next(), Some(vec![3, 4]));
        assert_eq!(s.next(), None);
        assert_eq!(s.report().unwrap().outcome, ServiceOutcome::Complete);
    }

    #[test]
    fn full_buffer_blocks_until_consumed() {
        let core = StreamCore::new(1, CancelToken::new(), None);
        assert!(core.push(vec![0]));
        let producer = {
            let core = core.clone();
            thread::spawn(move || core.push(vec![1]))
        };
        let mut s = ResultStream::new(core.clone());
        assert_eq!(s.next(), Some(vec![0]));
        assert!(producer.join().unwrap(), "push proceeds once space frees");
        assert_eq!(s.next(), Some(vec![1]));
        core.finish(report(ServiceOutcome::Complete));
        assert_eq!(s.next(), None);
    }

    #[test]
    fn dropping_the_stream_cancels_and_unblocks_producers() {
        let token = CancelToken::new();
        let core = StreamCore::new(1, token.clone(), None);
        assert!(core.push(vec![0]));
        let producer = {
            let core = core.clone();
            thread::spawn(move || core.push(vec![1]))
        };
        let s = ResultStream::new(core.clone());
        drop(s);
        assert!(!producer.join().unwrap(), "push fails after consumer drop");
        assert_eq!(token.cancelled(), Some(CancelReason::Stopped));
        assert!(core.client_cancelled.load(Ordering::Relaxed));
    }

    #[test]
    fn deadline_cancel_unblocks_a_full_buffer() {
        let token = CancelToken::new();
        let core = StreamCore::new(1, token.clone(), None);
        assert!(core.push(vec![0]));
        token.cancel(CancelReason::Deadline);
        assert!(!core.push(vec![1]), "blocked push observes the deadline");
    }

    #[test]
    fn cap_cancel_keeps_delivering_within_cap_matches() {
        let token = CancelToken::new();
        let core = StreamCore::new(1, token.clone(), None);
        // A cap kill (Stopped, not client-initiated) must not drop
        // embeddings the engine already counted as within-cap.
        token.cancel(CancelReason::Stopped);
        assert!(core.push(vec![7]));
        let mut s = ResultStream::new(core.clone());
        assert_eq!(s.next(), Some(vec![7]));
        core.finish(report(ServiceOutcome::CapHit));
        assert_eq!(s.next(), None);
    }

    #[test]
    fn rejected_stream_is_born_terminal() {
        let mut s = ResultStream::terminal(report(ServiceOutcome::Rejected));
        assert_eq!(s.next(), None);
        assert_eq!(s.report().unwrap().outcome, ServiceOutcome::Rejected);
    }

    #[test]
    fn outcome_severity_merge() {
        use ServiceOutcome::*;
        assert_eq!(Complete.worst(Complete), Complete);
        assert_eq!(Complete.worst(CapHit), CapHit);
        assert_eq!(Deadline.worst(CapHit), Deadline);
        assert_eq!(Cancelled.worst(Rejected), Rejected);
        assert_eq!(Rejected.worst(Complete), Rejected);
    }

    #[test]
    fn result_channel_round_trip() {
        let (sink, mut stream) = result_channel(2, CancelToken::new());
        assert!(sink.push(vec![1, 2]));
        assert!(!sink.client_cancelled());
        sink.finish(report(ServiceOutcome::Complete));
        assert_eq!(stream.next(), Some(vec![1, 2]));
        assert_eq!(stream.next(), None);
        assert_eq!(stream.report().unwrap().outcome, ServiceOutcome::Complete);
    }

    #[test]
    fn result_channel_drop_cancels_producer_side() {
        let token = CancelToken::new();
        let (sink, stream) = result_channel(1, token.clone());
        drop(stream);
        assert!(sink.client_cancelled());
        assert!(!sink.push(vec![0]), "push fails after consumer drop");
        assert_eq!(token.cancelled(), Some(CancelReason::Stopped));
    }

    #[test]
    fn wait_drains_and_reports() {
        let core = StreamCore::new(4, CancelToken::new(), None);
        assert!(core.push(vec![1]));
        core.finish(report(ServiceOutcome::Complete));
        let s = ResultStream::new(core);
        assert_eq!(s.wait().outcome, ServiceOutcome::Complete);
    }
}
