//! Sharded LRU plan cache keyed by `(data-graph epoch, canonical query
//! fingerprint, pipeline/config fingerprint)`.
//!
//! Two clients submitting the *same query up to a vertex-id permutation*
//! share one compiled [`QueryPlan`]: the key's query component is the
//! canonical-form hash from [`sm_graph::canon`], so any relabeling of an
//! isomorphic query lands on the same slot. Hashes alone are not trusted —
//! a lookup verifies the stored form's full canonical **code** against the
//! probe's before reporting a hit, so a 64-bit collision degrades into a
//! miss, never into executing the wrong plan.
//!
//! Entries pin `Arc<QueryPlan>` (plans own their query graph, so they are
//! self-contained) plus the canonical form the plan was compiled under;
//! the service composes the stored labeling with the submitting client's
//! to remap delivered embeddings back to the client's vertex ids.
//!
//! The cache is sharded by key hash; each shard is an independent
//! mutex-protected map with its own LRU clock, so concurrent lookups from
//! the service's submission path rarely contend. Hit/miss/eviction totals
//! are plain atomics, exported through the service into `sm-trace`'s
//! counter registry (`plan_cache_hits` / `plan_cache_misses` /
//! `plan_cache_evictions`).

use sm_graph::canon::CanonicalForm;
use sm_graph::Label;
use sm_match::QueryPlan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: every component that affects what plan gets compiled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Data-graph epoch — bumped by [`crate::Service::swap_graph`], so
    /// plans compiled against a replaced graph can never be returned.
    pub epoch: u64,
    /// Canonical-form hash of the *base* query (before the semantics
    /// word is appended) — all semantics modes of one query share this
    /// component, so they shard together and splits are detectable.
    pub query: u64,
    /// Fingerprint of the pipeline + match-config knobs that are folded
    /// into a compiled plan (filter, order, method, vf2++ rule,
    /// failing sets, intersection kernel).
    pub config: u64,
    /// [`MatchSemantics`](sm_match::MatchSemantics) fingerprint. Plans
    /// are shared within one semantics mode (a permuted twin of an iso
    /// query hits the iso plan) but never across modes — a homomorphism
    /// plan omits injectivity machinery an isomorphism run requires.
    pub semantics: u64,
}

/// One cached compilation: the plan (or the verdict that the query is
/// unsatisfiable on this graph — empty candidate sets are worth caching
/// too) and the canonical form of the query it was compiled from.
pub struct CachedPlan {
    /// The compiled plan; `None` when filtering proved the query has no
    /// match on this data graph (a negative-result cache entry).
    pub plan: Option<Arc<QueryPlan>>,
    /// Canonical form of the plan's own query — composed with a
    /// submitting client's form to remap embeddings.
    pub form: CanonicalForm,
    /// The combo the self-tuning planner chose for this entry (`None`
    /// for fixed-pipeline services). Completed runs of the entry fold
    /// their counters back into the planner's feedback store under this
    /// combo, so recompilations (eviction, epoch bump) re-rank with
    /// observed costs.
    pub combo: Option<sm_planner::PlanCombo>,
}

struct Entry {
    cached: Arc<CachedPlan>,
    /// Last-touch tick for LRU eviction (global clock, monotonically
    /// increasing across shards).
    tick: u64,
}

struct Shard {
    map: HashMap<PlanKey, Entry>,
}

/// Sharded LRU cache of compiled plans. `capacity == 0` disables caching
/// entirely (every lookup misses, inserts are dropped).
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    splits: AtomicU64,
}

impl PlanCache {
    /// A cache holding up to `capacity` plans across `shards` shards
    /// (shard count is clamped to at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        PlanCache {
            per_shard: capacity.div_ceil(shards),
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                    })
                })
                .collect(),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            splits: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &PlanKey) -> &Mutex<Shard> {
        // Mix the epoch/query/config components so epochs don't collapse
        // onto one shard. `semantics` is deliberately left out: all modes
        // of one base query land on the same shard, which is what lets
        // `insert` detect a semantics split with a single-shard scan.
        let mut state = key.query ^ key.config.rotate_left(21) ^ key.epoch.rotate_left(42);
        let h = sm_runtime::rng::splitmix64(&mut state);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Look up a plan for `key`, verifying that the stored entry's full
    /// canonical code equals `code` (hash-collision safety). Counts a hit
    /// or a miss either way.
    pub fn lookup(&self, key: &PlanKey, code: &[u64]) -> Option<Arc<CachedPlan>> {
        if self.per_shard == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard_of(key).lock().expect("plan cache poisoned");
        let found = match shard.map.get_mut(key) {
            Some(e) if e.cached.form.code == code => {
                e.tick = self.clock.fetch_add(1, Ordering::Relaxed);
                Some(e.cached.clone())
            }
            _ => None,
        };
        drop(shard);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert a compiled plan. A different-code occupant of the same key
    /// (a 64-bit collision) is replaced — at most one plan per key, and
    /// later lookups of the displaced query simply miss again. When the
    /// shard is full, its least-recently-used entry is evicted.
    ///
    /// When the shard already holds the same base query + config under a
    /// *different* semantics mode, a **semantics split** is counted: the
    /// cache is now storing more than one plan for one query shape because
    /// clients ask for it under several match semantics.
    pub fn insert(&self, key: PlanKey, cached: Arc<CachedPlan>) {
        if self.per_shard == 0 {
            return;
        }
        let mut shard = self.shard_of(&key).lock().expect("plan cache poisoned");
        if shard.map.keys().any(|k| {
            k.epoch == key.epoch
                && k.query == key.query
                && k.config == key.config
                && k.semantics != key.semantics
        }) {
            self.splits.fetch_add(1, Ordering::Relaxed);
        }
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard {
            if let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k)
            {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(key, Entry { cached, tick });
    }

    /// Scoped invalidation after an **in-place graph update** (as opposed
    /// to a wholesale swap): entries compiled under `old_epoch` whose
    /// query label set is disjoint from the update's `affected_labels`
    /// (sorted) stay valid — no candidate vertex of theirs gained or lost
    /// an edge, changed label, or was added/removed — and are re-keyed to
    /// `new_epoch`. Intersecting entries (and entries from any other
    /// epoch) are evicted. Returns `(retained, evicted)`.
    ///
    /// The label set of a cached entry is read from its canonical code
    /// (`[n, m, labels…]` — see [`sm_graph::canon`]), so no query graph
    /// needs to be kept around.
    pub fn retarget_epoch(
        &self,
        old_epoch: u64,
        new_epoch: u64,
        affected_labels: &[Label],
    ) -> (usize, usize) {
        if self.per_shard == 0 {
            return (0, 0);
        }
        // Drain survivors first: the epoch is part of the shard hash, so a
        // re-keyed entry generally lands in a *different* shard.
        let mut moved = Vec::new();
        let mut evicted = 0usize;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("plan cache poisoned");
            let map = std::mem::take(&mut shard.map);
            for (k, e) in map {
                let keep =
                    k.epoch == old_epoch && labels_disjoint(&e.cached.form.code, affected_labels);
                if keep {
                    moved.push((
                        PlanKey {
                            epoch: new_epoch,
                            ..k
                        },
                        e,
                    ));
                } else {
                    evicted += 1;
                }
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        }
        let retained = moved.len();
        for (k, e) in moved {
            let mut shard = self.shard_of(&k).lock().expect("plan cache poisoned");
            // Respect per-shard capacity even though re-sharding may pile
            // survivors onto one shard.
            while shard.map.len() >= self.per_shard {
                let victim = shard
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.tick)
                    .map(|(k, _)| *k)
                    .expect("non-empty shard");
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            shard.map.insert(k, e);
        }
        (retained, evicted)
    }

    /// Drop every entry whose epoch differs from `keep_epoch` — called
    /// after a data-graph swap so stale plans free their memory promptly
    /// instead of waiting to age out. Dropped entries count as evictions.
    pub fn purge_other_epochs(&self, keep_epoch: u64) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("plan cache poisoned");
            let before = shard.map.len();
            shard.map.retain(|k, _| k.epoch == keep_epoch);
            let dropped = (before - shard.map.len()) as u64;
            if dropped > 0 {
                self.evictions.fetch_add(dropped, Ordering::Relaxed);
            }
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan cache poisoned").map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that returned a cached plan.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing (or failed code verification).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by LRU pressure or epoch purges.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Inserts that found the same base query + config cached under a
    /// different semantics mode (`semantics_cache_splits`).
    pub fn splits(&self) -> u64 {
        self.splits.load(Ordering::Relaxed)
    }
}

/// Whether the query labels embedded in a canonical code (`[n, m,
/// labels…]`) are disjoint from a sorted label slice.
fn labels_disjoint(code: &[u64], affected: &[Label]) -> bool {
    let n = code[0] as usize;
    code[2..2 + n]
        .iter()
        .all(|&l| affected.binary_search(&(l as Label)).is_err())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_graph::builder::graph_from_edges;
    use sm_graph::canon::canonical_form;

    fn entry_for(labels: &[u32], edges: &[(u32, u32)]) -> (Arc<CachedPlan>, Vec<u64>) {
        let g = graph_from_edges(labels, edges);
        let form = canonical_form(&g);
        let code = form.code.clone();
        (
            Arc::new(CachedPlan {
                plan: None,
                form,
                combo: None,
            }),
            code,
        )
    }

    fn key(epoch: u64, query: u64, config: u64) -> PlanKey {
        PlanKey {
            epoch,
            query,
            config,
            semantics: 0,
        }
    }

    #[test]
    fn hit_requires_code_match() {
        let cache = PlanCache::new(8, 2);
        let (e, code) = entry_for(&[0, 1], &[(0, 1)]);
        let k = key(0, e.form.hash, 7);
        assert!(cache.lookup(&k, &code).is_none());
        cache.insert(k, e.clone());
        assert!(cache.lookup(&k, &code).is_some());
        // same key, different code (simulated collision): miss, not a wrong hit
        let (other, other_code) = entry_for(&[0, 1, 1], &[(0, 1), (1, 2)]);
        assert_ne!(other_code, code);
        assert!(cache.lookup(&k, &other_code).is_none());
        drop(other);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let cache = PlanCache::new(2, 1);
        let (e, code) = entry_for(&[0, 0], &[(0, 1)]);
        cache.insert(key(0, 1, 0), e.clone());
        cache.insert(key(0, 2, 0), e.clone());
        // touch key 1 so key 2 is the LRU victim
        assert!(cache.lookup(&key(0, 1, 0), &code).is_some());
        cache.insert(key(0, 3, 0), e.clone());
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(&key(0, 1, 0), &code).is_some());
        assert!(cache.lookup(&key(0, 2, 0), &code).is_none());
        assert!(cache.lookup(&key(0, 3, 0), &code).is_some());
    }

    #[test]
    fn epoch_purge_drops_stale_plans() {
        let cache = PlanCache::new(8, 4);
        let (e, code) = entry_for(&[0, 0], &[(0, 1)]);
        cache.insert(key(0, 1, 0), e.clone());
        cache.insert(key(1, 1, 0), e.clone());
        assert_eq!(cache.len(), 2);
        cache.purge_other_epochs(1);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&key(0, 1, 0), &code).is_none());
        assert!(cache.lookup(&key(1, 1, 0), &code).is_some());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn retarget_moves_disjoint_entries_and_evicts_touched_ones() {
        let cache = PlanCache::new(16, 4);
        // Labels {0, 1} and labels {2, 3}.
        let (low, low_code) = entry_for(&[0, 1], &[(0, 1)]);
        let (high, high_code) = entry_for(&[2, 3], &[(0, 1)]);
        cache.insert(key(3, low.form.hash, 9), low.clone());
        cache.insert(key(3, high.form.hash, 9), high.clone());
        // A stale entry from an even older epoch is dropped outright.
        cache.insert(key(1, low.form.hash, 9), low.clone());
        let (retained, evicted) = cache.retarget_epoch(3, 4, &[1, 5]);
        assert_eq!((retained, evicted), (1, 2));
        assert_eq!(cache.evictions(), 2);
        // The label-disjoint plan survives under the new epoch only.
        assert!(cache
            .lookup(&key(4, high.form.hash, 9), &high_code)
            .is_some());
        assert!(cache
            .lookup(&key(3, high.form.hash, 9), &high_code)
            .is_none());
        assert!(cache.lookup(&key(4, low.form.hash, 9), &low_code).is_none());
    }

    #[test]
    fn retarget_respects_shard_capacity() {
        let cache = PlanCache::new(1, 1);
        let (e, code) = entry_for(&[4, 4], &[(0, 1)]);
        cache.insert(key(0, e.form.hash, 0), e.clone());
        let (retained, _) = cache.retarget_epoch(0, 1, &[0]);
        assert_eq!(retained, 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&key(1, e.form.hash, 0), &code).is_some());
    }

    #[test]
    fn semantics_split_is_counted_and_modes_never_share() {
        use sm_match::MatchSemantics;
        let cache = PlanCache::new(8, 4);
        let g = graph_from_edges(&[0, 1], &[(0, 1)]);
        let iso = MatchSemantics::isomorphism();
        let homo = MatchSemantics::homomorphism();
        let base = canonical_form(&g);
        let base_hash = base.hash;
        let iso_form = base.clone().with_semantics(iso.fingerprint());
        let homo_form = canonical_form(&g).with_semantics(homo.fingerprint());
        let iso_code = iso_form.code.clone();
        let homo_code = homo_form.code.clone();
        let k_iso = PlanKey {
            epoch: 0,
            query: base_hash,
            config: 7,
            semantics: iso.fingerprint(),
        };
        let k_homo = PlanKey {
            semantics: homo.fingerprint(),
            ..k_iso
        };
        cache.insert(
            k_iso,
            Arc::new(CachedPlan {
                plan: None,
                form: iso_form,
                combo: None,
            }),
        );
        assert_eq!(cache.splits(), 0);
        // The homo probe never hits the iso entry (different key *and*
        // different code), even though the base query is identical.
        assert!(cache.lookup(&k_homo, &homo_code).is_none());
        cache.insert(
            k_homo,
            Arc::new(CachedPlan {
                plan: None,
                form: homo_form,
                combo: None,
            }),
        );
        assert_eq!(cache.splits(), 1);
        // Both modes now resolve independently.
        assert!(cache.lookup(&k_iso, &iso_code).is_some());
        assert!(cache.lookup(&k_homo, &homo_code).is_some());
        // Re-inserting the same mode is not a split.
        cache.insert(
            k_iso,
            Arc::new(CachedPlan {
                plan: None,
                form: canonical_form(&g).with_semantics(iso.fingerprint()),
                combo: None,
            }),
        );
        assert_eq!(cache.splits(), 2); // homo entry still present → counted again
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0, 4);
        let (e, code) = entry_for(&[0, 0], &[(0, 1)]);
        let k = key(0, e.form.hash, 0);
        cache.insert(k, e.clone());
        assert!(cache.lookup(&k, &code).is_none());
        assert!(cache.is_empty());
    }
}
