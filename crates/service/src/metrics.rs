//! Always-on service telemetry: latency histograms per phase and
//! terminal outcome, rolling-window rates, a slow-query log with
//! adaptive tail capture, and a coherent exposition snapshot
//! ([`MetricsReport`]) rendered as Prometheus-style text or folded into
//! `sm-bench`'s JSON.
//!
//! Where `sm-trace` profiles one run deeply on request, this layer
//! watches *every* query cheaply: the per-query cost is a handful of
//! relaxed atomic increments at submit/activate/finalize — never
//! per-embedding, never inside enumeration — so it defaults **on**
//! ([`MetricsConfig::enabled`]). The `experiments metrics-overhead` CI
//! gate holds the enabled path within 2% of a disabled build.
//!
//! The per-canonical-form statistics collected here (slow-query log
//! keyed by canonical fingerprint, counter deltas per query) are the
//! observed-behavior feedstock the ROADMAP's self-tuning planner item
//! calls for: the paper's central result is that no filter/order/kernel
//! combination dominates, so a serving tier must *measure* per workload.

use crate::stream::ServiceOutcome;
use sm_runtime::metrics::prom;
use sm_runtime::metrics::registry::{FamilySnapshot, Kind, SeriesSnapshot, Value};
use sm_runtime::metrics::{HistSnapshot, Histogram, Registry, RollingWindow, WINDOW_SECS};
use sm_runtime::trace::{Counter, CounterBlock};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Telemetry configuration of a [`crate::Service`].
#[derive(Clone)]
pub struct MetricsConfig {
    /// Record per-query telemetry (histograms, windows, slow log).
    /// Defaults to `true` — the disabled path exists for overhead
    /// measurement, not as the recommended state.
    pub enabled: bool,
    /// Slow-query log capacity: the N slowest canonical forms retained.
    pub slow_log_capacity: usize,
    /// Latency threshold arming adaptive tail capture: when a query's
    /// total latency crosses it, the service compiles the *next*
    /// occurrence of the same canonical form with a full `sm-trace`
    /// profile attached and stores the rendered tree in the slow-query
    /// log. `None` disables capture (the slow log itself stays on).
    pub slow_threshold: Option<Duration>,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            enabled: true,
            slow_log_capacity: 16,
            slow_threshold: None,
        }
    }
}

/// The five terminal outcomes in severity order — index with
/// [`ServiceOutcome::severity`].
const OUTCOMES: [ServiceOutcome; 5] = [
    ServiceOutcome::Complete,
    ServiceOutcome::CapHit,
    ServiceOutcome::Deadline,
    ServiceOutcome::Cancelled,
    ServiceOutcome::Rejected,
];

/// One slow-query log entry: the worst observed occurrence of one
/// canonical query form.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// Canonical-form fingerprint (the plan-cache key component) — ties
    /// the entry to a query *shape*, not one submission.
    pub canon_hash: u64,
    /// Terminal outcome of the worst occurrence.
    pub outcome: ServiceOutcome,
    /// Total latency (submit → terminal) of the worst occurrence.
    pub elapsed: Duration,
    /// Matches counted.
    pub matches: u64,
    /// Search-tree nodes visited.
    pub recursions: u64,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Plan-compile nanoseconds (0 on a cache hit).
    pub plan_build_ns: u64,
    /// Plan choice summary (method + adaptive flag).
    pub plan: String,
    /// Merged registry-counter deltas of the query's own execution.
    pub counters: CounterBlock,
    /// Rendered `sm-trace` span tree from adaptive tail capture, once
    /// a re-occurrence ran traced.
    pub profile: Option<String>,
}

/// Bounded slow-query log: one entry per canonical form, keeping each
/// form's worst occurrence, evicting the fastest entry at capacity.
struct SlowLog {
    entries: Vec<SlowQuery>,
    capacity: usize,
}

impl SlowLog {
    fn note(&mut self, q: SlowQuery) {
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.canon_hash == q.canon_hash)
        {
            // A fresh profile is worth attaching even when this
            // occurrence was faster than the recorded worst.
            if q.profile.is_some() && existing.profile.is_none() {
                existing.profile = q.profile.clone();
            }
            if q.elapsed <= existing.elapsed {
                // Order unchanged: skip the re-sort. This is the common
                // case once the log converges — every query at or above
                // the floor but not beating its own form's worst.
                return;
            }
            let profile = existing.profile.take();
            *existing = q;
            existing.profile = existing.profile.take().or(profile);
        } else {
            self.entries.push(q);
        }
        self.entries.sort_by_key(|q| std::cmp::Reverse(q.elapsed));
        self.entries.truncate(self.capacity.max(1));
    }
}

struct MetricsInner {
    cfg: MetricsConfig,
    start: Instant,
    queue_wait: Arc<Histogram>,
    plan: Arc<Histogram>,
    execute: Arc<Histogram>,
    drain: Arc<Histogram>,
    result_size: Arc<Histogram>,
    /// Total submit→terminal latency, one histogram per outcome
    /// (indexed by severity).
    total: [Arc<Histogram>; 5],
    win_queries: RollingWindow,
    win_embeddings: RollingWindow,
    win_updates: RollingWindow,
    win_lookups: RollingWindow,
    win_hits: RollingWindow,
    slow: Mutex<SlowLog>,
    /// Lock-free admission floor for the slow log: the fastest recorded
    /// entry's elapsed nanoseconds (0 while the log is empty). A query
    /// faster than every logged entry cannot change the log — at worst
    /// it would no-op against its own form's recorded worst — so the
    /// steady-state terminal path compares one relaxed load and skips
    /// the log entirely (no `SlowQuery` allocation, no mutex).
    slow_floor: AtomicU64,
    /// Canonical forms armed for tail capture: the next submission of
    /// one of these compiles a traced plan.
    armed: Mutex<HashSet<u64>>,
}

/// The service's telemetry handle. Mirrors `Trace`'s representation —
/// `None` when disabled, so every touch point costs one well-predicted
/// branch in the disabled state. Clone shares the same sink.
#[derive(Clone)]
pub struct ServiceMetrics(Option<Arc<MetricsInner>>);

impl ServiceMetrics {
    /// Build per `cfg` (a disabled handle when `cfg.enabled` is false).
    pub fn new(cfg: MetricsConfig) -> Self {
        if !cfg.enabled {
            return ServiceMetrics(None);
        }
        let registry = Registry::new();
        let h = |name: &str| registry.histogram(name, &[]);
        let total =
            OUTCOMES.map(|o| registry.histogram("query_total_ns", &[("outcome", o.name())]));
        // All windows share one clock anchor, so the observe paths read
        // the clock once and feed every window via `record_at`.
        let start = Instant::now();
        ServiceMetrics(Some(Arc::new(MetricsInner {
            queue_wait: h("query_queue_wait_ns"),
            plan: h("query_plan_ns"),
            execute: h("query_execute_ns"),
            drain: h("query_drain_ns"),
            result_size: h("query_result_size"),
            total,
            win_queries: RollingWindow::anchored(start),
            win_embeddings: RollingWindow::anchored(start),
            win_updates: RollingWindow::anchored(start),
            win_lookups: RollingWindow::anchored(start),
            win_hits: RollingWindow::anchored(start),
            slow: Mutex::new(SlowLog {
                entries: Vec::new(),
                capacity: cfg.slow_log_capacity,
            }),
            slow_floor: AtomicU64::new(0),
            armed: Mutex::new(HashSet::new()),
            start,
            cfg,
        })))
    }

    /// A handle that records nothing.
    pub fn disabled() -> Self {
        ServiceMetrics(None)
    }

    /// Whether telemetry is being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record one plan-cache consultation: the plan phase duration and
    /// the hit/miss for the windowed cache hit rate.
    #[inline]
    pub(crate) fn observe_plan(&self, ns: u64, cache_hit: bool) {
        if let Some(m) = &self.0 {
            m.plan.record(ns);
            let sec = m.win_lookups.second();
            m.win_lookups.record_at(sec, 1);
            if cache_hit {
                m.win_hits.record_at(sec, 1);
            }
        }
    }

    /// Record the time a query spent queued before activation.
    #[inline]
    pub(crate) fn observe_queue_wait(&self, ns: u64) {
        if let Some(m) = &self.0 {
            m.queue_wait.record(ns);
        }
    }

    /// Record one update batch (for the updates/s window).
    #[inline]
    pub(crate) fn observe_update(&self) {
        if let Some(m) = &self.0 {
            m.win_updates.record(1);
        }
    }

    /// The stream-drain histogram handle, for `StreamCore` to record
    /// terminal-read latency into.
    pub(crate) fn drain_hist(&self) -> Option<Arc<Histogram>> {
        self.0.as_ref().map(|m| m.drain.clone())
    }

    /// Whether a query with this terminal `outcome` and latency should
    /// pay for slow-log bookkeeping (the `SlowQuery` construction plus
    /// the log mutex). One relaxed load in the common case — a query
    /// faster than every logged entry cannot change the log. Deadline
    /// hits and threshold crossings always log.
    #[inline]
    pub(crate) fn should_log(&self, outcome: ServiceOutcome, elapsed: Duration) -> bool {
        let Some(m) = &self.0 else { return false };
        outcome == ServiceOutcome::Deadline
            || m.cfg.slow_threshold.is_some_and(|t| elapsed >= t)
            || elapsed.as_nanos() as u64 >= m.slow_floor.load(Ordering::Relaxed)
    }

    /// Record a query reaching its terminal state. `slow` carries the
    /// per-query detail for the slow log; callers prefilter with
    /// [`ServiceMetrics::should_log`], so a `Some` here is noted
    /// unconditionally (the log enforces its own capacity).
    pub(crate) fn observe_terminal(
        &self,
        outcome: ServiceOutcome,
        total_ns: u64,
        execute_ns: u64,
        matches: u64,
        slow: Option<SlowQuery>,
    ) {
        let Some(m) = &self.0 else { return };
        m.total[outcome.severity() as usize].record(total_ns);
        m.execute.record(execute_ns);
        m.result_size.record(matches);
        let sec = m.win_queries.second();
        m.win_queries.record_at(sec, 1);
        if matches > 0 {
            m.win_embeddings.record_at(sec, matches);
        }
        if let Some(q) = slow {
            if m.cfg.slow_threshold.is_some_and(|t| q.elapsed >= t) && q.profile.is_none() {
                // Tail capture: trace the next occurrence of this form.
                m.armed.lock().expect("armed poisoned").insert(q.canon_hash);
            }
            let mut log = m.slow.lock().expect("slow log poisoned");
            log.note(q);
            // Entries are sorted slowest-first: the floor is the last.
            let floor = log
                .entries
                .last()
                .map_or(0, |e| e.elapsed.as_nanos() as u64);
            m.slow_floor.store(floor, Ordering::Relaxed);
        }
    }

    /// Consume an armed tail capture for `canon_hash`: returns true at
    /// most once per arming — the caller compiles this occurrence with a
    /// trace attached. Arming only happens when a slow threshold is
    /// configured, so the no-threshold fast path skips the lock.
    pub(crate) fn take_armed(&self, canon_hash: u64) -> bool {
        match &self.0 {
            Some(m) if m.cfg.slow_threshold.is_some() => {
                m.armed.lock().expect("armed poisoned").remove(&canon_hash)
            }
            _ => false,
        }
    }

    /// A coherent snapshot of everything this handle has observed,
    /// combined with the service's registry `counters` block.
    pub(crate) fn report(&self, counters: CounterBlock) -> MetricsReport {
        let Some(m) = &self.0 else {
            return MetricsReport::disabled(counters);
        };
        MetricsReport {
            enabled: true,
            window_secs: m.start.elapsed().as_secs().clamp(1, WINDOW_SECS),
            queue_wait: m.queue_wait.snapshot(),
            plan: m.plan.snapshot(),
            execute: m.execute.snapshot(),
            drain: m.drain.snapshot(),
            result_size: m.result_size.snapshot(),
            total_by_outcome: OUTCOMES
                .iter()
                .enumerate()
                .map(|(i, o)| (o.name(), m.total[i].snapshot()))
                .collect(),
            win_queries: m.win_queries.total(),
            win_embeddings: m.win_embeddings.total(),
            win_updates: m.win_updates.total(),
            win_lookups: m.win_lookups.total(),
            win_hits: m.win_hits.total(),
            counters,
            slow: m.slow.lock().expect("slow log poisoned").entries.clone(),
        }
    }
}

/// A coherent snapshot of one service's telemetry: per-phase and
/// per-outcome latency distributions, last-minute window totals, the
/// merged registry counters, and the slow-query log.
///
/// Reports are mergeable ([`MetricsReport::merge_from`]) the same way
/// the underlying histograms are — the sharded router's
/// `metrics_report()` is exactly a merge of its shards'.
#[derive(Clone, Debug)]
pub struct MetricsReport {
    /// Whether the producing service records telemetry at all.
    pub enabled: bool,
    /// Seconds the rolling window actually spans (1..=60; lower while
    /// the service is young) — the denominator for the `*_per_sec`
    /// rates.
    pub window_secs: u64,
    /// Queue wait: admission to activation.
    pub queue_wait: HistSnapshot,
    /// Plan phase: cache consultation + compile on miss.
    pub plan: HistSnapshot,
    /// Execution: activation to terminal.
    pub execute: HistSnapshot,
    /// Stream drain: terminal report installed to client finishing the
    /// stream.
    pub drain: HistSnapshot,
    /// Matches per query.
    pub result_size: HistSnapshot,
    /// Total submit→terminal latency, per terminal outcome.
    pub total_by_outcome: Vec<(&'static str, HistSnapshot)>,
    /// Queries reaching a terminal state within the window.
    pub win_queries: u64,
    /// Embeddings counted within the window.
    pub win_embeddings: u64,
    /// Update batches applied within the window.
    pub win_updates: u64,
    /// Plan-cache consultations within the window.
    pub win_lookups: u64,
    /// Plan-cache hits within the window.
    pub win_hits: u64,
    /// The service's merged registry counters (same block as
    /// `Service::counters()`).
    pub counters: CounterBlock,
    /// Slow-query log, slowest first.
    pub slow: Vec<SlowQuery>,
}

impl MetricsReport {
    fn disabled(counters: CounterBlock) -> Self {
        MetricsReport {
            enabled: false,
            window_secs: 1,
            queue_wait: HistSnapshot::empty(),
            plan: HistSnapshot::empty(),
            execute: HistSnapshot::empty(),
            drain: HistSnapshot::empty(),
            result_size: HistSnapshot::empty(),
            total_by_outcome: OUTCOMES
                .iter()
                .map(|o| (o.name(), HistSnapshot::empty()))
                .collect(),
            win_queries: 0,
            win_embeddings: 0,
            win_updates: 0,
            win_lookups: 0,
            win_hits: 0,
            counters,
            slow: Vec::new(),
        }
    }

    /// Total submit→terminal latency across all outcomes.
    pub fn total(&self) -> HistSnapshot {
        let mut merged = HistSnapshot::empty();
        for (_, h) in &self.total_by_outcome {
            merged.merge(h);
        }
        merged
    }

    /// Queries/second over the rolling window.
    pub fn qps(&self) -> f64 {
        self.win_queries as f64 / self.window_secs as f64
    }

    /// Embeddings/second over the rolling window.
    pub fn embeddings_per_sec(&self) -> f64 {
        self.win_embeddings as f64 / self.window_secs as f64
    }

    /// Update batches/second over the rolling window.
    pub fn updates_per_sec(&self) -> f64 {
        self.win_updates as f64 / self.window_secs as f64
    }

    /// Plan-cache hit rate over the rolling window (0.0 when idle).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.win_lookups == 0 {
            0.0
        } else {
            self.win_hits as f64 / self.win_lookups as f64
        }
    }

    /// Merge another service's report into this one: histograms merge,
    /// window totals add, counters merge under the registry's sum/gauge
    /// rules, slow logs interleave keeping the slowest.
    pub fn merge_from(&mut self, other: &MetricsReport) {
        self.enabled |= other.enabled;
        self.window_secs = self.window_secs.max(other.window_secs);
        self.queue_wait.merge(&other.queue_wait);
        self.plan.merge(&other.plan);
        self.execute.merge(&other.execute);
        self.drain.merge(&other.drain);
        self.result_size.merge(&other.result_size);
        for ((_, a), (_, b)) in self
            .total_by_outcome
            .iter_mut()
            .zip(&other.total_by_outcome)
        {
            a.merge(b);
        }
        self.win_queries += other.win_queries;
        self.win_embeddings += other.win_embeddings;
        self.win_updates += other.win_updates;
        self.win_lookups += other.win_lookups;
        self.win_hits += other.win_hits;
        self.counters.merge(&other.counters);
        let cap = self.slow.len().max(other.slow.len()).max(1);
        self.slow.extend(other.slow.iter().cloned());
        self.slow.sort_by_key(|q| std::cmp::Reverse(q.elapsed));
        self.slow.truncate(cap);
    }

    /// The report as registry families, every series tagged with
    /// `extra` labels (the sharded renderer passes `shard="i"`).
    pub fn families(&self, extra: &[(&str, &str)]) -> Vec<FamilySnapshot> {
        let labeled = |labels: &[(&str, &str)]| -> Vec<(String, String)> {
            let mut v: Vec<(String, String)> = labels
                .iter()
                .chain(extra)
                .map(|(k, val)| (k.to_string(), val.to_string()))
                .collect();
            v.sort();
            v
        };
        let hist = |name: &str, h: &HistSnapshot| FamilySnapshot {
            name: name.to_string(),
            kind: Kind::Histogram,
            series: vec![SeriesSnapshot {
                labels: labeled(&[]),
                value: Value::Histogram(h.clone()),
            }],
        };
        let float = |name: &str, v: f64| FamilySnapshot {
            name: name.to_string(),
            kind: Kind::Gauge,
            series: vec![SeriesSnapshot {
                labels: labeled(&[]),
                value: Value::Float(v),
            }],
        };
        let mut fams = vec![
            hist("query_queue_wait_ns", &self.queue_wait),
            hist("query_plan_ns", &self.plan),
            hist("query_execute_ns", &self.execute),
            hist("query_drain_ns", &self.drain),
            hist("query_result_size", &self.result_size),
            FamilySnapshot {
                name: "query_total_ns".to_string(),
                kind: Kind::Histogram,
                series: self
                    .total_by_outcome
                    .iter()
                    .map(|(o, h)| SeriesSnapshot {
                        labels: labeled(&[("outcome", o)]),
                        value: Value::Histogram(h.clone()),
                    })
                    .collect(),
            },
            float("rate_queries_per_sec", self.qps()),
            float("rate_embeddings_per_sec", self.embeddings_per_sec()),
            float("rate_updates_per_sec", self.updates_per_sec()),
            float("cache_hit_rate_window", self.cache_hit_rate()),
        ];
        for c in Counter::ALL {
            fams.push(FamilySnapshot {
                name: c.name().to_string(),
                kind: if c.is_gauge() {
                    Kind::Gauge
                } else {
                    Kind::Counter
                },
                series: vec![SeriesSnapshot {
                    labels: labeled(&[]),
                    value: if c.is_gauge() {
                        Value::Gauge(self.counters.get(c))
                    } else {
                        Value::Counter(self.counters.get(c))
                    },
                }],
            });
        }
        fams.sort_by(|a, b| a.name.cmp(&b.name));
        fams
    }

    /// Prometheus-style text exposition of the whole report.
    pub fn to_prometheus(&self) -> String {
        prom::render(&self.families(&[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(hash: u64, ms: u64) -> SlowQuery {
        SlowQuery {
            canon_hash: hash,
            outcome: ServiceOutcome::Complete,
            elapsed: Duration::from_millis(ms),
            matches: 1,
            recursions: 2,
            cache_hit: false,
            plan_build_ns: 0,
            plan: "test".to_string(),
            counters: CounterBlock::new(),
            profile: None,
        }
    }

    #[test]
    fn slow_log_keeps_top_n_by_form() {
        let mut log = SlowLog {
            entries: Vec::new(),
            capacity: 2,
        };
        log.note(entry(1, 10));
        log.note(entry(2, 30));
        log.note(entry(3, 20));
        assert_eq!(
            log.entries.iter().map(|e| e.canon_hash).collect::<Vec<_>>(),
            [2, 3]
        );
        // Same form again, slower: updates in place, no duplicate.
        log.note(entry(3, 50));
        assert_eq!(log.entries[0].canon_hash, 3);
        assert_eq!(log.entries.len(), 2);
        // Faster occurrence of a logged form does not regress the entry.
        log.note(entry(3, 5));
        assert_eq!(log.entries[0].elapsed, Duration::from_millis(50));
    }

    #[test]
    fn slow_log_profile_attaches_without_regressing() {
        let mut log = SlowLog {
            entries: Vec::new(),
            capacity: 4,
        };
        log.note(entry(7, 100));
        let mut captured = entry(7, 10);
        captured.profile = Some("tree".to_string());
        log.note(captured);
        assert_eq!(log.entries[0].elapsed, Duration::from_millis(100));
        assert_eq!(log.entries[0].profile.as_deref(), Some("tree"));
    }

    #[test]
    fn terminal_observations_reach_the_report() {
        let m = ServiceMetrics::new(MetricsConfig::default());
        m.observe_plan(1_000, true);
        m.observe_plan(2_000, false);
        m.observe_queue_wait(500);
        m.observe_terminal(
            ServiceOutcome::Complete,
            10_000,
            8_000,
            3,
            Some(entry(1, 1)),
        );
        m.observe_terminal(
            ServiceOutcome::Deadline,
            90_000,
            80_000,
            0,
            Some(entry(2, 9)),
        );
        let r = m.report(CounterBlock::new());
        assert!(r.enabled);
        assert_eq!(r.total().count(), 2);
        assert_eq!(r.win_queries, 2);
        assert_eq!(r.win_embeddings, 3);
        assert_eq!(r.win_lookups, 2);
        assert_eq!(r.win_hits, 1);
        assert_eq!(r.cache_hit_rate(), 0.5);
        assert_eq!(r.slow[0].canon_hash, 2, "slowest first");
        let deadline = r
            .total_by_outcome
            .iter()
            .find(|(o, _)| *o == "deadline")
            .unwrap();
        assert_eq!(deadline.1.count(), 1);
    }

    #[test]
    fn threshold_arms_tail_capture_once() {
        let m = ServiceMetrics::new(MetricsConfig {
            slow_threshold: Some(Duration::from_millis(5)),
            ..MetricsConfig::default()
        });
        m.observe_terminal(ServiceOutcome::Complete, 0, 0, 0, Some(entry(9, 50)));
        assert!(m.take_armed(9));
        assert!(!m.take_armed(9), "arming is consumed");
        // Below threshold: never armed.
        m.observe_terminal(ServiceOutcome::Complete, 0, 0, 0, Some(entry(11, 1)));
        assert!(!m.take_armed(11));
    }

    #[test]
    fn disabled_handle_is_inert() {
        let m = ServiceMetrics::disabled();
        assert!(!m.is_enabled());
        m.observe_plan(1, true);
        m.observe_terminal(ServiceOutcome::Complete, 1, 1, 1, None);
        assert!(m.drain_hist().is_none());
        let r = m.report(CounterBlock::new());
        assert!(!r.enabled);
        assert_eq!(r.total().count(), 0);
    }

    #[test]
    fn merged_report_combines_shards() {
        let a = ServiceMetrics::new(MetricsConfig::default());
        let b = ServiceMetrics::new(MetricsConfig::default());
        a.observe_terminal(ServiceOutcome::Complete, 1_000, 900, 2, None);
        b.observe_terminal(ServiceOutcome::Complete, 3_000, 2_500, 5, None);
        let mut merged = a.report(CounterBlock::new());
        merged.merge_from(&b.report(CounterBlock::new()));
        assert_eq!(merged.total().count(), 2);
        assert_eq!(merged.win_embeddings, 7);
        assert_eq!(merged.total().max(), 3_000);
    }

    #[test]
    fn prometheus_text_round_trips() {
        let m = ServiceMetrics::new(MetricsConfig::default());
        m.observe_terminal(ServiceOutcome::Complete, 5_000, 4_000, 2, None);
        let mut counters = CounterBlock::new();
        counters.add(Counter::QueriesAdmitted, 1);
        let text = m.report(counters).to_prometheus();
        let samples = prom::parse(&text).expect("rendered text parses");
        assert!(samples
            .iter()
            .any(|s| s.name == "sm_queries_admitted" && s.value == 1.0));
        assert!(samples.iter().any(|s| s.name == "sm_query_total_ns_count"
            && s.labels
                .contains(&("outcome".to_string(), "complete".to_string()))));
        assert!(samples.iter().any(|s| s.name == "sm_rate_queries_per_sec"));
    }
}
