//! In-place graph updates for a running service.
//!
//! [`Service::apply_update`] commits an [`UpdateBatch`] against the
//! service's [`sm_delta::VersionedGraph`] twin and installs the
//! materialized result as the new data graph — without rebuilding the
//! NLF index (the overlay maintains it per delta) and without purging
//! the whole plan cache: only cached plans whose query labels intersect
//! the batch's affected labels are evicted; the rest are re-keyed to the
//! new epoch ([`crate::cache::PlanCache::retarget_epoch`]).
//!
//! **Standing queries** registered with [`Service::register_standing`]
//! keep their full embedding set current across updates by delta-driven
//! incremental enumeration ([`sm_delta::delta_matches`]): only
//! embeddings that use an inserted or deleted edge are enumerated, never
//! the whole graph.

use crate::service::{GraphData, Service};
use sm_delta::{delta_matches, Snapshot, StandingQuery, UpdateBatch};
use sm_graph::{Graph, VertexId};
use sm_match::enumerate::CollectSink;
use sm_match::{
    DataContext, FilterKind, LcMethod, MatchConfig, MatchSemantics, OrderKind, Pipeline,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Handle to a standing query registered with
/// [`Service::register_standing`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StandingId(pub(crate) usize);

/// Why [`Service::register_standing_with`] refused a registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StandingError {
    /// The incremental engine does not support the query shape (no
    /// edges, or disconnected).
    UnsupportedQuery,
    /// Standing queries maintain a *complete, materialized, isomorphic*
    /// embedding set — the only representation delta-driven maintenance
    /// can keep consistent. Relaxed injectivity, count-only output, and
    /// early-terminating modes are all rejected here, explicitly, rather
    /// than silently coerced.
    UnsupportedSemantics,
}

/// What one [`Service::apply_update`] call did.
#[derive(Clone, Debug)]
pub struct UpdateReport {
    /// Service epoch after the update (unchanged for a no-op batch).
    pub epoch: u64,
    /// Whether the batch normalized to nothing (no state changed).
    pub noop: bool,
    /// Edges actually inserted (after normalization).
    pub edges_inserted: usize,
    /// Edges actually deleted (including edges incident to deleted
    /// vertices).
    pub edges_deleted: usize,
    /// Vertices added.
    pub vertices_added: usize,
    /// Vertices tombstoned.
    pub vertices_deleted: usize,
    /// Cached plans that survived scoped invalidation (label-disjoint
    /// from the batch) and were re-keyed to the new epoch.
    pub plans_retained: usize,
    /// Cached plans evicted because the batch touched their labels.
    pub plans_evicted: usize,
    /// Embeddings added across all standing queries by incremental
    /// enumeration.
    pub incremental_added: u64,
    /// Embeddings retracted across all standing queries.
    pub incremental_removed: u64,
    /// Wall-clock time of the whole apply (commit + install + retarget +
    /// standing maintenance).
    pub elapsed: Duration,
}

/// One registered standing query: the seed programs plus the maintained
/// embedding set.
pub(crate) struct StandingEntry {
    pub(crate) sq: StandingQuery,
    pub(crate) matches: Vec<Vec<VertexId>>,
}

impl StandingEntry {
    /// Recompute the embedding set from scratch (graph swap).
    pub(crate) fn reenumerate(&mut self, data: &GraphData) {
        self.matches = enumerate_full(data, self.sq.plan().query());
    }
}

/// Full (from-scratch) sorted embedding set of `q` on `data`, in query
/// vertex-id order — the representation `DeltaMatches::apply_to`
/// maintains.
fn enumerate_full(data: &GraphData, q: &Graph) -> Vec<Vec<VertexId>> {
    let ctx = DataContext::from_parts(&data.graph, data.nlf.clone(), data.label_pairs.clone());
    let p = Pipeline::new(
        "standing-full",
        FilterKind::Ldf,
        OrderKind::Ri,
        LcMethod::Direct,
    );
    let mut sink = CollectSink::default();
    // find_all: the maintained set must be complete — the default match
    // cap would silently truncate the baseline on large graphs.
    p.run_with_sink(q, &ctx, &MatchConfig::find_all(), &mut sink);
    let mut m = sink.matches;
    m.sort_unstable();
    m
}

/// Compile a [`StandingQuery`] for `q`. The plan is built against the
/// query graph *itself* as data graph: a query always matches itself, so
/// compilation cannot fail for satisfiability reasons, and the
/// incremental engine only reads the plan's query graph anyway.
pub(crate) fn standing_query(q: &Graph) -> Option<StandingQuery> {
    let ctx = DataContext::new(q);
    let order: Vec<VertexId> = (0..q.num_vertices() as VertexId).collect();
    let p = Pipeline::new(
        "standing",
        FilterKind::Ldf,
        OrderKind::Fixed(order),
        LcMethod::Direct,
    );
    let plan = p.plan(q, &ctx, &MatchConfig::default()).ok()?;
    StandingQuery::new(Arc::new(plan))
}

impl Service {
    /// Apply an update batch **in place**: commit it to the versioned
    /// graph, install the materialized post-state as the service's data
    /// graph under a new epoch, retarget the plan cache (label-scoped
    /// invalidation instead of a full purge), and bring every standing
    /// query's embedding set up to date incrementally.
    ///
    /// A batch that normalizes to nothing (inserting present edges,
    /// deleting absent ones) changes no state and keeps the epoch.
    ///
    /// Updates serialize against each other and against
    /// [`Service::swap_graph`]; queries submitted concurrently run
    /// against whichever graph version they were admitted under.
    pub fn apply_update(&self, batch: &UpdateBatch) -> UpdateReport {
        self.apply_update_inner(batch, true)
    }

    /// [`Service::apply_update`] body with an explicit durability switch.
    ///
    /// `log == true` is the live path: the batch is committed and — if it
    /// was effective — appended to the WAL (when the service is durable)
    /// *before* the post graph is installed, so no client can observe
    /// state that recovery cannot reproduce. `log == false` is the
    /// recovery replay path: WAL records must not be re-appended while
    /// they are being replayed. Both routes funnel through
    /// [`sm_durable::commit_batch`], the single commit point the log
    /// cannot be bypassed around.
    pub(crate) fn apply_update_inner(&self, batch: &UpdateBatch, log: bool) -> UpdateReport {
        let started = Instant::now();
        let core = &self.core;
        let vg = core.versioned.lock().expect("versioned poisoned");
        // Epoch only moves under the versioned lock, so this read is the
        // epoch the commit will install (+1) if the batch is effective.
        let old_epoch = core.epoch.load(Ordering::Relaxed);
        let committed = {
            let mut durable = core.durable.lock().expect("durable poisoned");
            sm_durable::durable_io(
                "WAL batch append",
                sm_durable::commit_batch(
                    &vg,
                    if log { durable.as_mut() } else { None },
                    old_epoch + 1,
                    batch,
                ),
            )
        };
        let info = &committed.info;
        if info.is_noop() {
            return UpdateReport {
                epoch: core.epoch.load(Ordering::Relaxed),
                noop: true,
                edges_inserted: 0,
                edges_deleted: 0,
                vertices_added: 0,
                vertices_deleted: 0,
                plans_retained: 0,
                plans_evicted: 0,
                incremental_added: 0,
                incremental_removed: 0,
                elapsed: started.elapsed(),
            };
        }
        // Install the post graph under a fresh service epoch. The NLF
        // comes from the overlay's incremental maintenance and the
        // label-pair counts are patched from the commit delta — no index
        // is rebuilt by scanning the graph.
        let new_epoch = old_epoch + 1;
        let (graph, nlf) = committed.post.materialize();
        {
            let mut slot = core.graph.lock().expect("graph lock poisoned");
            let pairs = slot.patched_pairs(&committed);
            *slot = GraphData::from_parts_with_pairs(graph, nlf, pairs, new_epoch);
        }
        core.epoch.store(new_epoch, Ordering::Relaxed);
        let (plans_retained, plans_evicted) =
            core.cache
                .retarget_epoch(old_epoch, new_epoch, &info.affected_labels);
        // Maintain standing queries from the delta alone.
        let mut added = 0u64;
        let mut removed = 0u64;
        {
            let mut standing = core.standing.lock().expect("standing poisoned");
            for entry in standing.iter_mut() {
                let d = delta_matches(&entry.sq, &committed, core.cfg.workers);
                added += d.added.len() as u64;
                removed += d.removed.len() as u64;
                entry.matches = d.apply_to(&entry.matches);
            }
        }
        core.counters.updates.fetch_add(1, Ordering::Relaxed);
        core.metrics.observe_update();
        if added + removed > 0 {
            core.counters
                .incremental
                .fetch_add(added + removed, Ordering::Relaxed);
        }
        // Compact the log into a fresh snapshot once enough WAL bytes
        // accumulated (still under the versioned lock, so the snapshot
        // sees exactly this epoch). Replay never triggers this: the
        // store is not installed until recovery finishes.
        if log {
            self.maybe_threshold_snapshot();
        }
        UpdateReport {
            epoch: new_epoch,
            noop: false,
            edges_inserted: info.edges_inserted.len(),
            edges_deleted: info.edges_deleted.len(),
            vertices_added: info.vertices_added.len(),
            vertices_deleted: info.vertices_deleted.len(),
            plans_retained,
            plans_evicted,
            incremental_added: added,
            incremental_removed: removed,
            elapsed: started.elapsed(),
        }
    }

    /// Pin a consistent snapshot of the current graph version. The
    /// snapshot keeps enumerating pre-update results no matter how many
    /// batches are applied (or compactions run) after it.
    pub fn snapshot(&self) -> Snapshot {
        self.core
            .versioned
            .lock()
            .expect("versioned poisoned")
            .snapshot()
    }

    /// Register a standing query: its full embedding set is enumerated
    /// once now and then maintained incrementally by every
    /// [`Service::apply_update`]. Returns `None` for queries the
    /// incremental engine does not support (no edges, or disconnected).
    pub fn register_standing(&self, query: &Graph) -> Option<StandingId> {
        self.register_standing_impl(query, true)
    }

    /// [`Service::register_standing`] body with a durability switch:
    /// the live path (`log == true`) appends a `Standing` WAL record so
    /// the registration survives a crash before the next snapshot; the
    /// recovery replay path must not re-append the record it is
    /// replaying.
    pub(crate) fn register_standing_impl(&self, query: &Graph, log: bool) -> Option<StandingId> {
        let sq = standing_query(query)?;
        let data = self.core.graph.lock().expect("graph lock poisoned").clone();
        let matches = enumerate_full(&data, sq.plan().query());
        let mut standing = self.core.standing.lock().expect("standing poisoned");
        standing.push(StandingEntry { sq, matches });
        let index = standing.len() - 1;
        // The WAL append happens while the standing lock is still held
        // (lock order graph → standing → durable keeps `durable`
        // innermost): recovery replays registrations in log order and
        // reassigns indices by push order, so two concurrent
        // registrations logged out of index order would swap their
        // StandingIds after a restart.
        if log {
            let mut durable = self.core.durable.lock().expect("durable poisoned");
            if let Some(store) = durable.as_mut() {
                sm_durable::durable_io(
                    "WAL standing-registration append",
                    store.append_standing(index as u64, query),
                );
            }
        }
        drop(standing);
        Some(StandingId(index))
    }

    /// [`Service::register_standing`] with an explicit semantics check:
    /// only the paper's default mode (isomorphic, materializing,
    /// run-to-completion) is maintainable incrementally, and anything
    /// else is a typed [`StandingError::UnsupportedSemantics`] — the
    /// supported matrix is enforced at registration, not discovered at
    /// the first update.
    pub fn register_standing_with(
        &self,
        query: &Graph,
        semantics: MatchSemantics,
    ) -> Result<StandingId, StandingError> {
        if semantics != MatchSemantics::default() {
            return Err(StandingError::UnsupportedSemantics);
        }
        self.register_standing(query)
            .ok_or(StandingError::UnsupportedQuery)
    }

    /// Current embedding set of a standing query (sorted, in query
    /// vertex-id order).
    pub fn standing_matches(&self, id: StandingId) -> Vec<Vec<VertexId>> {
        self.core.standing.lock().expect("standing poisoned")[id.0]
            .matches
            .clone()
    }

    /// Current embedding count of a standing query.
    pub fn standing_count(&self, id: StandingId) -> usize {
        self.core.standing.lock().expect("standing poisoned")[id.0]
            .matches
            .len()
    }
}
