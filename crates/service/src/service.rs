//! The concurrent query service: admission control, fair multi-query
//! scheduling, cached plan compilation, and per-query budgets.
//!
//! # Architecture
//!
//! [`Service::submit`] is the only entry point. It
//!
//! 1. **admits** the query (or returns a born-terminal
//!    [`ServiceOutcome::Rejected`] stream when `max_active` queries run
//!    and the pending queue is full),
//! 2. **fingerprints** the query graph canonically and consults the
//!    sharded LRU [`PlanCache`](crate::cache::PlanCache) — two clients
//!    submitting the same query *up to a vertex-id permutation* share one
//!    compiled [`QueryPlan`]; a miss compiles and populates,
//! 3. **splits** the plan's root candidates into morsels and registers
//!    them with the runtime's [`FairScheduler`], which deals claims
//!    round-robin across all active queries — one query with a huge root
//!    set cannot starve a small one,
//! 4. returns a [`ResultStream`] immediately; the service's worker
//!    threads execute morsels under the query's own
//!    [`SharedControl`] budget (deadline + embedding cap on a
//!    [`CancelToken`]) and push remapped embeddings through the stream's
//!    bounded buffer.
//!
//! Per-query budgets live in the run's `SharedControl`, **not** in the
//! cached plan's config — the same immutable plan executes under any
//! number of different deadlines and caps concurrently. Capped counts
//! are exact across workers (atomic slot allocation in
//! `RunControl::record_match`), which is what makes a concurrent run's
//! per-query counts equal a sequential run's.
//!
//! Queries whose plan has **zero root work** (unsatisfiable after
//! filtering, or an empty root candidate set) never touch the scheduler:
//! they finalize at submission, deterministically — an already-expired
//! deadline yields [`ServiceOutcome::Deadline`], otherwise
//! [`ServiceOutcome::Complete`]. Nothing ever parks waiting for work
//! that does not exist.

use crate::cache::{CachedPlan, PlanCache, PlanKey};
use crate::metrics::{MetricsConfig, MetricsReport, ServiceMetrics, SlowQuery};
use crate::stream::{QueryReport, ResultStream, ServiceOutcome, StreamCore};
use crate::update::StandingEntry;
use sm_delta::VersionedGraph;
use sm_graph::canon::canonical_form;
use sm_graph::label_index::LabelPairEdgeCounts;
use sm_graph::{Graph, NlfIndex, VertexId};
use sm_match::enumerate::control::SharedControl;
use sm_match::enumerate::engine::{enumerate_with, EngineInput};
use sm_match::enumerate::{
    LcMethod, MatchConfig, MatchSemantics, MatchSink, Outcome, OutputMode, Termination,
};
use sm_match::{DataContext, Executor, Pipeline, PlanSelection, QueryPlan, Scratch};
use sm_runtime::pool::morsel_size_for;
use sm_runtime::trace::profile::RunMeta;
use sm_runtime::trace::{Counter, CounterBlock, RunProfile, Trace};
use sm_runtime::{CancelReason, CancelToken, Claim, FairScheduler, SourceId};
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// A data graph plus the per-graph indices every plan compilation needs,
/// stamped with the service epoch it was installed under.
pub struct GraphData {
    /// The data graph.
    pub graph: Graph,
    /// Neighbor-label-frequency index (NLF filter, VF2++ rule).
    pub nlf: NlfIndex,
    /// Label-pair edge counts (QuickSI weights).
    pub label_pairs: LabelPairEdgeCounts,
    /// Epoch this graph was installed under — part of every plan-cache
    /// key, so a swapped graph invalidates all cached plans at once.
    pub epoch: u64,
}

impl GraphData {
    fn build(graph: Graph, epoch: u64) -> Arc<Self> {
        let nlf = graph.build_nlf();
        GraphData::from_parts(graph, nlf, epoch)
    }

    /// Assemble from a graph with an already-maintained NLF index (the
    /// incremental-update path: the overlay keeps the NLF current, so
    /// only the label-pair counts are rebuilt).
    pub(crate) fn from_parts(graph: Graph, nlf: NlfIndex, epoch: u64) -> Arc<Self> {
        let label_pairs = LabelPairEdgeCounts::build(&graph);
        GraphData::from_parts_with_pairs(graph, nlf, label_pairs, epoch)
    }

    /// Assemble with every index already maintained — the install path
    /// for updates and WAL replay, where the label-pair counts are
    /// patched from the commit delta instead of rebuilt by an edge scan.
    pub(crate) fn from_parts_with_pairs(
        graph: Graph,
        nlf: NlfIndex,
        label_pairs: LabelPairEdgeCounts,
        epoch: u64,
    ) -> Arc<Self> {
        Arc::new(GraphData {
            graph,
            nlf,
            label_pairs,
            epoch,
        })
    }

    /// The previous epoch's label-pair counts patched by one commit's
    /// normalized edge delta — exactly equal to a fresh
    /// [`LabelPairEdgeCounts::build`] of the post graph.
    pub(crate) fn patched_pairs(&self, committed: &sm_delta::Committed) -> LabelPairEdgeCounts {
        let mut pairs = self.label_pairs.clone();
        patch_pairs(&mut pairs, committed);
        pairs
    }
}

/// Patch label-pair edge counts by one commit's normalized delta.
/// Tombstones keep their label, so endpoint labels resolve on the post
/// view for insertions and deletions alike.
pub(crate) fn patch_pairs(pairs: &mut LabelPairEdgeCounts, committed: &sm_delta::Committed) {
    use sm_delta::GraphView;
    for &(u, v) in &committed.info.edges_inserted {
        pairs.insert_pair(committed.post.label(u), committed.post.label(v));
    }
    for &(u, v) in &committed.info.edges_deleted {
        pairs.remove_pair(committed.post.label(u), committed.post.label(v));
    }
}

/// Service configuration. `Default` is sized for tests and small
/// embedded uses: 2 workers, 4 active queries, a 256-plan cache.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Worker threads executing morsels (at least 1).
    pub workers: usize,
    /// Queries enumerated concurrently; further admitted queries wait in
    /// the pending queue.
    pub max_active: usize,
    /// Bounded pending queue beyond `max_active`; a submission finding
    /// it full is rejected.
    pub queue_capacity: usize,
    /// Total cached plans across shards (0 disables the cache).
    pub cache_capacity: usize,
    /// Plan-cache shard count.
    pub cache_shards: usize,
    /// Per-query embedding buffer length (backpressure bound).
    pub stream_capacity: usize,
    /// Deadline applied when a request does not set its own.
    pub default_deadline: Option<Duration>,
    /// Embedding cap applied when a request does not set its own
    /// (`None` = unbounded).
    pub default_cap: Option<u64>,
    /// The pipeline every plan is compiled with (part of the cache key).
    pub pipeline: Pipeline,
    /// Base match config for plan compilation — its `failing_sets`,
    /// `intersect` and `vf2pp_rule` knobs are honored (and part of the
    /// cache key); per-run fields (`max_matches`, `time_limit`, `cancel`,
    /// `trace`) are overridden by each request's budget.
    pub base_config: MatchConfig,
    /// Observability handle; service counters are flushed here on drop.
    pub trace: Trace,
    /// Always-on telemetry: latency histograms, rolling-window rates,
    /// slow-query log, adaptive tail capture (see [`crate::metrics`]).
    pub metrics: MetricsConfig,
    /// Cross-run feedback store for the self-tuning planner. Only
    /// consulted when `base_config.plan` is [`PlanSelection::Auto`]:
    /// `None` gives the service a private store; a sharded deployment
    /// passes one shared store to every shard so all of them learn from
    /// every observation. Ignored under fixed plan selection.
    pub planner_feedback: Option<Arc<sm_planner::FeedbackStore>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            max_active: 4,
            queue_capacity: 64,
            cache_capacity: 256,
            cache_shards: 8,
            stream_capacity: 1024,
            default_deadline: None,
            default_cap: None,
            pipeline: sm_match::Algorithm::GraphQl.optimized(),
            base_config: MatchConfig::default(),
            trace: Trace::disabled(),
            metrics: MetricsConfig::default(),
            planner_feedback: None,
        }
    }
}

/// Predicate applied to each (remapped) embedding before it is counted —
/// the sharded router's exactly-once ownership hook.
pub type CountFilter = Arc<dyn Fn(&[VertexId]) -> bool + Send + Sync>;

/// One query submission.
#[derive(Clone)]
pub struct QueryRequest {
    /// The query graph.
    pub query: Graph,
    /// Per-query deadline (overrides the service default).
    pub deadline: Option<Duration>,
    /// Per-query embedding cap (overrides the service default).
    pub max_matches: Option<u64>,
    /// Stream embeddings to the client (`false` = count only).
    pub deliver: bool,
    /// Match semantics the query runs under. The injectivity and output
    /// mode are compiled into the (cached) plan; a `TopK` termination is
    /// folded into the per-run cap. `SampleK` is rejected at submission —
    /// uniform sampling needs a sequential exhaustive pass, which the
    /// morsel-parallel service deliberately does not offer (use
    /// [`sm_match::Executor::run_sample`] directly).
    pub semantics: MatchSemantics,
    /// When set, the reported `matches` is the number of embeddings this
    /// predicate accepted (evaluated on client vertex ids) instead of the
    /// raw enumeration count. Forces the engine to materialize embeddings
    /// internally even for count-only semantics — the predicate has to
    /// see them.
    pub count_filter: Option<CountFilter>,
}

impl QueryRequest {
    /// Count matches of `query`; no embeddings are delivered. Runs under
    /// count-only semantics: the engine skips embedding materialization
    /// entirely and only the per-worker counters are maintained.
    pub fn count(query: Graph) -> Self {
        QueryRequest {
            query,
            deadline: None,
            max_matches: None,
            deliver: false,
            semantics: MatchSemantics::default().count_only(),
            count_filter: None,
        }
    }

    /// Stream the embeddings of `query`.
    pub fn streaming(query: Graph) -> Self {
        QueryRequest {
            deliver: true,
            semantics: MatchSemantics::default(),
            ..QueryRequest::count(query)
        }
    }

    /// Set a deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Set an embedding cap.
    pub fn with_cap(mut self, cap: u64) -> Self {
        self.max_matches = Some(cap);
        self
    }

    /// Run under explicit match semantics (injectivity / output /
    /// termination). The request's `deliver` flag is unchanged: a
    /// count-only semantics on a streaming request simply streams
    /// nothing.
    pub fn with_semantics(mut self, semantics: MatchSemantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Count only embeddings accepted by `filter` (see
    /// [`QueryRequest::count_filter`]).
    pub fn with_count_filter(mut self, filter: CountFilter) -> Self {
        self.count_filter = Some(filter);
        self
    }
}

/// How a worker executes one claimed morsel.
enum MorselKind {
    /// A contiguous slice of the static engine's depth-0 entries.
    Entries(Range<usize>),
    /// The whole plan in one claim — adaptive (DP-iso) plans, whose
    /// runtime vertex selection is inherently sequential per subtree.
    Whole,
}

/// Scheduler payload: the run plus which part of it to execute.
struct Morsel {
    run: Arc<QueryRun>,
    kind: MorselKind,
}

/// Accumulated results of one query across morsels.
struct RunAgg {
    matches: u64,
    recursions: u64,
    outcome: Outcome,
    /// Merged registry-counter deltas of this query's own morsels — the
    /// slow-query log's per-query explanation (intersections, backtracks,
    /// peak depth, …).
    counters: CounterBlock,
}

impl RunAgg {
    /// Keep the most severe outcome — one timed-out morsel makes the
    /// query partial no matter how many others completed. The ordering
    /// lives in [`Outcome::worst`], the same rule the parallel engine
    /// and the sharded router merge with.
    fn merge_outcome(&mut self, o: Outcome) {
        self.outcome = self.outcome.worst(o);
    }
}

/// Everything the workers need about one admitted query.
struct QueryRun {
    plan: Option<Arc<QueryPlan>>,
    graph: Arc<GraphData>,
    /// Per-run budget: cancellation token (deadline + client cancel) and
    /// embedding cap, shared by every morsel of this query.
    shared: SharedControl,
    /// Depth-0 entries of the static engine (the method's convention:
    /// candidate positions for `TreeIndex`/`Intersect`, data vertex ids
    /// otherwise). Empty for adaptive plans.
    entries: Vec<u32>,
    adaptive: bool,
    /// Plan-vertex → client-vertex composition for cache hits on
    /// permuted queries: `delivered[u] = m[remap[u]]`.
    remap: Option<Vec<VertexId>>,
    deliver: bool,
    /// Ownership predicate: when set, `filtered` (not the raw count) is
    /// reported as the query's `matches`.
    count_filter: Option<CountFilter>,
    /// Embeddings accepted by `count_filter`, across all morsels.
    filtered: AtomicU64,
    /// Whether the request asked for top-k termination — a cap hit then
    /// counts as a `topk_early_exits` event, not an overflow.
    topk: bool,
    stream: Arc<StreamCore>,
    agg: Mutex<RunAgg>,
    cache_hit: bool,
    plan_build_ns: u64,
    started: Instant,
    /// Canonical-form fingerprint of the query — the slow-query log and
    /// adaptive-capture key.
    canon_hash: u64,
    /// The planner-chosen combo this run executes (`None` under fixed
    /// plan selection or when a tail-capture recompiled the plan) — the
    /// feedback key finalize records observations under.
    combo: Option<sm_planner::PlanCombo>,
    /// Nanoseconds from admission to activation (0 until activated) —
    /// the queue-wait phase boundary the metrics layer records.
    activated_ns: AtomicU64,
    /// Tail-capture trace attached to this run's (freshly compiled)
    /// plan; its rendered profile lands in the slow-query log at
    /// finalize.
    capture: Option<Trace>,
}

impl QueryRun {
    fn has_work(&self) -> bool {
        self.adaptive || !self.entries.is_empty()
    }
}

/// Admission state: how many queries are in the system, which are
/// actively scheduled, and the bounded wait queue.
struct Admission {
    /// Active + pending (reservations included).
    in_system: usize,
    /// Queries currently registered with the scheduler.
    active: usize,
    pending: VecDeque<Arc<QueryRun>>,
    /// Active runs, for drain-on-shutdown.
    running: Vec<Arc<QueryRun>>,
}

pub(crate) struct ServiceCounters {
    admitted: AtomicU64,
    rejected: AtomicU64,
    streamed: AtomicU64,
    /// Terminal `Cancelled` outcomes caused by the client side — an
    /// explicit `ResultStream::cancel` or a dropped stream (including
    /// per-shard streams a router cut short after its global cap).
    cancelled_by_drop: AtomicU64,
    /// Queries admitted under count-only semantics (no embedding
    /// materialization anywhere in their execution).
    count_only: AtomicU64,
    /// Top-k queries that terminated by filling their k slots.
    topk_exits: AtomicU64,
    /// Update batches applied through [`Service::apply_update`].
    pub(crate) updates: AtomicU64,
    /// Embeddings added/retracted incrementally for standing queries.
    pub(crate) incremental: AtomicU64,
    /// Snapshot/compaction totals of versioned graphs retired by
    /// `swap_graph` — folded in so the counters stay monotonic across
    /// swaps.
    pub(crate) snapshots_base: AtomicU64,
    pub(crate) compactions_base: AtomicU64,
    /// Recoveries performed by [`Service::open`] (0 or 1 per service).
    pub(crate) recoveries: AtomicU64,
    /// WAL-tail update batches replayed during recovery.
    pub(crate) replayed: AtomicU64,
}

pub(crate) struct ServiceCore {
    pub(crate) cfg: ServiceConfig,
    pub(crate) graph: Mutex<Arc<GraphData>>,
    pub(crate) epoch: AtomicU64,
    pub(crate) cache: PlanCache,
    sched: FairScheduler<Morsel>,
    admission: Mutex<Admission>,
    pub(crate) counters: ServiceCounters,
    /// Always-on telemetry sink (see [`crate::metrics`]).
    pub(crate) metrics: ServiceMetrics,
    /// The versioned twin of the installed graph: `apply_update` commits
    /// batches here and installs the materialized result as the new
    /// `graph`. Replaced wholesale by `swap_graph`.
    pub(crate) versioned: Mutex<VersionedGraph>,
    /// Registered standing queries with their incrementally maintained
    /// embedding sets.
    pub(crate) standing: Mutex<Vec<StandingEntry>>,
    /// Durable store when the service was created via
    /// [`Service::new_durable`] / [`Service::open`]; `None` for purely
    /// in-memory services. Always the innermost lock.
    pub(crate) durable: Mutex<Option<sm_durable::DurableStore>>,
    /// Report of the recovery that produced this service, if any.
    pub(crate) recovery: Mutex<Option<sm_durable::RecoveryReport>>,
    /// Cache-key component for the service's (pipeline, base config).
    config_fp: u64,
    /// Self-tuning planner, present when `base_config.plan` is
    /// [`PlanSelection::Auto`]: plan-cache misses ask it for the
    /// cheapest filter × order × kernel combo instead of compiling the
    /// fixed `cfg.pipeline`, and every finished run folds its counters
    /// back into its feedback store.
    pub(crate) planner: Option<Arc<sm_planner::Planner>>,
}

/// A concurrent subgraph-query service over one data graph.
///
/// ```
/// use sm_graph::builder::graph_from_edges;
/// use sm_service::{QueryRequest, Service, ServiceConfig, ServiceOutcome};
///
/// let g = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
/// let svc = Service::new(g, ServiceConfig::default());
/// let q = graph_from_edges(&[0, 0], &[(0, 1)]);
/// let report = svc.submit(QueryRequest::count(q)).wait();
/// assert_eq!(report.outcome, ServiceOutcome::Complete);
/// assert_eq!(report.matches, 4); // 2 edges x 2 directions
/// ```
pub struct Service {
    pub(crate) core: Arc<ServiceCore>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Service {
    /// Start a service over `graph` with `cfg.workers` worker threads.
    pub fn new(graph: Graph, cfg: ServiceConfig) -> Self {
        let data = GraphData::build(graph.clone(), 0);
        Service::boot(data, VersionedGraph::new(graph), cfg)
    }

    /// Shared constructor: wire a prebuilt [`GraphData`] and its
    /// versioned twin into a running service. [`Service::new`] builds
    /// both from a graph; the recovery path ([`Service::open`]) hands in
    /// the snapshot's materialized arrays so no index is recomputed.
    pub(crate) fn boot(
        data: Arc<GraphData>,
        versioned: VersionedGraph,
        cfg: ServiceConfig,
    ) -> Self {
        let epoch = data.epoch;
        let config_fp = config_fingerprint(&cfg.pipeline, &cfg.base_config);
        let metrics = ServiceMetrics::new(cfg.metrics.clone());
        let planner = (cfg.base_config.plan == PlanSelection::Auto).then(|| {
            let feedback = cfg
                .planner_feedback
                .clone()
                .unwrap_or_else(|| Arc::new(sm_planner::FeedbackStore::new()));
            Arc::new(sm_planner::Planner::with_feedback(
                sm_planner::PlannerConfig::default(),
                feedback,
            ))
        });
        let core = Arc::new(ServiceCore {
            cache: PlanCache::new(cfg.cache_capacity, cfg.cache_shards),
            graph: Mutex::new(data),
            epoch: AtomicU64::new(epoch),
            sched: FairScheduler::new(),
            admission: Mutex::new(Admission {
                in_system: 0,
                active: 0,
                pending: VecDeque::new(),
                running: Vec::new(),
            }),
            metrics,
            counters: ServiceCounters {
                admitted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                streamed: AtomicU64::new(0),
                cancelled_by_drop: AtomicU64::new(0),
                count_only: AtomicU64::new(0),
                topk_exits: AtomicU64::new(0),
                updates: AtomicU64::new(0),
                incremental: AtomicU64::new(0),
                snapshots_base: AtomicU64::new(0),
                compactions_base: AtomicU64::new(0),
                recoveries: AtomicU64::new(0),
                replayed: AtomicU64::new(0),
            },
            versioned: Mutex::new(versioned),
            standing: Mutex::new(Vec::new()),
            durable: Mutex::new(None),
            recovery: Mutex::new(None),
            config_fp,
            planner,
            cfg,
        });
        let workers = (0..core.cfg.workers.max(1))
            .map(|i| {
                let core = core.clone();
                thread::Builder::new()
                    .name(format!("sm-service-{i}"))
                    .spawn(move || worker_loop(core))
                    .expect("spawn service worker")
            })
            .collect();
        Service { core, workers }
    }

    /// Submit a query; returns immediately with the result stream.
    pub fn submit(&self, req: QueryRequest) -> ResultStream {
        self.core.submit(req)
    }

    /// Submit and block for the terminal report (count-only helper).
    pub fn run_count(&self, query: Graph) -> QueryReport {
        self.submit(QueryRequest::count(query)).wait()
    }

    /// Replace the data graph. Bumps the epoch — every cached plan
    /// compiled against the old graph becomes unreachable and is purged
    /// (an in-place [`Service::apply_update`], by contrast, keeps plans
    /// whose labels the batch did not touch). In-flight queries keep the
    /// old graph alive (via `Arc`) and finish against it. Standing
    /// queries are re-enumerated from scratch on the new graph.
    pub fn swap_graph(&self, graph: Graph) {
        let mut vg = self.core.versioned.lock().expect("versioned poisoned");
        // Fold the retiring overlay's totals into the carried bases so
        // `counters()` stays monotonic across swaps.
        let stats = vg.stats();
        self.core
            .counters
            .snapshots_base
            .fetch_add(stats.snapshots_pinned, Ordering::Relaxed);
        self.core
            .counters
            .compactions_base
            .fetch_add(stats.compactions, Ordering::Relaxed);
        let epoch = self.core.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let data = GraphData::build(graph.clone(), epoch);
        *self.core.graph.lock().expect("graph lock poisoned") = data.clone();
        *vg = VersionedGraph::new(graph);
        self.core.cache.purge_other_epochs(epoch);
        {
            let mut standing = self.core.standing.lock().expect("standing poisoned");
            for entry in standing.iter_mut() {
                entry.reenumerate(&data);
            }
        }
        // A durable service absorbs the swap into a fresh snapshot: the
        // retired WAL describes a lineage the new graph did not come
        // from, so it is pruned along with the old snapshots.
        self.write_durable_snapshot()
            .expect("durable snapshot after swap_graph failed");
    }

    /// Current data-graph epoch (0 for the construction-time graph).
    pub fn epoch(&self) -> u64 {
        self.core.epoch.load(Ordering::Relaxed)
    }

    /// Plan-cache statistics: `(hits, misses, evictions, live entries)`.
    pub fn cache_stats(&self) -> (u64, u64, u64, usize) {
        let c = &self.core.cache;
        (c.hits(), c.misses(), c.evictions(), c.len())
    }

    /// Snapshot of the service counters as a registry [`CounterBlock`]
    /// (`plan_cache_*`, `queries_*`, `embeddings_streamed`, plus the
    /// dynamic-graph counters `updates_applied`, `snapshots_pinned`,
    /// `compactions`, `delta_edges_live`, `incremental_embeddings`).
    pub fn counters(&self) -> CounterBlock {
        let mut b = CounterBlock::new();
        b.add(Counter::PlanCacheHits, self.core.cache.hits());
        b.add(Counter::PlanCacheMisses, self.core.cache.misses());
        b.add(Counter::PlanCacheEvictions, self.core.cache.evictions());
        b.add(
            Counter::QueriesAdmitted,
            self.core.counters.admitted.load(Ordering::Relaxed),
        );
        b.add(
            Counter::QueriesRejected,
            self.core.counters.rejected.load(Ordering::Relaxed),
        );
        b.add(
            Counter::EmbeddingsStreamed,
            self.core.counters.streamed.load(Ordering::Relaxed),
        );
        b.add(
            Counter::QueriesCancelledByDrop,
            self.core.counters.cancelled_by_drop.load(Ordering::Relaxed),
        );
        let stats = self
            .core
            .versioned
            .lock()
            .expect("versioned poisoned")
            .stats();
        b.add(
            Counter::UpdatesApplied,
            self.core.counters.updates.load(Ordering::Relaxed),
        );
        b.add(
            Counter::SnapshotsPinned,
            self.core.counters.snapshots_base.load(Ordering::Relaxed) + stats.snapshots_pinned,
        );
        b.add(
            Counter::Compactions,
            self.core.counters.compactions_base.load(Ordering::Relaxed) + stats.compactions,
        );
        b.record_max(Counter::DeltaEdgesLive, stats.delta_edges_live as u64);
        b.add(
            Counter::IncrementalEmbeddings,
            self.core.counters.incremental.load(Ordering::Relaxed),
        );
        b.add(
            Counter::CountOnlyRuns,
            self.core.counters.count_only.load(Ordering::Relaxed),
        );
        b.add(
            Counter::TopkEarlyExits,
            self.core.counters.topk_exits.load(Ordering::Relaxed),
        );
        b.add(Counter::SemanticsCacheSplits, self.core.cache.splits());
        {
            let durable = self.core.durable.lock().expect("durable poisoned");
            if let Some(store) = durable.as_ref() {
                b.add(Counter::WalAppends, store.wal_appends());
                b.add(Counter::WalBytes, store.wal_bytes());
                b.add(Counter::SnapshotsWritten, store.snapshots_written());
            }
        }
        b.add(
            Counter::Recoveries,
            self.core.counters.recoveries.load(Ordering::Relaxed),
        );
        b.add(
            Counter::ReplayedBatches,
            self.core.counters.replayed.load(Ordering::Relaxed),
        );
        if let Some(planner) = &self.core.planner {
            let pc = planner.counters();
            b.add(Counter::PlansAutotuned, pc.plans_autotuned);
            b.add(Counter::ReplansTriggered, pc.replans_triggered);
            b.add(Counter::FeedbackRecords, pc.feedback_records);
            b.add(Counter::EstimatorEvals, pc.estimator_evals);
        }
        b
    }

    /// The self-tuning planner, when the service runs in
    /// [`PlanSelection::Auto`] mode (`None` for fixed-pipeline services).
    /// Exposes the feedback store for durability snapshots and the
    /// planner counters for exposition.
    pub fn planner(&self) -> Option<&Arc<sm_planner::Planner>> {
        self.core.planner.as_ref()
    }

    /// A coherent telemetry snapshot: per-phase and per-outcome latency
    /// histograms, rolling-window rates, the registry counters, and the
    /// slow-query log. Render with [`MetricsReport::to_prometheus`] or
    /// fold into `sm-bench` JSON. Cheap enough to poll every second.
    pub fn metrics_report(&self) -> MetricsReport {
        self.core.metrics.report(self.counters())
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.core.sched.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Terminate any streams the shutdown stranded so no client blocks
        // forever on a dead service.
        let leftovers: Vec<Arc<QueryRun>> = {
            let mut adm = self.core.admission.lock().expect("admission poisoned");
            let mut v: Vec<Arc<QueryRun>> = adm.running.drain(..).collect();
            v.extend(adm.pending.drain(..));
            v
        };
        for run in leftovers {
            run.shared.cancel.cancel(CancelReason::Stopped);
            let agg = run.agg.lock().expect("agg poisoned");
            run.stream.finish(QueryReport {
                outcome: ServiceOutcome::Cancelled,
                matches: agg.matches,
                recursions: agg.recursions,
                cache_hit: run.cache_hit,
                plan_build_ns: run.plan_build_ns,
                elapsed: run.started.elapsed(),
            });
        }
        if self.core.cfg.trace.is_enabled() {
            self.core.cfg.trace.flush_counters(0, &self.counters());
        }
    }
}

impl ServiceCore {
    /// A born-terminal `Rejected` stream, recorded in telemetry.
    fn reject(&self, started: Instant) -> ResultStream {
        self.metrics.observe_terminal(
            ServiceOutcome::Rejected,
            started.elapsed().as_nanos() as u64,
            0,
            0,
            None,
        );
        ResultStream::terminal(QueryReport {
            outcome: ServiceOutcome::Rejected,
            matches: 0,
            recursions: 0,
            cache_hit: false,
            plan_build_ns: 0,
            elapsed: started.elapsed(),
        })
    }

    fn submit(&self, req: QueryRequest) -> ResultStream {
        let started = Instant::now();
        // Uniform sampling requires one sequential exhaustive pass — the
        // morsel-parallel service cannot honor it, so it refuses rather
        // than silently returning a biased sample.
        if matches!(req.semantics.termination, Termination::SampleK(..)) {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return self.reject(started);
        }
        // Admission: reserve a slot in the bounded system or reject now.
        {
            let mut adm = self.admission.lock().expect("admission poisoned");
            if adm.in_system >= self.cfg.max_active + self.cfg.queue_capacity {
                drop(adm);
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return self.reject(started);
            }
            adm.in_system += 1;
        }
        self.counters.admitted.fetch_add(1, Ordering::Relaxed);

        // What the engine actually runs under: termination is a per-run
        // budget (TopK folds into the cap below), so the cached plan is
        // keyed on injectivity + output only; a count filter needs to see
        // embeddings, so it forces materializing output.
        let mut engine_semantics = MatchSemantics {
            termination: Termination::All,
            ..req.semantics
        };
        if req.count_filter.is_some() {
            engine_semantics.output = OutputMode::Embeddings;
        }
        if engine_semantics.output == OutputMode::CountOnly {
            self.counters.count_only.fetch_add(1, Ordering::Relaxed);
        }

        let graph = self.graph.lock().expect("graph lock poisoned").clone();
        let plan_started = Instant::now();
        let (cached, cache_hit, canon_hash) = self.plan_for(&req.query, &graph, engine_semantics);
        let mut remap = if cache_hit {
            let form = canonical_form(&req.query).with_semantics(engine_semantics.fingerprint());
            Some(
                form.map_onto(&cached.form)
                    .expect("cache hit verified equal canonical codes"),
            )
        } else {
            None
        };
        let mut plan = cached.plan.clone();
        let mut combo = cached.combo;
        // Adaptive tail capture: a prior occurrence of this canonical
        // form crossed the slow threshold, so this one runs under a full
        // sm-trace profile. The traced plan is compiled fresh against the
        // client's own query (no remap needed) and never cached.
        let capture = if self.metrics.take_armed(canon_hash) {
            match self.compile_traced(&req.query, &graph, engine_semantics) {
                Some((traced_plan, trace)) => {
                    plan = Some(traced_plan);
                    remap = None;
                    // The traced plan is the fixed pipeline, not the
                    // planner's combo — don't misattribute its counters.
                    combo = None;
                    Some(trace)
                }
                None => None,
            }
        } else {
            None
        };
        self.metrics
            .observe_plan(plan_started.elapsed().as_nanos() as u64, cache_hit);
        let plan_build_ns = if cache_hit {
            0
        } else {
            cached.plan.as_ref().map_or(0, |p| p.plan_build_ns())
        };

        // Per-request budget on a fresh token: deadline + embedding cap.
        // A TopK termination is exactly a cap — `record_match`'s atomic
        // slot allocation already makes capped counts exact across
        // workers, so the k returned embeddings are exact, not "about k".
        let deadline = req.deadline.or(self.cfg.default_deadline);
        let cap = match (
            req.max_matches.or(self.cfg.default_cap),
            req.semantics.cap(),
        ) {
            (Some(m), Some(k)) => Some(m.min(k)),
            (m, k) => m.or(k),
        };
        let token = CancelToken::deadline_after(started, deadline);
        let stream = StreamCore::new(
            self.cfg.stream_capacity,
            token.clone(),
            self.metrics.drain_hist(),
        );
        let (entries, adaptive) = match &plan {
            None => (Vec::new(), false),
            Some(p) if p.adaptive => (Vec::new(), true),
            Some(p) => (depth0_entries(p), false),
        };
        let run = Arc::new(QueryRun {
            plan,
            graph,
            shared: SharedControl::with_token(token.clone(), cap),
            entries,
            adaptive,
            remap,
            deliver: req.deliver,
            count_filter: req.count_filter.clone(),
            filtered: AtomicU64::new(0),
            topk: matches!(req.semantics.termination, Termination::TopK(_)),
            stream: stream.clone(),
            agg: Mutex::new(RunAgg {
                matches: 0,
                recursions: 0,
                outcome: Outcome::Complete,
                counters: CounterBlock::new(),
            }),
            cache_hit,
            plan_build_ns,
            started,
            canon_hash,
            combo,
            activated_ns: AtomicU64::new(0),
            capture,
        });

        if !run.has_work() {
            // Zero-candidate plans finalize at submission, deterministically:
            // an already-expired deadline is a Deadline outcome, otherwise
            // the (empty) enumeration is Complete. Nothing is scheduled, so
            // nothing can hang.
            let outcome = match token.poll() {
                Some(CancelReason::Deadline) => ServiceOutcome::Deadline,
                Some(CancelReason::Stopped) => ServiceOutcome::Cancelled,
                None => ServiceOutcome::Complete,
            };
            let mut adm = self.admission.lock().expect("admission poisoned");
            adm.in_system -= 1;
            drop(adm);
            self.metrics
                .observe_terminal(outcome, started.elapsed().as_nanos() as u64, 0, 0, None);
            stream.finish(QueryReport {
                outcome,
                matches: 0,
                recursions: 0,
                cache_hit,
                plan_build_ns,
                elapsed: started.elapsed(),
            });
            return ResultStream::new(stream);
        }

        let activate_now = {
            let mut adm = self.admission.lock().expect("admission poisoned");
            if adm.active < self.cfg.max_active {
                adm.active += 1;
                adm.running.push(run.clone());
                true
            } else {
                adm.pending.push_back(run.clone());
                false
            }
        };
        if activate_now {
            self.activate(run);
        }
        ResultStream::new(stream)
    }

    /// Cache lookup, compiling (and populating) on a miss. The returned
    /// flag is true on a hit. Plans are shared within one semantics mode
    /// (permuted twins hit) and never across modes: the key carries the
    /// semantics fingerprint and the stored canonical form is
    /// semantics-extended, so even a hash collision across modes fails
    /// code verification.
    fn plan_for(
        &self,
        query: &Graph,
        graph: &Arc<GraphData>,
        semantics: MatchSemantics,
    ) -> (Arc<CachedPlan>, bool, u64) {
        let base = canonical_form(query);
        let canon_hash = base.hash;
        let key = PlanKey {
            epoch: graph.epoch,
            query: base.hash,
            config: self.config_fp,
            semantics: semantics.fingerprint(),
        };
        let form = base.with_semantics(semantics.fingerprint());
        if let Some(hit) = self.cache.lookup(&key, &form.code) {
            return (hit, true, canon_hash);
        }
        let ctx =
            DataContext::from_parts(&graph.graph, graph.nlf.clone(), graph.label_pairs.clone());
        // Cached plans carry a canonical compile config: per-run budget
        // fields are neutralized so one plan serves every request budget
        // (applied via SharedControl at execution time). The semantics'
        // injectivity and output mode *are* compile-relevant — the
        // pipeline drops iso-only optimizations for relaxed injectivity.
        let mut compile_cfg = self.cfg.base_config.clone();
        compile_cfg.semantics = semantics;
        compile_cfg.max_matches = None;
        compile_cfg.time_limit = None;
        compile_cfg.cancel = None;
        compile_cfg.trace = Trace::disabled();
        compile_cfg.plan = PlanSelection::Fixed;
        compile_cfg.bailout = None;
        let (plan, combo) = match &self.planner {
            // Auto mode: rank the combo space against the current graph's
            // statistics (plus any feedback already recorded for this
            // canonical form) and compile the winner. The choice is
            // cached with the plan; feedback from its runs re-ranks the
            // next compilation of this form.
            Some(planner) => match planner.choose(query, &ctx, &compile_cfg, canon_hash) {
                Some(score) => {
                    let mut auto_cfg = compile_cfg.clone();
                    auto_cfg.intersect = score.combo.kernel;
                    (
                        score
                            .combo
                            .pipeline()
                            .plan(query, &ctx, &auto_cfg)
                            .ok()
                            .map(Arc::new),
                        Some(score.combo),
                    )
                }
                // LDF proved the query unsatisfiable: cache the negative
                // verdict like a fixed-pipeline compile failure would.
                None => (None, None),
            },
            None => (
                self.cfg
                    .pipeline
                    .plan(query, &ctx, &compile_cfg)
                    .ok()
                    .map(Arc::new),
                None,
            ),
        };
        let entry = Arc::new(CachedPlan { plan, form, combo });
        self.cache.insert(key, entry.clone());
        (entry, false, canon_hash)
    }

    /// Compile `query` with a live trace attached — the adaptive
    /// tail-capture path. Cached plans deliberately carry a disabled
    /// trace (one plan serves every request), so a profiled occurrence
    /// needs its own compilation; the result is used once and never
    /// cached. Returns `None` when the query is unsatisfiable.
    fn compile_traced(
        &self,
        query: &Graph,
        graph: &Arc<GraphData>,
        semantics: MatchSemantics,
    ) -> Option<(Arc<QueryPlan>, Trace)> {
        let ctx =
            DataContext::from_parts(&graph.graph, graph.nlf.clone(), graph.label_pairs.clone());
        let trace = Trace::enabled();
        let mut compile_cfg = self.cfg.base_config.clone();
        compile_cfg.semantics = semantics;
        compile_cfg.max_matches = None;
        compile_cfg.time_limit = None;
        compile_cfg.cancel = None;
        compile_cfg.trace = trace.clone();
        compile_cfg.plan = PlanSelection::Fixed;
        compile_cfg.bailout = None;
        let plan = self.cfg.pipeline.plan(query, &ctx, &compile_cfg).ok()?;
        Some((Arc::new(plan), trace))
    }

    /// Register a runnable query's morsels with the fair scheduler.
    fn activate(&self, run: Arc<QueryRun>) {
        // Queue-wait phase ends here: admission → activation.
        let waited_ns = run.started.elapsed().as_nanos() as u64;
        run.activated_ns.store(waited_ns, Ordering::Relaxed);
        self.metrics.observe_queue_wait(waited_ns);
        let morsels: Vec<Morsel> = if run.adaptive {
            vec![Morsel {
                run: run.clone(),
                kind: MorselKind::Whole,
            }]
        } else {
            let n = run.entries.len();
            let size = morsel_size_for(n, self.cfg.workers);
            let mut out = Vec::with_capacity(n.div_ceil(size));
            let mut start = 0;
            while start < n {
                let end = (start + size).min(n);
                out.push(Morsel {
                    run: run.clone(),
                    kind: MorselKind::Entries(start..end),
                });
                start = end;
            }
            out
        };
        self.sched.register(morsels);
    }

    /// Terminal transition: build the report, finish the stream, release
    /// the admission slot and promote a pending query if any.
    fn finalize(&self, run: &Arc<QueryRun>) {
        let (matches, recursions, outcome, slow_counters, backtracks) = {
            let agg = run.agg.lock().expect("agg poisoned");
            let outcome = if run.stream.client_cancelled.load(Ordering::Relaxed) {
                ServiceOutcome::Cancelled
            } else {
                match agg.outcome {
                    Outcome::Complete => ServiceOutcome::Complete,
                    Outcome::CapReached => ServiceOutcome::CapHit,
                    Outcome::TimedOut => ServiceOutcome::Deadline,
                }
            };
            let matches = if run.count_filter.is_some() {
                run.filtered.load(Ordering::Relaxed)
            } else {
                agg.matches
            };
            // The per-query counter block only feeds the slow-query
            // log; the floor prefilter decides — before any copying or
            // allocation — whether this query can change it. Captured
            // (traced) occurrences always log so the profile attaches.
            let slow_counters = if run.capture.is_some()
                || self.metrics.should_log(outcome, run.started.elapsed())
            {
                Some(agg.counters.clone())
            } else {
                None
            };
            let backtracks = agg.counters.get(Counter::Backtracks);
            (matches, agg.recursions, outcome, slow_counters, backtracks)
        };
        if run.topk && outcome == ServiceOutcome::CapHit {
            self.counters.topk_exits.fetch_add(1, Ordering::Relaxed);
        }
        if outcome == ServiceOutcome::Cancelled
            && run.stream.client_cancelled.load(Ordering::Relaxed)
        {
            self.counters
                .cancelled_by_drop
                .fetch_add(1, Ordering::Relaxed);
        }
        let total_ns = run.started.elapsed().as_nanos() as u64;
        // Cross-run feedback: fold this run's observed cost and pruning
        // behavior into the planner's per-canonical-form store, so the
        // next compilation of this form ranks with measured costs.
        if let (Some(planner), Some(combo)) = (&self.planner, run.combo) {
            planner.observe(
                run.canon_hash,
                &sm_planner::ObservedRun {
                    combo,
                    total_ns,
                    enum_ns: total_ns.saturating_sub(run.activated_ns.load(Ordering::Relaxed)),
                    recursions,
                    backtracks,
                    completed: outcome == ServiceOutcome::Complete,
                    bailed: false,
                },
            );
        }
        let slow = slow_counters.map(|counters| {
            let profile = run.capture.as_ref().map(|trace| {
                if run.shared.cancel.poll().is_some() {
                    trace.mark_cancelled();
                }
                RunProfile::from_snapshot(
                    RunMeta {
                        dataset: "service".to_string(),
                        query: format!("{:016x}", run.canon_hash),
                        config: plan_choice(&run.plan),
                        threads: self.cfg.workers,
                        cancelled: trace.was_cancelled(),
                    },
                    &trace.snapshot(),
                )
                .render_tree()
            });
            SlowQuery {
                canon_hash: run.canon_hash,
                outcome,
                elapsed: run.started.elapsed(),
                matches,
                recursions,
                cache_hit: run.cache_hit,
                plan_build_ns: run.plan_build_ns,
                plan: plan_choice(&run.plan),
                counters,
                profile,
            }
        });
        self.metrics.observe_terminal(
            outcome,
            total_ns,
            total_ns.saturating_sub(run.activated_ns.load(Ordering::Relaxed)),
            matches,
            slow,
        );
        run.stream.finish(QueryReport {
            outcome,
            matches,
            recursions,
            cache_hit: run.cache_hit,
            plan_build_ns: run.plan_build_ns,
            elapsed: run.started.elapsed(),
        });
        let next = {
            let mut adm = self.admission.lock().expect("admission poisoned");
            adm.in_system -= 1;
            adm.active -= 1;
            adm.running.retain(|r| !Arc::ptr_eq(r, run));
            if adm.active < self.cfg.max_active {
                if let Some(next) = adm.pending.pop_front() {
                    adm.active += 1;
                    adm.running.push(next.clone());
                    Some(next)
                } else {
                    None
                }
            } else {
                None
            }
        };
        if let Some(next) = next {
            self.activate(next);
        }
    }

    /// Execute one claimed morsel (or skip it when the run's token is
    /// already cancelled, revoking the rest of the query's queued work).
    fn run_morsel(&self, morsel: &Morsel, source: SourceId, scratch: &mut Scratch) {
        let run = &morsel.run;
        if let Some(reason) = run.shared.cancel.poll() {
            self.sched.revoke(source);
            let mut agg = run.agg.lock().expect("agg poisoned");
            agg.merge_outcome(match reason {
                CancelReason::Deadline => Outcome::TimedOut,
                CancelReason::Stopped => Outcome::CapReached,
            });
            return;
        }
        let plan = run.plan.as_ref().expect("runnable runs have a plan");
        let mut sink = DeliverSink {
            run,
            out: Vec::new(),
            streamed: 0,
            passed: 0,
        };
        let stats = match &morsel.kind {
            MorselKind::Whole => Executor::new(plan, &run.graph.graph).run_with_shared(
                &run.shared,
                scratch,
                &mut sink,
            ),
            MorselKind::Entries(r) => enumerate_with(
                &EngineInput {
                    plan,
                    g: &run.graph.graph,
                    root_subset: Some(&run.entries[r.clone()]),
                    shared: Some(&run.shared),
                },
                scratch,
                &mut sink,
            ),
        };
        if sink.streamed > 0 {
            self.counters
                .streamed
                .fetch_add(sink.streamed, Ordering::Relaxed);
        }
        if sink.passed > 0 {
            run.filtered.fetch_add(sink.passed, Ordering::Relaxed);
        }
        let mut agg = run.agg.lock().expect("agg poisoned");
        agg.matches += stats.matches;
        agg.recursions += stats.recursions;
        agg.counters.merge(&stats.counters);
        agg.merge_outcome(stats.outcome);
    }
}

/// Human-readable plan choice for the slow-query log.
fn plan_choice(plan: &Option<Arc<QueryPlan>>) -> String {
    match plan {
        None => "unsatisfiable".to_string(),
        Some(p) if p.adaptive => format!("{:?} (adaptive)", p.method),
        Some(p) => format!("{:?}", p.method),
    }
}

/// Depth-0 entries in the static engine's convention (see
/// `enumerate::parallel`): candidate *positions* for the space-indexed
/// methods, data vertex ids otherwise.
fn depth0_entries(plan: &QueryPlan) -> Vec<u32> {
    let c_root = plan.candidates.get(plan.root());
    match plan.method {
        LcMethod::TreeIndex | LcMethod::Intersect => (0..c_root.len() as u32).collect(),
        _ => c_root.to_vec(),
    }
}

/// Sink delivering remapped embeddings into the run's stream (counting
/// happens in `RunControl`; count-only plans never call a sink at all).
/// When a count filter is attached, every match is remapped and tallied
/// against the predicate whether or not it is delivered.
struct DeliverSink<'a> {
    run: &'a QueryRun,
    out: Vec<VertexId>,
    streamed: u64,
    /// Matches this morsel that the run's `count_filter` accepted.
    passed: u64,
}

impl MatchSink for DeliverSink<'_> {
    fn on_match(&mut self, m: &[VertexId]) {
        let run = self.run;
        if !run.deliver && run.count_filter.is_none() {
            return;
        }
        self.out.clear();
        match &run.remap {
            Some(map) => self.out.extend(map.iter().map(|&p| m[p as usize])),
            None => self.out.extend_from_slice(m),
        }
        if let Some(filter) = &run.count_filter {
            if filter(&self.out) {
                self.passed += 1;
            }
        }
        if run.deliver && run.stream.push(std::mem::take(&mut self.out)) {
            self.streamed += 1;
        }
    }
}

fn worker_loop(core: Arc<ServiceCore>) {
    let mut scratch = Scratch::new();
    loop {
        match core.sched.claim() {
            Claim::Shutdown => break,
            Claim::Morsel { source, item } => {
                core.run_morsel(&item, source, &mut scratch);
                if core.sched.complete(source) {
                    core.finalize(&item.run);
                }
            }
        }
    }
}

/// Fingerprint of everything plan compilation depends on besides the
/// query and the data graph: the pipeline composition and the compile-
/// relevant config knobs. Per-run budget fields are deliberately
/// excluded — they do not change the compiled plan.
fn config_fingerprint(pipeline: &Pipeline, base: &MatchConfig) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    pipeline.filter.hash(&mut h);
    pipeline.order.hash(&mut h);
    pipeline.method.hash(&mut h);
    pipeline.vf2pp_rule.hash(&mut h);
    base.failing_sets.hash(&mut h);
    base.intersect.hash(&mut h);
    base.vf2pp_rule.hash(&mut h);
    // Auto and Fixed plan selection compile different pipelines for the
    // same query, so they must occupy disjoint cache-key universes.
    base.plan.hash(&mut h);
    h.finish()
}
