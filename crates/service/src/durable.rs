//! Durable services: WAL-backed updates, CSR snapshots, instant restart.
//!
//! A [`Service`] created through [`Service::new_durable`] (fresh
//! directory) or [`Service::open`] (recovery) owns an
//! [`sm_durable::DurableStore`]. From then on every *effective*
//! [`Service::apply_update`] batch is appended to the write-ahead log
//! **before** the post graph is installed, and every
//! [`Service::register_standing`] call logs a registration record — so
//! the durable directory always describes a state the service actually
//! reached, never one it is about to reach.
//!
//! Restart is "page-in + tail replay": [`Service::open`] loads the
//! newest valid `snapshot-<epoch>.csr` (the data graph and its NLF index
//! land as ready-made arrays — no text parse, no index rebuild), restores
//! the standing queries with their snapshot-stored embedding sets, then
//! replays the WAL records past the snapshot epoch through the normal
//! update path with logging disabled. A torn final record (crash mid
//! `write(2)`) is detected by the per-record CRC and dropped: recovery
//! lands on the last fully-committed epoch.

use crate::service::{patch_pairs, GraphData, Service, ServiceConfig};
use crate::update::StandingEntry;
use sm_delta::{delta_matches, Committed, UpdateBatch, VersionedGraph};
use sm_durable::{DurableStore, SnapshotData, StandingSnapshot, WalRecord};
use sm_graph::label_index::LabelPairEdgeCounts;
use sm_graph::Graph;
use std::io;
use std::path::Path;
use std::sync::atomic::Ordering;

pub use sm_durable::{DurabilityOptions, FsyncPolicy, RecoveryReport};

impl Service {
    /// Start a durable service over `graph` in a fresh directory: writes
    /// the epoch-0 snapshot (the initial graph is durable before the
    /// first update is accepted), then opens the WAL. Fails with
    /// `AlreadyExists` if `dir` already holds a snapshot — reopen that
    /// state with [`Service::open`] instead of clobbering it.
    pub fn new_durable(
        graph: Graph,
        cfg: ServiceConfig,
        dir: &Path,
        opts: DurabilityOptions,
    ) -> io::Result<Self> {
        let svc = Service::new(graph, cfg);
        let initial = svc.snapshot_data();
        let store = DurableStore::create(dir, opts, &initial)?;
        *svc.core.durable.lock().expect("durable poisoned") = Some(store);
        Ok(svc)
    }

    /// Recover a durable service from `dir`: page in the newest valid
    /// snapshot, restore its standing queries with their stored embedding
    /// sets, replay the WAL tail (batches past the snapshot epoch,
    /// registrations past the snapshot's standing count), and resume the
    /// epoch counter exactly where the crashed service left it. A torn
    /// final WAL record is dropped; a batch that replays to a different
    /// epoch than it was logged under is corruption and fails with
    /// `InvalidData`.
    pub fn open(dir: &Path, cfg: ServiceConfig, opts: DurabilityOptions) -> io::Result<Self> {
        let (store, snap, tail, report) = DurableStore::open(dir, opts)?;
        // The snapshot carries the label-pair counts, so boot skips the
        // `O(|E|)` edge rescan a fresh `Service::new` would pay.
        let data = GraphData::from_parts_with_pairs(
            snap.graph.clone(),
            snap.nlf.clone(),
            snap.label_pairs,
            snap.epoch,
        );
        let versioned = VersionedGraph::from_materialized(snap.graph, snap.nlf);
        let svc = Service::boot(data, versioned, cfg);
        for s in snap.standing {
            svc.restore_standing(&s.query, s.matches)
                .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))?;
        }
        let mut replayed = 0u64;
        // Label-pair counts are carried across the whole tail and only
        // handed to `install_head` at each flush point — like the graph
        // itself, they are patched per record but installed once.
        let mut pending_pairs: Option<LabelPairEdgeCounts> = None;
        for rec in tail {
            match rec {
                WalRecord::Batch { epoch, batch } => {
                    let (noop, new_epoch, committed) = svc.replay_batch(&batch);
                    if noop || new_epoch != epoch {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "WAL replay diverged from the logged epoch",
                        ));
                    }
                    replayed += 1;
                    let committed = committed.expect("effective replay carries its commit");
                    let prev = pending_pairs.take();
                    pending_pairs = Some(match prev {
                        Some(mut pairs) => {
                            patch_pairs(&mut pairs, &committed);
                            pairs
                        }
                        None => svc
                            .core
                            .graph
                            .lock()
                            .expect("graph lock poisoned")
                            .patched_pairs(&committed),
                    });
                }
                WalRecord::Standing { query, .. } => {
                    // Registration enumerates against the installed
                    // graph: flush deferred batch installs first.
                    if let Some(pairs) = pending_pairs.take() {
                        svc.install_head(pairs);
                    }
                    svc.register_standing_impl(&query, false).ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            "logged standing query no longer compiles",
                        )
                    })?;
                }
            }
        }
        if let Some(pairs) = pending_pairs.take() {
            svc.install_head(pairs);
        }
        // Restore the planner's learned feedback (written as a sidecar by
        // snapshots). Advisory state: a missing or corrupt image means
        // the planner re-learns, never that recovery fails.
        if let Some(planner) = &svc.core.planner {
            if let Some(bytes) = DurableStore::read_feedback(dir)? {
                let _ = planner.feedback().merge_bytes(&bytes);
            }
        }
        // Install the store only now: replay must never re-append the
        // records it is replaying.
        *svc.core.durable.lock().expect("durable poisoned") = Some(store);
        *svc.core.recovery.lock().expect("recovery poisoned") = Some(report);
        svc.core.counters.recoveries.fetch_add(1, Ordering::Relaxed);
        svc.core
            .counters
            .replayed
            .fetch_add(replayed, Ordering::Relaxed);
        Ok(svc)
    }

    /// Whether this service persists updates (created via
    /// [`Service::new_durable`] / [`Service::open`]).
    pub fn is_durable(&self) -> bool {
        self.core
            .durable
            .lock()
            .expect("durable poisoned")
            .is_some()
    }

    /// What recovery did, when this service came from [`Service::open`].
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        *self.core.recovery.lock().expect("recovery poisoned")
    }

    /// Force a snapshot now (manual compaction): writes the current
    /// state as a fresh `snapshot-<epoch>.csr`, rotates the WAL, and
    /// prunes segments and snapshots the new one supersedes. Returns
    /// `Ok(false)` on a non-durable service. Serializes against
    /// updates.
    pub fn snapshot_now(&self) -> io::Result<bool> {
        let _vg = self.core.versioned.lock().expect("versioned poisoned");
        self.write_durable_snapshot()
    }

    /// Flush the WAL to disk regardless of the fsync policy.
    pub fn sync_durable(&self) -> io::Result<()> {
        let mut durable = self.core.durable.lock().expect("durable poisoned");
        match durable.as_mut() {
            Some(store) => store.sync(),
            None => Ok(()),
        }
    }

    /// Threshold-triggered compaction, called at the end of a logged
    /// update while the versioned lock is held (so the snapshot captures
    /// exactly the epoch the update installed).
    pub(crate) fn maybe_threshold_snapshot(&self) {
        let should = {
            let durable = self.core.durable.lock().expect("durable poisoned");
            durable.as_ref().is_some_and(|s| s.should_snapshot())
        };
        if should {
            // Abort, not panic: a panic here would poison the versioned
            // lock the caller holds (see `sm_durable::durable_io`).
            sm_durable::durable_io("threshold snapshot", self.write_durable_snapshot());
        }
    }

    /// Write the current state as a snapshot if the service is durable.
    /// Callers must already hold the versioned lock (or otherwise
    /// serialize against updates). Lock order: graph → standing →
    /// durable — `durable` stays the innermost lock.
    pub(crate) fn write_durable_snapshot(&self) -> io::Result<bool> {
        // Gather before locking the store so `durable` is taken last.
        let data = self.snapshot_data();
        let mut durable = self.core.durable.lock().expect("durable poisoned");
        match durable.as_mut() {
            Some(store) => {
                store.write_snapshot(&data)?;
                // Carry the planner's learned costs through the snapshot:
                // a restart then plans with everything this incarnation
                // observed instead of starting from the cold model.
                if let Some(planner) = &self.core.planner {
                    store.write_feedback(&planner.feedback().to_bytes())?;
                }
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Current state as an [`SnapshotData`]: graph, NLF, epoch, and
    /// every standing query with its maintained embedding set.
    fn snapshot_data(&self) -> SnapshotData {
        let data = self.core.graph.lock().expect("graph lock poisoned").clone();
        let standing = self.core.standing.lock().expect("standing poisoned");
        SnapshotData {
            epoch: data.epoch,
            graph: data.graph.clone(),
            nlf: data.nlf.clone(),
            label_pairs: data.label_pairs.clone(),
            standing: standing
                .iter()
                .map(|e| StandingSnapshot {
                    query: e.sq.plan().query().clone(),
                    matches: e.matches.clone(),
                })
                .collect(),
        }
    }

    /// Replay one logged batch without installing the post graph: commit
    /// it to the overlay, advance the epoch, and bring every standing set
    /// up to date from the delta. The expensive materialize + install is
    /// deferred to [`Service::install_head`] — one fold for the whole WAL
    /// tail instead of one per record, which is what keeps restart near
    /// snapshot-load speed even with a tail to replay. Returns the commit
    /// so the caller can patch carried indices from its delta.
    fn replay_batch(&self, batch: &UpdateBatch) -> (bool, u64, Option<Committed>) {
        let core = &self.core;
        let vg = core.versioned.lock().expect("versioned poisoned");
        let old_epoch = core.epoch.load(Ordering::Relaxed);
        let committed = sm_durable::commit_batch(&vg, None, old_epoch + 1, batch)
            .expect("commit without a store cannot fail");
        if committed.info.is_noop() {
            return (true, old_epoch, None);
        }
        let new_epoch = old_epoch + 1;
        core.epoch.store(new_epoch, Ordering::Relaxed);
        let mut added = 0u64;
        let mut removed = 0u64;
        {
            let mut standing = core.standing.lock().expect("standing poisoned");
            for entry in standing.iter_mut() {
                let d = delta_matches(&entry.sq, &committed, core.cfg.workers);
                added += d.added.len() as u64;
                removed += d.removed.len() as u64;
                entry.matches = d.apply_to(&entry.matches);
            }
        }
        core.counters.updates.fetch_add(1, Ordering::Relaxed);
        core.metrics.observe_update();
        if added + removed > 0 {
            core.counters
                .incremental
                .fetch_add(added + removed, Ordering::Relaxed);
        }
        (false, new_epoch, Some(committed))
    }

    /// Install the overlay head as the service's data graph under the
    /// current epoch — the deferred install closing a replay run.
    /// `pairs` is the label-pair index the caller patched alongside the
    /// replayed commits.
    fn install_head(&self, pairs: LabelPairEdgeCounts) {
        let core = &self.core;
        let (graph, nlf) = {
            let vg = core.versioned.lock().expect("versioned poisoned");
            let (_, graph, nlf) = vg.export_head();
            (graph, nlf)
        };
        let epoch = core.epoch.load(Ordering::Relaxed);
        let data = GraphData::from_parts_with_pairs(graph, nlf, pairs, epoch);
        *core.graph.lock().expect("graph lock poisoned") = data;
    }

    /// Reinstate a standing query from a snapshot: the stored embedding
    /// set is installed as-is instead of being re-enumerated — it was
    /// maintained against exactly the graph the snapshot stores.
    fn restore_standing(
        &self,
        query: &Graph,
        matches: Vec<Vec<sm_graph::VertexId>>,
    ) -> Result<(), &'static str> {
        let sq = crate::update::standing_query(query)
            .ok_or("snapshot standing query no longer compiles")?;
        let mut standing = self.core.standing.lock().expect("standing poisoned");
        standing.push(StandingEntry { sq, matches });
        Ok(())
    }
}
