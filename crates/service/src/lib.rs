//! # sm-service — concurrent query-service layer
//!
//! Turns the compile-once/execute-many matching framework (`sm-match`)
//! plus the work-scheduling runtime (`sm-runtime`) into a long-lived,
//! multi-client **query service** over one in-memory data graph:
//!
//! - **Plan caching** — queries are canonicalized
//!   ([`sm_graph::canon`]) so isomorphic submissions (any vertex-id
//!   permutation) share one compiled [`sm_match::QueryPlan`] in a
//!   sharded LRU cache, verified by full canonical code (never by hash
//!   alone). Cache keys carry the data-graph **epoch**: swapping the
//!   graph invalidates every cached plan atomically.
//! - **Admission control & budgets** — a bounded submission system
//!   (`max_active` running + a bounded pending queue, beyond which
//!   submissions are `Rejected`), per-query deadlines and embedding
//!   caps carried by a [`sm_runtime::CancelToken`]-based
//!   `SharedControl`, applied at execution time so cached plans stay
//!   budget-free.
//! - **Fair multi-query scheduling** — each query's root candidates are
//!   split into morsels and dealt round-robin by
//!   [`sm_runtime::FairScheduler`] across a shared worker pool: a huge
//!   query cannot starve a small one.
//! - **Streaming results** — a pull-based [`ResultStream`] with a
//!   bounded buffer (backpressure blocks producers, never grows memory)
//!   delivering embeddings in the *client's* vertex ids (cache-hit
//!   remapping) and ending in exactly one of five terminal outcomes:
//!   `Complete`, `CapHit`, `Deadline`, `Cancelled`, `Rejected` — with
//!   partial counts attached.
//! - **In-place updates** — [`Service::apply_update`] commits an
//!   [`sm_delta::UpdateBatch`] against a versioned twin of the data
//!   graph, installs the materialized result without rebuilding the NLF
//!   index, invalidates only the cached plans whose labels the batch
//!   touched, and maintains registered **standing queries** by
//!   delta-driven incremental enumeration (see [`update`]).
//! - **Durability** — [`Service::new_durable`] / [`Service::open`] put
//!   an `sm-durable` write-ahead log and CSR snapshot store behind the
//!   update path: every effective batch is logged before it is
//!   installed, and restart is snapshot page-in plus WAL-tail replay
//!   (see [`durable`]).
//!
//! Zero external dependencies, like the rest of the workspace.

#![warn(missing_docs)]

pub mod cache;
pub mod durable;
pub mod metrics;
pub mod service;
pub mod stream;
pub mod update;

pub use cache::{CachedPlan, PlanCache, PlanKey};
pub use durable::{DurabilityOptions, FsyncPolicy, RecoveryReport};
pub use metrics::{MetricsConfig, MetricsReport, SlowQuery};
pub use service::{CountFilter, GraphData, QueryRequest, Service, ServiceConfig};
pub use stream::{result_channel, QueryReport, ResultSink, ResultStream, ServiceOutcome};
pub use update::{StandingError, StandingId, UpdateReport};

#[cfg(test)]
mod asserts {
    /// The service moves plans and runs across threads; these bounds are
    /// what make that legal.
    #[test]
    fn shared_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<sm_match::QueryPlan>();
        assert_send_sync::<crate::Service>();
        assert_send_sync::<crate::cache::PlanCache>();
    }
}
