//! Stand-ins for the study's datasets.
//!
//! The eight real-world graphs of the paper's Table 3 are not
//! redistributable here, so each is replaced by a deterministic RMAT
//! power-law graph matching its **shape**: vertex count (scaled down for
//! the larger graphs so the full suite runs on a laptop), average degree,
//! label-set size, and — for WordNet — the heavily skewed label
//! distribution (>80 % of vertices share one label) that drives the
//! paper's `wn` findings. The per-dataset scaling is recorded in
//! [`DatasetSpec::paper_vertices`] / [`DatasetSpec::paper_edges`] and in
//! DESIGN.md.
//!
//! Query workloads follow Table 4: per dataset, a `Q4` set plus dense
//! (`d(q) ≥ 3`) and sparse (`d(q) < 3`) sets at increasing sizes, capped
//! at 20 vertices for the two hard datasets (`hu`, `wn`) and 32 elsewhere.

#![warn(missing_docs)]

use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_graph::gen::random::{assign_labels_skewed, assign_labels_zipf};
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_graph::{Graph, GraphStats};
use std::path::{Path, PathBuf};

/// Bumped whenever the generation recipe changes, so stale cache files are
/// ignored.
pub const CACHE_VERSION: u32 = 2;

/// Zipf exponent for the label distributions of the non-WordNet datasets.
/// Real label frequencies (protein families, categories) are heavy-tailed;
/// uniform labels would make the LDF/NLF filters unrealistically strong.
pub const LABEL_ZIPF_S: f64 = 1.0;

/// Shape parameters of one stand-in dataset.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Full name, e.g. `"Yeast"`.
    pub name: &'static str,
    /// Paper abbreviation, e.g. `"ye"`.
    pub abbrev: &'static str,
    /// Paper category, e.g. `"Biology"`.
    pub category: &'static str,
    /// Stand-in vertex count (scaled for the large graphs).
    pub num_vertices: usize,
    /// Target average degree (matches Table 3).
    pub avg_degree: f64,
    /// Label-set size |Σ| (matches Table 3).
    pub num_labels: usize,
    /// Fraction of vertices sharing label 0 (WordNet's skew), if any.
    pub label_skew: Option<f64>,
    /// Generation seed.
    pub seed: u64,
    /// |V| of the original dataset, for documentation.
    pub paper_vertices: usize,
    /// |E| of the original dataset, for documentation.
    pub paper_edges: usize,
    /// Largest query size in this dataset's Table 4 workload (20 or 32).
    pub max_query_size: usize,
}

/// The eight stand-ins of Table 3, in the paper's order.
pub fn all_datasets() -> [DatasetSpec; 8] {
    [
        DatasetSpec {
            name: "Yeast",
            abbrev: "ye",
            category: "Biology",
            num_vertices: 3_112,
            avg_degree: 8.0,
            num_labels: 71,
            label_skew: None,
            seed: 0xEA01,
            paper_vertices: 3_112,
            paper_edges: 12_519,
            max_query_size: 32,
        },
        DatasetSpec {
            name: "Human",
            abbrev: "hu",
            category: "Biology",
            num_vertices: 4_674,
            avg_degree: 36.9,
            num_labels: 44,
            label_skew: None,
            seed: 0xEA02,
            paper_vertices: 4_674,
            paper_edges: 86_282,
            max_query_size: 20,
        },
        DatasetSpec {
            name: "HPRD",
            abbrev: "hp",
            category: "Biology",
            num_vertices: 9_460,
            avg_degree: 7.4,
            num_labels: 307,
            label_skew: None,
            seed: 0xEA03,
            paper_vertices: 9_460,
            paper_edges: 34_998,
            max_query_size: 32,
        },
        DatasetSpec {
            name: "WordNet",
            abbrev: "wn",
            category: "Lexical",
            num_vertices: 30_000,
            avg_degree: 3.1,
            num_labels: 5,
            label_skew: Some(0.82),
            seed: 0xEA04,
            paper_vertices: 76_853,
            paper_edges: 120_399,
            max_query_size: 20,
        },
        DatasetSpec {
            name: "US Patents",
            abbrev: "up",
            category: "Citation",
            num_vertices: 100_000,
            avg_degree: 8.8,
            num_labels: 20,
            label_skew: None,
            seed: 0xEA05,
            paper_vertices: 3_774_768,
            paper_edges: 16_518_947,
            max_query_size: 32,
        },
        DatasetSpec {
            name: "Youtube",
            abbrev: "yt",
            category: "Social",
            num_vertices: 80_000,
            avg_degree: 5.3,
            num_labels: 25,
            label_skew: None,
            seed: 0xEA06,
            paper_vertices: 1_134_890,
            paper_edges: 2_987_624,
            max_query_size: 32,
        },
        DatasetSpec {
            name: "DBLP",
            abbrev: "db",
            category: "Social",
            num_vertices: 60_000,
            avg_degree: 6.6,
            num_labels: 15,
            label_skew: None,
            seed: 0xEA07,
            paper_vertices: 317_080,
            paper_edges: 1_049_866,
            max_query_size: 32,
        },
        DatasetSpec {
            name: "eu2005",
            abbrev: "eu",
            category: "Web",
            num_vertices: 60_000,
            avg_degree: 37.4,
            num_labels: 40,
            label_skew: None,
            seed: 0xEA08,
            paper_vertices: 862_664,
            paper_edges: 16_138_468,
            max_query_size: 32,
        },
    ]
}

/// Look up a dataset by abbreviation (`ye`, `hu`, `hp`, `wn`, `up`, `yt`,
/// `db`, `eu`).
pub fn by_abbrev(abbrev: &str) -> Option<DatasetSpec> {
    all_datasets().into_iter().find(|d| d.abbrev == abbrev)
}

/// The small datasets Glasgow can handle in the paper (Section 5.5).
pub fn glasgow_capable() -> [&'static str; 3] {
    ["hp", "ye", "hu"]
}

/// Generate the stand-in graph for `spec` (deterministic).
pub fn generate(spec: &DatasetSpec) -> Graph {
    let g = rmat_graph(
        spec.num_vertices,
        spec.avg_degree,
        spec.num_labels,
        RmatParams::PAPER,
        spec.seed,
    );
    match spec.label_skew {
        Some(share) => assign_labels_skewed(&g, spec.num_labels, share, spec.seed ^ 0x5EED),
        None => assign_labels_zipf(&g, spec.num_labels, LABEL_ZIPF_S, spec.seed ^ 0x21FF),
    }
}

/// Default on-disk cache directory (`$SM_DATA_DIR` or `target/sm-datasets`).
pub fn default_cache_dir() -> PathBuf {
    std::env::var_os("SM_DATA_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/sm-datasets"))
}

/// Load the stand-in from the cache, generating and caching it on a miss.
pub fn load_or_generate(spec: &DatasetSpec, cache_dir: &Path) -> Graph {
    let path = cache_dir.join(format!("{}.v{}.graph", spec.abbrev, CACHE_VERSION));
    if path.exists() {
        if let Ok(g) = sm_graph::io::load_graph(&path) {
            return g;
        }
    }
    let g = generate(spec);
    if std::fs::create_dir_all(cache_dir).is_ok() {
        let _ = sm_graph::io::save_graph(&g, &path);
    }
    g
}

/// Table 4's query-set shapes for a dataset: `Q4` plus dense and sparse
/// sets stepping up to [`DatasetSpec::max_query_size`].
pub fn query_set_specs(spec: &DatasetSpec, queries_per_set: usize) -> Vec<QuerySetSpec> {
    let sizes: &[usize] = if spec.max_query_size == 20 {
        &[8, 12, 16, 20]
    } else {
        &[8, 16, 24, 32]
    };
    let mut out = vec![QuerySetSpec {
        num_vertices: 4,
        density: Density::Any,
        count: queries_per_set,
    }];
    for &s in sizes {
        out.push(QuerySetSpec {
            num_vertices: s,
            density: Density::Dense,
            count: queries_per_set,
        });
    }
    for &s in sizes {
        out.push(QuerySetSpec {
            num_vertices: s,
            density: Density::Sparse,
            count: queries_per_set,
        });
    }
    out
}

/// Generate one query set for a dataset (deterministic per set shape).
pub fn queries(g: &Graph, spec: &DatasetSpec, set: QuerySetSpec) -> Vec<Graph> {
    let seed = spec.seed
        ^ ((set.num_vertices as u64) << 32)
        ^ match set.density {
            Density::Dense => 0xD,
            Density::Sparse => 0x5,
            Density::Any => 0xA,
        };
    generate_query_set(g, set, seed)
}

/// A loaded dataset: spec, graph, and its realized statistics.
pub struct Dataset {
    /// The shape spec.
    pub spec: DatasetSpec,
    /// The stand-in graph.
    pub graph: Graph,
    /// Realized statistics (degree will track, not exactly equal, the
    /// target).
    pub stats: GraphStats,
}

impl Dataset {
    /// Load (or generate) the stand-in for `abbrev`.
    pub fn load(abbrev: &str) -> Option<Dataset> {
        let spec = by_abbrev(abbrev)?;
        let graph = load_or_generate(&spec, &default_cache_dir());
        let stats = GraphStats::of(&graph);
        Some(Dataset { spec, graph, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_datasets_with_unique_abbrevs() {
        let ds = all_datasets();
        assert_eq!(ds.len(), 8);
        let abbrevs: std::collections::HashSet<_> = ds.iter().map(|d| d.abbrev).collect();
        assert_eq!(abbrevs.len(), 8);
        assert!(by_abbrev("ye").is_some());
        assert!(by_abbrev("zz").is_none());
    }

    #[test]
    fn yeast_standin_matches_shape() {
        let spec = by_abbrev("ye").unwrap();
        let g = generate(&spec);
        assert_eq!(g.num_vertices(), 3112);
        let d = g.avg_degree();
        assert!((d - 8.0).abs() < 1.5, "avg degree {d}");
        assert!(g.num_labels() <= 71);
    }

    #[test]
    fn wordnet_standin_is_label_skewed() {
        let spec = by_abbrev("wn").unwrap();
        let g = generate(&spec);
        let zero = g.vertices().filter(|&v| g.label(v) == 0).count();
        let share = zero as f64 / g.num_vertices() as f64;
        assert!(share > 0.78, "dominant share {share}");
        assert!(g.num_labels() <= 5);
    }

    #[test]
    fn query_specs_follow_table4() {
        let hu = by_abbrev("hu").unwrap();
        let specs = query_set_specs(&hu, 10);
        let names: Vec<String> = specs.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["Q4", "Q8D", "Q12D", "Q16D", "Q20D", "Q8S", "Q12S", "Q16S", "Q20S"]
        );
        let ye = by_abbrev("ye").unwrap();
        let names: Vec<String> = query_set_specs(&ye, 10).iter().map(|s| s.name()).collect();
        assert!(names.contains(&"Q32D".to_string()));
        assert!(names.contains(&"Q32S".to_string()));
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = by_abbrev("ye").unwrap();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(a.vertices().all(|v| a.neighbors(v) == b.neighbors(v)));
    }

    #[test]
    fn cache_round_trip() {
        let spec = by_abbrev("ye").unwrap();
        let dir = std::env::temp_dir().join("sm_datasets_test_cache");
        let _ = std::fs::remove_dir_all(&dir);
        let g1 = load_or_generate(&spec, &dir);
        assert!(dir.join(format!("ye.v{CACHE_VERSION}.graph")).exists());
        let g2 = load_or_generate(&spec, &dir);
        assert_eq!(g1.num_edges(), g2.num_edges());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queries_have_requested_shape() {
        let spec = by_abbrev("ye").unwrap();
        let g = generate(&spec);
        let set = QuerySetSpec {
            num_vertices: 8,
            density: Density::Dense,
            count: 5,
        };
        let qs = queries(&g, &spec, set);
        assert!(!qs.is_empty());
        for q in &qs {
            assert_eq!(q.num_vertices(), 8);
            assert!(q.avg_degree() >= 3.0);
            assert!(q.is_connected());
        }
    }

    #[test]
    fn glasgow_capable_are_the_small_ones() {
        for ab in glasgow_capable() {
            let spec = by_abbrev(ab).unwrap();
            assert!(spec.num_vertices < 10_000);
        }
    }
}
