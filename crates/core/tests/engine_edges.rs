//! Engine edge cases: degenerate queries and orders the main experiments
//! never exercise.

use sm_graph::builder::graph_from_edges;
use sm_match::candidate_space::{CandidateSpace, SpaceCoverage};
use sm_match::enumerate::engine::{enumerate, EngineInput};
use sm_match::enumerate::{CollectSink, CountSink, LcMethod, MatchConfig};
use sm_match::{Algorithm, DataContext, Pipeline, QueryPlan};

fn run_engine(q: &sm_graph::Graph, g: &sm_graph::Graph, order: Vec<u32>, method: LcMethod) -> u64 {
    let qc = sm_match::QueryContext::new(q);
    let gc = DataContext::new(g);
    let cand = sm_match::filter::ldf::ldf_candidates(&qc, &gc);
    let space = method
        .needs_space()
        .then(|| CandidateSpace::build(q, g, &cand, SpaceCoverage::AllEdges, false));
    let plan = QueryPlan::assemble(
        q,
        cand,
        order,
        None,
        space,
        method,
        MatchConfig::find_all(),
        false,
    );
    let input = EngineInput {
        plan: &plan,
        g,
        root_subset: None,
        shared: None,
    };
    let mut sink = CountSink;
    enumerate(&input, &mut sink).matches
}

#[test]
fn single_vertex_query() {
    let q = graph_from_edges(&[1], &[]);
    let g = graph_from_edges(&[1, 1, 0], &[(0, 2), (1, 2)]);
    for method in [
        LcMethod::Direct,
        LcMethod::CandidateScan,
        LcMethod::Intersect,
    ] {
        assert_eq!(run_engine(&q, &g, vec![0], method), 2, "{method:?}");
    }
}

#[test]
fn disconnected_order_falls_back_to_full_scan() {
    // Order u0, u2, u1 on the path u0-u1-u2: u2 has no backward neighbor
    // when placed second; the engine must cartesian-scan its candidates
    // and still count correctly.
    let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]);
    let g = graph_from_edges(&[0, 1, 2, 2], &[(0, 1), (1, 2), (1, 3)]);
    let want = sm_match::reference::brute_force_count(&q, &g, None);
    for method in [
        LcMethod::Direct,
        LcMethod::CandidateScan,
        LcMethod::Intersect,
    ] {
        assert_eq!(
            run_engine(&q, &g, vec![0, 2, 1], method),
            want,
            "{method:?}"
        );
    }
}

#[test]
fn query_as_large_as_data() {
    // |V(q)| = |V(G)|: exactly the automorphisms survive.
    let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
    let g = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
    assert_eq!(run_engine(&q, &g, vec![0, 1, 2], LcMethod::Intersect), 6);
}

#[test]
fn query_larger_than_data_is_unmatchable() {
    let q = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
    let g = graph_from_edges(&[0, 0], &[(0, 1)]);
    assert_eq!(run_engine(&q, &g, vec![0, 1, 2, 3], LcMethod::Direct), 0);
}

#[test]
fn max_size_query_is_supported() {
    // 64-vertex path query (the framework's limit) on a long path graph.
    let n = 64usize;
    let labels = vec![0u32; n];
    let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
    let q = graph_from_edges(&labels, &edges);
    let big_labels = vec![0u32; 80];
    let big_edges: Vec<(u32, u32)> = (0..79u32).map(|i| (i, i + 1)).collect();
    let g = graph_from_edges(&big_labels, &big_edges);
    let gc = DataContext::new(&g);
    let cfg = MatchConfig::find_all().with_failing_sets(true);
    let out = Algorithm::Ri.optimized().run(&q, &gc, &cfg);
    // 17 start offsets x 2 directions
    assert_eq!(out.matches, 34);
}

#[test]
fn automorphic_query_counts_orbit_multiples() {
    // A 4-cycle has 8 automorphisms; matched into a 4-cycle data graph it
    // must report exactly 8.
    let c4 = graph_from_edges(&[0; 4], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    let gc = DataContext::new(&c4);
    for alg in Algorithm::all() {
        let out = alg.optimized().run(&c4, &gc, &MatchConfig::find_all());
        assert_eq!(out.matches, 8, "{}", alg.abbrev());
    }
}

#[test]
fn collect_sink_embeddings_are_valid() {
    let q = graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]);
    let g = graph_from_edges(&[0, 1, 0, 1, 0], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
    let gc = DataContext::new(&g);
    let p: Pipeline = Algorithm::Ceci.optimized();
    let mut sink = CollectSink::default();
    let out = p.run_with_sink(&q, &gc, &MatchConfig::find_all(), &mut sink);
    assert_eq!(out.matches as usize, sink.matches.len());
    for m in &sink.matches {
        // label-preserving
        for u in q.vertices() {
            assert_eq!(q.label(u), g.label(m[u as usize]));
        }
        // edge-preserving
        for (a, b) in q.edges() {
            assert!(g.has_edge(m[a as usize], m[b as usize]));
        }
        // injective
        let set: std::collections::HashSet<_> = m.iter().collect();
        assert_eq!(set.len(), m.len());
    }
}
