//! Component-level properties on random workloads: ordering validity,
//! candidate-space faithfulness, engine equivalence (same match *sets*,
//! not just counts), and parallel/sequential agreement.

use sm_graph::gen::query::{extract_query, Density};
use sm_graph::gen::random::erdos_renyi;
use sm_match::candidate_space::{CandidateSpace, SpaceCoverage};
use sm_match::enumerate::engine::{enumerate, EngineInput};
use sm_match::enumerate::parallel::enumerate_parallel;
use sm_match::enumerate::{CollectSink, CountSink, LcMethod, MatchConfig};
use sm_match::filter::{run_filter, FilterKind};
use sm_match::order::{is_connected_order, run_order, OrderInput, OrderKind};
use sm_match::{DataContext, QueryContext, QueryPlan};
use sm_runtime::check::Check;
use sm_runtime::rng::Rng64;
use sm_runtime::{ensure, ensure_eq};

fn workload(ds: u64, qs: u64, size: usize) -> Option<(sm_graph::Graph, sm_graph::Graph)> {
    let g = erdos_renyi(80, 240, 3, ds);
    let mut rng = Rng64::seed_from_u64(qs);
    (0..30)
        .find_map(|_| extract_query(&g, size, Density::Any, &mut rng))
        .map(|q| (g, q))
}

/// Seeds plus a query size in `3..=3 + spread`, ramping with the harness
/// size parameter so shrinking retries smaller queries.
fn arb_seeds(rng: &mut Rng64, size: u32, spread: usize) -> (u64, u64, usize) {
    let qsize = 3 + (size as usize * spread / 100).min(spread);
    (rng.gen_range(0..3000u64), rng.gen_range(0..3000u64), qsize)
}

#[test]
fn every_ordering_is_a_connected_permutation() {
    Check::new("every_ordering_is_a_connected_permutation")
        .cases(20)
        .run(
            |rng, size| arb_seeds(rng, size, 5),
            |&(ds, qs, size)| {
                let Some((g, q)) = workload(ds, qs, size) else {
                    return Ok(());
                };
                let gc = DataContext::new(&g);
                let qc = QueryContext::new(&q);
                let Some(f) = run_filter(FilterKind::Nlf, &qc, &gc) else {
                    return Ok(());
                };
                let input = OrderInput {
                    q: &qc,
                    g: &gc,
                    candidates: &f.candidates,
                    bfs_tree: None,
                    space: None,
                };
                for kind in OrderKind::all_static() {
                    let order = run_order(&kind, &input);
                    ensure!(
                        is_connected_order(&q, &order),
                        "{} gave {order:?} on seeds ({ds}, {qs})",
                        kind.name()
                    );
                }
                Ok(())
            },
        );
}

#[test]
fn candidate_space_is_faithful() {
    Check::new("candidate_space_is_faithful").cases(20).run(
        |rng, size| arb_seeds(rng, size, 4),
        |&(ds, qs, size)| {
            let Some((g, q)) = workload(ds, qs, size) else {
                return Ok(());
            };
            let gc = DataContext::new(&g);
            let qc = QueryContext::new(&q);
            let Some(f) = run_filter(FilterKind::GraphQl, &qc, &gc) else {
                return Ok(());
            };
            let c = &f.candidates;
            let space = CandidateSpace::build(&q, &g, c, SpaceCoverage::AllEdges, true);
            for (a, b) in q.edges() {
                for (pos, &v) in c.get(a).iter().enumerate() {
                    let via: Vec<u32> = space
                        .neighbors(a, pos, b)
                        .iter()
                        .map(|&p| c.get(b)[p as usize])
                        .collect();
                    let direct: Vec<u32> = c
                        .get(b)
                        .iter()
                        .copied()
                        .filter(|&w| g.has_edge(v, w))
                        .collect();
                    ensure_eq!(&via, &direct, "space vs direct on seeds ({ds}, {qs})");
                    // BSR view agrees with the flat view
                    let bsr = space.bsr_neighbors(a, pos, b).unwrap();
                    ensure_eq!(
                        bsr.to_vec(),
                        space.neighbors(a, pos, b),
                        "bsr vs flat on seeds ({ds}, {qs})"
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn engines_produce_identical_match_sets() {
    Check::new("engines_produce_identical_match_sets")
        .cases(20)
        .run(
            |rng, size| arb_seeds(rng, size, 3),
            |&(ds, qs, size)| {
                let Some((g, q)) = workload(ds, qs, size) else {
                    return Ok(());
                };
                let gc = DataContext::new(&g);
                let qc = QueryContext::new(&q);
                let Some(f) = run_filter(FilterKind::Ldf, &qc, &gc) else {
                    return Ok(());
                };
                let c = &f.candidates;
                let order: Vec<u32> = {
                    let input = OrderInput {
                        q: &qc,
                        g: &gc,
                        candidates: c,
                        bfs_tree: None,
                        space: None,
                    };
                    run_order(&OrderKind::GraphQl, &input)
                };
                let mut reference: Option<Vec<Vec<u32>>> = None;
                for method in [
                    LcMethod::Direct,
                    LcMethod::CandidateScan,
                    LcMethod::TreeIndex,
                    LcMethod::Intersect,
                ] {
                    let space = CandidateSpace::build(&q, &g, c, SpaceCoverage::AllEdges, false);
                    let plan = QueryPlan::assemble(
                        &q,
                        c.clone(),
                        order.clone(),
                        None,
                        Some(space),
                        method,
                        MatchConfig::find_all(),
                        false,
                    );
                    let input = EngineInput {
                        plan: &plan,
                        g: &g,
                        root_subset: None,
                        shared: None,
                    };
                    let mut sink = CollectSink::default();
                    enumerate(&input, &mut sink);
                    let mut ms = sink.matches;
                    ms.sort();
                    match &reference {
                        None => reference = Some(ms),
                        Some(r) => {
                            ensure_eq!(&ms, r, "{:?} on seeds ({}, {})", method, ds, qs);
                        }
                    }
                }
                Ok(())
            },
        );
}

#[test]
fn parallel_equals_sequential() {
    Check::new("parallel_equals_sequential").cases(20).run(
        |rng, size| {
            let (ds, qs, qsize) = arb_seeds(rng, size, 3);
            (ds, qs, qsize, rng.gen_range(2usize..5))
        },
        |&(ds, qs, size, threads)| {
            let Some((g, q)) = workload(ds, qs, size) else {
                return Ok(());
            };
            let gc = DataContext::new(&g);
            let qc = QueryContext::new(&q);
            let Some(f) = run_filter(FilterKind::Nlf, &qc, &gc) else {
                return Ok(());
            };
            let c = &f.candidates;
            let order: Vec<u32> = {
                let input = OrderInput {
                    q: &qc,
                    g: &gc,
                    candidates: c,
                    bfs_tree: None,
                    space: None,
                };
                run_order(&OrderKind::Ri, &input)
            };
            let space = CandidateSpace::build(&q, &g, c, SpaceCoverage::AllEdges, false);
            let plan = QueryPlan::assemble(
                &q,
                c.clone(),
                order,
                None,
                Some(space),
                LcMethod::Intersect,
                MatchConfig::find_all(),
                false,
            );
            let input = EngineInput {
                plan: &plan,
                g: &g,
                root_subset: None,
                shared: None,
            };
            let mut seq = CountSink;
            let seq_stats = enumerate(&input, &mut seq);
            let (par_stats, _) = enumerate_parallel::<CountSink>(&input, threads);
            ensure_eq!(
                par_stats.matches,
                seq_stats.matches,
                "threads={} seeds ({}, {})",
                threads,
                ds,
                qs
            );
            Ok(())
        },
    );
}
