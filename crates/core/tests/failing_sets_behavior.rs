//! Behavioural tests for failing-set pruning: it must preserve exact
//! counts (safety) *and* demonstrably shrink the search tree on
//! conflict-heavy workloads (effectiveness) — the two halves of the
//! paper's Section 5.4 claim.

use sm_graph::builder::graph_from_edges;
use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_match::{Algorithm, DataContext, MatchConfig};

#[test]
fn pruning_shrinks_search_trees_on_hard_workloads() {
    // Moderately labeled sparse graph: matches are rare and deep partial
    // embeddings die late, which is where failing sets pay off. (With too
    // few labels queries are match-rich and both runs just race to the
    // cap along identical prefixes; with a strong filter the dead ends
    // are pruned before enumeration.)
    let g = rmat_graph(5_000, 6.0, 6, RmatParams::PAPER, 0xFACE);
    let gc = DataContext::new(&g);
    let queries = generate_query_set(
        &g,
        QuerySetSpec {
            num_vertices: 14,
            density: Density::Sparse,
            count: 8,
        },
        0xBEEF,
    );
    assert!(!queries.is_empty());
    // Cap high enough that failure regions dominate (matches are rare at
    // |Sigma| = 6) but bounded so a pathological query can't run away.
    let cap = MatchConfig {
        max_matches: Some(50_000),
        time_limit: Some(std::time::Duration::from_secs(5)),
        ..Default::default()
    };
    let cap_fs = MatchConfig {
        failing_sets: true,
        ..cap.clone()
    };
    let pipeline = Algorithm::Ri.optimized();
    let mut total_wo = 0u64;
    let mut total_w = 0u64;
    for q in &queries {
        let wo = pipeline.run(q, &gc, &cap);
        let w = pipeline.run(q, &gc, &cap_fs);
        if wo.unsolved() || w.unsolved() {
            continue; // timing-truncated runs are not comparable
        }
        assert_eq!(wo.matches, w.matches, "counts must not change");
        assert!(w.recursions <= wo.recursions, "pruning may only shrink");
        total_wo += wo.recursions;
        total_w += w.recursions;
    }
    assert!(
        total_w < total_wo,
        "failing sets should prune something across {} hard queries ({} vs {})",
        queries.len(),
        total_w,
        total_wo
    );
}

#[test]
fn emptyset_class_prunes_siblings() {
    // Crafted instance: u3's candidates are constrained only by u0 (its
    // single backward neighbor under the natural order), while u1/u2 have
    // many interchangeable candidates. When u3 dead-ends, every (u1, u2)
    // sibling combination dead-ends identically; the failing set
    // {u0, u3} lets the engine skip them all.
    //
    // q: u0(A) - u1(B), u0 - u2(B), u0 - u3(C)   (star)
    let q = graph_from_edges(&[0, 1, 1, 2], &[(0, 1), (0, 2), (0, 3)]);
    // G: one A-hub wired to many Bs, and a single C that is NOT adjacent
    // to the hub (so u3 always fails).
    let mut labels = vec![0u32];
    let mut edges = Vec::new();
    for i in 1..=20u32 {
        labels.push(1);
        edges.push((0, i));
    }
    labels.push(2); // v21: the lone C, attached to a B instead
    edges.push((1, 21));
    let g = graph_from_edges(&labels, &edges);
    let gc = DataContext::new(&g);
    // LDF keeps the doomed C-candidate (an advanced filter would remove
    // it up front and leave the engine nothing to prune); a fixed order
    // puts u3 last so its dead end sits below the B x B cross product.
    let pipeline = sm_match::Pipeline::new(
        "fs-demo",
        sm_match::FilterKind::Ldf,
        sm_match::OrderKind::Fixed(vec![0, 1, 2, 3]),
        sm_match::LcMethod::Intersect,
    );
    let wo = pipeline.run(&q, &gc, &MatchConfig::find_all());
    let w = pipeline.run(&q, &gc, &MatchConfig::find_all().with_failing_sets(true));
    assert_eq!(wo.matches, 0);
    assert_eq!(w.matches, 0);
    assert!(
        w.recursions * 4 < wo.recursions,
        "sibling skip should collapse the B×B cross product: {} vs {}",
        w.recursions,
        wo.recursions
    );
}

#[test]
fn conflict_class_prunes_on_injectivity_deadends() {
    // Two same-labeled query vertices forced onto one data vertex: every
    // branch dies on the same conflict; with failing sets the engine
    // stops retrying unrelated assignments.
    // q: u0(A)-u1(B)-u2(A)-u3(B)-u0 (4-cycle, alternating labels)
    let q = graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    // G: a 4-cycle with only ONE A vertex duplicated requirement broken:
    // A appears once, so u0 and u2 always collide.
    let g = graph_from_edges(
        &[0, 1, 1, 1, 1],
        &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)],
    );
    let gc = DataContext::new(&g);
    let pipeline = sm_match::Pipeline::new(
        "fs-conflict",
        sm_match::FilterKind::Ldf,
        sm_match::OrderKind::Fixed(vec![0, 1, 2, 3]),
        sm_match::LcMethod::Intersect,
    );
    let wo = pipeline.run(&q, &gc, &MatchConfig::find_all());
    let w = pipeline.run(&q, &gc, &MatchConfig::find_all().with_failing_sets(true));
    assert_eq!(wo.matches, 0);
    assert_eq!(w.matches, 0);
    assert!(w.recursions <= wo.recursions);
}

#[test]
fn adaptive_engine_prunes_too() {
    let g = rmat_graph(3_000, 6.0, 6, RmatParams::PAPER, 0xBEEF);
    let gc = DataContext::new(&g);
    let queries = generate_query_set(
        &g,
        QuerySetSpec {
            num_vertices: 12,
            density: Density::Sparse,
            count: 5,
        },
        0xB0B,
    );
    let pipeline = Algorithm::DpIso.optimized();
    let cfg = MatchConfig {
        max_matches: Some(50_000),
        time_limit: Some(std::time::Duration::from_secs(5)),
        ..Default::default()
    };
    let cfg_fs = MatchConfig {
        failing_sets: true,
        ..cfg.clone()
    };
    for q in &queries {
        let wo = pipeline.run(q, &gc, &cfg);
        let w = pipeline.run(q, &gc, &cfg_fs);
        if wo.unsolved() || w.unsolved() {
            continue;
        }
        assert_eq!(wo.matches, w.matches);
        assert!(w.recursions <= wo.recursions);
    }
}
