//! Cross-product smoke test: every (filter × order × LC-method) pipeline
//! must report the same match count on the same workload — sequentially
//! and with 4 workers sharing one compiled plan — and the morsel path
//! must actually reuse its per-worker scratch arenas.

use sm_graph::gen::query::{extract_query, Density};
use sm_graph::gen::random::erdos_renyi;
use sm_graph::Graph;
use sm_match::enumerate::parallel::ParallelStrategy;
use sm_match::enumerate::{LcMethod, MatchConfig};
use sm_match::filter::FilterKind;
use sm_match::order::OrderKind;
use sm_match::reference::brute_force_count;
use sm_match::{DataContext, Pipeline};
use sm_runtime::rng::Rng64;

const METHODS: [LcMethod; 4] = [
    LcMethod::Direct,
    LcMethod::CandidateScan,
    LcMethod::TreeIndex,
    LcMethod::Intersect,
];

/// Run all combinations on one workload; every combo must agree with
/// `want` at 1 thread and at 4 threads (morsel and static distribution).
fn check_all_combos(q: &Graph, g: &Graph, want: u64) {
    let gc = DataContext::new(g);
    let cfg = MatchConfig::find_all();
    for filter in FilterKind::all() {
        for order in OrderKind::all_static() {
            for method in METHODS {
                let name = format!("{filter:?}/{order:?}/{method:?}");
                let p = Pipeline::new(&name, filter, order.clone(), method);
                let seq = p.run(q, &gc, &cfg);
                assert_eq!(seq.matches, want, "sequential {name}");
                for strategy in [ParallelStrategy::Morsel, ParallelStrategy::Static] {
                    let par = p.run_parallel_with(q, &gc, &cfg, 4, strategy);
                    assert_eq!(par.matches, want, "{strategy:?} x4 {name}");
                }
            }
        }
    }
}

#[test]
fn all_combos_agree_on_the_paper_fixture() {
    let q = sm_match::fixtures::paper_query();
    let g = sm_match::fixtures::paper_data();
    let want = brute_force_count(&q, &g, None);
    assert_eq!(want, 1);
    check_all_combos(&q, &g, want);
}

#[test]
fn all_combos_agree_on_a_random_workload() {
    let g = erdos_renyi(120, 420, 3, 0xC0FFEE);
    let mut rng = Rng64::seed_from_u64(7);
    let q = (0..50)
        .find_map(|_| extract_query(&g, 5, Density::Any, &mut rng))
        .expect("workload generation");
    let want = brute_force_count(&q, &g, None);
    check_all_combos(&q, &g, want);
}

#[test]
fn morsel_workers_reuse_their_scratch_arenas() {
    // Few labels on a larger graph → many depth-0 roots → every worker
    // drains several morsels, so each reuses its arena after the first.
    let g = erdos_renyi(400, 1200, 2, 0xBEEF);
    let mut rng = Rng64::seed_from_u64(11);
    let q = (0..50)
        .find_map(|_| extract_query(&g, 4, Density::Any, &mut rng))
        .expect("workload generation");
    let gc = DataContext::new(&g);
    let cfg = MatchConfig::find_all();
    let p = Pipeline::new(
        "GQL/GQL/Intersect",
        FilterKind::GraphQl,
        OrderKind::GraphQl,
        LcMethod::Intersect,
    );
    let out = p.run_parallel_with(&q, &gc, &cfg, 4, ParallelStrategy::Morsel);
    let seq = p.run(&q, &gc, &cfg);
    assert_eq!(out.matches, seq.matches);
    assert!(
        out.scratch_reuse > 0,
        "morsel steady state must reuse worker scratch (got {})",
        out.scratch_reuse
    );
    let pool = out.parallel.expect("parallel metrics");
    assert_eq!(pool.total_scratch_reuse(), out.scratch_reuse);
}
