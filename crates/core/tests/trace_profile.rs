//! End-to-end observability tests: a traced pipeline run must produce a
//! structurally valid profile that survives the JSONL round trip, and a
//! *cancelled* run must still close every span and flush its partial
//! counters — the trace of an interrupted run is complete, not corrupt.

use sm_graph::builder::graph_from_edges;
use sm_graph::Graph;
use sm_match::enumerate::parallel::ParallelStrategy;
use sm_match::{Algorithm, DataContext, MatchConfig, Outcome, Pipeline};
use sm_runtime::trace::profile::{RunMeta, RunProfile};
use sm_runtime::{CancelReason, CancelToken, Counter, Trace};

/// A same-label clique: `n·(n-1)` matches for a single-edge query, plenty
/// of work to interrupt.
fn clique(n: usize) -> Graph {
    let labels = vec![0u32; n];
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            edges.push((a, b));
        }
    }
    graph_from_edges(&labels, &edges)
}

fn profile_of(trace: &Trace, threads: usize) -> RunProfile {
    RunProfile::from_snapshot(
        RunMeta {
            dataset: "test".into(),
            query: "q".into(),
            config: "cell".into(),
            threads,
            cancelled: trace.was_cancelled(),
        },
        &trace.snapshot(),
    )
}

#[test]
fn sequential_run_round_trips_through_jsonl() {
    let q = sm_match::fixtures::paper_query();
    let g = sm_match::fixtures::paper_data();
    let gc = DataContext::new(&g);
    let trace = Trace::enabled();
    let p = Algorithm::GraphQl.optimized();
    let cfg = MatchConfig::default().with_trace(trace.clone());
    let out = {
        let _run = trace.span("run");
        p.run(&q, &gc, &cfg)
    };
    assert_eq!(out.matches, 1);

    let profile = profile_of(&trace, 1);
    profile.validate().expect("structurally valid");
    // Span nesting: plan and execute under run, filter under plan.
    let names: Vec<&str> = profile.spans.iter().map(|s| s.name.as_str()).collect();
    for phase in ["run", "plan", "filter", "order", "build", "execute"] {
        assert!(names.contains(&phase), "missing {phase} in {names:?}");
    }
    let by_name = |n: &str| profile.spans.iter().find(|s| s.name == n).unwrap();
    assert_eq!(by_name("plan").parent, Some(by_name("run").id));
    assert_eq!(by_name("filter").parent, Some(by_name("plan").id));
    assert_eq!(by_name("execute").parent, Some(by_name("run").id));
    // Monotone timestamps along the phases.
    assert!(by_name("filter").start_ns <= by_name("order").start_ns);
    assert!(by_name("order").start_ns <= by_name("build").start_ns);
    assert!(by_name("build").end_ns <= by_name("execute").end_ns);
    // Counters made it through the flush.
    assert_eq!(profile.totals.get(Counter::Matches), 1);
    assert!(profile.totals.get(Counter::Recursions) >= 1);
    assert!(profile.totals.get(Counter::PeakDepth) >= 1);

    // JSONL round trip preserves everything.
    let text = profile.to_jsonl();
    let back = RunProfile::parse_jsonl(&text).expect("re-parse");
    assert_eq!(back, profile);
    back.validate().expect("still valid after round trip");
}

#[test]
fn parallel_totals_are_the_sum_of_worker_blocks() {
    let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
    let g = clique(12);
    let gc = DataContext::new(&g);
    let trace = Trace::enabled();
    let p = Algorithm::GraphQl.optimized();
    let cfg = MatchConfig::find_all().with_trace(trace.clone());
    let out = {
        let _run = trace.span("run");
        p.run_parallel_with(&q, &gc, &cfg, 4, ParallelStrategy::Morsel)
    };
    assert_eq!(out.outcome, Outcome::Complete);
    assert!(out.matches > 0);

    let profile = profile_of(&trace, 4);
    // validate() checks totals == merge of per-worker blocks; also assert
    // the sum property directly for the additive counters we care about.
    profile.validate().expect("valid parallel profile");
    assert!(
        profile.counters.len() >= 2,
        "expected multiple worker blocks"
    );
    let sum: u64 = profile
        .counters
        .iter()
        .map(|(_, b)| b.get(Counter::Matches))
        .sum();
    assert_eq!(sum, profile.totals.get(Counter::Matches));
    assert_eq!(profile.totals.get(Counter::Matches), out.matches);
    assert!(profile.totals.get(Counter::MorselsExecuted) > 0);
    // Worker spans hang under the coordinator's parallel span.
    let names: Vec<&str> = profile.spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"parallel"), "{names:?}");
    assert!(names.contains(&"worker"), "{names:?}");
    assert!(names.contains(&"morsel"), "{names:?}");
    // Round trip.
    let back = RunProfile::parse_jsonl(&profile.to_jsonl()).unwrap();
    assert_eq!(back, profile);
}

#[test]
fn cancelled_run_still_produces_a_complete_trace() {
    // Cap a huge find-all at 5 matches: the run is cancelled mid-flight.
    let q = graph_from_edges(&[0, 0], &[(0, 1)]);
    let g = clique(40); // 1560 matches available
    let gc = DataContext::new(&g);
    let trace = Trace::enabled();
    let p = Algorithm::GraphQl.optimized();
    let cfg = MatchConfig {
        max_matches: Some(5),
        trace: trace.clone(),
        ..Default::default()
    };
    let out = {
        let _run = trace.span("run");
        p.run_parallel_with(&q, &gc, &cfg, 2, ParallelStrategy::Morsel)
    };
    assert_eq!(out.outcome, Outcome::CapReached);

    assert!(
        trace.was_cancelled(),
        "cap hit must mark the trace cancelled"
    );
    let profile = profile_of(&trace, 2);
    assert!(profile.meta.cancelled);
    // Every span is closed despite the early unwind, and partial counters
    // were flushed (validate also re-checks totals vs per-worker blocks).
    profile
        .validate()
        .expect("cancelled run trace is well-formed");
    assert!(profile.totals.get(Counter::Matches) >= 5);
    assert!(profile.totals.get(Counter::Recursions) > 0);
    // The control ring logged the cap hit.
    let cap_hits: Vec<_> = profile
        .events
        .iter()
        .flat_map(|we| we.tail.iter())
        .filter(|e| e.kind == sm_runtime::EventKind::CapHit)
        .collect();
    assert!(!cap_hits.is_empty(), "expected a cap_hit event");
    assert!(cap_hits.iter().all(|e| e.arg == 5));
    // Round trip of a cancelled profile too.
    let back = RunProfile::parse_jsonl(&profile.to_jsonl()).unwrap();
    assert_eq!(back, profile);
}

#[test]
fn caller_cancellation_closes_spans() {
    // A token cancelled before the run starts: the engines stop almost
    // immediately, yet the trace must still be coherent.
    let q = sm_match::fixtures::paper_query();
    let g = sm_match::fixtures::paper_data();
    let gc = DataContext::new(&g);
    let token = CancelToken::new();
    token.cancel(CancelReason::Stopped);
    let trace = Trace::enabled();
    let p = Pipeline::new(
        "t",
        sm_match::FilterKind::GraphQl,
        sm_match::OrderKind::GraphQl,
        sm_match::LcMethod::Intersect,
    );
    let cfg = MatchConfig::find_all()
        .with_cancel(token)
        .with_trace(trace.clone());
    let _ = {
        let _run = trace.span("run");
        p.run(&q, &gc, &cfg)
    };
    let profile = profile_of(&trace, 1);
    profile
        .validate()
        .expect("well-formed despite instant cancel");
    assert!(profile.spans.iter().all(|s| s.end_ns != u64::MAX));
}

#[test]
fn disabled_trace_leaves_no_footprint_but_stats_still_carry_counters() {
    let q = sm_match::fixtures::paper_query();
    let g = sm_match::fixtures::paper_data();
    let gc = DataContext::new(&g);
    let p = Algorithm::GraphQl.optimized();
    let cfg = MatchConfig::default(); // trace disabled
    let out = p.run(&q, &gc, &cfg);
    assert_eq!(out.matches, 1);
    // The disabled handle records nothing...
    let snap = Trace::disabled().snapshot();
    assert!(snap.spans.is_empty());
    assert!(snap.counters.is_empty());
    // ...but EnumStats counters are populated regardless of tracing.
    let plan = p.plan(&q, &gc, &cfg).unwrap();
    let mut sink = sm_match::enumerate::CountSink;
    let stats = sm_match::Executor::new(&plan, gc.graph).run(&mut sink);
    assert_eq!(stats.counters.get(Counter::Matches), 1);
    assert!(stats.counters.get(Counter::Recursions) >= 1);
}
