//! End-to-end parallel correctness on a skewed workload: the morsel
//! work-stealing executor must return exactly the sequential match count
//! for the space-backed pipelines at every thread count, and the skewed
//! subtree sizes of an RMAT graph must actually trigger steals.

use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_match::enumerate::parallel::ParallelStrategy;
use sm_match::{Algorithm, DataContext, MatchConfig};

#[test]
fn workstealing_matches_sequential_on_skewed_rmat() {
    // RMAT's power-law degree distribution concentrates enumeration work
    // under a few hub-rooted subtrees — the adversarial case for a static
    // partition and the motivating case for stealing.
    let g = rmat_graph(8_000, 8.0, 4, RmatParams::PAPER, 0x57EA1);
    let gc = DataContext::new(&g);
    let queries = generate_query_set(
        &g,
        QuerySetSpec {
            num_vertices: 6,
            density: Density::Dense,
            count: 3,
        },
        0x57EA2,
    );
    assert!(!queries.is_empty());
    let cfg = MatchConfig {
        max_matches: Some(200_000),
        time_limit: None,
        ..Default::default()
    };

    let mut total_steals = 0u64;
    for alg in [Algorithm::GraphQl, Algorithm::Cfl, Algorithm::Ceci] {
        let pipeline = alg.optimized();
        for q in &queries {
            let seq = pipeline.run(q, &gc, &cfg);
            for threads in [1usize, 2, 4, 8] {
                let par =
                    pipeline.run_parallel_with(q, &gc, &cfg, threads, ParallelStrategy::Morsel);
                assert_eq!(
                    par.matches, seq.matches,
                    "{} at {threads} threads diverged from sequential",
                    pipeline.name
                );
                assert_eq!(par.unsolved(), seq.unsolved());
                match &par.parallel {
                    Some(m) => {
                        assert!(threads > 1, "sequential runs must not carry pool metrics");
                        assert_eq!(m.workers.len(), threads);
                        assert!(
                            m.total_morsels() > 0,
                            "{} at {threads} threads executed no morsels",
                            pipeline.name
                        );
                        total_steals += m.total_steals();
                    }
                    None => assert_eq!(threads, 1),
                }
            }
        }
    }
    // Skewed subtrees leave some workers idle while hub morsels run long:
    // across 3 pipelines x 3 queries x {2,4,8} threads at least one
    // rebalancing steal must have happened.
    assert!(
        total_steals > 0,
        "no steals across the whole skewed workload"
    );
}
