//! Cross-mode correctness of [`MatchSemantics`]: every injectivity mode
//! agrees with a brute-force reference on random workloads, the modes
//! obey the containment inequality `homo >= edge-injective >= iso`,
//! count-only runs count exactly what materializing runs materialize,
//! top-k returns exactly k valid embeddings under 1 and 4 threads, and
//! reservoir sampling is deterministic and valid.

use sm_graph::gen::query::{extract_query, Density};
use sm_graph::gen::random::erdos_renyi;
use sm_graph::{Graph, VertexId};
use sm_match::enumerate::{CollectSink, CountSink};
use sm_match::{
    Algorithm, DataContext, Injectivity, MatchConfig, MatchSemantics, Outcome, Pipeline,
};
use sm_runtime::check::Check;
use sm_runtime::rng::Rng64;
use sm_runtime::{ensure, ensure_eq};

/// Brute-force count of query→data mappings under a given injectivity
/// rule: every query edge must map to a data edge; `Isomorphism`
/// additionally requires distinct data vertices, `EdgeInjective`
/// distinct (undirected) data edges, `Homomorphism` nothing.
fn brute_count(q: &Graph, g: &Graph, inj: Injectivity) -> u64 {
    fn recurse(
        q: &Graph,
        g: &Graph,
        inj: Injectivity,
        m: &mut Vec<VertexId>,
        used_edges: &mut Vec<(VertexId, VertexId)>,
    ) -> u64 {
        let u = m.len() as VertexId;
        if u as usize == q.num_vertices() {
            return 1;
        }
        let mut total = 0;
        'outer: for v in 0..g.num_vertices() as VertexId {
            if g.label(v) != q.label(u) {
                continue;
            }
            if inj == Injectivity::Isomorphism && m.contains(&v) {
                continue;
            }
            let base = used_edges.len();
            for ub in 0..u {
                let adjacent = q.neighbors(u).contains(&ub);
                if !adjacent {
                    continue;
                }
                let vb = m[ub as usize];
                if !g.neighbors(v).contains(&vb) {
                    used_edges.truncate(base);
                    continue 'outer;
                }
                if inj == Injectivity::EdgeInjective {
                    let e = (vb.min(v), vb.max(v));
                    if used_edges.contains(&e) {
                        used_edges.truncate(base);
                        continue 'outer;
                    }
                    used_edges.push(e);
                }
            }
            m.push(v);
            total += recurse(q, g, inj, m, used_edges);
            m.pop();
            used_edges.truncate(base);
        }
        total
    }
    recurse(q, g, inj, &mut Vec::new(), &mut Vec::new())
}

fn workload(data_seed: u64, query_seed: u64, qsize: usize) -> Option<(Graph, Graph)> {
    let g = erdos_renyi(40, 90, 3, data_seed);
    let mut rng = Rng64::seed_from_u64(query_seed);
    for _ in 0..30 {
        if let Some(q) = extract_query(&g, qsize, Density::Any, &mut rng) {
            return Some((g, q));
        }
    }
    None
}

fn arb_workload(rng: &mut Rng64, size: u32) -> (u64, u64, usize) {
    let qsize = 3 + (size as usize * 2 / 100).min(2); // 3..=5
    (rng.gen_range(0..5000u64), rng.gen_range(0..5000u64), qsize)
}

/// Pipelines covering both engines: the static engine (GraphQL-style
/// plan) and the adaptive DP-iso engine.
fn pipelines() -> Vec<Pipeline> {
    vec![Algorithm::GraphQl.optimized(), Algorithm::DpIso.optimized()]
}

#[test]
fn every_mode_agrees_with_brute_force() {
    Check::new("every_mode_agrees_with_brute_force")
        .cases(12)
        .run(arb_workload, |&(data_seed, query_seed, qsize)| {
            let Some((g, q)) = workload(data_seed, query_seed, qsize) else {
                return Ok(());
            };
            let gc = DataContext::new(&g);
            for inj in [
                Injectivity::Isomorphism,
                Injectivity::EdgeInjective,
                Injectivity::Homomorphism,
            ] {
                let want = brute_count(&q, &g, inj);
                let sem = MatchSemantics {
                    injectivity: inj,
                    ..MatchSemantics::default()
                };
                for p in pipelines() {
                    let cfg = MatchConfig::find_all().with_semantics(sem);
                    let out = p.run(&q, &gc, &cfg);
                    ensure_eq!(
                        out.matches,
                        want,
                        "{} under {} on seeds ({}, {})",
                        p.name,
                        inj.name(),
                        data_seed,
                        query_seed
                    );
                }
            }
            Ok(())
        });
}

#[test]
fn mode_counts_obey_containment() {
    // Every isomorphism is edge-injective, every edge-injective mapping
    // is a homomorphism — the counts must be ordered accordingly.
    Check::new("mode_counts_obey_containment").cases(12).run(
        arb_workload,
        |&(data_seed, query_seed, qsize)| {
            let Some((g, q)) = workload(data_seed, query_seed, qsize) else {
                return Ok(());
            };
            let gc = DataContext::new(&g);
            let count = |inj| {
                let sem = MatchSemantics {
                    injectivity: inj,
                    ..MatchSemantics::default()
                };
                Algorithm::GraphQl
                    .optimized()
                    .run(&q, &gc, &MatchConfig::find_all().with_semantics(sem))
                    .matches
            };
            let iso = count(Injectivity::Isomorphism);
            let edge = count(Injectivity::EdgeInjective);
            let homo = count(Injectivity::Homomorphism);
            ensure!(
                homo >= edge && edge >= iso,
                "containment violated: homo {homo} >= edge {edge} >= iso {iso} \
                 on seeds ({data_seed}, {query_seed})"
            );
            Ok(())
        },
    );
}

#[test]
fn known_fixture_separates_the_modes() {
    use sm_graph::builder::graph_from_edges;
    // Path query u0-u1-u2 on a single data edge: homomorphisms fold the
    // path onto the edge (2 ways), but both path edges map to the same
    // data edge, so edge-injective and isomorphic counts are zero.
    let q = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
    let g = graph_from_edges(&[0, 0], &[(0, 1)]);
    let gc = DataContext::new(&g);
    let run = |inj| {
        let sem = MatchSemantics {
            injectivity: inj,
            ..MatchSemantics::default()
        };
        Algorithm::GraphQl
            .optimized()
            .run(&q, &gc, &MatchConfig::find_all().with_semantics(sem))
            .matches
    };
    assert_eq!(run(Injectivity::Homomorphism), 2);
    assert_eq!(run(Injectivity::EdgeInjective), 0);
    assert_eq!(run(Injectivity::Isomorphism), 0);
    // On a 3-path, walks of length 2 exist that reuse the middle edge:
    // homo 6, edge-injective 2 (= iso — no walk can reuse an edge
    // without folding vertices too, here).
    let p3 = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
    let gc3 = DataContext::new(&p3);
    let run3 = |inj| {
        let sem = MatchSemantics {
            injectivity: inj,
            ..MatchSemantics::default()
        };
        Algorithm::GraphQl
            .optimized()
            .run(&q, &gc3, &MatchConfig::find_all().with_semantics(sem))
            .matches
    };
    assert_eq!(run3(Injectivity::Homomorphism), 6);
    assert_eq!(run3(Injectivity::EdgeInjective), 2);
    assert_eq!(run3(Injectivity::Isomorphism), 2);
}

#[test]
fn count_only_equals_materialized_length() {
    // For every filter × order combination the paper's algorithms span,
    // a count-only run reports exactly the number of embeddings the
    // materializing run collects.
    let Some((g, q)) = workload(11, 17, 4) else {
        panic!("workload generation failed");
    };
    let gc = DataContext::new(&g);
    for alg in Algorithm::all() {
        let p = alg.optimized();
        let mut sink = CollectSink::default();
        p.run_with_sink(&q, &gc, &MatchConfig::find_all(), &mut sink);
        let mut count_sink = CountSink;
        let cfg = MatchConfig::find_all().with_semantics(MatchSemantics::default().count_only());
        let stats = p.run_with_sink(&q, &gc, &cfg, &mut count_sink);
        assert_eq!(
            stats.matches,
            sink.matches.len() as u64,
            "{} count-only disagrees with materialization",
            alg.abbrev()
        );
    }
}

/// Validate that `m` is a genuine isomorphic embedding of `q` in `g`.
fn is_valid_embedding(q: &Graph, g: &Graph, m: &[VertexId]) -> bool {
    if m.len() != q.num_vertices() {
        return false;
    }
    for (u, &v) in m.iter().enumerate() {
        if g.label(v) != q.label(u as VertexId) {
            return false;
        }
        if m.iter().filter(|&&w| w == v).count() != 1 {
            return false;
        }
        for &ub in q.neighbors(u as VertexId) {
            if !g.neighbors(v).contains(&m[ub as usize]) {
                return false;
            }
        }
    }
    true
}

#[test]
fn top_k_returns_exactly_k_valid_embeddings() {
    let Some((g, q)) = workload(23, 29, 3) else {
        panic!("workload generation failed");
    };
    let gc = DataContext::new(&g);
    let pipeline = Algorithm::GraphQl.optimized();
    let total = pipeline.run(&q, &gc, &MatchConfig::find_all()).matches;
    let k = (total / 2).max(1);
    let cfg = MatchConfig::find_all().with_semantics(MatchSemantics::default().top_k(k));
    let plan = pipeline.plan(&q, &gc, &cfg).expect("satisfiable");
    let exec = sm_match::Executor::new(&plan, &g);

    // Sequential.
    let mut sink = CollectSink::default();
    let stats = exec.run(&mut sink);
    assert_eq!(stats.matches, k);
    assert_eq!(stats.outcome, Outcome::CapReached);
    assert_eq!(sink.matches.len() as u64, k);
    assert!(sink.matches.iter().all(|m| is_valid_embedding(&q, &g, m)));

    // 4 workers: the atomic slot allocator keeps the cap exact.
    let (par_stats, sinks) = exec
        .run_parallel::<CollectSink>(4, sm_match::enumerate::parallel::ParallelStrategy::Morsel);
    assert_eq!(par_stats.matches, k, "cap exact across 4 workers");
    let collected: Vec<&Vec<VertexId>> = sinks.iter().flat_map(|s| s.matches.iter()).collect();
    assert_eq!(collected.len() as u64, k);
    assert!(collected.iter().all(|m| is_valid_embedding(&q, &g, m)));
}

#[test]
fn sample_k_is_deterministic_and_valid() {
    let Some((g, q)) = workload(31, 37, 3) else {
        panic!("workload generation failed");
    };
    let gc = DataContext::new(&g);
    let pipeline = Algorithm::GraphQl.optimized();
    let total = pipeline.run(&q, &gc, &MatchConfig::find_all()).matches;
    assert!(total > 0, "fixture must have matches");
    let k = 3u64.min(total);
    let cfg = MatchConfig::find_all().with_semantics(MatchSemantics::default().sample_k(k, 42));
    let plan = pipeline.plan(&q, &gc, &cfg).expect("satisfiable");
    let exec = sm_match::Executor::new(&plan, &g);
    let (stats, samples) = exec.run_sample();
    // Sampling enumerates to exhaustion: the count stays exact.
    assert_eq!(stats.matches, total);
    assert_eq!(samples.len() as u64, k.min(total));
    assert!(samples.iter().all(|m| is_valid_embedding(&q, &g, m)));
    let (_, again) = sm_match::Executor::new(&plan, &g).run_sample();
    assert_eq!(samples, again, "same seed, same sample");
}
