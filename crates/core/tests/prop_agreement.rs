//! The framework's central correctness property: every composition of
//! filter × ordering × enumeration finds exactly the matches the
//! brute-force reference finds, on arbitrary random graphs and queries.

use sm_graph::gen::query::{extract_query, Density};
use sm_graph::gen::random::erdos_renyi;
use sm_match::reference::brute_force_count;
use sm_match::{Algorithm, DataContext, MatchConfig};
use sm_runtime::check::Check;
use sm_runtime::rng::Rng64;
use sm_runtime::{ensure, ensure_eq};

/// Generate a (data graph, query) pair from seeds.
fn workload(
    data_seed: u64,
    query_seed: u64,
    qsize: usize,
) -> Option<(sm_graph::Graph, sm_graph::Graph)> {
    let g = erdos_renyi(60, 150, 3, data_seed);
    let mut rng = Rng64::seed_from_u64(query_seed);
    for _ in 0..30 {
        if let Some(q) = extract_query(&g, qsize, Density::Any, &mut rng) {
            return Some((g, q));
        }
    }
    None
}

/// Seeds and query size for one random workload. Query size ramps with
/// the harness size parameter so shrinking retries smaller queries.
fn arb_workload(rng: &mut Rng64, size: u32) -> (u64, u64, usize) {
    let qsize = 3 + (size as usize * 4 / 100).min(3); // 3..=6
    (rng.gen_range(0..5000u64), rng.gen_range(0..5000u64), qsize)
}

#[test]
fn all_algorithms_agree_with_brute_force() {
    Check::new("all_algorithms_agree_with_brute_force")
        .cases(24)
        .run(arb_workload, |&(data_seed, query_seed, qsize)| {
            let Some((g, q)) = workload(data_seed, query_seed, qsize) else {
                return Ok(());
            };
            let want = brute_force_count(&q, &g, None);
            let gc = DataContext::new(&g);
            let cfg = MatchConfig::find_all();
            let cfg_fs = MatchConfig::find_all().with_failing_sets(true);
            for alg in Algorithm::all() {
                let o = alg.original().run(&q, &gc, &cfg);
                ensure_eq!(
                    o.matches,
                    want,
                    "O-{} on seeds ({}, {})",
                    alg.abbrev(),
                    data_seed,
                    query_seed
                );
                let p = alg.optimized().run(&q, &gc, &cfg);
                ensure_eq!(
                    p.matches,
                    want,
                    "{} on seeds ({}, {})",
                    alg.abbrev(),
                    data_seed,
                    query_seed
                );
                let f = alg.optimized().run(&q, &gc, &cfg_fs);
                ensure_eq!(
                    f.matches,
                    want,
                    "{}fs on seeds ({}, {})",
                    alg.abbrev(),
                    data_seed,
                    query_seed
                );
            }
            // the historical state-space baselines
            let mut sink = sm_match::enumerate::CountSink;
            let vf2 = sm_match::vf2::vf2_match(&q, &g, &cfg, &mut sink);
            ensure_eq!(
                vf2.matches,
                want,
                "VF2 on seeds ({}, {})",
                data_seed,
                query_seed
            );
            let ull = sm_match::ullmann::ullmann_match(&q, &g, &cfg, &mut sink);
            ensure_eq!(
                ull.matches,
                want,
                "Ullmann on seeds ({}, {})",
                data_seed,
                query_seed
            );
            Ok(())
        });
}

#[test]
fn filters_preserve_completeness() {
    use sm_match::filter::{run_filter, FilterKind};
    use sm_match::reference::brute_force_matches;
    use sm_match::QueryContext;

    Check::new("filters_preserve_completeness").cases(24).run(
        arb_workload,
        |&(data_seed, query_seed, qsize)| {
            let Some((g, q)) = workload(data_seed, query_seed, qsize) else {
                return Ok(());
            };
            let matches = brute_force_matches(&q, &g, None);
            let gc = DataContext::new(&g);
            let qc = QueryContext::new(&q);
            for kind in FilterKind::all() {
                let out = run_filter(kind, &qc, &gc);
                if matches.is_empty() {
                    continue; // empty candidate sets are fine with no matches
                }
                let Some(out) = out else {
                    return Err(format!(
                        "{} produced empty candidates but {} matches exist (seeds {}, {})",
                        kind.name(),
                        matches.len(),
                        data_seed,
                        query_seed
                    ));
                };
                for m in &matches {
                    for (u, &v) in m.iter().enumerate() {
                        ensure!(
                            out.candidates.get(u as u32).contains(&v),
                            "{} dropped ({}, {}) from a real match (seeds {}, {})",
                            kind.name(),
                            u,
                            v,
                            data_seed,
                            query_seed
                        );
                    }
                }
            }
            Ok(())
        },
    );
}
