//! Shared fixtures modelled on the paper's running example (Figure 1).
//!
//! Used by unit tests, integration tests, doc examples and the quickstart;
//! public so downstream crates can reuse them.

use sm_graph::builder::graph_from_edges;
use sm_graph::Graph;

/// Label constants for readability: A=0, B=1, C=2, D=3.
pub const A: u32 = 0;
/// Label B.
pub const B: u32 = 1;
/// Label C.
pub const C: u32 = 2;
/// Label D.
pub const D: u32 = 3;

/// The query of Figure 1(a): `u0(A)` adjacent to `u1(B)` and `u2(C)`;
/// triangle `u0-u1-u2`; `u3(D)` adjacent to `u1` and `u2`.
pub fn paper_query() -> Graph {
    graph_from_edges(&[A, B, C, D], &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
}

/// A data graph in the spirit of Figure 1(b): 13 vertices, one hub `v0(A)`
/// connected to alternating B/C vertices, pendant A vertices, and a D
/// triangle at the bottom. Exactly one match of [`paper_query`] exists:
/// `{(u0,v0), (u1,v4), (u2,v5), (u3,v12)}`.
pub fn paper_data() -> Graph {
    graph_from_edges(
        &[A, C, B, C, B, C, B, A, A, A, D, D, D],
        &[
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5),
            (0, 6),
            (1, 2),
            (4, 5),
            (5, 6),
            (1, 9),
            (2, 7),
            (3, 10),
            (4, 10),
            (4, 12),
            (5, 12),
            (5, 11),
            (6, 8),
            (10, 11),
            (11, 12),
        ],
    )
}

/// The unique match of [`paper_query`] in [`paper_data`], as the mapping
/// `M[u] = v` indexed by query vertex.
pub fn paper_match() -> Vec<u32> {
    vec![0, 4, 5, 12]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_shapes() {
        let q = paper_query();
        assert_eq!(q.num_vertices(), 4);
        assert_eq!(q.num_edges(), 5);
        let g = paper_data();
        assert_eq!(g.num_vertices(), 13);
        assert!(g.is_connected());
    }

    #[test]
    fn declared_match_is_valid() {
        let q = paper_query();
        let g = paper_data();
        let m = paper_match();
        for u in q.vertices() {
            assert_eq!(q.label(u), g.label(m[u as usize]));
        }
        for (u, u2) in q.edges() {
            assert!(g.has_edge(m[u as usize], m[u2 as usize]));
        }
    }
}
