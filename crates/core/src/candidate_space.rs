//! The auxiliary data structure `A` (paper notation): edges between
//! candidate sets.
//!
//! For a directed query-vertex pair `(u, u')` with `e(u, u') ∈ E(q)` and a
//! candidate `v ∈ C(u)`, `A[u→u'](v) = N(v) ∩ C(u')` — stored as sorted
//! *positions into* `C(u')` so the enumeration engines can chain lookups
//! without binary-searching data vertex ids back to candidate slots.
//!
//! Coverage is configurable, reproducing the structural difference the
//! paper measures in Figure 9:
//!
//! * [`SpaceCoverage::TreeEdges`] — CFL's compressed path index keeps only
//!   the BFS-tree edges (parent → child).
//! * [`SpaceCoverage::AllEdges`] — CECI's compact embedding cluster index
//!   and DP-iso's candidate space keep every query edge, in both
//!   directions, enabling the set-intersection local-candidate computation
//!   (Algorithm 5).
//!
//! When built with `with_bsr`, each adjacency slice is additionally
//! encoded as a [`BsrSet`] so the QFilter-style engine (Figure 10) avoids
//! per-lookup conversion.

use crate::candidates::Candidates;
use sm_graph::traversal::BfsTree;
use sm_graph::{Graph, VertexId};
use sm_intersect::BsrSet;

/// Which query edges the space materializes.
#[derive(Clone, Copy, Debug)]
pub enum SpaceCoverage<'t> {
    /// Only BFS-tree edges, parent → child (CFL).
    TreeEdges(&'t BfsTree),
    /// Every query edge, both directions (CECI / DP-iso).
    AllEdges,
}

/// Adjacency between two candidate sets, CSR over positions.
struct EdgeList {
    offsets: Vec<u32>,
    /// Positions into `C(target)`, sorted ascending per source candidate.
    targets: Vec<u32>,
    /// Optional BSR encoding of each slice.
    bsr: Option<Vec<BsrSet>>,
}

/// The auxiliary structure `A`.
pub struct CandidateSpace {
    nq: usize,
    /// `pair_slot[u * nq + u'] = index into lists`, `u32::MAX` if absent.
    pair_slot: Vec<u32>,
    lists: Vec<EdgeList>,
}

const NO_SLOT: u32 = u32::MAX;

impl CandidateSpace {
    /// Build `A` for query `q` over `cand`, materializing the directed
    /// pairs selected by `coverage`.
    pub fn build(
        q: &Graph,
        g: &Graph,
        cand: &Candidates,
        coverage: SpaceCoverage<'_>,
        with_bsr: bool,
    ) -> Self {
        let nq = q.num_vertices();
        // Collect directed pairs (source → target) grouped by target so the
        // position scatter array is filled once per target vertex.
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
        match coverage {
            SpaceCoverage::TreeEdges(tree) => {
                for &u in &tree.order {
                    let p = tree.parent[u as usize];
                    if p != sm_graph::types::NO_VERTEX {
                        pairs.push((p, u));
                    }
                }
            }
            SpaceCoverage::AllEdges => {
                for (a, b) in q.edges() {
                    pairs.push((a, b));
                    pairs.push((b, a));
                }
            }
        }
        pairs.sort_unstable_by_key(|&(_, t)| t);

        let mut pair_slot = vec![NO_SLOT; nq * nq];
        let mut lists = Vec::with_capacity(pairs.len());
        // Scatter: data vertex -> position+1 in C(target).
        let mut pos_of: Vec<u32> = vec![0; g.num_vertices()];
        let mut i = 0usize;
        while i < pairs.len() {
            let target = pairs[i].1;
            let ct = cand.get(target);
            for (p, &v) in ct.iter().enumerate() {
                pos_of[v as usize] = p as u32 + 1;
            }
            while i < pairs.len() && pairs[i].1 == target {
                let source = pairs[i].0;
                let cs = cand.get(source);
                let mut offsets = Vec::with_capacity(cs.len() + 1);
                let mut targets = Vec::new();
                offsets.push(0u32);
                for &v in cs {
                    for &w in g.neighbors(v) {
                        let p = pos_of[w as usize];
                        if p != 0 {
                            targets.push(p - 1);
                        }
                    }
                    assert!(
                        targets.len() <= u32::MAX as usize,
                        "candidate space exceeds u32 offset range"
                    );
                    offsets.push(targets.len() as u32);
                }
                let bsr = with_bsr.then(|| {
                    (0..cs.len())
                        .map(|s| {
                            BsrSet::from_sorted(
                                &targets[offsets[s] as usize..offsets[s + 1] as usize],
                            )
                        })
                        .collect()
                });
                pair_slot[source as usize * nq + target as usize] = lists.len() as u32;
                lists.push(EdgeList {
                    offsets,
                    targets,
                    bsr,
                });
                i += 1;
            }
            for &v in ct {
                pos_of[v as usize] = 0;
            }
        }
        CandidateSpace {
            nq,
            pair_slot,
            lists,
        }
    }

    /// Whether the directed pair `(from, to)` is materialized.
    #[inline]
    pub fn has_pair(&self, from: VertexId, to: VertexId) -> bool {
        self.pair_slot[from as usize * self.nq + to as usize] != NO_SLOT
    }

    /// `A[from→to](v)` where `v = C(from)[pos]`: sorted positions into
    /// `C(to)` of the candidates adjacent to `v`.
    #[inline]
    pub fn neighbors(&self, from: VertexId, pos: usize, to: VertexId) -> &[u32] {
        let slot = self.pair_slot[from as usize * self.nq + to as usize];
        debug_assert_ne!(slot, NO_SLOT, "pair ({from}→{to}) not materialized");
        let list = &self.lists[slot as usize];
        &list.targets[list.offsets[pos] as usize..list.offsets[pos + 1] as usize]
    }

    /// BSR view of [`CandidateSpace::neighbors`]; only available when built
    /// with `with_bsr`.
    #[inline]
    pub fn bsr_neighbors(&self, from: VertexId, pos: usize, to: VertexId) -> Option<&BsrSet> {
        let slot = self.pair_slot[from as usize * self.nq + to as usize];
        debug_assert_ne!(slot, NO_SLOT);
        self.lists[slot as usize].bsr.as_ref().map(|b| &b[pos])
    }

    /// Total memory footprint in bytes (the paper's auxiliary-structure
    /// memory metric).
    pub fn memory_bytes(&self) -> usize {
        let mut total = self.pair_slot.len() * 4;
        for l in &self.lists {
            total += (l.offsets.len() + l.targets.len()) * 4;
            if let Some(bsr) = &l.bsr {
                total += bsr
                    .iter()
                    .map(|s| s.num_blocks() * 8 + std::mem::size_of::<BsrSet>())
                    .sum::<usize>();
            }
        }
        total
    }

    /// Total number of candidate-edge entries (for tests/metrics).
    pub fn num_entries(&self) -> usize {
        self.lists.iter().map(|l| l.targets.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_data, paper_query};
    use crate::{DataContext, QueryContext};
    use sm_graph::traversal::BfsTree;

    fn setup() -> (sm_graph::Graph, sm_graph::Graph, Candidates) {
        let q = paper_query();
        let g = paper_data();
        let (c, _) = {
            let qc = QueryContext::new(&q);
            let gc = DataContext::new(&g);
            crate::filter::cfl::cfl_candidates(&qc, &gc)
        };
        (q, g, c)
    }

    #[test]
    fn all_edges_coverage_has_both_directions() {
        let (q, g, c) = setup();
        let space = CandidateSpace::build(&q, &g, &c, SpaceCoverage::AllEdges, false);
        for (a, b) in q.edges() {
            assert!(space.has_pair(a, b));
            assert!(space.has_pair(b, a));
        }
    }

    #[test]
    fn tree_coverage_has_only_parent_to_child() {
        let (q, g, c) = setup();
        let tree = BfsTree::build(&q, 0);
        let space = CandidateSpace::build(&q, &g, &c, SpaceCoverage::TreeEdges(&tree), false);
        for &u in &tree.order {
            let p = tree.parent[u as usize];
            if p != sm_graph::types::NO_VERTEX {
                assert!(space.has_pair(p, u));
                assert!(!space.has_pair(u, p));
            }
        }
    }

    #[test]
    fn neighbor_lists_match_graph_adjacency() {
        let (q, g, c) = setup();
        let space = CandidateSpace::build(&q, &g, &c, SpaceCoverage::AllEdges, false);
        for (a, b) in q.edges() {
            for (pos, &v) in c.get(a).iter().enumerate() {
                let via_space: Vec<u32> = space
                    .neighbors(a, pos, b)
                    .iter()
                    .map(|&p| c.get(b)[p as usize])
                    .collect();
                let direct: Vec<u32> = c
                    .get(b)
                    .iter()
                    .copied()
                    .filter(|&w| g.has_edge(v, w))
                    .collect();
                assert_eq!(via_space, direct, "pair ({a}→{b}) candidate {v}");
            }
        }
    }

    #[test]
    fn bsr_views_agree_with_flat() {
        let (q, g, c) = setup();
        let space = CandidateSpace::build(&q, &g, &c, SpaceCoverage::AllEdges, true);
        for (a, b) in q.edges() {
            for pos in 0..c.get(a).len() {
                let flat = space.neighbors(a, pos, b);
                let bsr = space.bsr_neighbors(a, pos, b).unwrap();
                assert_eq!(bsr.to_vec(), flat);
            }
        }
    }

    #[test]
    fn memory_accounting_positive() {
        let (q, g, c) = setup();
        let space = CandidateSpace::build(&q, &g, &c, SpaceCoverage::AllEdges, false);
        assert!(space.memory_bytes() > 0);
        assert!(space.num_entries() > 0);
    }
}
