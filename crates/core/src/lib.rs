//! The common subgraph-matching framework of *"In-Memory Subgraph
//! Matching: An In-depth Study"* (Sun & Luo, SIGMOD 2020).
//!
//! The paper factors every backtracking subgraph-matching algorithm into
//! four pluggable pieces (its Algorithm 1):
//!
//! 1. a **filtering method** that computes a complete candidate set
//!    `C(u)` for every query vertex — [`filter`];
//! 2. an **ordering method** that picks the matching order `φ` —
//!    [`order`];
//! 3. an **enumeration method** that backtracks over partial embeddings,
//!    differing in how local candidates `LC(u, M)` are computed —
//!    [`enumerate`];
//! 4. **optimizations**, chiefly DP-iso's failing-set pruning —
//!    [`enumerate::failing_sets`].
//!
//! [`Pipeline`] wires a choice of each into a runnable matcher: it
//! compiles the choices into a [`QueryPlan`] (built once per run) which an
//! [`Executor`] then runs — sequentially or shared immutably across
//! parallel workers, each with a reusable per-worker scratch arena.
//! [`Algorithm`] provides the paper's eight named configurations (both the
//! *original* compositions and the *optimized* variants of Section 5.2).
//!
//! # Quickstart
//!
//! ```
//! use sm_graph::builder::graph_from_edges;
//! use sm_match::{Algorithm, DataContext, MatchConfig};
//!
//! // Figure 1 of the paper: triangle query with a tail, small data graph.
//! let q = graph_from_edges(&[0, 1, 2, 3], &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
//! let g = graph_from_edges(
//!     &[0, 2, 1, 2, 1, 2, 1, 0, 0, 0, 3, 3, 3],
//!     &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (1, 2),
//!       (4, 5), (5, 6), (1, 9), (2, 7), (3, 10), (4, 10), (4, 12), (5, 12),
//!       (5, 11), (6, 8), (10, 11), (11, 12)],
//! );
//! let ctx = DataContext::new(&g);
//! let out = Algorithm::GraphQl.optimized().run(&q, &ctx, &MatchConfig::default());
//! assert_eq!(out.matches, 1); // {(u0,v0),(u1,v4),(u2,v5),(u3,v12)}
//! ```

#![warn(missing_docs)]

pub mod algorithm;
pub mod candidate_space;
pub mod candidates;
pub mod context;
pub mod enumerate;
pub mod exec;
pub mod filter;
pub mod fixtures;
pub mod order;
pub mod pipeline;
pub mod plan;
pub mod reference;
pub mod spectrum;
pub mod ullmann;
pub mod util;
pub mod vf2;

pub use algorithm::{recommended, Algorithm};
pub use candidate_space::CandidateSpace;
pub use candidates::Candidates;
pub use context::{DataContext, QueryContext};
pub use enumerate::control::BailoutMonitor;
pub use enumerate::scratch::Scratch;
pub use enumerate::{
    EnumStats, Injectivity, LcMethod, MatchConfig, MatchSemantics, Outcome, OutputMode,
    PlanSelection, Termination, DEFAULT_MATCH_CAP,
};
pub use exec::Executor;
pub use filter::FilterKind;
pub use order::OrderKind;
pub use pipeline::{MatchOutput, Pipeline};
pub use plan::QueryPlan;
