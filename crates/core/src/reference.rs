//! A deliberately simple brute-force matcher used as ground truth in
//! tests. It shares no code with the engines: plain recursive extension
//! over a fixed natural order with direct label/degree/adjacency checks.

use sm_graph::types::NO_VERTEX;
use sm_graph::{Graph, VertexId};

/// Count all subgraph isomorphisms from `q` to `g`, optionally capped.
/// Exponential; intended for graphs with at most a few hundred vertices.
pub fn brute_force_count(q: &Graph, g: &Graph, cap: Option<u64>) -> u64 {
    let mut out = Vec::new();
    brute_force_inner(q, g, cap, false, &mut out)
}

/// Collect all matches (each indexed by query vertex id).
pub fn brute_force_matches(q: &Graph, g: &Graph, cap: Option<u64>) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    brute_force_inner(q, g, cap, true, &mut out);
    out
}

fn brute_force_inner(
    q: &Graph,
    g: &Graph,
    cap: Option<u64>,
    collect: bool,
    out: &mut Vec<Vec<VertexId>>,
) -> u64 {
    let n = q.num_vertices();
    if n == 0 {
        return 0;
    }
    // Order query vertices connectedly (DFS from 0) so adjacency checks
    // bind early; for disconnected queries fall back to natural order.
    let order = connected_order_or_natural(q);
    let mut m = vec![NO_VERTEX; n];
    let mut used = vec![false; g.num_vertices()];
    let mut count = 0u64;
    extend(
        q, g, &order, 0, &mut m, &mut used, &mut count, cap, collect, out,
    );
    count
}

fn connected_order_or_natural(q: &Graph) -> Vec<VertexId> {
    let n = q.num_vertices();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut stack = vec![0 as VertexId];
    while let Some(u) = stack.pop() {
        if seen[u as usize] {
            continue;
        }
        seen[u as usize] = true;
        order.push(u);
        for &u2 in q.neighbors(u) {
            if !seen[u2 as usize] {
                stack.push(u2);
            }
        }
    }
    for u in 0..n as VertexId {
        if !seen[u as usize] {
            order.push(u);
        }
    }
    order
}

#[allow(clippy::too_many_arguments)]
fn extend(
    q: &Graph,
    g: &Graph,
    order: &[VertexId],
    depth: usize,
    m: &mut [VertexId],
    used: &mut [bool],
    count: &mut u64,
    cap: Option<u64>,
    collect: bool,
    out: &mut Vec<Vec<VertexId>>,
) -> bool {
    if depth == order.len() {
        *count += 1;
        if collect {
            out.push(m.to_vec());
        }
        return cap.is_some_and(|c| *count >= c);
    }
    let u = order[depth];
    'cand: for v in g.vertices() {
        if used[v as usize] || g.label(v) != q.label(u) || g.degree(v) < q.degree(u) {
            continue;
        }
        for &u2 in q.neighbors(u) {
            let v2 = m[u2 as usize];
            if v2 != NO_VERTEX && !g.has_edge(v, v2) {
                continue 'cand;
            }
        }
        m[u as usize] = v;
        used[v as usize] = true;
        let stop = extend(q, g, order, depth + 1, m, used, count, cap, collect, out);
        used[v as usize] = false;
        m[u as usize] = NO_VERTEX;
        if stop {
            return true;
        }
    }
    false
}

/// Validate one mapping as a subgraph isomorphism per Definition 2.1:
/// label-preserving, edge-preserving and injective. `m` is indexed by
/// query vertex id.
///
/// ```
/// use sm_match::fixtures::{paper_data, paper_match, paper_query};
/// use sm_match::reference::is_valid_match;
/// assert!(is_valid_match(&paper_query(), &paper_data(), &paper_match()));
/// assert!(!is_valid_match(&paper_query(), &paper_data(), &[0, 0, 0, 0]));
/// ```
pub fn is_valid_match(q: &Graph, g: &Graph, m: &[VertexId]) -> bool {
    if m.len() != q.num_vertices() {
        return false;
    }
    // injective
    let mut seen = std::collections::HashSet::with_capacity(m.len());
    for &v in m {
        if v as usize >= g.num_vertices() || !seen.insert(v) {
            return false;
        }
    }
    // label- and edge-preserving
    q.vertices().all(|u| q.label(u) == g.label(m[u as usize]))
        && q.edges()
            .all(|(a, b)| g.has_edge(m[a as usize], m[b as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_data, paper_match, paper_query};
    use sm_graph::builder::graph_from_edges;

    #[test]
    fn fixture_has_exactly_one_match() {
        let q = paper_query();
        let g = paper_data();
        assert_eq!(brute_force_count(&q, &g, None), 1);
        assert_eq!(brute_force_matches(&q, &g, None), vec![paper_match()]);
    }

    #[test]
    fn triangle_in_k4_has_24_matches() {
        // Unlabeled triangle in K4: 4 choose 3 * 3! = 24 ordered embeddings.
        let tri = graph_from_edges(&[0; 3], &[(0, 1), (1, 2), (0, 2)]);
        let k4 = graph_from_edges(&[0; 4], &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(brute_force_count(&tri, &k4, None), 24);
    }

    #[test]
    fn labels_restrict_matches() {
        let edge = graph_from_edges(&[0, 1], &[(0, 1)]);
        let g = graph_from_edges(&[0, 1, 1], &[(0, 1), (0, 2), (1, 2)]);
        // A-B edges from v0: to v1 and v2 → 2 matches
        assert_eq!(brute_force_count(&edge, &g, None), 2);
    }

    #[test]
    fn cap_respected() {
        let edge = graph_from_edges(&[0, 0], &[(0, 1)]);
        let k4 = graph_from_edges(&[0; 4], &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(brute_force_count(&edge, &k4, Some(5)), 5);
        assert_eq!(brute_force_count(&edge, &k4, None), 12);
    }

    #[test]
    fn match_validation() {
        let q = paper_query();
        let g = paper_data();
        assert!(is_valid_match(&q, &g, &paper_match()));
        // wrong length
        assert!(!is_valid_match(&q, &g, &[0, 4, 5]));
        // non-injective
        assert!(!is_valid_match(&q, &g, &[0, 4, 4, 12]));
        // label mismatch
        assert!(!is_valid_match(&q, &g, &[1, 4, 5, 12]));
        // out of range
        assert!(!is_valid_match(&q, &g, &[0, 4, 5, 99]));
        // missing edge
        assert!(!is_valid_match(&q, &g, &[0, 2, 5, 12]));
    }

    #[test]
    fn no_match_when_label_absent() {
        let q = graph_from_edges(&[9, 9], &[(0, 1)]);
        let g = graph_from_edges(&[0, 0], &[(0, 1)]);
        assert_eq!(brute_force_count(&q, &g, None), 0);
    }
}
