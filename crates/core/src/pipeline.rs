//! [`Pipeline`]: one concrete composition of Algorithm 1 — a filter, an
//! ordering, an enumeration method — runnable against a query, with the
//! per-phase timings the paper reports (preprocessing vs enumeration).
//!
//! A pipeline run has two halves: [`Pipeline::plan`] compiles a
//! [`QueryPlan`] (filter → order → auxiliary structure → derived tables),
//! and an [`Executor`] runs it — sequentially, or shared immutably across
//! the workers of a parallel run. The plan is built exactly once per run;
//! no engine re-derives order/parent/label tables.

use crate::candidate_space::{CandidateSpace, SpaceCoverage};
use crate::context::{DataContext, QueryContext};
use crate::enumerate::parallel::ParallelStrategy;
use crate::enumerate::{CountSink, EnumStats, LcMethod, MatchConfig, MatchSink, Outcome};
use crate::exec::Executor;
use crate::filter::{run_filter_traced, FilterKind};
use crate::order::{run_order, OrderInput, OrderKind};
use crate::plan::QueryPlan;
use sm_graph::traversal::BfsTree;
use sm_graph::types::NO_VERTEX;
use sm_graph::{Graph, VertexId};
use sm_intersect::IntersectKind;
use std::time::{Duration, Instant};

/// A full matching configuration: which filter, which ordering, which
/// local-candidate method.
#[derive(Clone, Debug)]
pub struct Pipeline {
    /// Display name (e.g. `"GQLfs"` in Figure 16).
    pub name: String,
    /// Filtering method.
    pub filter: FilterKind,
    /// Ordering method ([`OrderKind::Adaptive`] switches to the adaptive
    /// engine).
    pub order: OrderKind,
    /// Local-candidate computation (ignored by the adaptive engine, which
    /// always intersects).
    pub method: LcMethod,
    /// Force VF2++'s extra runtime rule (original VF2++ composition).
    pub vf2pp_rule: bool,
}

/// Result of one pipeline run, carrying the paper's metrics.
#[derive(Clone, Debug)]
pub struct MatchOutput {
    /// Matches found (exact when `outcome == Complete`).
    pub matches: u64,
    /// Search-tree nodes visited.
    pub recursions: u64,
    /// Why the run ended.
    pub outcome: Outcome,
    /// Time in the filtering step.
    pub filter_time: Duration,
    /// Time building the auxiliary structure and plan tables.
    pub build_time: Duration,
    /// Time computing the matching order.
    pub order_time: Duration,
    /// Time enumerating (executing the plan).
    pub enum_time: Duration,
    /// Average candidate count `Σ|C(u)| / |V(q)|` (Figure 8 metric).
    pub candidate_avg: f64,
    /// Bytes held by the candidate sets.
    pub candidate_memory: usize,
    /// Bytes held by the auxiliary structure.
    pub space_memory: usize,
    /// Per-worker morsel/steal/busy/scratch counters (parallel runs only).
    pub parallel: Option<sm_runtime::PoolMetrics>,
    /// Total scratch-arena reuses across workers (0 for one-shot runs).
    pub scratch_reuse: u64,
}

impl MatchOutput {
    /// The paper's "preprocessing time" — equivalently, the plan-build
    /// time of the compile/execute split: filtering + building `A` +
    /// ordering.
    pub fn preprocessing_time(&self) -> Duration {
        self.filter_time + self.build_time + self.order_time
    }

    /// Compile/execute-split name for [`preprocessing_time`]: the time
    /// spent building the [`QueryPlan`] before any enumeration ran.
    ///
    /// [`preprocessing_time`]: MatchOutput::preprocessing_time
    pub fn plan_build_time(&self) -> Duration {
        self.preprocessing_time()
    }

    /// Total query time.
    pub fn total_time(&self) -> Duration {
        self.preprocessing_time() + self.enum_time
    }

    /// Paper terminology: killed by the time limit.
    pub fn unsolved(&self) -> bool {
        self.outcome == Outcome::TimedOut
    }

    fn empty(filter_time: Duration) -> Self {
        MatchOutput {
            matches: 0,
            recursions: 0,
            outcome: Outcome::Complete,
            filter_time,
            build_time: Duration::ZERO,
            order_time: Duration::ZERO,
            enum_time: Duration::ZERO,
            candidate_avg: 0.0,
            candidate_memory: 0,
            space_memory: 0,
            parallel: None,
            scratch_reuse: 0,
        }
    }

    fn from_stats(plan: &QueryPlan, stats: EnumStats) -> Self {
        MatchOutput {
            matches: stats.matches,
            recursions: stats.recursions,
            outcome: stats.outcome,
            filter_time: plan.filter_time,
            build_time: plan.build_time,
            order_time: plan.order_time,
            enum_time: stats.elapsed,
            candidate_avg: plan.candidates.average(),
            candidate_memory: plan.candidates.memory_bytes(),
            space_memory: plan.space.as_ref().map_or(0, |s| s.memory_bytes()),
            parallel: stats.parallel,
            scratch_reuse: stats.scratch_reuse,
        }
    }
}

impl Pipeline {
    /// Create a pipeline with an explicit name.
    pub fn new(
        name: impl Into<String>,
        filter: FilterKind,
        order: OrderKind,
        method: LcMethod,
    ) -> Self {
        Pipeline {
            name: name.into(),
            filter,
            order,
            method,
            vf2pp_rule: false,
        }
    }

    /// Compile the plan: run the preprocessing phases (filter → order →
    /// auxiliary structure) and assemble the [`QueryPlan`] every executor
    /// of this run shares. Returns `Err(filter_time)` when some candidate
    /// set is empty — the query has no match.
    pub fn plan(
        &self,
        q: &Graph,
        g: &DataContext<'_>,
        config: &MatchConfig,
    ) -> Result<QueryPlan, Duration> {
        let qc = QueryContext::new(q);
        let mut config = config.clone();
        if self.vf2pp_rule {
            config.vf2pp_rule = true;
        }
        if config.semantics.injectivity != crate::enumerate::Injectivity::Isomorphism {
            // Failing sets and the VF2++ rule prune on vertex-injectivity
            // conflicts; under relaxed semantics those conflicts don't
            // exist, so the optimizations are silently dropped rather than
            // tripping the assembly-time isomorphism assertions.
            config.failing_sets = false;
            config.vf2pp_rule = false;
        }
        let trace = config.trace.clone();
        let plan_span = trace.is_enabled().then(|| trace.span("plan"));

        // Phase 1: filtering.
        let t0 = Instant::now();
        let filter_span = trace.is_enabled().then(|| trace.span("filter"));
        let filtered =
            if config.semantics.injectivity == crate::enumerate::Injectivity::Homomorphism {
                // Degree/frequency pruning is unsound under homomorphism
                // (distinct query neighbors may fold onto one data
                // vertex), so the configured filter is bypassed in favor
                // of the label-only baseline. Edge-injective matching
                // keeps the full filters: incident edges map injectively,
                // so neighbor images stay distinct.
                crate::filter::label_only_filter(&qc, g)
            } else {
                run_filter_traced(self.filter, &qc, g, &trace)
            };
        drop(filter_span);
        let filter_time = t0.elapsed();
        let Some(out) = filtered else {
            drop(plan_span);
            return Err(filter_time);
        };
        let candidates = out.candidates;
        let mut tree = out.bfs_tree;
        let adaptive = matches!(self.order, OrderKind::Adaptive);

        // Phase 2: ordering (before building A so TreeIndex can check
        // order/tree compatibility; the paper folds both into
        // "preprocessing" anyway). The adaptive engine's "order" is the
        // BFS order δ of its tree — built here when the filter did not
        // provide one.
        let t1 = Instant::now();
        let order_span = trace.is_enabled().then(|| trace.span("order"));
        let order = if adaptive {
            if tree.is_none() {
                let root = crate::filter::dpiso::select_dpiso_root(&qc, g);
                tree = Some(BfsTree::build(q, root));
            }
            tree.as_ref().expect("just ensured").order.clone()
        } else {
            run_order(
                &self.order,
                &OrderInput {
                    q: &qc,
                    g,
                    candidates: &candidates,
                    bfs_tree: tree.as_ref(),
                    space: None,
                },
            )
        };
        drop(order_span);
        let order_time = t1.elapsed();
        debug_assert!(
            crate::order::is_connected_order(q, &order)
                || matches!(self.order, OrderKind::Fixed(_))
        );

        // Phase 3: auxiliary structure + plan tables.
        let t2 = Instant::now();
        let build_span = trace.is_enabled().then(|| trace.span("build"));
        let with_bsr = config.intersect == IntersectKind::Bsr
            && (adaptive || self.method == LcMethod::Intersect);
        let space: Option<CandidateSpace> = if adaptive || self.method == LcMethod::Intersect {
            Some(CandidateSpace::build(
                q,
                g.graph,
                &candidates,
                SpaceCoverage::AllEdges,
                with_bsr,
            ))
        } else {
            match self.method {
                LcMethod::Direct | LcMethod::CandidateScan => None,
                LcMethod::TreeIndex => {
                    // Tree coverage is only usable when every pivot parent
                    // is the tree parent; otherwise fall back to all edges.
                    let parents = crate::order::derive_parents(q, &order, tree.as_ref());
                    let tree_ok = tree.as_ref().is_some_and(|t| {
                        order.iter().skip(1).all(|&u| {
                            parents[u as usize] != NO_VERTEX
                                && t.parent[u as usize] == parents[u as usize]
                        })
                    });
                    let coverage = if tree_ok {
                        SpaceCoverage::TreeEdges(tree.as_ref().unwrap())
                    } else {
                        SpaceCoverage::AllEdges
                    };
                    Some(CandidateSpace::build(
                        q,
                        g.graph,
                        &candidates,
                        coverage,
                        with_bsr,
                    ))
                }
                LcMethod::Intersect => unreachable!("handled above"),
            }
        };
        let mut plan = QueryPlan::assemble(
            q,
            candidates,
            order,
            tree,
            space,
            self.method,
            config,
            adaptive,
        );
        plan.filter_time = filter_time;
        plan.order_time = order_time;
        drop(build_span);
        plan.build_time = t2.elapsed();
        drop(plan_span);
        Ok(plan)
    }

    /// Run against a query, counting matches.
    pub fn run(&self, q: &Graph, g: &DataContext<'_>, config: &MatchConfig) -> MatchOutput {
        let mut sink = CountSink;
        self.run_with_sink(q, g, config, &mut sink)
    }

    /// Run against a query, streaming matches into `sink`.
    pub fn run_with_sink<S: MatchSink>(
        &self,
        q: &Graph,
        g: &DataContext<'_>,
        config: &MatchConfig,
        sink: &mut S,
    ) -> MatchOutput {
        let plan = match self.plan(q, g, config) {
            Ok(p) => p,
            Err(filter_time) => return MatchOutput::empty(filter_time),
        };
        let stats = Executor::new(&plan, g.graph).run(sink);
        MatchOutput::from_stats(&plan, stats)
    }

    /// Run with intra-query parallelism using the default morsel
    /// work-stealing distribution (see [`crate::enumerate::parallel`]).
    /// Matches are counted, not collected.
    pub fn run_parallel(
        &self,
        q: &Graph,
        g: &DataContext<'_>,
        config: &MatchConfig,
        threads: usize,
    ) -> MatchOutput {
        self.run_parallel_with(q, g, config, threads, ParallelStrategy::Morsel)
    }

    /// [`Pipeline::run_parallel`] with an explicit root-distribution
    /// strategy.
    ///
    /// The plan is compiled once; every worker executes it by shared
    /// reference. Adaptive-ordering pipelines fall back to sequential
    /// execution of the same plan — DP-iso's runtime vertex selection is
    /// inherently sequential per subtree and the paper only parallelizes
    /// the static engines.
    pub fn run_parallel_with(
        &self,
        q: &Graph,
        g: &DataContext<'_>,
        config: &MatchConfig,
        threads: usize,
        strategy: ParallelStrategy,
    ) -> MatchOutput {
        let plan = match self.plan(q, g, config) {
            Ok(p) => p,
            Err(filter_time) => return MatchOutput::empty(filter_time),
        };
        let (stats, _sinks) =
            Executor::new(&plan, g.graph).run_parallel::<CountSink>(threads, strategy);
        MatchOutput::from_stats(&plan, stats)
    }
}

/// An EXPLAIN-style report of the plan a pipeline compiled for one query:
/// per-vertex candidate counts, the matching order with backward-neighbor
/// counts, and the auxiliary structure's shape.
#[derive(Clone, Debug)]
pub struct PlanReport {
    /// Pipeline name.
    pub pipeline: String,
    /// Filter that produced the candidates.
    pub filter: &'static str,
    /// Ordering method.
    pub order_method: &'static str,
    /// Local-candidate method.
    pub lc_method: &'static str,
    /// The matching order `φ`.
    pub order: Vec<VertexId>,
    /// `|C(u)|` per query vertex (indexed by vertex id).
    pub candidate_sizes: Vec<usize>,
    /// `|N^φ_+(u)|` per order position.
    pub backward_counts: Vec<usize>,
    /// Auxiliary structure bytes (0 when the method needs none).
    pub space_memory: usize,
    /// Preprocessing (plan-build) time.
    pub preprocessing: Duration,
}

impl std::fmt::Display for PlanReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "plan {} (filter {}, order {}, enumeration {})",
            self.pipeline, self.filter, self.order_method, self.lc_method
        )?;
        writeln!(f, "  preprocessing: {:?}", self.preprocessing)?;
        writeln!(f, "  aux structure: {} bytes", self.space_memory)?;
        for (i, &u) in self.order.iter().enumerate() {
            writeln!(
                f,
                "  {:>3}. u{:<3} |C| = {:<6} backward = {}",
                i + 1,
                u,
                self.candidate_sizes[u as usize],
                self.backward_counts[i]
            )?;
        }
        Ok(())
    }
}

impl Pipeline {
    /// Compile only the plan and report it (an `EXPLAIN` for subgraph
    /// queries). Returns `None` when a candidate set is empty — the query
    /// is trivially unsatisfiable.
    pub fn explain(
        &self,
        q: &Graph,
        g: &DataContext<'_>,
        config: &MatchConfig,
    ) -> Option<PlanReport> {
        let plan = self.plan(q, g, config).ok()?;
        Some(PlanReport {
            pipeline: self.name.clone(),
            filter: self.filter.name(),
            order_method: self.order.name(),
            lc_method: if plan.adaptive {
                "Adaptive+Intersect"
            } else {
                self.method.name()
            },
            backward_counts: plan
                .order()
                .iter()
                .map(|&u| plan.backward(u).len())
                .collect(),
            candidate_sizes: (0..q.num_vertices() as VertexId)
                .map(|u| plan.candidates.get(u).len())
                .collect(),
            order: plan.order().to_vec(),
            space_memory: plan.space.as_ref().map_or(0, |s| s.memory_bytes()),
            preprocessing: plan.filter_time + plan.order_time + plan.build_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_data, paper_query};
    use crate::reference::brute_force_count;

    #[test]
    fn pipeline_matches_brute_force_on_fixture() {
        let q = paper_query();
        let g = paper_data();
        let gc = DataContext::new(&g);
        let want = brute_force_count(&q, &g, None);
        let p = Pipeline::new(
            "test",
            FilterKind::GraphQl,
            OrderKind::GraphQl,
            LcMethod::Intersect,
        );
        let out = p.run(&q, &gc, &MatchConfig::default());
        assert_eq!(out.matches, want);
        assert_eq!(out.outcome, Outcome::Complete);
        assert!(out.candidate_avg > 0.0);
    }

    #[test]
    fn no_match_short_circuits() {
        let q = sm_graph::builder::graph_from_edges(&[9, 9], &[(0, 1)]);
        let g = paper_data();
        let gc = DataContext::new(&g);
        let p = Pipeline::new("t", FilterKind::Ldf, OrderKind::Ri, LcMethod::Direct);
        let out = p.run(&q, &gc, &MatchConfig::default());
        assert_eq!(out.matches, 0);
        assert_eq!(out.enum_time, Duration::ZERO);
    }

    #[test]
    fn phase_timings_accumulate() {
        let q = paper_query();
        let g = paper_data();
        let gc = DataContext::new(&g);
        let p = Pipeline::new("t", FilterKind::Cfl, OrderKind::Cfl, LcMethod::TreeIndex);
        let out = p.run(&q, &gc, &MatchConfig::default());
        assert_eq!(out.matches, 1);
        assert_eq!(out.total_time(), out.preprocessing_time() + out.enum_time);
        assert!(out.space_memory > 0);
    }

    #[test]
    fn plan_reusable_and_parallel_agrees() {
        let q = paper_query();
        let g = paper_data();
        let gc = DataContext::new(&g);
        let p = Pipeline::new(
            "t",
            FilterKind::GraphQl,
            OrderKind::GraphQl,
            LcMethod::Intersect,
        );
        let cfg = MatchConfig::default();
        let seq = p.run(&q, &gc, &cfg);
        for threads in [1, 2, 4] {
            let par = p.run_parallel(&q, &gc, &cfg, threads);
            assert_eq!(par.matches, seq.matches, "{threads} threads");
        }
        // adaptive pipelines fall back cleanly
        let dp = crate::Algorithm::DpIso.optimized();
        let a = dp.run_parallel(&q, &gc, &cfg, 4);
        assert_eq!(a.matches, seq.matches);
    }

    #[test]
    fn explain_reports_the_plan() {
        let q = paper_query();
        let g = paper_data();
        let gc = DataContext::new(&g);
        let p = crate::Algorithm::GraphQl.optimized();
        let report = p.explain(&q, &gc, &MatchConfig::default()).unwrap();
        assert_eq!(report.order.len(), 4);
        assert_eq!(report.candidate_sizes.len(), 4);
        assert_eq!(report.backward_counts[0], 0);
        assert!(report.backward_counts[1..].iter().all(|&b| b >= 1));
        assert!(report.space_memory > 0);
        let text = format!("{report}");
        assert!(text.contains("plan GQL"));
        assert!(text.contains("|C| ="));
        // unsatisfiable query -> None
        let bad = sm_graph::builder::graph_from_edges(&[9, 9], &[(0, 1)]);
        assert!(p.explain(&bad, &gc, &MatchConfig::default()).is_none());
    }

    #[test]
    fn plan_exposes_phases() {
        let q = paper_query();
        let g = paper_data();
        let gc = DataContext::new(&g);
        let p = Pipeline::new("t", FilterKind::Cfl, OrderKind::Cfl, LcMethod::Intersect);
        let plan = p.plan(&q, &gc, &MatchConfig::default()).unwrap();
        assert_eq!(plan.order().len(), 4);
        assert!(plan.space.is_some());
        assert!(plan.tree.is_some());
        assert!(!plan.adaptive);
        assert!(plan.plan_build_ns() > 0);
    }

    #[test]
    fn adaptive_plan_built_without_filter_tree() {
        // LDF provides no BFS tree; the pipeline must build DP-iso's own.
        let q = paper_query();
        let g = paper_data();
        let gc = DataContext::new(&g);
        let p = Pipeline::new(
            "t",
            FilterKind::Ldf,
            OrderKind::Adaptive,
            LcMethod::Intersect,
        );
        let plan = p.plan(&q, &gc, &MatchConfig::default()).unwrap();
        assert!(plan.adaptive);
        let tree = plan.tree.as_ref().unwrap();
        assert_eq!(plan.order(), tree.order.as_slice());
        let out = p.run(&q, &gc, &MatchConfig::default());
        assert_eq!(out.matches, 1);
    }
}
