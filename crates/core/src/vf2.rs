//! Classic VF2 (Cordella, Foggia, Sansone, Vento; TPAMI 2004) — the
//! state-space baseline VF2++ improves on (paper Table 1).
//!
//! VF2 keeps no candidate structures: a state is the partial mapping plus
//! the *terminal sets* (unmapped vertices adjacent to the mapped region on
//! each side). Candidate pairs couple the smallest terminal query vertex
//! with every terminal data vertex, and feasibility combines the edge
//! consistency rule with counting lookaheads.
//!
//! The paper's problem is subgraph **monomorphism** (edge-preserving, not
//! induced), so the classic induced-isomorphism lookaheads are relaxed to
//! the sound monomorphism forms: every unmapped neighbor of `u` must find
//! a distinct unmapped neighbor of `v`, i.e.
//! `|N(u) ∩ T_q| ≤ |N(v) ∩ unmapped|` and
//! `|N(u) ∩ unmapped| ≤ |N(v) ∩ unmapped|`.

use crate::enumerate::control::RunControl;
use crate::enumerate::{EnumStats, MatchConfig, MatchSink};
use sm_graph::types::NO_VERTEX;
use sm_graph::{Graph, VertexId};
use sm_runtime::Counter;
use std::time::Instant;

/// Cancellation is polled every this many recursions.
const TIME_CHECK_MASK: u64 = 0x3FF;

/// Run classic VF2, streaming matches into `sink`.
///
/// ```
/// use sm_graph::builder::graph_from_edges;
/// use sm_match::enumerate::{CountSink, MatchConfig};
///
/// let q = graph_from_edges(&[0, 1], &[(0, 1)]);
/// let g = graph_from_edges(&[0, 1, 1], &[(0, 1), (0, 2)]);
/// let mut sink = CountSink;
/// let stats = sm_match::vf2::vf2_match(&q, &g, &MatchConfig::find_all(), &mut sink);
/// assert_eq!(stats.matches, 2);
/// ```
pub fn vf2_match<S: MatchSink>(
    q: &Graph,
    g: &Graph,
    config: &MatchConfig,
    sink: &mut S,
) -> EnumStats {
    let started = Instant::now();
    let trace = config.trace.clone();
    let span = trace.is_enabled().then(|| trace.span("execute"));
    let mut st = Vf2State {
        q,
        g,
        m: vec![NO_VERTEX; q.num_vertices()],
        g_used: vec![false; g.num_vertices()],
        q_depth: vec![0u32; q.num_vertices()],
        g_depth: vec![0u32; g.num_vertices()],
        ctl: RunControl::new(config, None, started, TIME_CHECK_MASK),
        sink,
    };
    st.recurse(0);
    let stats = st.ctl.into_stats(started);
    trace.flush_counters(0, &stats.counters);
    drop(span);
    stats
}

struct Vf2State<'a, S: MatchSink> {
    q: &'a Graph,
    g: &'a Graph,
    m: Vec<VertexId>,
    g_used: Vec<bool>,
    /// Depth (1-based) at which a query vertex entered the terminal set;
    /// 0 = not terminal. Mapped vertices also keep their entry depth.
    q_depth: Vec<u32>,
    g_depth: Vec<u32>,
    ctl: RunControl<'a>,
    sink: &'a mut S,
}

impl<S: MatchSink> Vf2State<'_, S> {
    fn recurse(&mut self, depth: usize) {
        self.ctl.tick();
        if self.ctl.is_stopped() {
            return;
        }
        let nq = self.q.num_vertices();
        if depth == nq {
            if self.ctl.record_match() {
                self.sink.on_match(&self.m);
            }
            return;
        }
        // Candidate query vertex: smallest terminal vertex, else (first
        // level / disconnected query) the smallest unmapped vertex.
        let u = (0..nq as VertexId)
            .filter(|&u| self.m[u as usize] == NO_VERTEX && self.q_depth[u as usize] > 0)
            .min()
            .or_else(|| (0..nq as VertexId).find(|&u| self.m[u as usize] == NO_VERTEX))
            .expect("depth < nq implies an unmapped vertex");
        let from_terminal = self.q_depth[u as usize] > 0;

        // Candidate data vertices: terminal data vertices when u is
        // terminal, all unused otherwise. (Iterating the label bucket
        // would be an optimization VF2 itself does not have.)
        let n = self.g.num_vertices() as VertexId;
        for v in 0..n {
            if self.ctl.is_stopped() {
                return;
            }
            if self.g_used[v as usize] {
                continue;
            }
            if from_terminal && self.g_depth[v as usize] == 0 {
                continue;
            }
            if self.feasible(u, v) {
                let snapshot = self.apply(depth as u32 + 1, u, v);
                self.ctl
                    .counters
                    .record_max(Counter::PeakDepth, depth as u64 + 1);
                self.recurse(depth + 1);
                self.undo(u, v, snapshot);
                self.ctl.counters.bump(Counter::Backtracks);
            }
        }
    }

    /// VF2 feasibility: labels, edge consistency with the mapped region,
    /// and the monomorphism-sound counting lookaheads.
    fn feasible(&self, u: VertexId, v: VertexId) -> bool {
        if self.q.label(u) != self.g.label(v) || self.g.degree(v) < self.q.degree(u) {
            return false;
        }
        // R_cons: every mapped neighbor of u must map to a neighbor of v.
        for &u2 in self.q.neighbors(u) {
            let v2 = self.m[u2 as usize];
            if v2 != NO_VERTEX && !self.g.has_edge(v, v2) {
                return false;
            }
        }
        // Lookaheads over the unmapped neighborhoods.
        let mut q_term = 0usize;
        let mut q_unmapped = 0usize;
        for &u2 in self.q.neighbors(u) {
            if self.m[u2 as usize] == NO_VERTEX {
                q_unmapped += 1;
                if self.q_depth[u2 as usize] > 0 {
                    q_term += 1;
                }
            }
        }
        let mut g_unmapped = 0usize;
        for &v2 in self.g.neighbors(v) {
            if !self.g_used[v2 as usize] {
                g_unmapped += 1;
            }
        }
        q_term <= g_unmapped && q_unmapped <= g_unmapped
    }

    /// Apply `(u, v)` and grow the terminal sets; returns the lists of
    /// vertices whose terminal-entry this level created.
    fn apply(&mut self, level: u32, u: VertexId, v: VertexId) -> (Vec<VertexId>, Vec<VertexId>) {
        self.m[u as usize] = v;
        self.g_used[v as usize] = true;
        let mut q_new = Vec::new();
        if self.q_depth[u as usize] == 0 {
            self.q_depth[u as usize] = level;
            q_new.push(u);
        }
        for &u2 in self.q.neighbors(u) {
            if self.q_depth[u2 as usize] == 0 {
                self.q_depth[u2 as usize] = level;
                q_new.push(u2);
            }
        }
        let mut g_new = Vec::new();
        if self.g_depth[v as usize] == 0 {
            self.g_depth[v as usize] = level;
            g_new.push(v);
        }
        for &v2 in self.g.neighbors(v) {
            if self.g_depth[v2 as usize] == 0 {
                self.g_depth[v2 as usize] = level;
                g_new.push(v2);
            }
        }
        (q_new, g_new)
    }

    fn undo(&mut self, u: VertexId, v: VertexId, snapshot: (Vec<VertexId>, Vec<VertexId>)) {
        for u2 in snapshot.0 {
            self.q_depth[u2 as usize] = 0;
        }
        for v2 in snapshot.1 {
            self.g_depth[v2 as usize] = 0;
        }
        self.m[u as usize] = NO_VERTEX;
        self.g_used[v as usize] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{CollectSink, CountSink, Outcome};
    use crate::fixtures::{paper_data, paper_match, paper_query};
    use crate::reference::brute_force_count;
    use sm_graph::builder::graph_from_edges;

    fn count(q: &Graph, g: &Graph) -> u64 {
        let mut sink = CountSink;
        vf2_match(q, g, &MatchConfig::find_all(), &mut sink).matches
    }

    #[test]
    fn fixture_match() {
        let q = paper_query();
        let g = paper_data();
        let mut sink = CollectSink::default();
        let stats = vf2_match(&q, &g, &MatchConfig::find_all(), &mut sink);
        assert_eq!(stats.matches, 1);
        assert_eq!(sink.matches, vec![paper_match()]);
    }

    #[test]
    fn agrees_with_brute_force_on_cliques_and_paths() {
        let tri = graph_from_edges(&[0; 3], &[(0, 1), (1, 2), (0, 2)]);
        let k4 = graph_from_edges(&[0; 4], &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(count(&tri, &k4), brute_force_count(&tri, &k4, None));
        let p3 = graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let g = graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(count(&p3, &g), brute_force_count(&p3, &g, None));
    }

    #[test]
    fn monomorphism_not_induced() {
        // Path query inside a triangle: induced iso would reject (extra
        // edge), monomorphism accepts.
        let p3 = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let tri = graph_from_edges(&[0; 3], &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(count(&p3, &tri), 6);
    }

    #[test]
    fn cap_and_limits() {
        let edge = graph_from_edges(&[0, 0], &[(0, 1)]);
        let k4 = graph_from_edges(&[0; 4], &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let cfg = MatchConfig {
            max_matches: Some(3),
            ..Default::default()
        };
        let mut sink = CountSink;
        let stats = vf2_match(&edge, &k4, &cfg, &mut sink);
        assert_eq!(stats.matches, 3);
        assert_eq!(stats.outcome, Outcome::CapReached);
    }
}
