//! The paper's named algorithm compositions.
//!
//! [`Algorithm::original`] reproduces each algorithm as published;
//! [`Algorithm::optimized`] applies the study's Section 5.2 optimization —
//! maintain candidate edges for **all** query edges and compute local
//! candidates by set intersection (Algorithm 5) — plus, for QuickSI, RI
//! and VF2++, the Section 5.3 substitution of GraphQL's candidate sets
//! for plain LDF, and the removal of VF2++'s extra runtime rules.

use crate::enumerate::LcMethod;
use crate::filter::FilterKind;
use crate::order::OrderKind;
use crate::pipeline::Pipeline;

/// The seven framework algorithms of the study (Glasgow lives in the
/// `sm-glasgow` crate, outside the framework, as in the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// QuickSI (Shang et al., PVLDB 2008).
    QuickSi,
    /// GraphQL (He & Singh, SIGMOD 2008).
    GraphQl,
    /// CFL (Bi et al., SIGMOD 2016).
    Cfl,
    /// CECI (Bhattarai et al., SIGMOD 2019).
    Ceci,
    /// DP-iso (Han et al., SIGMOD 2019).
    DpIso,
    /// RI (Bonnici et al., BMC Bioinformatics 2013).
    Ri,
    /// VF2++ (Jüttner & Madarasi, DAM 2018).
    Vf2pp,
}

impl Algorithm {
    /// Paper abbreviation (QSI, GQL, CFL, CECI, DP, RI, 2PP).
    pub fn abbrev(self) -> &'static str {
        match self {
            Algorithm::QuickSi => "QSI",
            Algorithm::GraphQl => "GQL",
            Algorithm::Cfl => "CFL",
            Algorithm::Ceci => "CECI",
            Algorithm::DpIso => "DP",
            Algorithm::Ri => "RI",
            Algorithm::Vf2pp => "2PP",
        }
    }

    /// All seven, in the paper's listing order.
    pub fn all() -> [Algorithm; 7] {
        [
            Algorithm::QuickSi,
            Algorithm::GraphQl,
            Algorithm::Cfl,
            Algorithm::Ceci,
            Algorithm::DpIso,
            Algorithm::Ri,
            Algorithm::Vf2pp,
        ]
    }

    /// The original composition, prefixed `O-` in the paper's Figure 16.
    pub fn original(self) -> Pipeline {
        let name = format!("O-{}", self.abbrev());
        match self {
            Algorithm::QuickSi => {
                Pipeline::new(name, FilterKind::Ldf, OrderKind::QuickSi, LcMethod::Direct)
            }
            Algorithm::GraphQl => Pipeline::new(
                name,
                FilterKind::GraphQl,
                OrderKind::GraphQl,
                LcMethod::CandidateScan,
            ),
            Algorithm::Cfl => {
                Pipeline::new(name, FilterKind::Cfl, OrderKind::Cfl, LcMethod::TreeIndex)
            }
            Algorithm::Ceci => {
                Pipeline::new(name, FilterKind::Ceci, OrderKind::Ceci, LcMethod::Intersect)
            }
            Algorithm::DpIso => Pipeline::new(
                name,
                FilterKind::DpIso,
                OrderKind::Adaptive,
                LcMethod::Intersect,
            ),
            Algorithm::Ri => Pipeline::new(name, FilterKind::Ldf, OrderKind::Ri, LcMethod::Direct),
            Algorithm::Vf2pp => {
                let mut p =
                    Pipeline::new(name, FilterKind::Ldf, OrderKind::Vf2pp, LcMethod::Direct);
                p.vf2pp_rule = true;
                p
            }
        }
    }

    /// The study's optimized composition (Sections 5.2–5.3).
    pub fn optimized(self) -> Pipeline {
        let name = self.abbrev().to_string();
        match self {
            Algorithm::QuickSi => Pipeline::new(
                name,
                FilterKind::GraphQl,
                OrderKind::QuickSi,
                LcMethod::Intersect,
            ),
            Algorithm::GraphQl => Pipeline::new(
                name,
                FilterKind::GraphQl,
                OrderKind::GraphQl,
                LcMethod::Intersect,
            ),
            Algorithm::Cfl => {
                Pipeline::new(name, FilterKind::Cfl, OrderKind::Cfl, LcMethod::Intersect)
            }
            Algorithm::Ceci => {
                Pipeline::new(name, FilterKind::Ceci, OrderKind::Ceci, LcMethod::Intersect)
            }
            Algorithm::DpIso => Pipeline::new(
                name,
                FilterKind::DpIso,
                OrderKind::Adaptive,
                LcMethod::Intersect,
            ),
            Algorithm::Ri => Pipeline::new(
                name,
                FilterKind::GraphQl,
                OrderKind::Ri,
                LcMethod::Intersect,
            ),
            Algorithm::Vf2pp => Pipeline::new(
                name,
                FilterKind::GraphQl,
                OrderKind::Vf2pp,
                LcMethod::Intersect,
            ),
        }
    }
}

/// The paper's concluding recommendation (Section 6): GraphQL's
/// candidate computation, GraphQL's ordering on dense data graphs and
/// RI's on sparse ones, CECI/DP-iso-style candidate index with
/// set-intersection local candidates (QFilter-style intersection on very
/// dense graphs), and failing-set pruning on large queries only.
///
/// Returns the pipeline plus the matching [`crate::MatchConfig`] tuned to
/// the workload.
///
/// ```
/// use sm_graph::GraphStats;
/// use sm_match::algorithm::recommended;
/// use sm_match::fixtures::{paper_data, paper_query};
/// use sm_match::DataContext;
///
/// let g = paper_data();
/// let q = paper_query();
/// let (pipeline, config) = recommended(&GraphStats::of(&g), q.num_vertices());
/// let ctx = DataContext::new(&g);
/// assert_eq!(pipeline.run(&q, &ctx, &config).matches, 1);
/// ```
pub fn recommended(
    data_stats: &sm_graph::GraphStats,
    query_size: usize,
) -> (Pipeline, crate::MatchConfig) {
    // "Adopt the ordering methods of GraphQL and RI on dense and sparse
    // data graphs respectively." The paper's dense datasets (hu, eu) sit
    // near d = 37, its sparse ones (yt, wn) below 9; split in between.
    let dense = data_stats.avg_degree >= 15.0;
    let order = if dense {
        OrderKind::GraphQl
    } else {
        OrderKind::Ri
    };
    let pipeline = Pipeline::new(
        format!("REC-{}", if dense { "GQL" } else { "RI" }),
        FilterKind::GraphQl,
        order,
        LcMethod::Intersect,
    );
    let mut config = crate::MatchConfig::default();
    // "If the data graphs are very dense, then use QFilter."
    if data_stats.avg_degree >= 30.0 {
        config.intersect = sm_intersect::IntersectKind::Bsr;
    }
    // "Enable the failing sets pruning on large queries, but disable it
    // on small ones." The paper's crossover sits around 16 vertices
    // (Figure 15a).
    config.failing_sets = query_size >= 16;
    (pipeline, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_data, paper_query};
    use crate::reference::brute_force_count;
    use crate::{DataContext, MatchConfig};

    #[test]
    fn every_original_composition_agrees_with_brute_force() {
        let q = paper_query();
        let g = paper_data();
        let gc = DataContext::new(&g);
        let want = brute_force_count(&q, &g, None);
        for alg in Algorithm::all() {
            let out = alg.original().run(&q, &gc, &MatchConfig::default());
            assert_eq!(out.matches, want, "O-{}", alg.abbrev());
        }
    }

    #[test]
    fn every_optimized_composition_agrees_with_brute_force() {
        let q = paper_query();
        let g = paper_data();
        let gc = DataContext::new(&g);
        let want = brute_force_count(&q, &g, None);
        for alg in Algorithm::all() {
            let out = alg.optimized().run(&q, &gc, &MatchConfig::default());
            assert_eq!(out.matches, want, "{}", alg.abbrev());
            // and with failing sets
            let cfg = MatchConfig::default().with_failing_sets(true);
            let out = alg.optimized().run(&q, &gc, &cfg);
            assert_eq!(out.matches, want, "{}fs", alg.abbrev());
        }
    }

    #[test]
    fn recommended_follows_the_papers_rules() {
        use sm_graph::GraphStats;
        let sparse = GraphStats {
            num_vertices: 1000,
            num_edges: 2500,
            num_labels: 10,
            avg_degree: 5.0,
            max_degree: 40,
        };
        let (p, c) = super::recommended(&sparse, 8);
        assert_eq!(p.order, crate::OrderKind::Ri);
        assert!(!c.failing_sets);
        assert_eq!(c.intersect, sm_intersect::IntersectKind::Hybrid);

        let dense = GraphStats {
            num_vertices: 1000,
            num_edges: 18_000,
            num_labels: 10,
            avg_degree: 36.0,
            max_degree: 300,
        };
        let (p, c) = super::recommended(&dense, 24);
        assert_eq!(p.order, crate::OrderKind::GraphQl);
        assert!(c.failing_sets);
        assert_eq!(c.intersect, sm_intersect::IntersectKind::Bsr);
        assert_eq!(p.filter, crate::FilterKind::GraphQl);
        assert_eq!(p.method, crate::LcMethod::Intersect);
    }

    #[test]
    fn names() {
        assert_eq!(Algorithm::Vf2pp.abbrev(), "2PP");
        assert_eq!(Algorithm::DpIso.original().name, "O-DP");
        assert_eq!(Algorithm::GraphQl.optimized().name, "GQL");
        assert!(Algorithm::Vf2pp.original().vf2pp_rule);
        assert!(!Algorithm::Vf2pp.optimized().vf2pp_rule);
    }
}
