//! [`QueryPlan`]: the compile-once plan IR of the framework.
//!
//! Following the "compile once, execute many" discipline of query-plan
//! systems, everything an enumeration run needs that does not change
//! between runs is derived exactly once here — the filter's candidate
//! sets (as a flat CSR arena), the matching order `φ`, the per-vertex
//! pivot parents and backward/forward neighbor lists, VF2++'s forward
//! label requirements, DP-iso's weight array, and the
//! [`CandidateSpace`] edge views. [`crate::exec::Executor`] then runs the
//! plan sequentially or across workers; every parallel worker shares the
//! same `&QueryPlan` immutably, and no engine re-derives any of it per
//! run.

use crate::candidate_space::CandidateSpace;
use crate::candidates::Candidates;
use crate::enumerate::{LcMethod, MatchConfig};
use crate::order;
use sm_graph::traversal::BfsTree;
use sm_graph::{Graph, Label, VertexId};
use std::time::Duration;

/// Per-query-vertex adjacency flattened into a CSR (offsets + flat ids)
/// arena, mirroring the layout of [`Candidates`].
#[derive(Clone, Debug, Default)]
struct VertexLists {
    offsets: Vec<u32>,
    items: Vec<VertexId>,
}

impl VertexLists {
    fn from_lists(lists: &[Vec<VertexId>]) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut items = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        offsets.push(0u32);
        for l in lists {
            items.extend_from_slice(l);
            offsets.push(items.len() as u32);
        }
        VertexLists { offsets, items }
    }

    #[inline]
    fn get(&self, u: VertexId) -> &[VertexId] {
        let u = u as usize;
        &self.items[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }
}

/// A compiled, immutable plan for one `(query, config)` pair.
///
/// Built once per pipeline run by [`crate::Pipeline::plan`] (or assembled
/// directly via [`QueryPlan::assemble`] when the caller brings its own
/// candidates/order) and executed any number of times — sequentially,
/// with a caller-owned [`crate::enumerate::scratch::Scratch`], or shared
/// by reference across the workers of a parallel run.
pub struct QueryPlan {
    /// The query graph (owned, so the plan is self-contained and can
    /// outlive the caller's borrow — the prerequisite for plan caching).
    query: Graph,
    /// Local-candidate computation method of the static engine.
    pub method: LcMethod,
    /// Whether the adaptive (DP-iso) engine executes this plan.
    pub adaptive: bool,
    /// Effective run configuration (pipeline flags folded in).
    pub config: MatchConfig,
    /// Candidate sets from the filtering step (flat CSR arena).
    pub candidates: Candidates,
    /// Matching order `φ` (the BFS order `δ` for adaptive plans).
    order: Vec<VertexId>,
    /// Pivot parent per query vertex (`NO_VERTEX` at the root).
    parents: Vec<VertexId>,
    /// Backward neighbors `N^φ_+(u)` per query vertex, sorted by match
    /// time. For adaptive plans these are exactly the DAG parents.
    backward: VertexLists,
    /// Forward (order-later) neighbors per query vertex — the DAG
    /// children driving adaptive extendability.
    forward: VertexLists,
    /// VF2++'s forward label requirements (empty unless
    /// `config.vf2pp_rule`).
    vf2pp_req: Vec<Vec<(Label, u32)>>,
    /// Auxiliary structure `A`, when the method (or adaptive engine)
    /// needs one.
    pub space: Option<CandidateSpace>,
    /// BFS tree fixing `δ` (tree-based filters; always present on
    /// adaptive plans).
    pub tree: Option<BfsTree>,
    /// DP-iso's weight array `W[u][pos]` (empty unless adaptive).
    pub weights: Vec<Vec<f64>>,
    /// Time spent in the filtering step.
    pub filter_time: Duration,
    /// Time spent computing the matching order.
    pub order_time: Duration,
    /// Time spent building the auxiliary structure and plan tables.
    pub build_time: Duration,
}

impl QueryPlan {
    /// Assemble a plan from preprocessed parts, deriving every
    /// order-dependent table (parents, backward/forward lists, VF2++
    /// requirements, adaptive weights) through the canonical
    /// implementations in [`crate::order`].
    ///
    /// Requirements (asserted): `order` is a permutation of `V(q)`;
    /// space-backed methods come with a space; adaptive plans come with
    /// both a space and the BFS tree whose order equals `order`.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        q: &Graph,
        candidates: Candidates,
        order: Vec<VertexId>,
        tree: Option<BfsTree>,
        space: Option<CandidateSpace>,
        method: LcMethod,
        config: MatchConfig,
        adaptive: bool,
    ) -> QueryPlan {
        let n = q.num_vertices();
        assert_eq!(order.len(), n, "order must cover every query vertex");
        assert_eq!(candidates.num_query_vertices(), n);
        if method.needs_space() || adaptive {
            assert!(
                space.is_some(),
                "{:?} requires a CandidateSpace",
                if adaptive {
                    "adaptive".to_string()
                } else {
                    format!("{method:?}")
                }
            );
        }
        if adaptive {
            let t = tree.as_ref().expect("adaptive plans require a BFS tree");
            assert_eq!(
                order, t.order,
                "adaptive plans use the tree's BFS order δ as the matching order"
            );
        }
        // See enumerate::failing_sets: the emptyset class is unsound when
        // LC depends on more than the backward neighbors' mappings.
        assert!(
            !(config.failing_sets && config.vf2pp_rule),
            "failing sets are incompatible with VF2++'s extra runtime rule"
        );
        // Failing-set classes and the VF2++ rule both reason about
        // injectivity conflicts; neither is sound under the relaxed
        // (homomorphism / edge-injective) modes. Callers compiling a
        // relaxed-mode plan must disable them (the service does so
        // automatically).
        let iso = config.semantics.injectivity == crate::enumerate::Injectivity::Isomorphism;
        assert!(
            iso || !config.failing_sets,
            "failing sets require isomorphism semantics"
        );
        assert!(
            iso || !config.vf2pp_rule,
            "the VF2++ rule requires isomorphism semantics"
        );

        let parents = order::derive_parents(q, &order, tree.as_ref());
        let backward_lists = order::backward_neighbors(q, &order);
        let forward_lists = forward_neighbors(q, &order);
        let vf2pp_req = if config.vf2pp_rule {
            forward_label_requirements(q, &order)
        } else {
            vec![Vec::new(); n]
        };
        let weights = if adaptive {
            weight_array(
                q,
                &candidates,
                space.as_ref().expect("checked above"),
                tree.as_ref().expect("checked above"),
            )
        } else {
            Vec::new()
        };
        QueryPlan {
            query: q.clone(),
            method,
            adaptive,
            config,
            candidates,
            order,
            parents,
            backward: VertexLists::from_lists(&backward_lists),
            forward: VertexLists::from_lists(&forward_lists),
            vf2pp_req,
            space,
            tree,
            weights,
            filter_time: Duration::ZERO,
            order_time: Duration::ZERO,
            build_time: Duration::ZERO,
        }
    }

    /// The query graph this plan was compiled for.
    #[inline]
    pub fn query(&self) -> &Graph {
        &self.query
    }

    /// Number of query vertices.
    #[inline]
    pub fn num_query_vertices(&self) -> usize {
        self.order.len()
    }

    /// The matching order `φ`.
    #[inline]
    pub fn order(&self) -> &[VertexId] {
        &self.order
    }

    /// The first vertex of the matching order.
    #[inline]
    pub fn root(&self) -> VertexId {
        self.order[0]
    }

    /// Pivot parents per query vertex.
    #[inline]
    pub fn parents(&self) -> &[VertexId] {
        &self.parents
    }

    /// Backward neighbors of `u` under `φ`, sorted by match time (the
    /// DAG parents on adaptive plans).
    #[inline]
    pub fn backward(&self, u: VertexId) -> &[VertexId] {
        self.backward.get(u)
    }

    /// Forward neighbors of `u` under `φ` (the DAG children on adaptive
    /// plans).
    #[inline]
    pub fn forward(&self, u: VertexId) -> &[VertexId] {
        self.forward.get(u)
    }

    /// VF2++'s forward label requirements of `u` (empty when the rule is
    /// off).
    #[inline]
    pub fn vf2pp_req(&self, u: VertexId) -> &[(Label, u32)] {
        &self.vf2pp_req[u as usize]
    }

    /// Total plan-build time (filter + order + table/space build) in
    /// nanoseconds — the "compile" side of the compile/execute split
    /// surfaced in [`crate::enumerate::EnumStats::plan_build_ns`].
    pub fn plan_build_ns(&self) -> u64 {
        (self.filter_time + self.order_time + self.build_time).as_nanos() as u64
    }
}

/// Forward (order-later) neighbors of every vertex under `order`, sorted
/// by match time — the DAG children of DP-iso's decomposition.
fn forward_neighbors(q: &Graph, order: &[VertexId]) -> Vec<Vec<VertexId>> {
    let n = q.num_vertices();
    let mut rank = vec![usize::MAX; n];
    for (i, &u) in order.iter().enumerate() {
        rank[u as usize] = i;
    }
    let mut out = vec![Vec::new(); n];
    for &u in order {
        let mut f: Vec<VertexId> = q
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&u2| rank[u2 as usize] > rank[u as usize])
            .collect();
        f.sort_by_key(|&u2| rank[u2 as usize]);
        out[u as usize] = f;
    }
    out
}

/// For each query vertex `u`, the labels (with multiplicities) of its
/// *forward* neighbors under `order` — VF2++'s runtime requirement table.
pub(crate) fn forward_label_requirements(q: &Graph, order: &[VertexId]) -> Vec<Vec<(Label, u32)>> {
    let n = q.num_vertices();
    let mut rank = vec![usize::MAX; n];
    for (i, &u) in order.iter().enumerate() {
        rank[u as usize] = i;
    }
    let mut out = vec![Vec::new(); n];
    for &u in order {
        let mut labels: Vec<Label> = q
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&u2| rank[u2 as usize] > rank[u as usize])
            .map(|u2| q.label(u2))
            .collect();
        labels.sort_unstable();
        let mut req = Vec::new();
        let mut i = 0;
        while i < labels.len() {
            let l = labels[i];
            let mut c = 0u32;
            while i < labels.len() && labels[i] == l {
                c += 1;
                i += 1;
            }
            req.push((l, c));
        }
        out[u as usize] = req;
    }
    out
}

/// DP-iso's weight array `W[u][pos]` over candidate positions: estimated
/// tree-like path embeddings below each candidate, computed bottom-up
/// over the BFS DAG (leaves weigh 1; inner vertices take the minimum over
/// children of the candidate-edge-summed child weights).
pub fn weight_array(
    q: &Graph,
    candidates: &Candidates,
    space: &CandidateSpace,
    tree: &BfsTree,
) -> Vec<Vec<f64>> {
    let n = q.num_vertices();
    let rank = &tree.rank;
    let mut w: Vec<Vec<f64>> = vec![Vec::new(); n];
    for &u in tree.order.iter().rev() {
        let children: Vec<VertexId> = q
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&c| rank[c as usize] > rank[u as usize])
            .collect();
        let len = candidates.get(u).len();
        let mut wu = vec![1.0f64; len];
        if !children.is_empty() {
            for (pos, w_pos) in wu.iter_mut().enumerate() {
                let mut best = f64::INFINITY;
                for &c in &children {
                    let sum: f64 = space
                        .neighbors(u, pos, c)
                        .iter()
                        .map(|&p| w[c as usize][p as usize])
                        .sum();
                    best = best.min(sum);
                }
                *w_pos = best;
            }
        }
        w[u as usize] = wu;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate_space::SpaceCoverage;
    use crate::fixtures::{paper_data, paper_query};
    use crate::{DataContext, QueryContext};
    use sm_graph::types::NO_VERTEX;

    fn fixture_plan(method: LcMethod) -> QueryPlan {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let space = (method.needs_space())
            .then(|| CandidateSpace::build(&q, &g, &cand, SpaceCoverage::AllEdges, false));
        QueryPlan::assemble(
            &q,
            cand,
            vec![0, 1, 2, 3],
            None,
            space,
            method,
            MatchConfig::default(),
            false,
        )
    }

    #[test]
    fn tables_derive_from_the_order() {
        let plan = fixture_plan(LcMethod::Direct);
        assert_eq!(plan.order(), &[0, 1, 2, 3]);
        assert_eq!(plan.root(), 0);
        assert!(plan.backward(0).is_empty());
        assert_eq!(plan.backward(1), &[0]);
        assert_eq!(plan.backward(2), &[0, 1]);
        assert_eq!(plan.backward(3), &[1, 2]);
        // forward mirrors backward
        assert_eq!(plan.forward(0), &[1, 2]);
        assert!(plan.forward(3).is_empty());
        assert_eq!(plan.parents()[0], NO_VERTEX);
        assert_eq!(plan.parents()[1], 0);
        // no vf2pp rule: requirements stay empty
        assert!(plan.vf2pp_req(0).is_empty());
        assert!(plan.weights.is_empty());
    }

    #[test]
    fn vf2pp_requirements_follow_the_config() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let cfg = MatchConfig {
            vf2pp_rule: true,
            ..Default::default()
        };
        let plan = QueryPlan::assemble(
            &q,
            cand,
            vec![0, 1, 2, 3],
            None,
            None,
            LcMethod::Direct,
            cfg,
            false,
        );
        // u0's forward neighbors are u1 (B) and u2 (C).
        assert_eq!(plan.vf2pp_req(0), &[(1, 1), (2, 1)]);
        // u3 is last: no forward neighbors.
        assert!(plan.vf2pp_req(3).is_empty());
    }

    #[test]
    fn adaptive_plan_builds_weights() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let (cand, tree) = crate::filter::dpiso::dpiso_candidates(&qc, &gc, 3);
        let space = CandidateSpace::build(&q, &g, &cand, SpaceCoverage::AllEdges, false);
        let order = tree.order.clone();
        let plan = QueryPlan::assemble(
            &q,
            cand,
            order,
            Some(tree),
            Some(space),
            LcMethod::Intersect,
            MatchConfig::default(),
            true,
        );
        // The δ-last vertex has no DAG children: all weights are 1.
        let last = *plan.order().last().unwrap();
        assert!(plan.weights[last as usize].iter().all(|&x| x == 1.0));
        // The root's weights are finite and >= 0 on a satisfiable query.
        let root = plan.root();
        assert!(plan.weights[root as usize]
            .iter()
            .all(|&x| x.is_finite() && x >= 0.0));
        // Backward lists equal the DAG parents.
        for &u in plan.order() {
            for &p in plan.backward(u) {
                assert!(plan.forward(p).contains(&u));
            }
        }
        assert_eq!(
            plan.plan_build_ns(),
            0,
            "assemble leaves timings to the pipeline"
        );
    }
}
