//! Precomputed per-data-graph and per-query state.

use sm_graph::label_index::LabelPairEdgeCounts;
use sm_graph::{Graph, NlfIndex, VertexId};

/// Maximum supported query size. Failing-set pruning packs query vertices
/// into a `u64` bitset; the paper's largest queries have 32 vertices.
pub const MAX_QUERY_VERTICES: usize = 64;

/// Immutable indices over a data graph, built once and shared by every
/// query against it (the study amortizes exactly this across its 200-query
/// sets).
pub struct DataContext<'g> {
    /// The data graph `G`.
    pub graph: &'g Graph,
    /// Neighbor-label-frequency table for the NLF filter and VF2++'s
    /// runtime rule.
    pub nlf: NlfIndex,
    /// Edge counts per label pair — QuickSI's edge weights.
    pub label_pairs: LabelPairEdgeCounts,
}

impl<'g> DataContext<'g> {
    /// Build all indices. `O(|E(G)|)`.
    pub fn new(graph: &'g Graph) -> Self {
        DataContext {
            graph,
            nlf: graph.build_nlf(),
            label_pairs: LabelPairEdgeCounts::build(graph),
        }
    }

    /// Assemble from prebuilt indices — for callers that keep the indices
    /// alive across many contexts (a service compiling plans against a
    /// long-lived data graph) instead of recomputing `O(|E(G)|)` work per
    /// query.
    pub fn from_parts(graph: &'g Graph, nlf: NlfIndex, label_pairs: LabelPairEdgeCounts) -> Self {
        DataContext {
            graph,
            nlf,
            label_pairs,
        }
    }
}

/// Per-query derived state: NLF of the query and the 2-core mask used by
/// CFL's ordering and DP-iso's degree-one decomposition.
pub struct QueryContext<'q> {
    /// The query graph `q`.
    pub graph: &'q Graph,
    /// Neighbor-label-frequency table of the query.
    pub nlf: NlfIndex,
    /// `true` for vertices in the 2-core of `q`.
    pub core_mask: Vec<bool>,
}

impl<'q> QueryContext<'q> {
    /// Build the query context.
    ///
    /// # Panics
    ///
    /// Panics if the query has more than [`MAX_QUERY_VERTICES`] vertices
    /// or fewer than 1.
    pub fn new(graph: &'q Graph) -> Self {
        assert!(
            graph.num_vertices() >= 1 && graph.num_vertices() <= MAX_QUERY_VERTICES,
            "query must have 1..={MAX_QUERY_VERTICES} vertices, got {}",
            graph.num_vertices()
        );
        QueryContext {
            graph,
            nlf: graph.build_nlf(),
            core_mask: sm_graph::core_decomposition::two_core_mask(graph),
        }
    }

    /// Number of query vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Whether `u` is a core (2-core) vertex.
    #[inline]
    pub fn is_core(&self, u: VertexId) -> bool {
        self.core_mask[u as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_graph::builder::graph_from_edges;

    #[test]
    fn data_context_builds_indices() {
        let g = graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let ctx = DataContext::new(&g);
        assert_eq!(ctx.nlf.count(1, 0), 2);
        assert_eq!(ctx.label_pairs.count(0, 1), 2);
    }

    #[test]
    fn query_context_core_mask() {
        // triangle + pendant
        let q = graph_from_edges(&[0; 4], &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let ctx = QueryContext::new(&q);
        assert!(ctx.is_core(0) && ctx.is_core(1) && ctx.is_core(2));
        assert!(!ctx.is_core(3));
        assert_eq!(ctx.num_vertices(), 4);
    }

    #[test]
    #[should_panic(expected = "query must have")]
    fn oversized_query_rejected() {
        let labels = vec![0u32; 65];
        let edges: Vec<(u32, u32)> = (0..64).map(|i| (i, i + 1)).collect();
        let q = graph_from_edges(&labels, &edges);
        let _ = QueryContext::new(&q);
    }
}
