//! Spectrum analysis (Section 5.3 of the paper): sample many random
//! matching orders for a query, run each under a small time budget, and
//! compare the heuristic orderings against the sampled distribution.

use crate::context::DataContext;
use crate::enumerate::{LcMethod, MatchConfig};
use crate::filter::FilterKind;
use crate::order::OrderKind;
use crate::pipeline::Pipeline;
use sm_graph::Graph;
use sm_runtime::rng::Rng64;
use std::time::Duration;

/// One sampled order's result.
#[derive(Clone, Debug)]
pub struct SpectrumPoint {
    /// The matching order evaluated.
    pub order: Vec<u32>,
    /// Enumeration time, `None` if the per-order budget was exceeded.
    pub enum_time: Option<Duration>,
    /// Matches found within the budget.
    pub matches: u64,
    /// Search-tree nodes visited — the deterministic cost of the order
    /// (wall time is the same quantity scaled by machine noise), which is
    /// what rank-agreement tests against the planner's cost model use.
    pub recursions: u64,
}

/// Result of a spectrum run for one query.
#[derive(Clone, Debug)]
pub struct SpectrumResult {
    /// All sampled points (completed and timed-out).
    pub points: Vec<SpectrumPoint>,
}

impl SpectrumResult {
    /// Fastest completed order, if any completed.
    pub fn best(&self) -> Option<&SpectrumPoint> {
        self.points
            .iter()
            .filter(|p| p.enum_time.is_some())
            .min_by_key(|p| p.enum_time.unwrap())
    }

    /// Number of orders that completed within the budget.
    pub fn completed(&self) -> usize {
        self.points.iter().filter(|p| p.enum_time.is_some()).count()
    }

    /// Machine-readable export of the sweep: one JSON object with the
    /// run's provenance (`dataset`, `query`, `seed`) and a `points` array
    /// carrying each order, its enumeration time in nanoseconds (`null`
    /// when the per-order budget killed it), its match count and its
    /// recursion count. This is the fixture format the planner's
    /// rank-agreement test and `experiments planner` consume — fields are
    /// append-only.
    pub fn to_json(&self, dataset: &str, query: &str, seed: u64) -> String {
        let mut s = String::with_capacity(64 + self.points.len() * 64);
        s.push_str("{\"schema\":\"sm-spectrum/v1\",");
        s.push_str(&format!(
            "\"dataset\":\"{dataset}\",\"query\":\"{query}\",\"seed\":{seed},\"points\":["
        ));
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"order\":[");
            for (j, u) in p.order.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&u.to_string());
            }
            s.push_str("],\"enum_ns\":");
            match p.enum_time {
                Some(d) => s.push_str(&(d.as_nanos() as u64).to_string()),
                None => s.push_str("null"),
            }
            s.push_str(&format!(
                ",\"matches\":{},\"recursions\":{}}}",
                p.matches, p.recursions
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Evaluate `num_orders` random connected orders of `q` with the study's
/// measurement engine (GraphQL candidates + intersection-based local
/// candidates), each under `per_order_limit`. Deterministic for a `seed`.
pub fn spectrum_analysis(
    q: &Graph,
    g: &DataContext<'_>,
    num_orders: usize,
    per_order_limit: Duration,
    seed: u64,
) -> SpectrumResult {
    let mut rng = Rng64::seed_from_u64(seed);
    let orders = crate::order::random::sample_orders(q, num_orders, &mut rng);
    let mut points = Vec::with_capacity(orders.len());
    for order in orders {
        let pipeline = Pipeline::new(
            "spectrum",
            FilterKind::GraphQl,
            OrderKind::Fixed(order.clone()),
            LcMethod::Intersect,
        );
        let config = MatchConfig::default().with_time_limit(per_order_limit);
        let out = pipeline.run(q, g, &config);
        points.push(SpectrumPoint {
            order,
            enum_time: (!out.unsolved()).then_some(out.enum_time),
            matches: out.matches,
            recursions: out.recursions,
        });
    }
    SpectrumResult { points }
}

/// Speedup of the best sampled order over a measured enumeration time
/// (Table 6 metric). Saturates when the baseline is instantaneous.
pub fn speedup_over(best: Duration, measured: Duration) -> f64 {
    let b = best.as_secs_f64().max(1e-9);
    measured.as_secs_f64() / b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_data, paper_query};

    #[test]
    fn spectrum_on_fixture() {
        let q = paper_query();
        let g = paper_data();
        let gc = DataContext::new(&g);
        let res = spectrum_analysis(&q, &gc, 20, Duration::from_secs(5), 1);
        assert_eq!(res.points.len(), 20);
        assert_eq!(res.completed(), 20); // tiny query: all complete
                                         // every order finds the single match
        assert!(res.points.iter().all(|p| p.matches == 1));
        assert!(res.points.iter().all(|p| p.recursions > 0));
        assert!(res.best().is_some());
    }

    #[test]
    fn json_export_is_machine_readable() {
        let q = paper_query();
        let g = paper_data();
        let gc = DataContext::new(&g);
        let res = spectrum_analysis(&q, &gc, 3, Duration::from_secs(5), 7);
        let json = res.to_json("fixture", "paper_query", 7);
        assert!(json.starts_with("{\"schema\":\"sm-spectrum/v1\""));
        assert!(json.contains("\"dataset\":\"fixture\""));
        assert!(json.contains("\"seed\":7"));
        assert!(json.contains("\"recursions\":"));
        assert_eq!(json.matches("\"order\":[").count(), 3);
        // completed points carry a numeric enum_ns, never "null"
        assert!(!json.contains("\"enum_ns\":null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn speedup_math() {
        assert!(
            (speedup_over(Duration::from_millis(10), Duration::from_millis(100)) - 10.0).abs()
                < 1e-9
        );
        assert!(speedup_over(Duration::ZERO, Duration::from_secs(1)) > 1e6);
    }

    #[test]
    fn deterministic_for_seed() {
        let q = paper_query();
        let g = paper_data();
        let gc = DataContext::new(&g);
        let a = spectrum_analysis(&q, &gc, 5, Duration::from_secs(5), 9);
        let b = spectrum_analysis(&q, &gc, 5, Duration::from_secs(5), 9);
        let oa: Vec<_> = a.points.iter().map(|p| p.order.clone()).collect();
        let ob: Vec<_> = b.points.iter().map(|p| p.order.clone()).collect();
        assert_eq!(oa, ob);
    }
}
