//! Small utilities shared by the filters and engines.

use sm_graph::VertexId;

/// A plain dense bitmap over data vertices.
///
/// Filters use these as transient membership sets for `C(u)` during
/// refinement; the engines use one as the `visited` set. Words are `u64`;
/// `clear_list` gives O(touched) reset so one bitmap can be reused across
/// query vertices without an O(n) clear each time.
#[derive(Clone, Debug)]
pub struct Bitmap {
    words: Vec<u64>,
}

impl Bitmap {
    /// All-zeros bitmap able to hold `n` bits.
    pub fn new(n: usize) -> Self {
        Bitmap {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: VertexId) {
        self.words[i as usize >> 6] |= 1u64 << (i & 63);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn unset(&mut self, i: VertexId) {
        self.words[i as usize >> 6] &= !(1u64 << (i & 63));
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(&self, i: VertexId) -> bool {
        self.words[i as usize >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Set every bit in `list`.
    pub fn set_all(&mut self, list: &[VertexId]) {
        for &i in list {
            self.set(i);
        }
    }

    /// Clear every bit in `list` (O(|list|) reset for reuse).
    pub fn clear_list(&mut self, list: &[VertexId]) {
        for &i in list {
            self.unset(i);
        }
    }

    /// Clear the whole bitmap.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

/// Maximum bipartite matching by augmenting paths (Kuhn's algorithm),
/// sized for GraphQL's pseudo-isomorphism test where the left side is
/// `N(u)` (≤ query degree, tiny) and the right side is `N(v)`.
///
/// `adj[l]` lists the right vertices reachable from left vertex `l`.
/// Returns the size of a maximum matching.
pub fn max_bipartite_matching(num_right: usize, adj: &[Vec<u32>]) -> usize {
    let mut match_right: Vec<i32> = vec![-1; num_right];
    let mut matched = 0usize;
    let mut seen = vec![false; num_right];
    for l in 0..adj.len() {
        seen.fill(false);
        if augment(l, adj, &mut match_right, &mut seen) {
            matched += 1;
        }
    }
    matched
}

fn augment(l: usize, adj: &[Vec<u32>], match_right: &mut [i32], seen: &mut [bool]) -> bool {
    for &r in &adj[l] {
        let r = r as usize;
        if !seen[r] {
            seen[r] = true;
            if match_right[r] < 0 || augment(match_right[r] as usize, adj, match_right, seen) {
                match_right[r] = l as i32;
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_ops() {
        let mut b = Bitmap::new(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        b.unset(64);
        assert!(!b.get(64));
        b.set_all(&[3, 5]);
        assert!(b.get(3) && b.get(5));
        b.clear_list(&[0, 3, 5, 129]);
        assert!(!b.get(0) && !b.get(3) && !b.get(5) && !b.get(129));
        b.set(7);
        b.clear();
        assert!(!b.get(7));
    }

    #[test]
    fn perfect_matching_found() {
        // 3x3, perfect matching exists
        let adj = vec![vec![0, 1], vec![1, 2], vec![0]];
        assert_eq!(max_bipartite_matching(3, &adj), 3);
    }

    #[test]
    fn deficient_matching() {
        // two lefts compete for one right
        let adj = vec![vec![0], vec![0]];
        assert_eq!(max_bipartite_matching(1, &adj), 1);
    }

    #[test]
    fn augmenting_path_needed() {
        // l0-{r0}, l1-{r0,r1}: greedy l0→r0 forces l1 to augment to r1
        let adj = vec![vec![0], vec![0, 1]];
        assert_eq!(max_bipartite_matching(2, &adj), 2);
    }

    #[test]
    fn empty_sides() {
        assert_eq!(max_bipartite_matching(0, &[]), 0);
        assert_eq!(max_bipartite_matching(3, &[vec![], vec![]]), 0);
    }
}
