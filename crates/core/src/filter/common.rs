//! Shared filter building blocks.

use crate::context::{DataContext, QueryContext};
use sm_graph::{NlfIndex, VertexId};
use sm_intersect::intersect_nonempty;

/// Label-and-degree test for a single `(u, v)` pair.
#[inline]
pub fn ldf_pass(q: &QueryContext<'_>, g: &DataContext<'_>, u: VertexId, v: VertexId) -> bool {
    g.graph.label(v) == q.graph.label(u) && g.graph.degree(v) >= q.graph.degree(u)
}

/// NLF dominance test for a single `(u, v)` pair (assumes labels equal).
#[inline]
pub fn nlf_pass(q: &QueryContext<'_>, g: &DataContext<'_>, u: VertexId, v: VertexId) -> bool {
    NlfIndex::dominates(g.nlf.entry(v), q.nlf.entry(u))
}

/// One LDF candidate set: vertices of `G` with `L(v) = L(u)` and
/// `d(v) >= d(u)`, produced in sorted order from the label index.
pub fn ldf_set(q: &QueryContext<'_>, g: &DataContext<'_>, u: VertexId) -> Vec<VertexId> {
    let du = q.graph.degree(u);
    g.graph
        .vertices_with_label(q.graph.label(u))
        .iter()
        .copied()
        .filter(|&v| g.graph.degree(v) >= du)
        .collect()
}

/// One LDF+NLF candidate set.
pub fn ldf_nlf_set(q: &QueryContext<'_>, g: &DataContext<'_>, u: VertexId) -> Vec<VertexId> {
    let du = q.graph.degree(u);
    g.graph
        .vertices_with_label(q.graph.label(u))
        .iter()
        .copied()
        .filter(|&v| g.graph.degree(v) >= du && nlf_pass(q, g, u, v))
        .collect()
}

/// Filtering Rule 3.1 for one candidate: `v` survives w.r.t. neighbor `u'`
/// iff `N(v) ∩ C(u') ≠ ∅`.
#[inline]
pub fn rule31_pass(g: &DataContext<'_>, v: VertexId, c_other: &[VertexId]) -> bool {
    intersect_nonempty(g.graph.neighbors(v), c_other)
}

/// Prune the raw candidate set of `u` in place, keeping candidates with a
/// neighbor in every `sets[u']` for `u'` in `others`. Operates on the
/// mutable per-vertex sets a filter refines before freezing them into
/// [`Candidates`]. Returns whether anything was removed.
pub fn prune_by_rule31(
    g: &DataContext<'_>,
    sets: &mut [Vec<VertexId>],
    u: VertexId,
    others: &[VertexId],
) -> bool {
    if others.is_empty() {
        return false;
    }
    // Split borrow: take the set out, filter against the rest, put back.
    let mut set = std::mem::take(&mut sets[u as usize]);
    let before = set.len();
    set.retain(|&v| {
        others
            .iter()
            .all(|&u2| rule31_pass(g, v, &sets[u2 as usize]))
    });
    let changed = set.len() != before;
    sets[u as usize] = set;
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataContext, QueryContext};
    use sm_graph::builder::graph_from_edges;

    #[test]
    fn ldf_set_respects_label_and_degree() {
        // query u: label 0, degree 2; data: v0 lbl0 d1, v1 lbl0 d2, v2 lbl1 d2
        let q = graph_from_edges(&[0, 1, 1], &[(0, 1), (0, 2)]);
        let g = graph_from_edges(&[0, 0, 1, 1, 1], &[(0, 2), (1, 2), (1, 3), (2, 4)]);
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        assert_eq!(ldf_set(&qc, &gc, 0), vec![1]);
    }

    #[test]
    fn nlf_tightens_ldf() {
        // query u0 (label 0) needs two label-1 neighbors
        let q = graph_from_edges(&[0, 1, 1], &[(0, 1), (0, 2)]);
        // v0: two label-1 nbrs; v1: one label-1 + one label-2 nbr
        let g = graph_from_edges(&[0, 0, 1, 1, 1, 2], &[(0, 2), (0, 3), (1, 4), (1, 5)]);
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        assert_eq!(ldf_set(&qc, &gc, 0), vec![0, 1]);
        assert_eq!(ldf_nlf_set(&qc, &gc, 0), vec![0]);
    }

    #[test]
    fn rule31_pruning() {
        let g = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
        let gc = DataContext::new(&g);
        let mut sets = vec![vec![0, 1, 2, 3], vec![1]];
        let changed = prune_by_rule31(&gc, &mut sets, 0, &[1]);
        assert!(changed);
        // only v0 has a neighbor in C(u1) = {1}
        assert_eq!(sets[0], &[0]);
        // empty `others` is a no-op
        assert!(!prune_by_rule31(&gc, &mut sets, 0, &[]));
    }
}
