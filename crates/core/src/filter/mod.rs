//! Filtering methods (Section 3.1 of the paper): compute a complete
//! candidate vertex set `C(u)` for every query vertex.
//!
//! All filters preserve **completeness** (Definition 2.2): they only remove
//! data vertices that provably cannot participate in any match. They differ
//! in which necessary condition they apply, in what order, and how many
//! refinement rounds they run:
//!
//! | Filter | Condition | Structure |
//! |---|---|---|
//! | [`FilterKind::Ldf`] | label + degree | none |
//! | [`FilterKind::Nlf`] | + neighbor label frequencies | none |
//! | [`FilterKind::GraphQl`] | profile containment + pseudo subgraph isomorphism (semi-perfect bipartite matching) | none |
//! | [`FilterKind::Cfl`] | Rule 3.1 top-down generation + bottom-up refinement | BFS tree |
//! | [`FilterKind::Ceci`] | Rule 3.1 along BFS order, reverse refinement via children | BFS tree |
//! | [`FilterKind::DpIso`] | Rule 3.1, `k` alternating directional passes | BFS order (DAG) |
//! | [`FilterKind::Steady`] | Rule 3.1 to fixpoint (baseline upper bound on pruning power) | none |

pub mod ceci;
pub mod cfl;
pub mod common;
pub mod dpiso;
pub mod gql;
pub mod ldf;
pub mod nlf;
pub mod steady;

use crate::candidates::Candidates;
use crate::context::{DataContext, QueryContext};
use sm_graph::traversal::BfsTree;
use sm_graph::VertexId;

/// Which filtering method to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FilterKind {
    /// Label-and-degree filtering (baseline; what QuickSI/RI/VF2++ use).
    Ldf,
    /// LDF + neighbor-label-frequency filtering.
    Nlf,
    /// GraphQL: local profile pruning + global pseudo-iso refinement.
    GraphQl,
    /// CFL: BFS-tree top-down generation, bottom-up refinement.
    Cfl,
    /// CECI: BFS-order construction + reverse refinement via tree children.
    Ceci,
    /// DP-iso: LDF seed + k alternating directional refinement passes.
    DpIso,
    /// Fixpoint of Filtering Rule 3.1 — the paper's STEADY baseline.
    Steady,
}

impl FilterKind {
    /// Stable display name used in experiment output (paper abbreviations).
    pub fn name(self) -> &'static str {
        match self {
            FilterKind::Ldf => "LDF",
            FilterKind::Nlf => "NLF",
            FilterKind::GraphQl => "GQL",
            FilterKind::Cfl => "CFL",
            FilterKind::Ceci => "CECI",
            FilterKind::DpIso => "DP",
            FilterKind::Steady => "STEADY",
        }
    }

    /// All filter kinds, in the order the paper's figures list them.
    pub fn all() -> [FilterKind; 7] {
        [
            FilterKind::Ldf,
            FilterKind::Nlf,
            FilterKind::GraphQl,
            FilterKind::Cfl,
            FilterKind::Ceci,
            FilterKind::DpIso,
            FilterKind::Steady,
        ]
    }
}

/// Result of running a filter: candidate sets plus, for the tree-based
/// filters, the BFS tree their auxiliary structure (and ordering method)
/// hangs off.
pub struct FilterOutput {
    /// Per-query-vertex candidate sets.
    pub candidates: Candidates,
    /// BFS tree used during filtering (CFL / CECI / DP-iso), if any.
    pub bfs_tree: Option<BfsTree>,
}

/// Label-only candidate sets — the sound baseline under homomorphism
/// semantics. Every real filter prunes on degree or neighborhood
/// frequency (`d(v) >= d(u)`, NLF counts, refinement rounds), which is
/// only valid when distinct query neighbors need distinct images;
/// homomorphisms may fold them onto one data vertex. Returns `None`
/// when some candidate set is empty.
pub fn label_only_filter(q: &QueryContext<'_>, g: &DataContext<'_>) -> Option<FilterOutput> {
    let sets = (0..q.num_vertices() as VertexId)
        .map(|u| g.graph.vertices_with_label(q.graph.label(u)).to_vec())
        .collect();
    let out = FilterOutput {
        candidates: Candidates::new(sets),
        bfs_tree: None,
    };
    if out.candidates.any_empty() {
        None
    } else {
        Some(out)
    }
}

/// Run the chosen filter. Returns `None` when some candidate set is empty,
/// i.e. the query provably has no match.
pub fn run_filter(
    kind: FilterKind,
    q: &QueryContext<'_>,
    g: &DataContext<'_>,
) -> Option<FilterOutput> {
    run_filter_traced(kind, q, g, &sm_runtime::Trace::disabled())
}

/// [`run_filter`] with an observability handle: round-based filters
/// (currently DP-iso) record per-round spans, pruned-candidate counters
/// and `filter_round` events into `trace`. Other filters run unchanged —
/// their single pass is already covered by the pipeline's `filter` span.
pub fn run_filter_traced(
    kind: FilterKind,
    q: &QueryContext<'_>,
    g: &DataContext<'_>,
    trace: &sm_runtime::Trace,
) -> Option<FilterOutput> {
    let out = match kind {
        FilterKind::Ldf => FilterOutput {
            candidates: ldf::ldf_candidates(q, g),
            bfs_tree: None,
        },
        FilterKind::Nlf => FilterOutput {
            candidates: nlf::nlf_candidates(q, g),
            bfs_tree: None,
        },
        FilterKind::GraphQl => FilterOutput {
            candidates: gql::gql_candidates(q, g, gql::GqlParams::default()),
            bfs_tree: None,
        },
        FilterKind::Cfl => {
            let (c, t) = cfl::cfl_candidates(q, g);
            FilterOutput {
                candidates: c,
                bfs_tree: Some(t),
            }
        }
        FilterKind::Ceci => {
            let (c, t) = ceci::ceci_candidates(q, g);
            FilterOutput {
                candidates: c,
                bfs_tree: Some(t),
            }
        }
        FilterKind::DpIso => {
            let (c, t) =
                dpiso::dpiso_candidates_traced(q, g, dpiso::DEFAULT_REFINEMENT_ROUNDS, trace);
            FilterOutput {
                candidates: c,
                bfs_tree: Some(t),
            }
        }
        FilterKind::Steady => FilterOutput {
            candidates: steady::steady_candidates(q, g),
            bfs_tree: None,
        },
    };
    if out.candidates.any_empty() {
        None
    } else {
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_graph::builder::graph_from_edges;

    #[test]
    fn names_and_all() {
        assert_eq!(FilterKind::all().len(), 7);
        assert_eq!(FilterKind::GraphQl.name(), "GQL");
        assert_eq!(FilterKind::Steady.name(), "STEADY");
    }

    #[test]
    fn empty_candidates_reported_as_none() {
        // query label 5 never occurs in data
        let q = graph_from_edges(&[5, 5], &[(0, 1)]);
        let g = graph_from_edges(&[0, 0], &[(0, 1)]);
        let qc = crate::QueryContext::new(&q);
        let gc = crate::DataContext::new(&g);
        for kind in FilterKind::all() {
            assert!(run_filter(kind, &qc, &gc).is_none(), "{}", kind.name());
        }
    }
}
