//! DP-iso's filtering (Han et al., SIGMOD 2019), per Section 3.1.1 of the
//! study.
//!
//! Candidates are seeded by LDF only, then refined by `k` alternating
//! directional sweeps over the BFS order `δ` (default `k = 3`, as in the
//! original paper):
//!
//! * odd passes walk **reverse δ** and require a neighbor in `C(u')` for
//!   every δ-later neighbor `u'` (the first such pass also applies NLF);
//! * even passes walk **along δ** and require a neighbor in `C(u')` for
//!   every δ-earlier neighbor `u'`.

use crate::candidates::Candidates;
use crate::context::{DataContext, QueryContext};
use crate::filter::common::{ldf_set, nlf_pass, rule31_pass};
use sm_graph::traversal::BfsTree;
use sm_graph::VertexId;
use sm_runtime::trace::{Counter, CounterBlock, EventKind, EventRing, Trace};

/// The `k` of the original DP-iso paper.
pub const DEFAULT_REFINEMENT_ROUNDS: usize = 3;

/// DP-iso's root: `argmin |C_ldf(u)| / d(u)`.
pub fn select_dpiso_root(q: &QueryContext<'_>, g: &DataContext<'_>) -> VertexId {
    q.graph
        .vertices()
        .map(|u| {
            let c = ldf_set(q, g, u).len() as f64;
            (c / q.graph.degree(u).max(1) as f64, u)
        })
        .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)))
        .map(|(_, u)| u)
        .expect("non-empty query")
}

/// DP-iso candidate sets plus the BFS tree that fixes `δ` (and hence the
/// DAG of the adaptive ordering).
pub fn dpiso_candidates(
    q: &QueryContext<'_>,
    g: &DataContext<'_>,
    rounds: usize,
) -> (Candidates, BfsTree) {
    dpiso_candidates_traced(q, g, rounds, &Trace::disabled())
}

/// [`dpiso_candidates`] with observability: each refinement round becomes
/// a `filter_round` span, prunes are tallied into
/// [`Counter::CandidatesPruned`] / [`Counter::FilterRounds`], and a
/// [`EventKind::FilterRound`] event (arg = vertices pruned that round)
/// lands in the run's control ring. Counters and events flush under
/// worker 0 when `trace` is enabled; with the disabled handle this is the
/// exact code path of the untraced variant.
pub fn dpiso_candidates_traced(
    q: &QueryContext<'_>,
    g: &DataContext<'_>,
    rounds: usize,
    trace: &Trace,
) -> (Candidates, BfsTree) {
    let qg = q.graph;
    let root = select_dpiso_root(q, g);
    let tree = BfsTree::build(qg, root);
    let mut sets: Vec<Vec<VertexId>> = (0..qg.num_vertices() as VertexId)
        .map(|u| ldf_set(q, g, u))
        .collect();
    let mut counters = CounterBlock::new();
    let mut ring = EventRing::default();

    'rounds: for round in 0..rounds {
        let round_span = trace.is_enabled().then(|| trace.span("filter_round"));
        let mut pruned_this_round: u64 = 0;
        let reverse = round % 2 == 0;
        let apply_nlf = round == 0;
        let order: Vec<VertexId> = if reverse {
            tree.order.iter().rev().copied().collect()
        } else {
            tree.order.clone()
        };
        let mut changed = false;
        let mut died = false;
        for &u in &order {
            let rank_u = tree.rank[u as usize];
            let against: Vec<VertexId> = qg
                .neighbors(u)
                .iter()
                .copied()
                .filter(|&u2| {
                    let r2 = tree.rank[u2 as usize];
                    if reverse {
                        r2 > rank_u
                    } else {
                        r2 < rank_u
                    }
                })
                .collect();
            if against.is_empty() && !apply_nlf {
                continue;
            }
            let mut cu = std::mem::take(&mut sets[u as usize]);
            let before = cu.len();
            cu.retain(|&v| {
                (!apply_nlf || nlf_pass(q, g, u, v))
                    && against
                        .iter()
                        .all(|&u2| rule31_pass(g, v, &sets[u2 as usize]))
            });
            changed |= cu.len() != before;
            pruned_this_round += (before - cu.len()) as u64;
            let empty = cu.is_empty();
            sets[u as usize] = cu;
            if empty {
                died = true;
                break;
            }
        }
        counters.bump(Counter::FilterRounds);
        counters.add(Counter::CandidatesPruned, pruned_this_round);
        if trace.is_enabled() {
            ring.push(trace.now_ns(), EventKind::FilterRound, pruned_this_round);
        }
        drop(round_span);
        if died {
            break 'rounds;
        }
        if !changed && round > 0 {
            break;
        }
    }
    trace.flush_counters(0, &counters);
    trace.flush_ring(0, &ring);
    (Candidates::new(sets), tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_data, paper_match, paper_query};
    use crate::{DataContext, QueryContext};

    #[test]
    fn completeness_on_fixture() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let (c, _) = dpiso_candidates(&qc, &gc, DEFAULT_REFINEMENT_ROUNDS);
        for (u, &v) in paper_match().iter().enumerate() {
            assert!(c.get(u as u32).contains(&v), "u{u} lost v{v}");
        }
    }

    #[test]
    fn more_rounds_tighten_or_equal() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let (c1, _) = dpiso_candidates(&qc, &gc, 1);
        let (c3, _) = dpiso_candidates(&qc, &gc, 3);
        for u in q.vertices() {
            assert!(c3.get(u).len() <= c1.get(u).len());
            for &v in c3.get(u) {
                assert!(c1.get(u).contains(&v));
            }
        }
    }

    #[test]
    fn example_3_4_style_refinement() {
        // The first (reverse-δ) pass applies NLF and prunes against δ-later
        // neighbors; on the fixture the final candidates collapse to the
        // unique match supports.
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let (c, _) = dpiso_candidates(&qc, &gc, DEFAULT_REFINEMENT_ROUNDS);
        assert_eq!(c.get(0), &[0]);
        assert_eq!(c.get(1), &[4]);
        assert_eq!(c.get(2), &[5]);
        assert_eq!(c.get(3), &[12]);
    }

    #[test]
    fn zero_rounds_is_ldf() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let (c0, _) = dpiso_candidates(&qc, &gc, 0);
        let ldf = crate::filter::ldf::ldf_candidates(&qc, &gc);
        for u in q.vertices() {
            assert_eq!(c0.get(u), ldf.get(u));
        }
    }
}
