//! The STEADY baseline of the paper's Figure 8: candidate sets refined by
//! Filtering Rule 3.1 until a fixpoint ("steady state").
//!
//! This is the strongest pruning achievable under Observation 3.1 — every
//! practical filter stops earlier to save preprocessing time, so STEADY
//! bounds their pruning power from below (fewest candidates). It is a
//! semijoin-reduction / arc-consistency computation and can be slow; the
//! study uses it purely as a yardstick.

use crate::candidates::Candidates;
use crate::context::{DataContext, QueryContext};
use crate::filter::common::{ldf_nlf_set, rule31_pass};
use sm_graph::VertexId;

/// Rule 3.1 fixpoint starting from LDF+NLF sets.
pub fn steady_candidates(q: &QueryContext<'_>, g: &DataContext<'_>) -> Candidates {
    let qg = q.graph;
    let nq = qg.num_vertices();
    let mut sets: Vec<Vec<VertexId>> = (0..nq as VertexId).map(|u| ldf_nlf_set(q, g, u)).collect();
    // Worklist of query vertices whose candidates may need re-checking.
    let mut dirty: Vec<bool> = vec![true; nq];
    let mut queue: std::collections::VecDeque<VertexId> = (0..nq as VertexId).collect();
    while let Some(u) = queue.pop_front() {
        dirty[u as usize] = false;
        let nbrs: Vec<VertexId> = qg.neighbors(u).to_vec();
        let mut cu = std::mem::take(&mut sets[u as usize]);
        let before = cu.len();
        cu.retain(|&v| nbrs.iter().all(|&u2| rule31_pass(g, v, &sets[u2 as usize])));
        let shrunk = cu.len() != before;
        let empty = cu.is_empty();
        sets[u as usize] = cu;
        if empty {
            break;
        }
        if shrunk {
            // Neighbors' candidates may now be invalid.
            for &u2 in &nbrs {
                if !dirty[u2 as usize] {
                    dirty[u2 as usize] = true;
                    queue.push_back(u2);
                }
            }
        }
    }
    Candidates::new(sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_data, paper_match, paper_query};
    use crate::{DataContext, QueryContext};

    #[test]
    fn completeness_on_fixture() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let c = steady_candidates(&qc, &gc);
        for (u, &v) in paper_match().iter().enumerate() {
            assert!(c.get(u as u32).contains(&v));
        }
    }

    #[test]
    fn steady_is_at_least_as_tight_as_every_filter() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let steady = steady_candidates(&qc, &gc);
        let (cfl, _) = crate::filter::cfl::cfl_candidates(&qc, &gc);
        let (ceci, _) = crate::filter::ceci::ceci_candidates(&qc, &gc);
        let (dp, _) = crate::filter::dpiso::dpiso_candidates(&qc, &gc, 3);
        for u in q.vertices() {
            for other in [&cfl, &ceci, &dp] {
                assert!(
                    steady.get(u).len() <= other.get(u).len(),
                    "u{u}: steady {:?} vs {:?}",
                    steady.get(u),
                    other.get(u)
                );
            }
        }
    }

    #[test]
    fn fixpoint_is_stable() {
        // Running the fixpoint on its own output must change nothing: every
        // candidate already has a neighbor in each neighbor's set.
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let c = steady_candidates(&qc, &gc);
        for u in q.vertices() {
            for &v in c.get(u) {
                for &u2 in q.neighbors(u) {
                    assert!(rule31_pass(&gc, v, c.get(u2)));
                }
            }
        }
    }
}
