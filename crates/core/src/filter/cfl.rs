//! CFL's filtering (Bi et al., SIGMOD 2016): BFS-tree guided top-down
//! generation plus bottom-up refinement, per Section 3.1.1 of the study.
//!
//! Processing vertices in BFS order `δ`:
//!
//! * **Generation (top-down)** — `C(u)` is generated from the candidates of
//!   `u`'s already-processed neighbors (Generation Rule 3.1 with
//!   `X = N(u) ∩ δ-prefix`), gated by LDF and NLF. After generating
//!   `C(u)`, each *non-tree* backward edge `(u', u)` also prunes the
//!   earlier set `C(u')` (the backward pruning of the paper's Example 3.2,
//!   where `v6` leaves `C(u1)` once `C(u2)` exists).
//! * **Refinement (bottom-up)** — in reverse `δ`, `v ∈ C(u)` must have a
//!   neighbor in `C(u')` for every δ-later neighbor `u'` (Filtering Rule
//!   3.1).
//!
//! The root is chosen among up to three core vertices minimizing
//! `|{v : L(v)=L(u)}| / d(u)`, breaking ties by the smallest NLF candidate
//! set — the paper's Section 3.2 description of CFL's start-vertex rule.

use crate::candidates::Candidates;
use crate::context::{DataContext, QueryContext};
use crate::filter::common::{ldf_nlf_set, nlf_pass, rule31_pass};
use sm_graph::traversal::BfsTree;
use sm_graph::VertexId;

/// Pick CFL's root: top-3 core vertices by `label_freq / degree`, then the
/// one with the smallest NLF candidate set.
pub fn select_cfl_root(q: &QueryContext<'_>, g: &DataContext<'_>) -> VertexId {
    let qg = q.graph;
    let pool: Vec<VertexId> = if q.core_mask.iter().any(|&c| c) {
        qg.vertices().filter(|&u| q.is_core(u)).collect()
    } else {
        qg.vertices().collect()
    };
    let mut scored: Vec<(f64, VertexId)> = pool
        .iter()
        .map(|&u| {
            let freq = g.graph.label_frequency(qg.label(u)) as f64;
            (freq / qg.degree(u).max(1) as f64, u)
        })
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    scored
        .iter()
        .take(3)
        .map(|&(_, u)| (ldf_nlf_set(q, g, u).len(), u))
        .min()
        .map(|(_, u)| u)
        .expect("non-empty query")
}

/// CFL candidate sets, plus the BFS tree the compressed path index and
/// CFL's ordering are built over.
pub fn cfl_candidates(q: &QueryContext<'_>, g: &DataContext<'_>) -> (Candidates, BfsTree) {
    let qg = q.graph;
    let nq = qg.num_vertices();
    let root = select_cfl_root(q, g);
    let tree = BfsTree::build(qg, root);
    let mut sets: Vec<Vec<VertexId>> = vec![Vec::new(); nq];

    // Top-down generation along δ.
    sets[root as usize] = ldf_nlf_set(q, g, root);
    for idx in 1..tree.order.len() {
        let u = tree.order[idx];
        // Backward neighbors in δ (both the tree parent and non-tree).
        let backward: Vec<VertexId> = qg
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&u2| tree.rank[u2 as usize] < idx)
            .collect();
        debug_assert!(!backward.is_empty(), "query must be connected");
        // Generate from the parent's candidates' neighborhoods, gated by
        // LDF + NLF + Rule 3.1 against every backward neighbor.
        let parent = tree.parent[u as usize];
        let mut gen: Vec<VertexId> = Vec::new();
        let du = qg.degree(u);
        let lu = qg.label(u);
        for &vp in &sets[parent as usize] {
            for &v in g.graph.neighbors(vp) {
                if g.graph.label(v) == lu && g.graph.degree(v) >= du {
                    gen.push(v);
                }
            }
        }
        gen.sort_unstable();
        gen.dedup();
        gen.retain(|&v| {
            nlf_pass(q, g, u, v)
                && backward
                    .iter()
                    .all(|&u2| rule31_pass(g, v, &sets[u2 as usize]))
        });
        sets[u as usize] = gen;
        if sets[u as usize].is_empty() {
            return (Candidates::new(sets), tree);
        }
        // Backward pruning through non-tree backward edges: the earlier set
        // must keep a neighbor in the new C(u).
        for &u2 in &backward {
            if u2 != parent {
                let cu = std::mem::take(&mut sets[u as usize]);
                sets[u2 as usize].retain(|&v2| rule31_pass(g, v2, &cu));
                sets[u as usize] = cu;
            }
        }
    }

    // Bottom-up refinement in reverse δ against δ-later neighbors.
    for idx in (0..tree.order.len()).rev() {
        let u = tree.order[idx];
        let forward: Vec<VertexId> = qg
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&u2| tree.rank[u2 as usize] > idx)
            .collect();
        if forward.is_empty() {
            continue;
        }
        let mut cu = std::mem::take(&mut sets[u as usize]);
        cu.retain(|&v| {
            forward
                .iter()
                .all(|&u2| rule31_pass(g, v, &sets[u2 as usize]))
        });
        sets[u as usize] = cu;
    }
    (Candidates::new(sets), tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_data, paper_match, paper_query};
    use crate::{DataContext, QueryContext};

    #[test]
    fn completeness_on_fixture() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let (c, tree) = cfl_candidates(&qc, &gc);
        for (u, &v) in paper_match().iter().enumerate() {
            assert!(
                c.get(u as u32).contains(&v),
                "u{u} lost v{v}: {:?}",
                c.get(u as u32)
            );
        }
        assert_eq!(tree.order.len(), 4);
    }

    #[test]
    fn refinement_prunes_example_3_2_analogue() {
        // In the paper's Example 3.2, the generation prunes v6 from C(u1)
        // via the non-tree edge and the refinement removes v1 from C(u2).
        // In our fixture the final sets must be exactly the match supports.
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let (c, _) = cfl_candidates(&qc, &gc);
        assert_eq!(c.get(0), &[0]);
        // u1 (B): v2 has no D neighbor, v6 has no D neighbor → only v4.
        assert_eq!(c.get(1), &[4]);
        // u2 (C): only v5 has degree 3 with A, B, D neighbors.
        assert_eq!(c.get(2), &[5]);
        assert_eq!(c.get(3), &[12]);
    }

    #[test]
    fn root_is_core_vertex() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let root = select_cfl_root(&qc, &gc);
        assert!(qc.is_core(root));
    }

    #[test]
    fn subset_of_nlf() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let nlf = crate::filter::nlf::nlf_candidates(&qc, &gc);
        let (c, _) = cfl_candidates(&qc, &gc);
        for u in q.vertices() {
            for &v in c.get(u) {
                assert!(nlf.get(u).contains(&v));
            }
        }
    }
}
