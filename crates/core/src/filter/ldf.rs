//! Label-and-degree filtering (LDF) — the baseline every algorithm uses:
//! `C(u) = {v ∈ V(G) | L(v) = L(u) ∧ d(v) ≥ d(u)}`.

use crate::candidates::Candidates;
use crate::context::{DataContext, QueryContext};
use crate::filter::common::ldf_set;

/// LDF candidate sets for every query vertex.
pub fn ldf_candidates(q: &QueryContext<'_>, g: &DataContext<'_>) -> Candidates {
    let sets = (0..q.num_vertices() as u32)
        .map(|u| ldf_set(q, g, u))
        .collect();
    Candidates::new(sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataContext, QueryContext};
    use sm_graph::builder::graph_from_edges;

    #[test]
    fn paper_figure1_ldf() {
        // Figure 1: q = u0(A)-u1(B)-u2(C)-u3(D) with edges as in the paper.
        let q = graph_from_edges(&[0, 1, 2, 3], &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        // G from Figure 1(b): v0(A); v1,v3,v5(C); v2,v4,v6(B); v7..v9(A);
        // v10..v12(D)
        let g = graph_from_edges(
            &[0, 2, 1, 2, 1, 2, 1, 0, 0, 0, 3, 3, 3],
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (1, 2),
                (4, 5),
                (5, 6),
                (1, 9),
                (2, 7),
                (3, 10),
                (4, 10),
                (4, 12),
                (5, 12),
                (5, 11),
                (6, 8),
                (10, 11),
                (11, 12),
            ],
        );
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let c = ldf_candidates(&qc, &gc);
        // u0 has degree 2 and label A: only v0 qualifies (v7, v8, v9 have
        // degree 1).
        assert_eq!(c.get(0), &[0]);
        // u3 (label D, degree 2): v10, v11, v12 all have degree >= 2
        assert_eq!(c.get(3), &[10, 11, 12]);
        assert!(c.respects_ldf(&q, &g));
    }
}
