//! Neighbor-label-frequency filtering (NLF): LDF plus the requirement that
//! for every label `l` among `u`'s neighbors, `|N(u, l)| ≤ |N(v, l)|`.

use crate::candidates::Candidates;
use crate::context::{DataContext, QueryContext};
use crate::filter::common::ldf_nlf_set;

/// LDF + NLF candidate sets for every query vertex.
pub fn nlf_candidates(q: &QueryContext<'_>, g: &DataContext<'_>) -> Candidates {
    let sets = (0..q.num_vertices() as u32)
        .map(|u| ldf_nlf_set(q, g, u))
        .collect();
    Candidates::new(sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_data, paper_query};
    use crate::{DataContext, QueryContext};

    #[test]
    fn nlf_is_subset_of_ldf() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let ldf = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let nlf = nlf_candidates(&qc, &gc);
        for u in q.vertices() {
            for &v in nlf.get(u) {
                assert!(ldf.get(u).contains(&v), "u={u} v={v}");
            }
        }
    }

    #[test]
    fn completeness_on_fixture() {
        // The known match must survive.
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let c = nlf_candidates(&qc, &gc);
        for (u, &v) in crate::fixtures::paper_match().iter().enumerate() {
            assert!(c.get(u as u32).contains(&v));
        }
    }

    #[test]
    fn nlf_prunes_u0_competitors() {
        // u0 needs a B neighbor and a C neighbor: pendant A vertices fail.
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let c = nlf_candidates(&qc, &gc);
        assert_eq!(c.get(0), &[0]);
    }
}
