//! GraphQL's filtering (He & Singh, SIGMOD 2008), as described in
//! Section 3.1.1 of the study.
//!
//! Two steps:
//!
//! 1. **Local pruning** — the profile of `u` (sorted labels of `u` and its
//!    neighbors within distance `r`) must be a sub-multiset of the profile
//!    of `v`. With the paper's default `r = 1` this is LDF plus
//!    neighbor-label multiset containment (i.e. the NLF dominance test).
//! 2. **Global refinement** — the pseudo subgraph isomorphism test: for
//!    `v ∈ C(u)`, build the bipartite graph between `N(u)` and `N(v)` with
//!    an edge `(u', v')` iff `v' ∈ C(u')`, and demand a *semi-perfect*
//!    matching (all of `N(u)` matched). Repeated `k` times (default 1).
//!
//! The semi-perfect matching is what distinguishes GraphQL's Observation
//! 3.2 from the weaker Observation 3.1 used by CFL/CECI/DP-iso: it
//! additionally enforces that the neighbor candidates can be chosen
//! *distinctly*, which matters when candidate sets overlap (few labels).

use crate::candidates::Candidates;
use crate::context::{DataContext, QueryContext};
use crate::filter::common::ldf_nlf_set;
use crate::util::{max_bipartite_matching, Bitmap};
use sm_graph::VertexId;

/// Tunables of the GraphQL filter.
#[derive(Clone, Copy, Debug)]
pub struct GqlParams {
    /// Number of global-refinement sweeps (paper default: 1).
    pub refinement_rounds: usize,
}

impl Default for GqlParams {
    fn default() -> Self {
        GqlParams {
            refinement_rounds: 1,
        }
    }
}

/// GraphQL candidate sets: local pruning then `k` rounds of global
/// refinement.
pub fn gql_candidates(q: &QueryContext<'_>, g: &DataContext<'_>, params: GqlParams) -> Candidates {
    let nq = q.num_vertices();
    // Local pruning with r = 1 profiles. Refinement shrinks these raw sets
    // in place; they are frozen into the CSR arena only on return.
    let mut sets: Vec<Vec<VertexId>> = (0..nq as VertexId).map(|u| ldf_nlf_set(q, g, u)).collect();
    if sets.iter().any(|s| s.is_empty()) {
        return Candidates::new(sets);
    }
    // Global refinement: membership bitmaps per query vertex, kept in sync
    // as sets shrink.
    let n = g.graph.num_vertices();
    let mut bitmaps: Vec<Bitmap> = sets
        .iter()
        .map(|s| {
            let mut b = Bitmap::new(n);
            b.set_all(s);
            b
        })
        .collect();
    let mut adj_scratch: Vec<Vec<u32>> = Vec::new();
    for _ in 0..params.refinement_rounds {
        let mut changed = false;
        for u in 0..nq as VertexId {
            let mut set = std::mem::take(&mut sets[u as usize]);
            let before = set.len();
            set.retain(|&v| {
                let ok = semi_perfect_matching_exists(q, g, &bitmaps, u, v, &mut adj_scratch);
                if !ok {
                    bitmaps[u as usize].unset(v);
                }
                ok
            });
            changed |= set.len() != before;
            let empty = set.is_empty();
            sets[u as usize] = set;
            if empty {
                return Candidates::new(sets);
            }
        }
        if !changed {
            break;
        }
    }
    Candidates::new(sets)
}

/// Whether the bipartite graph between `N(u)` and `N(v)` (edges: `(u', v')`
/// with `v' ∈ C(u')`) admits a matching covering all of `N(u)`.
fn semi_perfect_matching_exists(
    q: &QueryContext<'_>,
    g: &DataContext<'_>,
    bitmaps: &[Bitmap],
    u: VertexId,
    v: VertexId,
    adj: &mut Vec<Vec<u32>>,
) -> bool {
    let qn = q.graph.neighbors(u);
    let gn = g.graph.neighbors(v);
    if gn.len() < qn.len() {
        return false;
    }
    // Reuse the caller's row buffers: this routine runs |C(u)|·|V(q)|·k
    // times per query, so per-call allocations dominate the filter cost.
    if adj.len() < qn.len() {
        adj.resize_with(qn.len(), Vec::new);
    }
    for (li, &u2) in qn.iter().enumerate() {
        let row = &mut adj[li];
        row.clear();
        let bm = &bitmaps[u2 as usize];
        for (j, &v2) in gn.iter().enumerate() {
            if bm.get(v2) {
                row.push(j as u32);
            }
        }
        if row.is_empty() {
            return false;
        }
    }
    max_bipartite_matching(gn.len(), &adj[..qn.len()]) == qn.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_data, paper_match, paper_query};
    use crate::{DataContext, QueryContext};
    use sm_graph::builder::graph_from_edges;

    #[test]
    fn completeness_on_fixture() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let c = gql_candidates(&qc, &gc, GqlParams::default());
        for (u, &v) in paper_match().iter().enumerate() {
            assert!(c.get(u as u32).contains(&v), "u{u} lost v{v}");
        }
    }

    #[test]
    fn global_refinement_prunes_example_3_1() {
        // Example 3.1 of the paper: v1 in C(u2) is removed because the
        // bipartite graph between N(u2) and N(v1) has no semi-perfect
        // matching. In our fixture: C(u2) after refinement excludes v1
        // (v1's only D-neighbor options are missing) and v3.
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let c = gql_candidates(&qc, &gc, GqlParams::default());
        // u2 is the C-labeled query vertex adjacent to u0, u1, u3.
        assert!(c.get(2).contains(&5));
        assert!(
            !c.get(2).contains(&1),
            "v1 should be pruned: {:?}",
            c.get(2)
        );
    }

    #[test]
    fn semi_perfect_matching_distinctness() {
        // Hall violation that only Observation 3.2's condition (2) catches:
        // u0 has two same-labeled neighbors u1, u2 that must map to
        // *distinct* data vertices, but v0 offers only one qualifying
        // neighbor (w1). Rule 3.1 keeps v0 (both S_{u'} are non-empty);
        // GraphQL's semi-perfect matching prunes it.
        //
        // q: u0(l0)-u1(l1)-u3(l2), u0-u2(l1)-u4(l2)
        let q = graph_from_edges(&[0, 1, 1, 2, 2], &[(0, 1), (0, 2), (1, 3), (2, 4)]);
        // G: v0(l0)-w1(l1)-x(l2), v0-w2(l1). w2 is a leaf, so only w1 is a
        // candidate for u1 and for u2.
        let g = graph_from_edges(&[0, 1, 1, 2], &[(0, 1), (0, 2), (1, 3)]);
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let c = gql_candidates(&qc, &gc, GqlParams::default());
        assert!(c.get(0).is_empty(), "v0 should be pruned: {:?}", c.get(0));
        // sanity: the STEADY (Rule 3.1 fixpoint) baseline keeps v0
        let steady = crate::filter::steady::steady_candidates(&qc, &gc);
        assert!(steady.get(0).contains(&0));
    }

    #[test]
    fn more_rounds_never_add_candidates() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let c1 = gql_candidates(
            &qc,
            &gc,
            GqlParams {
                refinement_rounds: 1,
            },
        );
        let c4 = gql_candidates(
            &qc,
            &gc,
            GqlParams {
                refinement_rounds: 4,
            },
        );
        for u in q.vertices() {
            for &v in c4.get(u) {
                assert!(c1.get(u).contains(&v));
            }
        }
    }
}
