//! CECI's filtering (Bhattarai, Liu, Huang; SIGMOD 2019), per Section
//! 3.1.1 of the study.
//!
//! Phase 1 walks the BFS order `δ`: `C(u)` is generated from the tree
//! parent's candidates (Generation Rule 3.1), then every backward edge —
//! the tree edge *and* non-tree edges — prunes **bidirectionally**: `v`
//! leaves `C(u)` if it has no neighbor in `C(u_b)`, and `v'` leaves
//! `C(u_b)` if it has no neighbor in `C(u)`.
//!
//! Phase 2 walks reverse `δ` and refines `C(u)` against the candidate sets
//! of `u`'s **tree children only** — the asymmetry (ignoring non-tree
//! forward edges) is why the study finds CECI's pruning power weaker than
//! CFL's and DP-iso's (Figure 8), and we deliberately keep it.

use crate::candidates::Candidates;
use crate::context::{DataContext, QueryContext};
use crate::filter::common::{ldf_nlf_set, nlf_pass, rule31_pass};
use sm_graph::traversal::BfsTree;
use sm_graph::VertexId;

/// CECI's root: `argmin |C_nlf(u)| / d(u)`.
pub fn select_ceci_root(q: &QueryContext<'_>, g: &DataContext<'_>) -> VertexId {
    q.graph
        .vertices()
        .map(|u| {
            let c = ldf_nlf_set(q, g, u).len() as f64;
            (c / q.graph.degree(u).max(1) as f64, u)
        })
        .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)))
        .map(|(_, u)| u)
        .expect("non-empty query")
}

/// CECI candidate sets plus the BFS tree its compact embedding cluster
/// index hangs off.
pub fn ceci_candidates(q: &QueryContext<'_>, g: &DataContext<'_>) -> (Candidates, BfsTree) {
    let qg = q.graph;
    let nq = qg.num_vertices();
    let root = select_ceci_root(q, g);
    let tree = BfsTree::build(qg, root);
    let mut sets: Vec<Vec<VertexId>> = vec![Vec::new(); nq];

    // Phase 1: construction and filtering along δ.
    sets[root as usize] = ldf_nlf_set(q, g, root);
    for idx in 1..tree.order.len() {
        let u = tree.order[idx];
        let parent = tree.parent[u as usize];
        let du = qg.degree(u);
        let lu = qg.label(u);
        let mut gen: Vec<VertexId> = Vec::new();
        for &vp in &sets[parent as usize] {
            for &v in g.graph.neighbors(vp) {
                if g.graph.label(v) == lu && g.graph.degree(v) >= du {
                    gen.push(v);
                }
            }
        }
        gen.sort_unstable();
        gen.dedup();
        gen.retain(|&v| nlf_pass(q, g, u, v));
        sets[u as usize] = gen;
        // Bidirectional pruning against every backward neighbor (parent
        // included, per "rules out v from C(u_p) if v has no neighbors in
        // C(u)").
        let backward: Vec<VertexId> = qg
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&u2| tree.rank[u2 as usize] < idx)
            .collect();
        for &ub in &backward {
            let cb = std::mem::take(&mut sets[ub as usize]);
            sets[u as usize].retain(|&v| rule31_pass(g, v, &cb));
            sets[ub as usize] = cb;
            let cu = std::mem::take(&mut sets[u as usize]);
            sets[ub as usize].retain(|&v| rule31_pass(g, v, &cu));
            sets[u as usize] = cu;
        }
        if sets[u as usize].is_empty() {
            return (Candidates::new(sets), tree);
        }
    }

    // Phase 2: reverse-δ refinement against tree children only.
    for idx in (0..tree.order.len()).rev() {
        let u = tree.order[idx];
        let children = tree.children[u as usize].clone();
        if children.is_empty() {
            continue;
        }
        let mut cu = std::mem::take(&mut sets[u as usize]);
        cu.retain(|&v| {
            children
                .iter()
                .all(|&uc| rule31_pass(g, v, &sets[uc as usize]))
        });
        sets[u as usize] = cu;
    }
    (Candidates::new(sets), tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_data, paper_match, paper_query};
    use crate::{DataContext, QueryContext};

    #[test]
    fn completeness_on_fixture() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let (c, _) = ceci_candidates(&qc, &gc);
        for (u, &v) in paper_match().iter().enumerate() {
            assert!(c.get(u as u32).contains(&v), "u{u} lost v{v}");
        }
    }

    #[test]
    fn bidirectional_pruning_example_3_3() {
        // Mirrors the paper's Example 3.3: non-tree backward edges prune in
        // both directions during phase 1, so dead-end candidates disappear.
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let (c, _) = ceci_candidates(&qc, &gc);
        // The B-labeled query vertex must not keep v2/v6 (no D neighbor).
        assert_eq!(c.get(1), &[4]);
    }

    #[test]
    fn subset_of_nlf() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let nlf = crate::filter::nlf::nlf_candidates(&qc, &gc);
        let (c, _) = ceci_candidates(&qc, &gc);
        for u in q.vertices() {
            for &v in c.get(u) {
                assert!(nlf.get(u).contains(&v));
            }
        }
    }
}
