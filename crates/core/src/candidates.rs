//! Candidate vertex sets `C(u)`.

use sm_graph::{Graph, VertexId};

/// One sorted candidate set per query vertex (paper notation `C(u)`).
///
/// Completeness (Definition 2.2 of the paper) is the correctness contract
/// every filter must uphold: if `(u, v)` appears in any match then
/// `v ∈ C(u)`. The integration tests check this against the brute-force
/// reference matcher.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidates {
    sets: Vec<Vec<VertexId>>,
}

impl Candidates {
    /// Wrap per-vertex candidate sets. Each set must be sorted ascending.
    pub fn new(sets: Vec<Vec<VertexId>>) -> Self {
        debug_assert!(sets
            .iter()
            .all(|s| s.windows(2).all(|w| w[0] < w[1])));
        Candidates { sets }
    }

    /// Candidate set of query vertex `u`.
    #[inline]
    pub fn get(&self, u: VertexId) -> &[VertexId] {
        &self.sets[u as usize]
    }

    /// Mutable access for in-place refinement by filters.
    #[inline]
    pub fn get_mut(&mut self, u: VertexId) -> &mut Vec<VertexId> {
        &mut self.sets[u as usize]
    }

    /// Number of query vertices covered.
    #[inline]
    pub fn num_query_vertices(&self) -> usize {
        self.sets.len()
    }

    /// Whether some candidate set is empty (no match can exist).
    pub fn any_empty(&self) -> bool {
        self.sets.iter().any(|s| s.is_empty())
    }

    /// Total candidate count `Σ_u |C(u)|`.
    pub fn total(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// The paper's Figure 8 metric: `Σ_u |C(u)| / |V(q)|`.
    pub fn average(&self) -> f64 {
        if self.sets.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.sets.len() as f64
        }
    }

    /// Memory footprint of the candidate arrays, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.total() * std::mem::size_of::<VertexId>()
    }

    /// Position of data vertex `v` within `C(u)`, if present.
    #[inline]
    pub fn position(&self, u: VertexId, v: VertexId) -> Option<usize> {
        self.sets[u as usize].binary_search(&v).ok()
    }

    /// Debug validation: every candidate satisfies the label/degree
    /// constraint (a cheap necessary condition for completeness-preserving
    /// filters, used in tests).
    pub fn respects_ldf(&self, q: &Graph, g: &Graph) -> bool {
        self.sets.iter().enumerate().all(|(u, set)| {
            let u = u as VertexId;
            set.iter()
                .all(|&v| g.label(v) == q.label(u) && g.degree(v) >= q.degree(u))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_graph::builder::graph_from_edges;

    #[test]
    fn metrics() {
        let c = Candidates::new(vec![vec![0, 2], vec![1], vec![]]);
        assert_eq!(c.total(), 3);
        assert!((c.average() - 1.0).abs() < 1e-12);
        assert!(c.any_empty());
        assert_eq!(c.memory_bytes(), 12);
        assert_eq!(c.num_query_vertices(), 3);
    }

    #[test]
    fn position_lookup() {
        let c = Candidates::new(vec![vec![3, 7, 9]]);
        assert_eq!(c.position(0, 7), Some(1));
        assert_eq!(c.position(0, 4), None);
    }

    #[test]
    fn ldf_validation() {
        let q = graph_from_edges(&[0, 1], &[(0, 1)]);
        let g = graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let good = Candidates::new(vec![vec![0, 2], vec![1]]);
        assert!(good.respects_ldf(&q, &g));
        let bad = Candidates::new(vec![vec![1], vec![1]]); // wrong label for u0
        assert!(!bad.respects_ldf(&q, &g));
    }
}
