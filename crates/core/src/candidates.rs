//! Candidate vertex sets `C(u)`, stored as one flat CSR arena.

use sm_graph::{Graph, VertexId};

/// One sorted candidate set per query vertex (paper notation `C(u)`),
/// flattened into a CSR arena: `offsets[u]..offsets[u + 1]` indexes the
/// shared `ids` array. A whole run's candidates live in two contiguous
/// allocations, so plans can be cloned/shared cheaply and per-set `Vec`
/// headers never reach the enumeration hot path.
///
/// Completeness (Definition 2.2 of the paper) is the correctness contract
/// every filter must uphold: if `(u, v)` appears in any match then
/// `v ∈ C(u)`. The integration tests check this against the brute-force
/// reference matcher.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidates {
    /// `offsets[u]..offsets[u + 1]` delimits `C(u)` in `ids`.
    offsets: Vec<u32>,
    /// All candidate sets back to back, each slice sorted ascending.
    ids: Vec<VertexId>,
}

impl Candidates {
    /// Freeze per-vertex candidate sets into the CSR arena. Each set must
    /// be sorted ascending. Filters build plain `Vec<Vec<_>>` sets while
    /// refining and call this once at the end.
    pub fn new(sets: Vec<Vec<VertexId>>) -> Self {
        Self::from_sets(&sets)
    }

    /// [`Candidates::new`] from borrowed sets.
    pub fn from_sets(sets: &[Vec<VertexId>]) -> Self {
        debug_assert!(sets.iter().all(|s| s.windows(2).all(|w| w[0] < w[1])));
        let total: usize = sets.iter().map(|s| s.len()).sum();
        let mut offsets = Vec::with_capacity(sets.len() + 1);
        let mut ids = Vec::with_capacity(total);
        offsets.push(0u32);
        for s in sets {
            ids.extend_from_slice(s);
            offsets.push(ids.len() as u32);
        }
        Candidates { offsets, ids }
    }

    /// Candidate set of query vertex `u`.
    #[inline]
    pub fn get(&self, u: VertexId) -> &[VertexId] {
        let u = u as usize;
        &self.ids[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Number of query vertices covered.
    #[inline]
    pub fn num_query_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether some candidate set is empty (no match can exist).
    pub fn any_empty(&self) -> bool {
        self.offsets.windows(2).any(|w| w[0] == w[1])
    }

    /// Total candidate count `Σ_u |C(u)|`.
    pub fn total(&self) -> usize {
        self.ids.len()
    }

    /// The paper's Figure 8 metric: `Σ_u |C(u)| / |V(q)|`.
    pub fn average(&self) -> f64 {
        let n = self.num_query_vertices();
        if n == 0 {
            0.0
        } else {
            self.total() as f64 / n as f64
        }
    }

    /// Memory footprint of the candidate arena (ids + offsets), in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.ids.len() * std::mem::size_of::<VertexId>()
            + self.offsets.len() * std::mem::size_of::<u32>()
    }

    /// Position of data vertex `v` within `C(u)`, if present.
    #[inline]
    pub fn position(&self, u: VertexId, v: VertexId) -> Option<usize> {
        self.get(u).binary_search(&v).ok()
    }

    /// Debug validation: every candidate satisfies the label/degree
    /// constraint (a cheap necessary condition for completeness-preserving
    /// filters, used in tests).
    pub fn respects_ldf(&self, q: &Graph, g: &Graph) -> bool {
        (0..self.num_query_vertices()).all(|u| {
            let u = u as VertexId;
            self.get(u)
                .iter()
                .all(|&v| g.label(v) == q.label(u) && g.degree(v) >= q.degree(u))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_graph::builder::graph_from_edges;

    #[test]
    fn metrics() {
        let c = Candidates::new(vec![vec![0, 2], vec![1], vec![]]);
        assert_eq!(c.total(), 3);
        assert!((c.average() - 1.0).abs() < 1e-12);
        assert!(c.any_empty());
        // 3 ids + 4 offsets, 4 bytes each
        assert_eq!(c.memory_bytes(), 28);
        assert_eq!(c.num_query_vertices(), 3);
    }

    #[test]
    fn csr_slices_match_input_sets() {
        let sets = vec![vec![0, 2], vec![1], vec![], vec![5, 7, 9]];
        let c = Candidates::new(sets.clone());
        for (u, s) in sets.iter().enumerate() {
            assert_eq!(c.get(u as VertexId), s.as_slice());
        }
    }

    #[test]
    fn position_lookup() {
        let c = Candidates::new(vec![vec![3, 7, 9]]);
        assert_eq!(c.position(0, 7), Some(1));
        assert_eq!(c.position(0, 4), None);
    }

    #[test]
    fn ldf_validation() {
        let q = graph_from_edges(&[0, 1], &[(0, 1)]);
        let g = graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let good = Candidates::new(vec![vec![0, 2], vec![1]]);
        assert!(good.respects_ldf(&q, &g));
        let bad = Candidates::new(vec![vec![1], vec![1]]); // wrong label for u0
        assert!(!bad.respects_ldf(&q, &g));
    }
}
