//! [`Executor`]: runs a compiled [`QueryPlan`] against a data graph.
//!
//! The executor is the single entry point for every enumeration mode —
//! static-order sequential, adaptive (DP-iso), and intra-query parallel —
//! so the engine-selection and fallback policy lives in exactly one place
//! instead of being re-decided by each caller. The plan is borrowed
//! immutably: one plan can back any number of executions, and all workers
//! of a parallel run share it by reference.

use crate::enumerate::adaptive::{enumerate_adaptive_shared, enumerate_adaptive_with};
use crate::enumerate::control::SharedControl;
use crate::enumerate::engine::{enumerate_with, EngineInput};
use crate::enumerate::parallel::{enumerate_parallel_with, ParallelStrategy};
use crate::enumerate::scratch::Scratch;
use crate::enumerate::{EnumStats, MatchSink, SampleSink, Termination};
use crate::plan::QueryPlan;
use sm_graph::{Graph, VertexId};
use sm_runtime::Counter;

/// Executes a [`QueryPlan`] against one data graph.
pub struct Executor<'a> {
    plan: &'a QueryPlan,
    g: &'a Graph,
}

impl<'a> Executor<'a> {
    /// An executor for `plan` over `g`.
    pub fn new(plan: &'a QueryPlan, g: &'a Graph) -> Self {
        Executor { plan, g }
    }

    /// The plan this executor runs.
    pub fn plan(&self) -> &'a QueryPlan {
        self.plan
    }

    /// Sequential execution with a fresh scratch arena.
    pub fn run<S: MatchSink>(&self, sink: &mut S) -> EnumStats {
        let mut scratch = Scratch::new();
        self.run_with_scratch(&mut scratch, sink)
    }

    /// Sequential execution reusing a caller-owned [`Scratch`] — repeated
    /// executions of same-shaped plans allocate nothing.
    pub fn run_with_scratch<S: MatchSink>(&self, scratch: &mut Scratch, sink: &mut S) -> EnumStats {
        let trace = self.plan.config.trace.clone();
        let span = trace.is_enabled().then(|| trace.span("execute"));
        let mut stats = if self.plan.adaptive {
            enumerate_adaptive_with(self.plan, self.g, scratch, sink)
        } else {
            enumerate_with(
                &EngineInput {
                    plan: self.plan,
                    g: self.g,
                    root_subset: None,
                    shared: None,
                },
                scratch,
                sink,
            )
        };
        if !self.plan.config.semantics.emits() {
            stats.counters.bump(Counter::CountOnlyRuns);
        }
        trace.flush_counters(0, &stats.counters);
        drop(span);
        stats
    }

    /// Sequential execution under an external [`SharedControl`]: the
    /// run's cancellation token and match cap come from `shared`, not the
    /// plan's config — how a service executes one cached, immutable plan
    /// under many different per-request budgets. Works for both the
    /// static and the adaptive engine.
    pub fn run_with_shared<S: MatchSink>(
        &self,
        shared: &SharedControl,
        scratch: &mut Scratch,
        sink: &mut S,
    ) -> EnumStats {
        if self.plan.adaptive {
            enumerate_adaptive_shared(self.plan, self.g, Some(shared), scratch, sink)
        } else {
            enumerate_with(
                &EngineInput {
                    plan: self.plan,
                    g: self.g,
                    root_subset: None,
                    shared: Some(shared),
                },
                scratch,
                sink,
            )
        }
    }

    /// Parallel execution across `threads` workers, each with its own
    /// sink (`S::default()`) and scratch arena, all sharing the plan
    /// immutably.
    ///
    /// Adaptive plans and `threads <= 1` fall back to sequential execution
    /// of the *same* plan (DP-iso's runtime vertex selection is inherently
    /// sequential per subtree and the paper only parallelizes the static
    /// engines); the plan is never rebuilt.
    pub fn run_parallel<S: MatchSink + Default + Send>(
        &self,
        threads: usize,
        strategy: ParallelStrategy,
    ) -> (EnumStats, Vec<S>) {
        if self.plan.adaptive || threads <= 1 {
            let mut sink = S::default();
            let stats = self.run(&mut sink);
            return (stats, vec![sink]);
        }
        let (mut stats, sinks) = enumerate_parallel_with(
            &EngineInput {
                plan: self.plan,
                g: self.g,
                root_subset: None,
                shared: None,
            },
            threads,
            strategy,
        );
        if !self.plan.config.semantics.emits() {
            stats.counters.bump(Counter::CountOnlyRuns);
        }
        (stats, sinks)
    }

    /// Execute a plan whose termination is [`Termination::SampleK`]:
    /// enumerates to exhaustion (uniformity requires seeing every match)
    /// while reservoir-sampling the stream, and returns the sampled
    /// embeddings alongside the stats. Deterministic per the semantics'
    /// seed; sequential by construction — per-worker reservoirs would not
    /// be a uniform sample of the union.
    ///
    /// Panics if the plan's termination is not `SampleK`.
    pub fn run_sample(&self) -> (EnumStats, Vec<Vec<VertexId>>) {
        let Termination::SampleK(k, seed) = self.plan.config.semantics.termination else {
            panic!("run_sample requires SampleK termination semantics");
        };
        let mut sink = SampleSink::new(k, seed);
        let stats = self.run(&mut sink);
        (stats, sink.samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{CountSink, LcMethod, MatchConfig};
    use crate::fixtures::{paper_data, paper_query};
    use crate::plan::QueryPlan;
    use crate::{DataContext, QueryContext};

    fn plan_and_graph() -> (QueryPlan, sm_graph::Graph) {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let plan = QueryPlan::assemble(
            &q,
            cand,
            vec![0, 1, 2, 3],
            None,
            None,
            LcMethod::CandidateScan,
            MatchConfig::default(),
            false,
        );
        (plan, g)
    }

    #[test]
    fn one_plan_many_executions() {
        let (plan, g) = plan_and_graph();
        let exec = Executor::new(&plan, &g);
        let mut scratch = Scratch::new();
        for round in 0u64..3 {
            let mut sink = CountSink;
            let stats = exec.run_with_scratch(&mut scratch, &mut sink);
            assert_eq!(stats.matches, 1);
            assert_eq!(stats.scratch_reuse, round);
        }
        // Parallel execution of the very same plan agrees.
        let (par, _sinks) = exec.run_parallel::<CountSink>(4, ParallelStrategy::Morsel);
        assert_eq!(par.matches, 1);
    }
}
