//! Match semantics: what counts as a match, what the run produces, and
//! when it stops.
//!
//! The paper fixes one semantics — vertex-injective subgraph isomorphism
//! with full embedding materialization — but a serving stack wants the
//! modes analytics traffic actually asks for. [`MatchSemantics`] is the
//! three-axis descriptor carried by [`MatchConfig`](super::MatchConfig)
//! into every compiled [`QueryPlan`](crate::plan::QueryPlan):
//!
//! * [`Injectivity`] — which mappings are admissible: vertex-injective
//!   isomorphism (the paper's default), edge-injective matching (no two
//!   query edges share a data edge, data vertices may repeat), or
//!   unrestricted homomorphism. For any query and data graph the counts
//!   are ordered `homomorphism ≥ edge-injective ≥ isomorphism`, because
//!   each mode's admissible mappings are a superset of the next.
//! * [`OutputMode`] — whether embeddings are materialized into the sink
//!   or only counted. Count-only runs never touch the sink: the match
//!   tally lives in the per-worker
//!   [`RunControl`](super::control::RunControl) accumulators that are
//!   flushed at morsel end anyway, so counting adds zero per-match work.
//! * [`Termination`] — run to exhaustion, stop after the first `k`
//!   matches (top-k, exact across parallel workers via the atomic
//!   `record_match` slot allocator), or draw a uniform seeded sample of
//!   `k` matches (reservoir over the full enumeration; sequential only).
//!
//! Failing-set pruning and the VF2++ runtime rule reason about
//! *injectivity conflicts* — both are only sound under
//! [`Injectivity::Isomorphism`] and are rejected by
//! [`QueryPlan::assemble`](crate::plan::QueryPlan::assemble) for the
//! relaxed modes (the service disables them automatically when
//! compiling a relaxed-mode plan).

/// Which mappings of query vertices to data vertices are admissible.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Injectivity {
    /// Vertex-injective subgraph isomorphism (the paper's semantics):
    /// no two query vertices map to the same data vertex.
    Isomorphism,
    /// Edge-injective matching: no two query edges map to the same data
    /// edge, but data *vertices* may be reused.
    EdgeInjective,
    /// Unrestricted homomorphism: any label- and edge-preserving
    /// mapping.
    Homomorphism,
}

impl Injectivity {
    /// Stable display name (bench tables, JSON).
    pub fn name(self) -> &'static str {
        match self {
            Injectivity::Isomorphism => "iso",
            Injectivity::EdgeInjective => "edge-inj",
            Injectivity::Homomorphism => "homo",
        }
    }
}

/// What an enumeration run produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OutputMode {
    /// Materialize every embedding into the run's sink.
    Embeddings,
    /// Count matches without writing any embedding buffer: the engines
    /// skip the sink entirely and the count rides the per-worker
    /// accumulators that exist anyway.
    CountOnly,
}

/// When an enumeration run stops.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Termination {
    /// Exhaust the search space (subject to caps/limits in
    /// [`MatchConfig`](super::MatchConfig)).
    All,
    /// Stop after the first `k` matches. Composes with
    /// `max_matches` by taking the minimum; exact under parallel
    /// execution via the shared atomic slot allocator.
    TopK(u64),
    /// Uniform sample of `k` matches, seeded: reservoir sampling over
    /// the complete enumeration (the run does **not** stop early — a
    /// uniform sample requires seeing every match). Sequential
    /// executor paths only; see the supported matrix in DESIGN.md.
    SampleK(u64, u64),
}

/// The full three-axis semantics descriptor of a run. `Default` is the
/// paper's mode: isomorphism, materialized embeddings, run to
/// exhaustion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MatchSemantics {
    /// Which mappings are admissible.
    pub injectivity: Injectivity,
    /// Materialize embeddings or count only.
    pub output: OutputMode,
    /// Exhaustive, top-k, or sampled termination.
    pub termination: Termination,
}

impl Default for MatchSemantics {
    fn default() -> Self {
        MatchSemantics {
            injectivity: Injectivity::Isomorphism,
            output: OutputMode::Embeddings,
            termination: Termination::All,
        }
    }
}

impl MatchSemantics {
    /// The paper's default semantics (same as `Default`).
    pub fn isomorphism() -> Self {
        Self::default()
    }

    /// Homomorphism counting/matching.
    pub fn homomorphism() -> Self {
        MatchSemantics {
            injectivity: Injectivity::Homomorphism,
            ..Self::default()
        }
    }

    /// Edge-injective matching.
    pub fn edge_injective() -> Self {
        MatchSemantics {
            injectivity: Injectivity::EdgeInjective,
            ..Self::default()
        }
    }

    /// Builder-style: switch to count-only output.
    pub fn count_only(mut self) -> Self {
        self.output = OutputMode::CountOnly;
        self
    }

    /// Builder-style: stop after the first `k` matches.
    pub fn top_k(mut self, k: u64) -> Self {
        self.termination = Termination::TopK(k);
        self
    }

    /// Builder-style: uniform seeded sample of `k` matches.
    pub fn sample_k(mut self, k: u64, seed: u64) -> Self {
        self.termination = Termination::SampleK(k, seed);
        self
    }

    /// Whether the engines deliver embeddings to the sink.
    #[inline]
    pub fn emits(&self) -> bool {
        self.output == OutputMode::Embeddings
    }

    /// The match cap this semantics imposes on its own (`TopK`), if any.
    /// `SampleK` imposes none — a uniform sample needs the full
    /// enumeration.
    pub fn cap(&self) -> Option<u64> {
        match self.termination {
            Termination::TopK(k) => Some(k),
            _ => None,
        }
    }

    /// Stable 64-bit fingerprint of the descriptor, used to extend the
    /// canonical code and the plan-cache key: plans are shared within a
    /// mode, never across modes. Hand-rolled (splitmix64 over a fixed
    /// field encoding) so it is stable across processes, unlike
    /// `DefaultHasher`.
    pub fn fingerprint(&self) -> u64 {
        let inj = match self.injectivity {
            Injectivity::Isomorphism => 0u64,
            Injectivity::EdgeInjective => 1,
            Injectivity::Homomorphism => 2,
        };
        let out = match self.output {
            OutputMode::Embeddings => 0u64,
            OutputMode::CountOnly => 1,
        };
        let (term, a, b) = match self.termination {
            Termination::All => (0u64, 0u64, 0u64),
            Termination::TopK(k) => (1, k, 0),
            Termination::SampleK(k, seed) => (2, k, seed),
        };
        let mut state = 0x53_4d_53_45_4d_00_00_01u64; // "SMSEM" tag + version
        let mut h = 0u64;
        for w in [inj, out, term, a, b] {
            state ^= w;
            h = sm_runtime::rng::splitmix64(&mut state);
        }
        h
    }

    /// Short mode label for tables: `"iso"`, `"homo+count"`, …
    pub fn label(&self) -> String {
        let mut s = self.injectivity.name().to_string();
        if self.output == OutputMode::CountOnly {
            s.push_str("+count");
        }
        match self.termination {
            Termination::All => {}
            Termination::TopK(k) => s.push_str(&format!("+top{k}")),
            Termination::SampleK(k, _) => s.push_str(&format!("+sample{k}")),
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_mode() {
        let s = MatchSemantics::default();
        assert_eq!(s.injectivity, Injectivity::Isomorphism);
        assert_eq!(s.output, OutputMode::Embeddings);
        assert_eq!(s.termination, Termination::All);
        assert!(s.emits());
        assert_eq!(s.cap(), None);
        assert_eq!(s, MatchSemantics::isomorphism());
    }

    #[test]
    fn builders_compose() {
        let s = MatchSemantics::homomorphism().count_only().top_k(7);
        assert_eq!(s.injectivity, Injectivity::Homomorphism);
        assert!(!s.emits());
        assert_eq!(s.cap(), Some(7));
        assert_eq!(s.label(), "homo+count+top7");
        let t = MatchSemantics::edge_injective().sample_k(3, 99);
        assert_eq!(t.cap(), None);
        assert_eq!(t.label(), "edge-inj+sample3");
    }

    #[test]
    fn fingerprints_separate_modes() {
        let modes = [
            MatchSemantics::default(),
            MatchSemantics::homomorphism(),
            MatchSemantics::edge_injective(),
            MatchSemantics::default().count_only(),
            MatchSemantics::default().top_k(10),
            MatchSemantics::default().top_k(11),
            MatchSemantics::default().sample_k(10, 1),
            MatchSemantics::default().sample_k(10, 2),
            MatchSemantics::homomorphism().count_only(),
        ];
        let fps: Vec<u64> = modes.iter().map(|m| m.fingerprint()).collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "modes {i} and {j} collide");
            }
        }
        // stable across calls
        assert_eq!(
            MatchSemantics::default().fingerprint(),
            MatchSemantics::default().fingerprint()
        );
    }
}
