//! Intra-query parallel enumeration.
//!
//! The paper notes that CECI (and Glasgow) have parallel variants that
//! split the search across workers; this module provides the standard
//! embarrassingly-parallel decomposition for the static-order engine: the
//! depth-0 local candidates are partitioned round-robin across `threads`
//! worker engines, each exploring its own subtree set with private state.
//! A [`SharedControl`] makes the match cap global (the 10^5 cap applies to
//! the *sum*) and propagates stops.
//!
//! Matches are streamed into per-worker sinks (each worker gets
//! `S::default()`); the caller merges them if it needs the embeddings.
//! Counts and search-tree sizes are summed; the reported elapsed time is
//! the wall-clock of the whole region.

use crate::enumerate::engine::{enumerate, EngineInput, SharedControl};
use crate::enumerate::{EnumStats, LcMethod, MatchSink, Outcome};
use std::time::Instant;

/// Run the static-order engine across `threads` workers. Returns the
/// merged stats and each worker's sink.
///
/// The partition is over the depth-0 candidate entries (positions for the
/// space-backed methods, data vertex ids otherwise) — exactly what a
/// sequential run would iterate at the root.
pub fn enumerate_parallel<S: MatchSink + Default + Send>(
    input: &EngineInput<'_>,
    threads: usize,
) -> (EnumStats, Vec<S>) {
    assert!(threads >= 1);
    assert!(
        input.root_subset.is_none(),
        "enumerate_parallel partitions the root itself; pass root_subset: None"
    );
    let started = Instant::now();
    let root = input.order[0];
    let c_root = input.candidates.get(root);
    // Depth-0 entries per the method's convention.
    let entries: Vec<u32> = match input.method {
        LcMethod::TreeIndex | LcMethod::Intersect => (0..c_root.len() as u32).collect(),
        _ => c_root.to_vec(),
    };
    let threads = threads.min(entries.len().max(1));
    if threads <= 1 {
        let mut sink = S::default();
        let stats = enumerate(input, &mut sink);
        return (stats, vec![sink]);
    }
    // Round-robin chunks balance the skewed subtree sizes of power-law
    // graphs better than contiguous ranges.
    let mut chunks: Vec<Vec<u32>> = vec![Vec::new(); threads];
    for (i, &e) in entries.iter().enumerate() {
        chunks[i % threads].push(e);
    }
    let shared = SharedControl::default();
    let results: Vec<(EnumStats, S)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let shared = &shared;
                scope.spawn(move |_| {
                    let worker_input = EngineInput {
                        q: input.q,
                        g: input.g,
                        candidates: input.candidates,
                        space: input.space,
                        order: input.order,
                        parent: input.parent,
                        method: input.method,
                        config: input.config,
                        root_subset: Some(chunk),
                        shared: Some(shared),
                    };
                    let mut sink = S::default();
                    let stats = enumerate(&worker_input, &mut sink);
                    (stats, sink)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
    .expect("scope panicked");

    let mut matches = 0u64;
    let mut recursions = 0u64;
    let mut outcome = Outcome::Complete;
    let mut sinks = Vec::with_capacity(results.len());
    for (stats, sink) in results {
        matches += stats.matches;
        recursions += stats.recursions;
        match stats.outcome {
            Outcome::TimedOut => outcome = Outcome::TimedOut,
            Outcome::CapReached if outcome == Outcome::Complete => {
                outcome = Outcome::CapReached;
            }
            _ => {}
        }
        sinks.push(sink);
    }
    // The global counter may have raced slightly past the cap; report the
    // true emitted count (sinks saw exactly `matches` embeddings).
    (
        EnumStats {
            matches,
            recursions,
            elapsed: started.elapsed(),
            outcome,
        },
        sinks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate_space::{CandidateSpace, SpaceCoverage};
    use crate::enumerate::engine::derive_parents;
    use crate::enumerate::{CollectSink, CountSink, MatchConfig};
    use crate::fixtures::{paper_data, paper_query};
    use crate::{DataContext, QueryContext};
    use sm_graph::gen::rmat::{rmat_graph, RmatParams};

    #[test]
    fn parallel_counts_match_sequential() {
        let g = rmat_graph(2000, 10.0, 3, RmatParams::PAPER, 21);
        let q = sm_graph::builder::graph_from_edges(&[0, 1, 2, 0], &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::gql::gql_candidates(&qc, &gc, Default::default());
        if cand.any_empty() {
            return;
        }
        let order = vec![0u32, 1, 2, 3];
        let parents = derive_parents(&q, &order, None);
        let space = CandidateSpace::build(&q, &g, &cand, SpaceCoverage::AllEdges, false);
        let cfg = MatchConfig::find_all();
        let input = EngineInput {
            q: &q,
            g: &g,
            candidates: &cand,
            space: Some(&space),
            order: &order,
            parent: &parents,
            method: crate::enumerate::LcMethod::Intersect,
            config: &cfg,
            root_subset: None,
            shared: None,
        };
        let mut seq_sink = CountSink;
        let seq = enumerate(&input, &mut seq_sink);
        for threads in [1usize, 2, 4, 7] {
            let (par, _sinks) = enumerate_parallel::<CountSink>(&input, threads);
            assert_eq!(par.matches, seq.matches, "{threads} threads");
            assert_eq!(par.outcome, Outcome::Complete);
        }
    }

    #[test]
    fn parallel_collect_gathers_all_embeddings() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let order = vec![0u32, 1, 2, 3];
        let parents = derive_parents(&q, &order, None);
        let cfg = MatchConfig::find_all();
        let input = EngineInput {
            q: &q,
            g: &g,
            candidates: &cand,
            space: None,
            order: &order,
            parent: &parents,
            method: crate::enumerate::LcMethod::CandidateScan,
            config: &cfg,
            root_subset: None,
            shared: None,
        };
        let (stats, sinks) = enumerate_parallel::<CollectSink>(&input, 3);
        let total: usize = sinks.iter().map(|s| s.matches.len()).sum();
        assert_eq!(stats.matches as usize, total);
        assert_eq!(total, 1);
    }

    #[test]
    fn global_cap_applies_to_the_sum() {
        let g = rmat_graph(3000, 16.0, 1, RmatParams::PAPER, 5);
        let q = sm_graph::builder::graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let order = vec![1u32, 0, 2];
        let parents = derive_parents(&q, &order, None);
        let cfg = MatchConfig {
            max_matches: Some(500),
            ..Default::default()
        };
        let input = EngineInput {
            q: &q,
            g: &g,
            candidates: &cand,
            space: None,
            order: &order,
            parent: &parents,
            method: crate::enumerate::LcMethod::Direct,
            config: &cfg,
            root_subset: None,
            shared: None,
        };
        let (stats, _sinks) = enumerate_parallel::<CountSink>(&input, 4);
        assert_eq!(stats.outcome, Outcome::CapReached);
        // workers race a little past the cap; the overshoot is bounded by
        // roughly one match per worker
        assert!(stats.matches >= 500 && stats.matches < 500 + 8, "{}", stats.matches);
    }
}
