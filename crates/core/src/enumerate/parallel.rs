//! Intra-query parallel enumeration.
//!
//! The paper notes that CECI (and Glasgow) have parallel variants that
//! split the search across workers. The subtree below one depth-0
//! candidate of a power-law data graph can be orders of magnitude larger
//! than another's, so how the roots are split matters:
//!
//! * [`ParallelStrategy::Morsel`] (the default) deals the depth-0 entries
//!   into small contiguous morsels on per-worker queues
//!   ([`sm_runtime::pool`]); idle workers pull their own queue and steal
//!   from the busiest one, so a hub-rooted subtree ends up shared instead
//!   of serializing the run.
//! * [`ParallelStrategy::Static`] is the classic fixed round-robin
//!   partition (one chunk per worker, no rebalancing), kept as the
//!   baseline the experiment tables compare against.
//!
//! Every worker executes the same immutable `&QueryPlan` and owns one
//! [`Scratch`] arena for the whole run, so in steady state a morsel
//! allocates nothing — the per-worker
//! [`WorkerMetrics::scratch_reuse`] counter reports exactly how many
//! morsels hit that fast path.
//!
//! Both strategies share a [`SharedControl`]: the match cap applies to the
//! *sum* across workers, and one worker's deadline/cap cancels everyone
//! through the run's [`sm_runtime::CancelToken`].
//!
//! Matches are streamed into per-worker sinks (each worker gets
//! `S::default()`); the caller merges them if it needs the embeddings.
//! Counts and search-tree sizes are summed; the reported elapsed time is
//! the wall-clock of the whole region, and [`EnumStats::parallel`] carries
//! the per-worker morsel/steal/busy counters.

use crate::enumerate::control::SharedControl;
use crate::enumerate::engine::{enumerate, enumerate_with, EngineInput};
use crate::enumerate::scratch::Scratch;
use crate::enumerate::{EnumStats, LcMethod, MatchSink, Outcome};
use sm_runtime::pool::{deal_morsels, scoped_map, MorselQueue};
use sm_runtime::trace::{Counter, CounterBlock, Trace};
use sm_runtime::{CancelReason, PoolMetrics, WorkerMetrics};
use std::time::Instant;

/// Mirror a worker's pool metrics into its counter block, so the JSONL
/// profile carries morsel/steal/busy/idle/steal-wait numbers per worker
/// next to the engine counters.
fn mirror_metrics(block: &mut CounterBlock, m: &WorkerMetrics) {
    block.set(Counter::MorselsExecuted, m.morsels);
    block.set(Counter::MorselsStolen, m.steals);
    block.set(Counter::ScratchReuses, m.scratch_reuse);
    block.set(Counter::BusyNs, m.busy.as_nanos() as u64);
    block.set(Counter::IdleNs, m.idle.as_nanos() as u64);
    block.set(Counter::StealWaitNs, m.steal_wait.as_nanos() as u64);
}

/// How the depth-0 candidates are distributed across workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParallelStrategy {
    /// Morsel-driven work stealing (default): dynamic balancing for
    /// skewed subtree sizes.
    Morsel,
    /// Static round-robin partition: no rebalancing once the run starts.
    Static,
}

/// Run the static-order engine across `threads` workers with the default
/// [`ParallelStrategy::Morsel`] distribution. Returns the merged stats
/// and each worker's sink.
pub fn enumerate_parallel<S: MatchSink + Default + Send>(
    input: &EngineInput<'_>,
    threads: usize,
) -> (EnumStats, Vec<S>) {
    enumerate_parallel_with(input, threads, ParallelStrategy::Morsel)
}

/// [`enumerate_parallel`] with an explicit distribution strategy.
///
/// The partition is over the depth-0 candidate entries (positions for the
/// space-backed methods, data vertex ids otherwise) — exactly what a
/// sequential run would iterate at the root.
pub fn enumerate_parallel_with<S: MatchSink + Default + Send>(
    input: &EngineInput<'_>,
    threads: usize,
    strategy: ParallelStrategy,
) -> (EnumStats, Vec<S>) {
    assert!(threads >= 1);
    assert!(
        input.root_subset.is_none(),
        "enumerate_parallel partitions the root itself; pass root_subset: None"
    );
    let started = Instant::now();
    let plan = input.plan;
    let root = plan.root();
    let c_root = plan.candidates.get(root);
    // Depth-0 entries per the method's convention.
    let entries: Vec<u32> = match plan.method {
        LcMethod::TreeIndex | LcMethod::Intersect => (0..c_root.len() as u32).collect(),
        _ => c_root.to_vec(),
    };
    let threads = threads.min(entries.len().max(1));
    let trace = plan.config.trace.clone();
    if threads <= 1 {
        let _exec_span = trace.is_enabled().then(|| trace.span("execute"));
        let mut sink = S::default();
        let stats = enumerate(input, &mut sink);
        trace.flush_counters(0, &stats.counters);
        return (stats, vec![sink]);
    }
    let parallel_span = trace.is_enabled().then(|| trace.span("parallel"));
    let parent = parallel_span.as_ref().and_then(|s| s.id());
    let shared = SharedControl::for_run(&plan.config, started);
    let per_worker: Vec<(WorkerStats<S>, WorkerMetrics)> = match strategy {
        ParallelStrategy::Morsel => run_morsel(input, &entries, threads, &shared, &trace, parent),
        ParallelStrategy::Static => run_static(input, &entries, threads, &shared, &trace, parent),
    };

    let mut matches = 0u64;
    let mut recursions = 0u64;
    let mut scratch_reuse = 0u64;
    let mut outcome = Outcome::Complete;
    let mut sinks = Vec::with_capacity(per_worker.len());
    let mut metrics = PoolMetrics::default();
    let mut counters = CounterBlock::new();
    for (wid, (mut w, mut m)) in per_worker.into_iter().enumerate() {
        m.scratch_reuse = w.scratch.reuses();
        matches += w.matches;
        recursions += w.recursions;
        scratch_reuse += m.scratch_reuse;
        outcome = outcome.worst(w.outcome);
        mirror_metrics(&mut w.counters, &m);
        counters.merge(&w.counters);
        trace.flush_counters(wid, &w.counters);
        sinks.push(w.sink);
        metrics.workers.push(m);
    }
    // The run token records why the run stopped, even for workers that
    // never got to observe it themselves.
    match shared.cancel.cancelled() {
        Some(CancelReason::Deadline) => outcome = Outcome::TimedOut,
        Some(CancelReason::Stopped) => outcome = outcome.worst(Outcome::CapReached),
        None => {}
    }
    // The global counter may have raced slightly past the cap; report the
    // true emitted count (sinks saw exactly `matches` embeddings).
    (
        EnumStats {
            matches,
            recursions,
            elapsed: started.elapsed(),
            outcome,
            parallel: Some(metrics),
            plan_build_ns: plan.plan_build_ns(),
            scratch_reuse,
            counters,
        },
        sinks,
    )
}

struct WorkerStats<S> {
    sink: S,
    /// Worker-local scratch arena, reused across every morsel this worker
    /// executes.
    scratch: Scratch,
    matches: u64,
    recursions: u64,
    outcome: Outcome,
    /// Registry counters merged across every morsel this worker executed.
    counters: CounterBlock,
}

impl<S: Default> Default for WorkerStats<S> {
    fn default() -> Self {
        WorkerStats {
            sink: S::default(),
            scratch: Scratch::new(),
            matches: 0,
            recursions: 0,
            outcome: Outcome::Complete,
            counters: CounterBlock::new(),
        }
    }
}

/// One engine run over a subset of the depth-0 entries, accumulated into
/// the worker's state. Returns `false` once the run is cancelled.
fn run_subset<S: MatchSink>(
    input: &EngineInput<'_>,
    subset: &[u32],
    shared: &SharedControl,
    w: &mut WorkerStats<S>,
) -> bool {
    let worker_input = EngineInput {
        plan: input.plan,
        g: input.g,
        root_subset: Some(subset),
        shared: Some(shared),
    };
    let stats = enumerate_with(&worker_input, &mut w.scratch, &mut w.sink);
    w.matches += stats.matches;
    w.recursions += stats.recursions;
    w.counters.merge(&stats.counters);
    w.outcome = w.outcome.worst(stats.outcome);
    stats.outcome == Outcome::Complete
}

fn run_morsel<S: MatchSink + Default + Send>(
    input: &EngineInput<'_>,
    entries: &[u32],
    threads: usize,
    shared: &SharedControl,
    trace: &Trace,
    parent: Option<u32>,
) -> Vec<(WorkerStats<S>, WorkerMetrics)> {
    let queue = MorselQueue::new(deal_morsels(entries.len(), threads));
    queue.run_traced(
        |_wid| WorkerStats::default(),
        |_wid, w, morsel| {
            if shared.cancel.cancelled().is_some() {
                return false;
            }
            run_subset(input, &entries[morsel], shared, w)
        },
        trace,
        parent,
    )
}

fn run_static<S: MatchSink + Default + Send>(
    input: &EngineInput<'_>,
    entries: &[u32],
    threads: usize,
    shared: &SharedControl,
    trace: &Trace,
    parent: Option<u32>,
) -> Vec<(WorkerStats<S>, WorkerMetrics)> {
    // Round-robin chunks balance the skewed subtree sizes of power-law
    // graphs better than contiguous ranges, but cannot rebalance at
    // runtime — that is the point of comparison with the morsel pool.
    let mut chunks: Vec<Vec<u32>> = vec![Vec::new(); threads];
    for (i, &e) in entries.iter().enumerate() {
        chunks[i % threads].push(e);
    }
    scoped_map(threads, |wid| {
        let worker_span = trace
            .is_enabled()
            .then(|| trace.span_under(parent, "worker"));
        let busy = Instant::now();
        let mut w = WorkerStats::default();
        run_subset(input, &chunks[wid], shared, &mut w);
        let metrics = WorkerMetrics {
            morsels: 1,
            steals: 0,
            busy: busy.elapsed(),
            idle: std::time::Duration::ZERO,
            steal_wait: std::time::Duration::ZERO,
            scratch_reuse: 0,
        };
        drop(worker_span);
        (w, metrics)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate_space::{CandidateSpace, SpaceCoverage};
    use crate::enumerate::{CollectSink, CountSink, MatchConfig};
    use crate::fixtures::{paper_data, paper_query};
    use crate::plan::QueryPlan;
    use crate::{DataContext, QueryContext};
    use sm_graph::gen::rmat::{rmat_graph, RmatParams};

    #[test]
    fn parallel_counts_match_sequential() {
        let g = rmat_graph(2000, 10.0, 3, RmatParams::PAPER, 21);
        let q =
            sm_graph::builder::graph_from_edges(&[0, 1, 2, 0], &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::gql::gql_candidates(&qc, &gc, Default::default());
        if cand.any_empty() {
            return;
        }
        let space = CandidateSpace::build(&q, &g, &cand, SpaceCoverage::AllEdges, false);
        let plan = QueryPlan::assemble(
            &q,
            cand,
            vec![0, 1, 2, 3],
            None,
            Some(space),
            crate::enumerate::LcMethod::Intersect,
            MatchConfig::find_all(),
            false,
        );
        let input = EngineInput {
            plan: &plan,
            g: &g,
            root_subset: None,
            shared: None,
        };
        let mut seq_sink = CountSink;
        let seq = enumerate(&input, &mut seq_sink);
        for strategy in [ParallelStrategy::Morsel, ParallelStrategy::Static] {
            for threads in [1usize, 2, 4, 7] {
                let (par, _sinks) = enumerate_parallel_with::<CountSink>(&input, threads, strategy);
                assert_eq!(par.matches, seq.matches, "{strategy:?} {threads} threads");
                assert_eq!(par.outcome, Outcome::Complete);
                if threads > 1 {
                    let m = par.parallel.expect("parallel metrics missing");
                    assert_eq!(m.workers.len(), threads);
                    assert!(m.total_morsels() > 0);
                    // Every worker that ran more than one morsel reused its
                    // scratch for all but the first.
                    for w in &m.workers {
                        assert_eq!(w.scratch_reuse, w.morsels.saturating_sub(1));
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_collect_gathers_all_embeddings() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let plan = QueryPlan::assemble(
            &q,
            cand,
            vec![0, 1, 2, 3],
            None,
            None,
            crate::enumerate::LcMethod::CandidateScan,
            MatchConfig::find_all(),
            false,
        );
        let input = EngineInput {
            plan: &plan,
            g: &g,
            root_subset: None,
            shared: None,
        };
        let (stats, sinks) = enumerate_parallel::<CollectSink>(&input, 3);
        let total: usize = sinks.iter().map(|s| s.matches.len()).sum();
        assert_eq!(stats.matches as usize, total);
        assert_eq!(total, 1);
    }

    #[test]
    fn global_cap_applies_to_the_sum() {
        let g = rmat_graph(3000, 16.0, 1, RmatParams::PAPER, 5);
        let q = sm_graph::builder::graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let cfg = MatchConfig {
            max_matches: Some(500),
            ..Default::default()
        };
        let plan = QueryPlan::assemble(
            &q,
            cand,
            vec![1, 0, 2],
            None,
            None,
            crate::enumerate::LcMethod::Direct,
            cfg,
            false,
        );
        let input = EngineInput {
            plan: &plan,
            g: &g,
            root_subset: None,
            shared: None,
        };
        for strategy in [ParallelStrategy::Morsel, ParallelStrategy::Static] {
            let (stats, _sinks) = enumerate_parallel_with::<CountSink>(&input, 4, strategy);
            assert_eq!(stats.outcome, Outcome::CapReached, "{strategy:?}");
            // workers race a little past the cap; the overshoot is bounded
            // by roughly one match per worker
            assert!(
                stats.matches >= 500 && stats.matches < 500 + 8,
                "{strategy:?} {}",
                stats.matches
            );
        }
    }

    #[test]
    fn caller_token_cancels_parallel_run() {
        let g = rmat_graph(3000, 16.0, 1, RmatParams::PAPER, 5);
        let q = sm_graph::builder::graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let token = sm_runtime::CancelToken::new();
        token.cancel(CancelReason::Stopped); // cancelled before the run
        let cfg = MatchConfig::find_all().with_cancel(token.clone());
        let plan = QueryPlan::assemble(
            &q,
            cand,
            vec![1, 0, 2],
            None,
            None,
            crate::enumerate::LcMethod::Direct,
            cfg,
            false,
        );
        let input = EngineInput {
            plan: &plan,
            g: &g,
            root_subset: None,
            shared: None,
        };
        let (stats, _sinks) = enumerate_parallel::<CountSink>(&input, 4);
        assert_eq!(stats.outcome, Outcome::CapReached);
        // pre-cancelled: engines stop at their first poll; the caller's
        // own token must stay cancelled but un-mutated by the run
        assert_eq!(token.cancelled(), Some(CancelReason::Stopped));
    }
}
