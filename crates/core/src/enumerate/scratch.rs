//! Reusable per-worker scratch arena for the enumeration engines.
//!
//! All per-run mutable state — the partial embedding, the visited map,
//! and the local-candidate buffers — lives here instead of being
//! allocated inside each engine run. A parallel worker keeps one
//! [`Scratch`] across all the morsels it executes, so in steady state a
//! morsel performs **zero** heap allocations: [`Scratch::prepare`] sees
//! the same query/data shape, bumps the reuse counter and returns. The
//! engines uphold the invariant that `m` and `visited_by` are fully reset
//! on exit (even on cancellation), which is what makes the fast path
//! sound.

use sm_graph::types::NO_VERTEX;
use sm_graph::VertexId;
use sm_intersect::BsrSet;

/// Per-run mutable state of an enumeration engine, reusable across runs.
#[derive(Default)]
pub struct Scratch {
    /// Partial embedding `M`, indexed by query vertex (`NO_VERTEX` =
    /// unmapped).
    pub(crate) m: Vec<VertexId>,
    /// Position of `m[u]` within `C(u)` (space-backed methods).
    pub(crate) mpos: Vec<u32>,
    /// Which query vertex currently occupies each data vertex
    /// (`NO_VERTEX` = free).
    pub(crate) visited_by: Vec<VertexId>,
    /// Local-candidate buffer per depth (static engine) or per query
    /// vertex (adaptive engine's LC cache).
    pub(crate) lc_bufs: Vec<Vec<u32>>,
    /// Intersection ping-pong buffers.
    pub(crate) tmp_bufs: Vec<Vec<u32>>,
    /// BSR intersection buffers (A side).
    pub(crate) bsr_a: Vec<BsrSet>,
    /// BSR intersection buffers (B side).
    pub(crate) bsr_b: Vec<BsrSet>,
    /// Data edges claimed by the current partial embedding, as normalized
    /// `(lo << 32) | hi` keys — the edge-injective analogue of
    /// `visited_by`. A stack: each extension pushes its new query edges'
    /// images, each backtrack pops them. Capacity is bounded by the query
    /// edge count, so the linear membership scan stays cheap.
    pub(crate) used_edges: Vec<u64>,
    reuses: u64,
    nq: usize,
    ng: usize,
}

/// Normalized key of an undirected data edge.
#[inline]
fn edge_key(a: VertexId, b: VertexId) -> u64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    ((lo as u64) << 32) | hi as u64
}

impl Scratch {
    /// A fresh, empty scratch. The first [`Scratch::prepare`] sizes it.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// How many times [`Scratch::prepare`] found the buffers already
    /// shaped for the run and skipped all allocation — the observable
    /// "zero-allocation steady state" counter a morsel worker reports.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Size the buffers for a `(nq, ng)` run. When the shape matches the
    /// previous run the buffers are reused as-is (the engines leave `m`
    /// and `visited_by` clean on exit) and only the reuse counter moves.
    pub(crate) fn prepare(&mut self, nq: usize, ng: usize) {
        if self.nq == nq && self.ng == ng {
            debug_assert!(self.m.iter().all(|&v| v == NO_VERTEX));
            debug_assert!(self.visited_by.iter().all(|&v| v == NO_VERTEX));
            debug_assert!(self.used_edges.is_empty());
            self.reuses += 1;
            return;
        }
        self.used_edges.clear();
        self.nq = nq;
        self.ng = ng;
        self.m.clear();
        self.m.resize(nq, NO_VERTEX);
        self.mpos.clear();
        self.mpos.resize(nq, 0);
        self.visited_by.clear();
        self.visited_by.resize(ng, NO_VERTEX);
        // Keep the per-depth buffers (and their capacity) where possible.
        self.lc_bufs.iter_mut().for_each(Vec::clear);
        self.lc_bufs.resize_with(nq, Vec::new);
        self.tmp_bufs.iter_mut().for_each(Vec::clear);
        self.tmp_bufs.resize_with(nq, Vec::new);
        self.bsr_a.resize_with(nq, BsrSet::default);
        self.bsr_b.resize_with(nq, BsrSet::default);
    }

    /// Edge-injective claim for the extension `u → v`: the new query
    /// edges are exactly `{(ub, u) : ub ∈ backward(u)}`, whose images
    /// `(m[ub], v)` must be distinct from every claimed data edge *and*
    /// from each other. Pushes all of them and returns `true`, or pushes
    /// nothing and returns `false`. The membership scan covers the
    /// just-pushed entries too, which is what catches two new query
    /// edges mapping onto one data edge.
    #[inline]
    pub(crate) fn claim_edges(&mut self, backward: &[VertexId], v: VertexId) -> bool {
        let base = self.used_edges.len();
        for &ub in backward {
            let e = edge_key(self.m[ub as usize], v);
            if self.used_edges.contains(&e) {
                self.used_edges.truncate(base);
                return false;
            }
            self.used_edges.push(e);
        }
        true
    }

    /// Pop the `n` edges a successful [`Scratch::claim_edges`] pushed.
    #[inline]
    pub(crate) fn release_edges(&mut self, n: usize) {
        let len = self.used_edges.len();
        debug_assert!(len >= n);
        self.used_edges.truncate(len - n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_shape_reuses_without_reallocating() {
        let mut sc = Scratch::new();
        sc.prepare(4, 100);
        assert_eq!(sc.reuses(), 0);
        let ids = (sc.m.as_ptr() as usize, sc.visited_by.as_ptr() as usize);
        sc.prepare(4, 100);
        sc.prepare(4, 100);
        assert_eq!(sc.reuses(), 2);
        assert_eq!(
            ids,
            (sc.m.as_ptr() as usize, sc.visited_by.as_ptr() as usize),
            "reuse must not reallocate"
        );
    }

    #[test]
    fn shape_change_resizes() {
        let mut sc = Scratch::new();
        sc.prepare(4, 100);
        sc.prepare(6, 50);
        assert_eq!(sc.m.len(), 6);
        assert_eq!(sc.visited_by.len(), 50);
        assert_eq!(sc.lc_bufs.len(), 6);
        assert!(sc.m.iter().all(|&v| v == NO_VERTEX));
        assert!(sc.visited_by.iter().all(|&v| v == NO_VERTEX));
    }
}
