//! Run-lifecycle bookkeeping shared by every engine: match/recursion
//! counters, the output cap, cancellation polling, and the cross-worker
//! coordination of parallel runs. The static engine, the adaptive engine
//! and the historical Ullmann/VF2 baselines all drive one [`RunControl`]
//! instead of each keeping its own copy of this state machine.

use crate::enumerate::{EnumStats, MatchConfig, Outcome};
use sm_runtime::trace::{Counter, CounterBlock, EventKind, EventRing, Trace};
use sm_runtime::{CancelReason, CancelToken};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cross-worker misprediction guard for the planner's jump-redo path: a
/// backtrack budget derived from the cost model's prediction for the
/// chosen plan. Engines flush their live backtrack counts here at every
/// cancellation-poll boundary (so the hot path pays nothing between
/// polls); the observation that pushes the shared total past the budget
/// cancels the run token with [`CancelReason::Stopped`] and latches
/// [`BailoutMonitor::triggered`] — which is how the planner distinguishes
/// "the model mispredicted, replan with the next-best combo" from an
/// ordinary cap hit.
#[derive(Debug)]
pub struct BailoutMonitor {
    budget: u64,
    backtracks: AtomicU64,
    triggered: AtomicBool,
}

impl BailoutMonitor {
    /// A monitor that bails out once the run's total backtracks exceed
    /// `budget`.
    pub fn new(budget: u64) -> Arc<Self> {
        Arc::new(BailoutMonitor {
            budget,
            backtracks: AtomicU64::new(0),
            triggered: AtomicBool::new(false),
        })
    }

    /// Fold `delta` freshly observed backtracks into the shared total and
    /// cancel `cancel` if the budget is now exceeded. Called by
    /// [`RunControl::tick`] at poll boundaries.
    #[inline]
    pub fn observe(&self, delta: u64, cancel: &CancelToken) {
        if delta == 0 {
            return;
        }
        let total = self.backtracks.fetch_add(delta, Ordering::Relaxed) + delta;
        if total > self.budget && !self.triggered.swap(true, Ordering::Relaxed) {
            cancel.cancel(CancelReason::Stopped);
        }
    }

    /// Whether the budget was exceeded and the run cancelled.
    pub fn triggered(&self) -> bool {
        self.triggered.load(Ordering::Relaxed)
    }

    /// Backtracks observed so far (across all workers of the run).
    pub fn observed(&self) -> u64 {
        self.backtracks.load(Ordering::Relaxed)
    }

    /// The backtrack budget this monitor enforces.
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

/// Shared state coordinating the worker engines of a parallel run: a
/// global match counter (so the 10^5 cap applies to the *sum*), the cap
/// itself, and one [`CancelToken`] every worker polls. Any worker hitting
/// the cap (or a deadline expiring on any worker) cancels the token, and
/// the reason distinguishes cap from timeout when outcomes are merged.
///
/// Because the control carries the *run-scoped* budget (cap + token), it
/// is also the hook a multi-query service uses to execute one immutable
/// cached [`crate::QueryPlan`] under many different per-request budgets:
/// build a control with [`SharedControl::with_token`] and pass it to
/// every engine invocation of that run, morsel-grained or whole-plan.
pub struct SharedControl {
    /// Cancellation shared by every worker of the run.
    pub cancel: CancelToken,
    /// Total matches across workers.
    pub matches: AtomicU64,
    /// Match cap applied to the cross-worker total (`u64::MAX` = none).
    /// Overrides the plan config's `max_matches` for this run.
    pub cap: u64,
    /// Jump-redo misprediction guard shared by every worker (see
    /// [`BailoutMonitor`]); `None` = no bailout for this run.
    pub bailout: Option<Arc<BailoutMonitor>>,
}

impl Default for SharedControl {
    fn default() -> Self {
        SharedControl {
            cancel: CancelToken::default(),
            matches: AtomicU64::new(0),
            cap: u64::MAX,
            bailout: None,
        }
    }
}

impl SharedControl {
    /// Shared state for a run of `config` that started at `started`:
    /// carries the config's deadline (and caller token, when attached) so
    /// every worker observes the same cancellation, the config's cap, and
    /// the config's bailout monitor when one is attached.
    pub fn for_run(config: &MatchConfig, started: Instant) -> Self {
        SharedControl {
            cancel: config.run_token(started),
            matches: AtomicU64::new(0),
            cap: config.effective_cap().unwrap_or(u64::MAX),
            bailout: config.bailout.clone(),
        }
    }

    /// Shared state with an explicit run token and cap, independent of
    /// any plan's config — the per-request budget of a service executing
    /// a cached plan.
    pub fn with_token(cancel: CancelToken, cap: Option<u64>) -> Self {
        SharedControl {
            cancel,
            matches: AtomicU64::new(0),
            cap: cap.unwrap_or(u64::MAX),
            bailout: None,
        }
    }
}

/// Counters and stop conditions of one engine run. Engines call
/// [`RunControl::tick`] on every search-tree node and
/// [`RunControl::record_match`] on every emitted embedding; everything
/// else (cap, deadline, caller cancellation, parallel coordination) is
/// handled here.
pub struct RunControl<'a> {
    /// Matches emitted by this engine.
    pub matches: u64,
    /// Search-tree nodes visited.
    pub recursions: u64,
    /// Worker-local registry counters: engines accumulate intersections,
    /// backtracks, peak depth and cache hits here with plain `u64` adds;
    /// [`RunControl::into_stats`] folds them into the run's
    /// [`EnumStats::counters`].
    pub counters: CounterBlock,
    cap: u64,
    /// Cancellation is polled every `poll_mask + 1` recursions.
    poll_mask: u64,
    cancel: CancelToken,
    stopped: Option<Outcome>,
    shared: Option<&'a SharedControl>,
    /// Jump-redo guard: local backtracks are flushed here at poll
    /// boundaries; `bt_flushed` remembers how many were already folded
    /// into the shared total.
    bailout: Option<Arc<BailoutMonitor>>,
    bt_flushed: u64,
    /// The run's termination is a top-k bound — a cap-reached outcome is
    /// then a top-k early exit, tallied in [`Counter::TopkEarlyExits`].
    topk: bool,
    trace: Trace,
    /// Control-side event log: cap-hit and cancellation observations.
    /// Flushed (under worker 0 — "the run's control ring") by
    /// [`RunControl::into_stats`]; per-worker morsel/steal events live in
    /// the pool's own rings.
    ring: EventRing,
}

impl<'a> RunControl<'a> {
    /// Control for a run of `config` started at `started`. Workers of a
    /// parallel run pass their [`SharedControl`] and share its token and
    /// global cap; a solo run derives a token from the config (deadline +
    /// caller token).
    pub fn new(
        config: &MatchConfig,
        shared: Option<&'a SharedControl>,
        started: Instant,
        poll_mask: u64,
    ) -> Self {
        RunControl {
            matches: 0,
            recursions: 0,
            counters: CounterBlock::new(),
            cap: match shared {
                Some(sh) => sh.cap,
                None => config.effective_cap().unwrap_or(u64::MAX),
            },
            poll_mask,
            cancel: match shared {
                Some(sh) => sh.cancel.clone(),
                None => config.run_token(started),
            },
            stopped: None,
            bailout: match shared {
                Some(sh) => sh.bailout.clone(),
                None => config.bailout.clone(),
            },
            bt_flushed: 0,
            shared,
            topk: matches!(
                config.semantics.termination,
                crate::enumerate::Termination::TopK(_)
            ),
            trace: config.trace.clone(),
            ring: EventRing::default(),
        }
    }

    /// Count one search-tree node and periodically poll cancellation
    /// (flushing live backtracks into the jump-redo monitor first, so a
    /// blown budget is observed at the same boundary).
    #[inline]
    pub fn tick(&mut self) {
        self.recursions += 1;
        if self.recursions & self.poll_mask == 0 {
            if let Some(monitor) = &self.bailout {
                let seen = self.counters.get(Counter::Backtracks);
                monitor.observe(seen - self.bt_flushed, &self.cancel);
                self.bt_flushed = seen;
            }
            if let Some(reason) = self.cancel.poll() {
                let newly = self.stopped.is_none();
                self.stopped = Some(match reason {
                    CancelReason::Deadline => Outcome::TimedOut,
                    CancelReason::Stopped => Outcome::CapReached,
                });
                if newly && self.trace.is_enabled() {
                    self.ring.push(
                        self.trace.now_ns(),
                        EventKind::Cancel,
                        matches!(reason, CancelReason::Deadline) as u64,
                    );
                    self.trace.mark_cancelled();
                }
            }
        }
    }

    /// Whether the run must unwind (cap, deadline or cancellation).
    #[inline]
    pub fn is_stopped(&self) -> bool {
        self.stopped.is_some()
    }

    /// Count one found match and apply the cap — against the shared
    /// cross-worker total in parallel runs, the local count otherwise.
    /// Returns whether the match is within the cap and should be counted
    /// and emitted to the sink; `false` means another worker already
    /// claimed the cap's last slot, so the engines must drop the match.
    /// This makes capped counts *exact*: the sum across workers is
    /// `min(true total, cap)` regardless of interleaving.
    #[inline]
    #[must_use = "a false return means the match must not be emitted"]
    pub fn record_match(&mut self) -> bool {
        let (emit, capped) = match self.shared {
            Some(sh) => {
                // Allocate a unique slot in the cross-worker total; slots
                // past the cap are discarded, the cap'th slot cancels.
                let slot = sh
                    .matches
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                    + 1;
                if slot > self.cap {
                    (false, true)
                } else {
                    if slot == self.cap {
                        sh.cancel.cancel(CancelReason::Stopped);
                    }
                    (true, slot >= self.cap)
                }
            }
            None => (true, self.matches + 1 >= self.cap),
        };
        if emit {
            self.matches += 1;
        }
        if capped {
            let newly = self.stopped.is_none();
            self.stopped = Some(Outcome::CapReached);
            if newly && self.trace.is_enabled() {
                self.ring
                    .push(self.trace.now_ns(), EventKind::CapHit, self.cap);
                self.trace.mark_cancelled();
            }
        }
        emit
    }

    /// Why the run ended ([`Outcome::Complete`] unless stopped).
    pub fn outcome(&self) -> Outcome {
        self.stopped.unwrap_or(Outcome::Complete)
    }

    /// Fold the counters into an [`EnumStats`] for a run begun at
    /// `started`, flushing the control event ring into the trace (the
    /// counters themselves are flushed once per run/worker by the entry
    /// points, so morsel-grained calls don't fragment the registry).
    pub fn into_stats(self, started: Instant) -> EnumStats {
        let outcome = self.outcome();
        let mut counters = self.counters;
        counters.add(Counter::Recursions, self.recursions);
        counters.add(Counter::Matches, self.matches);
        if self.topk && outcome == Outcome::CapReached {
            counters.add(Counter::TopkEarlyExits, 1);
        }
        self.trace.flush_ring(0, &self.ring);
        EnumStats {
            matches: self.matches,
            recursions: self.recursions,
            elapsed: started.elapsed(),
            outcome,
            parallel: None,
            plan_build_ns: 0,
            scratch_reuse: 0,
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_stops_solo_run() {
        let cfg = MatchConfig {
            max_matches: Some(2),
            ..Default::default()
        };
        let mut ctl = RunControl::new(&cfg, None, Instant::now(), 0x3FF);
        assert!(ctl.record_match());
        assert!(!ctl.is_stopped());
        assert!(ctl.record_match());
        assert!(ctl.is_stopped());
        assert_eq!(ctl.outcome(), Outcome::CapReached);
        assert_eq!(ctl.matches, 2);
    }

    #[test]
    fn shared_cap_applies_to_the_sum() {
        let cfg = MatchConfig {
            max_matches: Some(3),
            ..Default::default()
        };
        let started = Instant::now();
        let shared = SharedControl::for_run(&cfg, started);
        let mut a = RunControl::new(&cfg, Some(&shared), started, 0x3FF);
        let mut b = RunControl::new(&cfg, Some(&shared), started, 0x3FF);
        assert!(a.record_match());
        assert!(b.record_match());
        assert!(!a.is_stopped() && !b.is_stopped());
        assert!(a.record_match()); // total hits 3: cancels the shared token
        assert!(a.is_stopped());
        // a further match past the cap is rejected, keeping the sum exact
        assert!(!b.record_match());
        assert_eq!(a.matches + b.matches, 3);
        // b notices at its next poll boundary
        for _ in 0..=0x3FF {
            b.tick();
        }
        assert!(b.is_stopped());
        assert_eq!(b.outcome(), Outcome::CapReached);
    }

    #[test]
    fn bailout_monitor_cancels_past_budget() {
        let monitor = BailoutMonitor::new(10);
        let cfg = MatchConfig {
            bailout: Some(monitor.clone()),
            ..MatchConfig::find_all()
        };
        // Solo run: the monitor rides the config into the control.
        let mut ctl = RunControl::new(&cfg, None, Instant::now(), 0x3);
        for _ in 0..8 {
            ctl.counters.bump(Counter::Backtracks);
        }
        for _ in 0..4 {
            ctl.tick();
        }
        assert!(!monitor.triggered(), "8 <= 10: within budget");
        assert!(!ctl.is_stopped());
        for _ in 0..5 {
            ctl.counters.bump(Counter::Backtracks);
        }
        for _ in 0..4 {
            ctl.tick();
        }
        assert!(monitor.triggered(), "13 > 10: budget blown");
        assert_eq!(monitor.observed(), 13);
        // The cancellation lands at the *next* poll boundary.
        for _ in 0..4 {
            ctl.tick();
        }
        assert!(ctl.is_stopped());
        assert_eq!(ctl.outcome(), Outcome::CapReached);
    }

    #[test]
    fn bailout_monitor_shared_across_workers() {
        let monitor = BailoutMonitor::new(5);
        let cfg = MatchConfig {
            bailout: Some(monitor.clone()),
            ..MatchConfig::find_all()
        };
        let started = Instant::now();
        let shared = SharedControl::for_run(&cfg, started);
        assert!(shared.bailout.is_some());
        let mut a = RunControl::new(&cfg, Some(&shared), started, 0);
        let mut b = RunControl::new(&cfg, Some(&shared), started, 0);
        for _ in 0..4 {
            a.counters.bump(Counter::Backtracks);
        }
        a.tick();
        assert!(!monitor.triggered());
        for _ in 0..4 {
            b.counters.bump(Counter::Backtracks);
        }
        b.tick();
        // 4 + 4 > 5: the cross-worker sum blows the budget and the shared
        // token is cancelled, stopping both workers.
        assert!(monitor.triggered());
        b.tick();
        assert!(b.is_stopped());
        a.tick();
        assert!(a.is_stopped());
    }

    #[test]
    fn caller_cancellation_reported_as_cap() {
        let token = CancelToken::new();
        let cfg = MatchConfig::find_all().with_cancel(token.clone());
        let mut ctl = RunControl::new(&cfg, None, Instant::now(), 0);
        token.cancel(CancelReason::Stopped);
        ctl.tick();
        assert!(ctl.is_stopped());
        assert_eq!(ctl.into_stats(Instant::now()).outcome, Outcome::CapReached);
    }
}
