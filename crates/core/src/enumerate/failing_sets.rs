//! Failing-set pruning (Han et al., SIGMOD 2019), Section 3.4 of the study.
//!
//! Every node of the search tree returns a *failing set*: a set of query
//! vertices such that, as long as their mappings are unchanged, re-chosing
//! the mapping of any vertex outside the set cannot produce a match. The
//! engines represent it as a `u64` bitset over query vertices (hence the
//! `|V(q)| ≤ 64` framework limit).
//!
//! Construction rules, mirroring the paper's Example 3.5:
//!
//! * **Match found** in the subtree → [`FULL`] (no pruning possible).
//! * **Conflict**: candidate `v` of `u` already maps `u'` →
//!   `{u, u'}` ([`conflict_class`]).
//! * **Empty LC**: `{u} ∪ N^φ_+(u)` — the vertices whose mappings
//!   constrained the empty local candidate set ([`emptyset_class`]).
//! * **Internal node**: if some child's failing set omits the current
//!   vertex `u`, the failure is independent of how `u` was mapped — the
//!   node adopts that child's set *and the engine skips the remaining
//!   siblings* (the pruning step); otherwise the union of children.
//!
//! The recursion lives in [`crate::enumerate::engine`] and
//! [`crate::enumerate::adaptive`]; this module holds the shared bitset
//! vocabulary so both agree on semantics.
//!
//! **Interaction caveat**: the emptyset class assumes `LC(u, M)` depends
//! only on the mappings of `u`'s backward neighbors. VF2++'s extra runtime
//! rule violates that (it consults the entire visited set), so the engines
//! reject `failing_sets && vf2pp_rule` — the paper's w/fs experiments run
//! on the optimized engines with the extra rules removed (Section 5.2).

use sm_graph::VertexId;

/// "Cannot prune": a match was found or the information was lost.
pub const FULL: u64 = u64::MAX;

/// Bit for query vertex `u`.
#[inline]
pub fn bit(u: VertexId) -> u64 {
    1u64 << u
}

/// Failing set of an injectivity conflict between `u` and `owner`.
#[inline]
pub fn conflict_class(u: VertexId, owner: VertexId) -> u64 {
    bit(u) | bit(owner)
}

/// Failing set of an empty local candidate set: `u` plus the vertices
/// whose mappings constrained `LC(u, M)`.
#[inline]
pub fn emptyset_class(u: VertexId, constrainers: &[VertexId]) -> u64 {
    constrainers.iter().fold(bit(u), |fs, &u2| fs | bit(u2))
}

/// Whether a child failing set licenses sibling pruning at vertex `u`.
#[inline]
pub fn prunes_siblings(child_fs: u64, u: VertexId) -> bool {
    child_fs != FULL && child_fs & bit(u) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        assert_eq!(conflict_class(0, 3), 0b1001);
        assert_eq!(emptyset_class(2, &[0, 1]), 0b111);
        assert_eq!(emptyset_class(5, &[]), 1 << 5);
    }

    #[test]
    fn pruning_condition() {
        // failure not involving u=2 → prune
        assert!(prunes_siblings(0b0011, 2));
        // failure involving u=1 → no prune
        assert!(!prunes_siblings(0b0011, 1));
        // match found → never prune
        assert!(!prunes_siblings(FULL, 2));
    }
}
