//! Enumeration methods (Section 3.3 of the paper): the recursive
//! backtracking of Algorithm 1, parameterized by how local candidates
//! `LC(u, M)` are computed.
//!
//! | Method | Paper algorithm | Cost (α backward neighbors, β edge test) |
//! |---|---|---|
//! | [`LcMethod::Direct`] | Alg. 2 (QuickSI / RI) | `O(d_G · (α−1) · β)` |
//! | [`LcMethod::CandidateScan`] | Alg. 3 (GraphQL) | `O(\|C(u)\| · α · β)` |
//! | [`LcMethod::TreeIndex`] | Alg. 4 (CFL) | `O(\|A(parent)\| · (α−1) · β)` |
//! | [`LcMethod::Intersect`] | Alg. 5 (CECI / DP-iso) | `O(min \|A\| · (α−1))` |
//!
//! [`failing_sets`] implements DP-iso's failing-set pruning, portable
//! across all methods (the study's Section 5.4 evaluates exactly that);
//! [`adaptive`] implements DP-iso's runtime vertex selection.

pub mod adaptive;
pub mod control;
pub mod engine;
pub mod failing_sets;
pub mod parallel;
pub mod scratch;
pub mod semantics;

pub use semantics::{Injectivity, MatchSemantics, OutputMode, Termination};

use sm_graph::VertexId;
use sm_intersect::IntersectKind;
use sm_runtime::{CancelToken, CounterBlock, PoolMetrics, Trace};
use std::time::{Duration, Instant};

/// The paper's default output cap: queries stop after 10^5 matches.
pub const DEFAULT_MATCH_CAP: u64 = 100_000;

/// The registry counter that tallies intersections of `kind` — how the
/// engines attribute each `intersect_buf` call to its kernel.
pub fn intersect_counter(kind: IntersectKind) -> sm_runtime::Counter {
    match kind {
        IntersectKind::Merge => sm_runtime::Counter::IntersectMerge,
        IntersectKind::Galloping => sm_runtime::Counter::IntersectGalloping,
        IntersectKind::Hybrid => sm_runtime::Counter::IntersectHybrid,
        IntersectKind::Bsr => sm_runtime::Counter::IntersectQfilter,
    }
}

/// How `LC(u, M)` is computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LcMethod {
    /// Loop over `N(M[u.p])` with LDF + edge checks (Algorithm 2).
    Direct,
    /// Loop over the whole `C(u)` with edge checks (Algorithm 3).
    CandidateScan,
    /// Read the tree-edge list from `A`, verify non-tree backward edges
    /// against `G` (Algorithm 4).
    TreeIndex,
    /// Intersect the `A` lists of all backward neighbors (Algorithm 5).
    Intersect,
}

impl LcMethod {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            LcMethod::Direct => "Direct",
            LcMethod::CandidateScan => "CandidateScan",
            LcMethod::TreeIndex => "TreeIndex",
            LcMethod::Intersect => "Intersect",
        }
    }

    /// Whether this method requires a prebuilt [`crate::CandidateSpace`].
    pub fn needs_space(self) -> bool {
        matches!(self, LcMethod::TreeIndex | LcMethod::Intersect)
    }
}

/// Who picks the filter/order/kernel composition a query runs under.
///
/// The enumeration engines never read this flag — a compiled
/// [`crate::QueryPlan`] is always concrete. It is the *plan-selection*
/// contract between a caller and a planning layer: [`PlanSelection::Fixed`]
/// means "run exactly the pipeline I configured", while
/// [`PlanSelection::Auto`] asks a hosting layer (the `sm-planner` crate's
/// cost model, via the service or the bench harness) to score
/// filter × order × kernel combinations against graph statistics and pick
/// the plan itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PlanSelection {
    /// The caller's configured pipeline is used verbatim (the default).
    #[default]
    Fixed,
    /// A self-tuning planner chooses the filter/order/kernel combo per
    /// query from cardinality estimates and cross-run feedback.
    Auto,
}

/// Runtime knobs of an enumeration run.
#[derive(Clone, Debug)]
pub struct MatchConfig {
    /// Stop after this many matches (paper default: 10^5). `None` = all.
    pub max_matches: Option<u64>,
    /// Kill the enumeration after this long (paper: 5 minutes).
    pub time_limit: Option<Duration>,
    /// Enable DP-iso's failing-set pruning.
    pub failing_sets: bool,
    /// Set-intersection kernel for [`LcMethod::Intersect`].
    pub intersect: IntersectKind,
    /// Enable VF2++'s extra runtime label-frequency filter (only
    /// meaningful with [`LcMethod::Direct`]).
    pub vf2pp_rule: bool,
    /// Caller-side cancellation: when set, the engines poll this token
    /// (in addition to `time_limit`) and stop with
    /// [`Outcome::CapReached`] when it is cancelled. `None` = only the
    /// config's own limits apply.
    pub cancel: Option<CancelToken>,
    /// What counts as a match, what the run produces, and when it stops
    /// (default: the paper's mode — isomorphism, materialized
    /// embeddings, exhaustive).
    pub semantics: MatchSemantics,
    /// Observability handle: spans, counters and event rings flow through
    /// here to every phase of the run. The default
    /// [`Trace::disabled`] handle costs one branch per touch point.
    pub trace: Trace,
    /// Plan-selection mode: `Fixed` (default) runs the caller's
    /// configured pipeline; `Auto` asks a hosting planner layer to pick
    /// the filter/order/kernel combo (see [`PlanSelection`]).
    pub plan: PlanSelection,
    /// Mid-run misprediction guard: when set, the engines flush their
    /// live backtrack count into this monitor at every cancellation-poll
    /// boundary, and the monitor cancels the run token once the count
    /// exceeds its budget — the bailout half of the planner's jump-redo
    /// path. `None` (default) costs nothing.
    pub bailout: Option<std::sync::Arc<control::BailoutMonitor>>,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            max_matches: Some(DEFAULT_MATCH_CAP),
            time_limit: None,
            failing_sets: false,
            intersect: IntersectKind::Hybrid,
            vf2pp_rule: false,
            cancel: None,
            semantics: MatchSemantics::default(),
            trace: Trace::disabled(),
            plan: PlanSelection::default(),
            bailout: None,
        }
    }
}

impl MatchConfig {
    /// Find **all** matches, no cap, no time limit.
    pub fn find_all() -> Self {
        MatchConfig {
            max_matches: None,
            time_limit: None,
            ..Default::default()
        }
    }

    /// Builder-style: set the time limit.
    pub fn with_time_limit(mut self, d: Duration) -> Self {
        self.time_limit = Some(d);
        self
    }

    /// Builder-style: toggle failing sets.
    pub fn with_failing_sets(mut self, on: bool) -> Self {
        self.failing_sets = on;
        self
    }

    /// Builder-style: attach a caller-side cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Builder-style: attach a tracing handle. Every phase of a run with
    /// this config records spans/counters/events into it.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Builder-style: set the match semantics.
    pub fn with_semantics(mut self, semantics: MatchSemantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Builder-style: set the plan-selection mode (see [`PlanSelection`]).
    pub fn with_plan(mut self, plan: PlanSelection) -> Self {
        self.plan = plan;
        self
    }

    /// Builder-style: attach a jump-redo bailout monitor. Engines flush
    /// live backtrack counts into it at poll boundaries; the monitor
    /// cancels the run when its budget is exceeded.
    pub fn with_bailout(mut self, monitor: std::sync::Arc<control::BailoutMonitor>) -> Self {
        self.bailout = Some(monitor);
        self
    }

    /// The match cap actually in force: `max_matches` composed with a
    /// [`Termination::TopK`] bound by minimum.
    pub fn effective_cap(&self) -> Option<u64> {
        match (self.max_matches, self.semantics.cap()) {
            (Some(m), Some(k)) => Some(m.min(k)),
            (m, k) => m.or(k),
        }
    }

    /// The run-scoped [`CancelToken`] for an enumeration starting at
    /// `started`: the config's deadline, chained under the caller's token
    /// when one is attached (so cancelling the run never cancels the
    /// caller's token, but the caller's cancellation reaches the run).
    pub fn run_token(&self, started: Instant) -> CancelToken {
        let deadline = self.time_limit.map(|d| started + d);
        match &self.cancel {
            Some(outer) => outer.child(deadline),
            None => CancelToken::with_deadline(deadline),
        }
    }
}

/// Why an enumeration run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Search space exhausted: the match count is exact.
    Complete,
    /// Stopped at `max_matches`.
    CapReached,
    /// Killed by the time limit — an *unsolved* query in paper terms.
    TimedOut,
}

impl Outcome {
    /// Severity rank for merging per-worker (or per-morsel) outcomes:
    /// `Complete < CapReached < TimedOut`. One timed-out worker makes the
    /// whole run partial no matter how many others completed.
    pub fn severity(self) -> u8 {
        match self {
            Outcome::Complete => 0,
            Outcome::CapReached => 1,
            Outcome::TimedOut => 2,
        }
    }

    /// The more severe of two outcomes (see [`Outcome::severity`]) — the
    /// single merge rule used by the parallel engine, the service's
    /// morsel aggregation, and the sharded router.
    pub fn worst(self, other: Outcome) -> Outcome {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }
}

/// Counters of one enumeration run.
#[derive(Clone, Debug)]
pub struct EnumStats {
    /// Matches emitted.
    pub matches: u64,
    /// Recursive `Enumerate` invocations (search-tree nodes).
    pub recursions: u64,
    /// Wall-clock time of the enumeration phase.
    pub elapsed: Duration,
    /// Why the run ended.
    pub outcome: Outcome,
    /// Per-worker morsel/steal/busy counters of a parallel run
    /// (`None` for sequential runs).
    pub parallel: Option<PoolMetrics>,
    /// Nanoseconds spent compiling the [`crate::plan::QueryPlan`] this run
    /// executed (filter + order + auxiliary build); 0 when unknown to the
    /// engine (e.g. a hand-assembled plan).
    pub plan_build_ns: u64,
    /// Total scratch-arena reuses across workers: how many runs/morsels hit
    /// the zero-allocation fast path of
    /// [`scratch::Scratch::prepare`].
    pub scratch_reuse: u64,
    /// The run's registry counters (intersections by kernel, backtracks,
    /// peak depth, LC cache hits, …) — a merged view over what the
    /// engines accumulated, populated whether or not a trace is attached.
    pub counters: CounterBlock,
}

impl EnumStats {
    /// Paper terminology: a query killed by the time limit.
    pub fn unsolved(&self) -> bool {
        self.outcome == Outcome::TimedOut
    }
}

/// Receives each match as it is found. The mapping slice is indexed by
/// query vertex id: `m[u] = v`.
pub trait MatchSink {
    /// Called once per match.
    fn on_match(&mut self, m: &[VertexId]);
}

/// Count-only sink (the paper's measurement mode).
#[derive(Default)]
pub struct CountSink;

impl MatchSink for CountSink {
    #[inline]
    fn on_match(&mut self, _m: &[VertexId]) {}
}

/// Collects every match (examples / small queries).
#[derive(Default)]
pub struct CollectSink {
    /// The collected matches, each indexed by query vertex id.
    pub matches: Vec<Vec<VertexId>>,
}

impl MatchSink for CollectSink {
    fn on_match(&mut self, m: &[VertexId]) {
        self.matches.push(m.to_vec());
    }
}

/// Seeded reservoir sampler over the match stream: after a complete
/// enumeration, [`SampleSink::samples`] holds a uniform sample of up to
/// `k` embeddings (exactly `k` when the graph has at least `k` matches).
/// This implements [`Termination::SampleK`] — uniformity requires seeing
/// every match, so the enumeration still runs to exhaustion. Sequential
/// runs only: per-worker reservoirs are not a uniform sample of the
/// union.
pub struct SampleSink {
    k: usize,
    rng: sm_runtime::rng::Rng64,
    seen: u64,
    /// The sampled embeddings (order arbitrary).
    pub samples: Vec<Vec<VertexId>>,
}

impl SampleSink {
    /// Reservoir of capacity `k`, deterministic per `seed`.
    pub fn new(k: u64, seed: u64) -> Self {
        SampleSink {
            k: k as usize,
            rng: sm_runtime::rng::Rng64::seed_from_u64(seed),
            seen: 0,
            samples: Vec::new(),
        }
    }
}

impl MatchSink for SampleSink {
    fn on_match(&mut self, m: &[VertexId]) {
        self.seen += 1;
        if self.samples.len() < self.k {
            self.samples.push(m.to_vec());
        } else if self.k > 0 {
            let j = self.rng.next_u64_below(self.seen);
            if (j as usize) < self.k {
                self.samples[j as usize].clear();
                self.samples[j as usize].extend_from_slice(m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults() {
        let c = MatchConfig::default();
        assert_eq!(c.max_matches, Some(DEFAULT_MATCH_CAP));
        assert!(!c.failing_sets);
        let all = MatchConfig::find_all();
        assert_eq!(all.max_matches, None);
    }

    #[test]
    fn method_properties() {
        assert!(LcMethod::Intersect.needs_space());
        assert!(LcMethod::TreeIndex.needs_space());
        assert!(!LcMethod::Direct.needs_space());
        assert!(!LcMethod::CandidateScan.needs_space());
        assert_eq!(LcMethod::Direct.name(), "Direct");
    }

    #[test]
    fn collect_sink_gathers() {
        let mut s = CollectSink::default();
        s.on_match(&[1, 2]);
        s.on_match(&[3, 4]);
        assert_eq!(s.matches, vec![vec![1, 2], vec![3, 4]]);
    }
}
