//! DP-iso's adaptive matching order (Han et al., SIGMOD 2019; Section 3.2
//! of the study).
//!
//! The BFS order `δ` turns the query into a DAG (parents = δ-earlier
//! neighbors). A vertex becomes *extendable* once all its DAG parents are
//! mapped; its local candidates are then fixed (every constraint comes
//! from the parents), so `LC(u, M)` is computed immediately and cached.
//! Among extendable vertices the engine picks the one minimizing the
//! estimated remaining work `Σ_{v ∈ LC} W[u][v]`, where the weight array
//! `W` (precomputed into the [`QueryPlan`]) estimates, bottom-up over the
//! DAG, how many tree-like path embeddings hang below each candidate
//! (leaves weigh 1; inner vertices take the minimum over children of the
//! candidate-edge-summed child weights). Degree-one query vertices are
//! deprioritized, per DP-iso's core/forest decomposition.
//!
//! Like the static engine, this is a pure executor: DAG parents/children
//! and the weight array come precompiled in the plan (`plan.backward(u)`
//! under `δ` *is* the parent set), and the partial embedding, visited map
//! and LC caches live in a reusable [`Scratch`].

use crate::enumerate::control::RunControl;
use crate::enumerate::failing_sets::{conflict_class, emptyset_class, prunes_siblings, FULL};
use crate::enumerate::scratch::Scratch;
use crate::enumerate::{intersect_counter, EnumStats, Injectivity, MatchSink};
use crate::plan::QueryPlan;
use sm_graph::types::NO_VERTEX;
use sm_graph::{Graph, VertexId};
use sm_intersect::intersect_buf;
use sm_runtime::Counter;
use std::time::Instant;

/// Run the adaptive enumeration of a compiled plan with a fresh scratch.
pub fn enumerate_adaptive<S: MatchSink>(plan: &QueryPlan, g: &Graph, sink: &mut S) -> EnumStats {
    let mut scratch = Scratch::new();
    enumerate_adaptive_with(plan, g, &mut scratch, sink)
}

/// Run the adaptive enumeration reusing `scratch` for all per-run mutable
/// state.
pub fn enumerate_adaptive_with<S: MatchSink>(
    plan: &QueryPlan,
    g: &Graph,
    scratch: &mut Scratch,
    sink: &mut S,
) -> EnumStats {
    enumerate_adaptive_shared(plan, g, None, scratch, sink)
}

/// [`enumerate_adaptive_with`] under an external [`SharedControl`]: the
/// run's cancellation token and match cap come from `shared` instead of
/// the plan's config, so a service can execute one cached adaptive plan
/// under many per-request budgets. `None` falls back to the plan config.
pub fn enumerate_adaptive_shared<S: MatchSink>(
    plan: &QueryPlan,
    g: &Graph,
    shared: Option<&crate::enumerate::control::SharedControl>,
    scratch: &mut Scratch,
    sink: &mut S,
) -> EnumStats {
    assert!(
        plan.adaptive,
        "plan was not compiled for the adaptive engine"
    );
    assert!(
        !plan.config.vf2pp_rule,
        "adaptive engine does not support the VF2++ rule"
    );
    let started = Instant::now();
    scratch.prepare(plan.num_query_vertices(), g.num_vertices());
    let n = plan.num_query_vertices();
    let root = plan
        .tree
        .as_ref()
        .expect("adaptive plan carries its tree")
        .root;
    let sem = plan.config.semantics;
    let mut eng = AdaptiveEngine {
        plan,
        sc: scratch,
        mapped_parents: vec![0; n],
        extendable: Vec::with_capacity(n),
        ctl: RunControl::new(&plan.config, shared, started, 0x3FF),
        sink,
        inj: sem.injectivity,
        emit: sem.emits(),
    };
    // Root is extendable from the start with its full candidate set.
    let root_lc = &mut eng.sc.lc_bufs[root as usize];
    root_lc.clear();
    root_lc.extend(0..plan.candidates.get(root).len() as u32);
    eng.extendable.push(root);
    if plan.config.failing_sets {
        eng.recurse_fs(0);
    } else {
        eng.recurse(0);
    }
    let ctl = eng.ctl;
    let mut stats = ctl.into_stats(started);
    stats.plan_build_ns = plan.plan_build_ns();
    stats.scratch_reuse = scratch.reuses();
    stats
}

struct AdaptiveEngine<'a, S: MatchSink> {
    plan: &'a QueryPlan,
    sc: &'a mut Scratch,
    mapped_parents: Vec<u32>,
    extendable: Vec<VertexId>,
    ctl: RunControl<'a>,
    sink: &'a mut S,
    /// The plan's injectivity mode, copied out of the config once.
    inj: Injectivity,
    /// Whether matches are materialized into the sink (`false` for
    /// count-only runs).
    emit: bool,
}

impl<'a, S: MatchSink> AdaptiveEngine<'a, S> {
    #[inline]
    fn emit_match(&mut self) {
        if self.ctl.record_match() && self.emit {
            self.sink.on_match(&self.sc.m);
        }
    }

    /// Injectivity check + bookkeeping for `u → v` (see the static
    /// engine's `claim`). Sound here because a vertex only becomes
    /// extendable once all its DAG parents are mapped, so the mapped
    /// neighbors of `u` are exactly `plan.backward(u)` at claim time.
    #[inline]
    fn claim(&mut self, u: VertexId, v: VertexId) -> bool {
        let plan = self.plan;
        match self.inj {
            Injectivity::Isomorphism => {
                if self.sc.visited_by[v as usize] != NO_VERTEX {
                    return false;
                }
                self.sc.visited_by[v as usize] = u;
                true
            }
            Injectivity::Homomorphism => true,
            Injectivity::EdgeInjective => self.sc.claim_edges(plan.backward(u), v),
        }
    }

    /// Undo the bookkeeping of a successful [`AdaptiveEngine::claim`].
    #[inline]
    fn release(&mut self, u: VertexId, v: VertexId) {
        let plan = self.plan;
        match self.inj {
            Injectivity::Isomorphism => self.sc.visited_by[v as usize] = NO_VERTEX,
            Injectivity::Homomorphism => {}
            Injectivity::EdgeInjective => self.sc.release_edges(plan.backward(u).len()),
        }
    }

    /// Pick the extendable vertex with minimum estimated work; degree-one
    /// vertices only when nothing else is available. Returns its index in
    /// `extendable`.
    fn select(&self) -> usize {
        let q = self.plan.query();
        let mut best_idx = 0usize;
        let mut best_key = (true, f64::INFINITY, u32::MAX);
        for (i, &u) in self.extendable.iter().enumerate() {
            let deg1 = q.degree(u) <= 1;
            let w: f64 = self.sc.lc_bufs[u as usize]
                .iter()
                .map(|&p| self.plan.weights[u as usize][p as usize])
                .sum();
            let key = (deg1, w, u);
            if (key.0, key.1, key.2) < best_key {
                best_key = key;
                best_idx = i;
            }
        }
        best_idx
    }

    /// Compute `LC(c, M)` for newly extendable `c` into its cache slot.
    fn fill_lc(&mut self, c: VertexId) {
        let plan = self.plan;
        let space = plan.space.as_ref().expect("adaptive plan carries a space");
        let parents = plan.backward(c);
        let mut lists: Vec<&[u32]> = parents
            .iter()
            .map(|&p| space.neighbors(p, self.sc.mpos[p as usize] as usize, c))
            .collect();
        lists.sort_by_key(|l| l.len());
        let mut buf = std::mem::take(&mut self.sc.lc_bufs[c as usize]);
        buf.clear();
        if lists.is_empty() {
            buf.extend(0..plan.candidates.get(c).len() as u32);
        } else if lists.len() == 1 {
            // One mapped parent: LC is its A list as-is (DP-iso's cache).
            self.ctl.counters.bump(Counter::LcCacheHits);
            buf.extend_from_slice(lists[0]);
        } else {
            let kind = plan.config.intersect;
            let ctr = intersect_counter(kind);
            let mut tmp = std::mem::take(&mut self.sc.tmp_bufs[0]);
            intersect_buf(kind, lists[0], lists[1], &mut buf);
            self.ctl.counters.bump(ctr);
            for l in &lists[2..] {
                if buf.is_empty() {
                    break;
                }
                tmp.clear();
                intersect_buf(kind, &buf, l, &mut tmp);
                self.ctl.counters.bump(ctr);
                std::mem::swap(&mut buf, &mut tmp);
            }
            self.sc.tmp_bufs[0] = tmp;
        }
        self.sc.lc_bufs[c as usize] = buf;
    }

    /// Map `u → (v, pos)`: update DAG counters and extendables. Returns the
    /// list of children that became extendable (to undo later).
    fn apply(&mut self, u: VertexId, v: VertexId, pos: u32) -> Vec<VertexId> {
        self.sc.m[u as usize] = v;
        self.sc.mpos[u as usize] = pos;
        // The plan's forward lists are the DAG children; iterating the
        // borrowed slice directly (no per-expansion clone) is fine because
        // `plan` outlives the `&mut self` calls below.
        let plan = self.plan;
        let mut activated = Vec::new();
        for &c in plan.forward(u) {
            self.mapped_parents[c as usize] += 1;
            if self.mapped_parents[c as usize] as usize == plan.backward(c).len() {
                self.fill_lc(c);
                self.extendable.push(c);
                activated.push(c);
            }
        }
        activated
    }

    fn undo(&mut self, u: VertexId, _v: VertexId, activated: &[VertexId]) {
        for &c in activated {
            let i = self
                .extendable
                .iter()
                .rposition(|&x| x == c)
                .expect("activated vertex is extendable");
            self.extendable.swap_remove(i);
        }
        for &c in self.plan.forward(u) {
            self.mapped_parents[c as usize] -= 1;
        }
        self.sc.m[u as usize] = NO_VERTEX;
    }

    fn recurse(&mut self, depth: usize) {
        self.ctl.tick();
        if self.ctl.is_stopped() {
            return;
        }
        let n = self.plan.num_query_vertices();
        let idx = self.select();
        let u = self.extendable.swap_remove(idx);
        let lc = std::mem::take(&mut self.sc.lc_bufs[u as usize]);
        for &pos in &lc {
            let v = self.plan.candidates.get(u)[pos as usize];
            if !self.claim(u, v) {
                continue;
            }
            let activated = self.apply(u, v, pos);
            self.ctl
                .counters
                .record_max(Counter::PeakDepth, depth as u64 + 1);
            if depth + 1 == n {
                self.emit_match();
            } else {
                self.recurse(depth + 1);
            }
            self.undo(u, v, &activated);
            self.release(u, v);
            self.ctl.counters.bump(Counter::Backtracks);
            if self.ctl.is_stopped() {
                break;
            }
        }
        self.sc.lc_bufs[u as usize] = lc;
        self.extendable.push(u);
    }

    fn recurse_fs(&mut self, depth: usize) -> u64 {
        self.ctl.tick();
        if self.ctl.is_stopped() {
            return FULL;
        }
        let n = self.plan.num_query_vertices();
        let idx = self.select();
        let u = self.extendable.swap_remove(idx);
        let lc = std::mem::take(&mut self.sc.lc_bufs[u as usize]);
        let mut acc = 0u64;
        let mut early: Option<u64> = None;
        // See engine::recurse_fs: a match below any sibling forces FULL
        // even when a later sibling licenses skipping the rest.
        let mut found_below = false;
        for &pos in &lc {
            let v = self.plan.candidates.get(u)[pos as usize];
            let owner = self.sc.visited_by[v as usize];
            let child_fs = if owner != NO_VERTEX {
                conflict_class(u, owner)
            } else {
                // Failing sets are isomorphism-only (asserted at plan
                // assembly), so the visited map is maintained inline here
                // rather than through claim/release.
                self.sc.visited_by[v as usize] = u;
                let activated = self.apply(u, v, pos);
                self.ctl
                    .counters
                    .record_max(Counter::PeakDepth, depth as u64 + 1);
                let fs = if depth + 1 == n {
                    self.emit_match();
                    FULL
                } else {
                    self.recurse_fs(depth + 1)
                };
                self.undo(u, v, &activated);
                self.sc.visited_by[v as usize] = NO_VERTEX;
                self.ctl.counters.bump(Counter::Backtracks);
                fs
            };
            if child_fs == FULL {
                found_below = true;
            }
            if self.ctl.is_stopped() {
                acc = FULL;
                break;
            }
            if prunes_siblings(child_fs, u) {
                early = Some(child_fs);
                break;
            }
            acc |= child_fs;
        }
        let empty_lc = lc.is_empty();
        self.sc.lc_bufs[u as usize] = lc;
        self.extendable.push(u);
        if let Some(fs) = early {
            return if found_below { FULL } else { fs };
        }
        if empty_lc {
            return emptyset_class(u, self.plan.backward(u));
        }
        // Union rule: include u and the LC determiners (DAG parents) — see
        // engine::recurse_fs for why omitting them is unsound.
        acc | emptyset_class(u, self.plan.backward(u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate_space::{CandidateSpace, SpaceCoverage};
    use crate::enumerate::{CollectSink, LcMethod, MatchConfig};
    use crate::fixtures::{paper_data, paper_match, paper_query};
    use crate::{DataContext, QueryContext};

    fn paper_adaptive_plan(failing_sets: bool) -> (QueryPlan, Graph) {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let (cand, tree) = crate::filter::dpiso::dpiso_candidates(&qc, &gc, 3);
        let space = CandidateSpace::build(&q, &g, &cand, SpaceCoverage::AllEdges, false);
        let config = MatchConfig {
            failing_sets,
            ..Default::default()
        };
        let order = tree.order.clone();
        let plan = QueryPlan::assemble(
            &q,
            cand,
            order,
            Some(tree),
            Some(space),
            LcMethod::Intersect,
            config,
            true,
        );
        (plan, g)
    }

    #[test]
    fn finds_the_unique_match() {
        for fs in [false, true] {
            let (plan, g) = paper_adaptive_plan(fs);
            let mut sink = CollectSink::default();
            let stats = enumerate_adaptive(&plan, &g, &mut sink);
            assert_eq!(stats.matches, 1, "fs={fs}");
            assert_eq!(sink.matches, vec![paper_match()], "fs={fs}");
        }
    }

    #[test]
    fn scratch_reuse_across_adaptive_runs() {
        let (plan, g) = paper_adaptive_plan(false);
        let mut scratch = Scratch::new();
        let mut sink = CollectSink::default();
        let s1 = enumerate_adaptive_with(&plan, &g, &mut scratch, &mut sink);
        let s2 = enumerate_adaptive_with(&plan, &g, &mut scratch, &mut sink);
        assert_eq!(s1.matches, 1);
        assert_eq!(s2.matches, 1);
        assert_eq!(s1.scratch_reuse, 0);
        assert_eq!(s2.scratch_reuse, 1);
    }
}
