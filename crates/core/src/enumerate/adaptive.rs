//! DP-iso's adaptive matching order (Han et al., SIGMOD 2019; Section 3.2
//! of the study).
//!
//! The BFS order `δ` turns the query into a DAG (parents = δ-earlier
//! neighbors). A vertex becomes *extendable* once all its DAG parents are
//! mapped; its local candidates are then fixed (every constraint comes
//! from the parents), so `LC(u, M)` is computed immediately and cached.
//! Among extendable vertices the engine picks the one minimizing the
//! estimated remaining work `Σ_{v ∈ LC} W[u][v]`, where the weight array
//! `W` estimates, bottom-up over the DAG, how many tree-like path
//! embeddings hang below each candidate (leaves weigh 1; inner vertices
//! take the minimum over children of the candidate-edge-summed child
//! weights). Degree-one query vertices are deprioritized, per DP-iso's
//! core/forest decomposition.

use crate::candidate_space::CandidateSpace;
use crate::candidates::Candidates;
use crate::enumerate::failing_sets::{conflict_class, emptyset_class, prunes_siblings, FULL};
use crate::enumerate::{EnumStats, MatchConfig, MatchSink, Outcome};
use sm_graph::traversal::BfsTree;
use sm_graph::types::NO_VERTEX;
use sm_graph::{Graph, VertexId};
use sm_intersect::intersect_buf;
use sm_runtime::{CancelReason, CancelToken};
use std::time::Instant;

/// Inputs for the adaptive engine. The candidate space must cover **all**
/// query edges in both directions.
pub struct AdaptiveInput<'a> {
    /// Query graph.
    pub q: &'a Graph,
    /// Data graph.
    pub g: &'a Graph,
    /// Candidate sets.
    pub candidates: &'a Candidates,
    /// All-edges candidate space.
    pub space: &'a CandidateSpace,
    /// The BFS tree fixing `δ` (from DP-iso's filter).
    pub tree: &'a BfsTree,
    /// Run configuration (`intersect` kind and `failing_sets` honored;
    /// `vf2pp_rule` must be off).
    pub config: &'a MatchConfig,
}

/// The weight array `W[u][pos]` over candidate positions.
pub fn weight_array(input: &AdaptiveInput<'_>) -> Vec<Vec<f64>> {
    let q = input.q;
    let n = q.num_vertices();
    let rank = &input.tree.rank;
    let mut w: Vec<Vec<f64>> = vec![Vec::new(); n];
    for &u in input.tree.order.iter().rev() {
        let children: Vec<VertexId> = q
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&c| rank[c as usize] > rank[u as usize])
            .collect();
        let len = input.candidates.get(u).len();
        let mut wu = vec![1.0f64; len];
        if !children.is_empty() {
            for (pos, w_pos) in wu.iter_mut().enumerate() {
                let mut best = f64::INFINITY;
                for &c in &children {
                    let sum: f64 = input
                        .space
                        .neighbors(u, pos, c)
                        .iter()
                        .map(|&p| w[c as usize][p as usize])
                        .sum();
                    best = best.min(sum);
                }
                *w_pos = best;
            }
        }
        w[u as usize] = wu;
    }
    w
}

/// Run the adaptive enumeration.
pub fn enumerate_adaptive<S: MatchSink>(input: &AdaptiveInput<'_>, sink: &mut S) -> EnumStats {
    assert!(
        !input.config.vf2pp_rule,
        "adaptive engine does not support the VF2++ rule"
    );
    let started = Instant::now();
    let weights = weight_array(input);
    let mut eng = AdaptiveEngine::new(input, weights, sink, started);
    // Root is extendable from the start with its full candidate set.
    let root = input.tree.root;
    eng.lc_cache[root as usize] =
        (0..input.candidates.get(root).len() as u32).collect();
    eng.extendable.push(root);
    if input.config.failing_sets {
        eng.recurse_fs(0);
    } else {
        eng.recurse(0);
    }
    EnumStats {
        matches: eng.matches,
        recursions: eng.recursions,
        elapsed: started.elapsed(),
        outcome: eng.stopped.unwrap_or(Outcome::Complete),
        parallel: None,
    }
}

struct AdaptiveEngine<'a, S: MatchSink> {
    inp: &'a AdaptiveInput<'a>,
    weights: Vec<Vec<f64>>,
    /// DAG parents (δ-earlier neighbors) per query vertex.
    parents: Vec<Vec<VertexId>>,
    /// DAG children per query vertex.
    children: Vec<Vec<VertexId>>,
    mapped_parents: Vec<u32>,
    m: Vec<VertexId>,
    mpos: Vec<u32>,
    visited_by: Vec<VertexId>,
    /// Cached `LC(u, M)` (positions into `C(u)`), valid while `u` is
    /// extendable.
    lc_cache: Vec<Vec<u32>>,
    extendable: Vec<VertexId>,
    tmp: Vec<u32>,
    matches: u64,
    recursions: u64,
    cap: u64,
    cancel: CancelToken,
    stopped: Option<Outcome>,
    sink: &'a mut S,
}

impl<'a, S: MatchSink> AdaptiveEngine<'a, S> {
    fn new(
        inp: &'a AdaptiveInput<'a>,
        weights: Vec<Vec<f64>>,
        sink: &'a mut S,
        started: Instant,
    ) -> Self {
        let q = inp.q;
        let n = q.num_vertices();
        let rank = &inp.tree.rank;
        let mut parents = vec![Vec::new(); n];
        let mut children = vec![Vec::new(); n];
        for u in q.vertices() {
            for &u2 in q.neighbors(u) {
                if rank[u2 as usize] < rank[u as usize] {
                    parents[u as usize].push(u2);
                } else {
                    children[u as usize].push(u2);
                }
            }
        }
        AdaptiveEngine {
            inp,
            weights,
            parents,
            children,
            mapped_parents: vec![0; n],
            m: vec![NO_VERTEX; n],
            mpos: vec![0; n],
            visited_by: vec![NO_VERTEX; inp.g.num_vertices()],
            lc_cache: vec![Vec::new(); n],
            extendable: Vec::with_capacity(n),
            tmp: Vec::new(),
            matches: 0,
            recursions: 0,
            cap: inp.config.max_matches.unwrap_or(u64::MAX),
            cancel: inp.config.run_token(started),
            stopped: None,
            sink,
        }
    }

    #[inline]
    fn tick(&mut self) {
        self.recursions += 1;
        if self.recursions & 0x3FF == 0 {
            if let Some(reason) = self.cancel.poll() {
                self.stopped = Some(match reason {
                    CancelReason::Deadline => Outcome::TimedOut,
                    CancelReason::Stopped => Outcome::CapReached,
                });
            }
        }
    }

    /// Pick the extendable vertex with minimum estimated work; degree-one
    /// vertices only when nothing else is available. Returns its index in
    /// `extendable`.
    fn select(&self) -> usize {
        let q = self.inp.q;
        let mut best_idx = 0usize;
        let mut best_key = (true, f64::INFINITY, u32::MAX);
        for (i, &u) in self.extendable.iter().enumerate() {
            let deg1 = q.degree(u) <= 1;
            let w: f64 = self.lc_cache[u as usize]
                .iter()
                .map(|&p| self.weights[u as usize][p as usize])
                .sum();
            let key = (deg1, w, u);
            if (key.0, key.1, key.2) < best_key {
                best_key = key;
                best_idx = i;
            }
        }
        best_idx
    }

    /// Compute `LC(c, M)` for newly extendable `c` into its cache.
    fn fill_lc(&mut self, c: VertexId) {
        let space = self.inp.space;
        let parents = &self.parents[c as usize];
        let mut lists: Vec<&[u32]> = parents
            .iter()
            .map(|&p| space.neighbors(p, self.mpos[p as usize] as usize, c))
            .collect();
        lists.sort_by_key(|l| l.len());
        let mut buf = std::mem::take(&mut self.lc_cache[c as usize]);
        buf.clear();
        if lists.is_empty() {
            buf.extend(0..self.inp.candidates.get(c).len() as u32);
        } else if lists.len() == 1 {
            buf.extend_from_slice(lists[0]);
        } else {
            let kind = self.inp.config.intersect;
            let mut tmp = std::mem::take(&mut self.tmp);
            intersect_buf(kind, lists[0], lists[1], &mut buf);
            for l in &lists[2..] {
                if buf.is_empty() {
                    break;
                }
                tmp.clear();
                intersect_buf(kind, &buf, l, &mut tmp);
                std::mem::swap(&mut buf, &mut tmp);
            }
            self.tmp = tmp;
        }
        self.lc_cache[c as usize] = buf;
    }

    /// Map `u → (v, pos)`: update DAG counters and extendables. Returns the
    /// list of children that became extendable (to undo later).
    fn apply(&mut self, u: VertexId, v: VertexId, pos: u32) -> Vec<VertexId> {
        self.m[u as usize] = v;
        self.mpos[u as usize] = pos;
        self.visited_by[v as usize] = u;
        let children = self.children[u as usize].clone();
        let mut activated = Vec::new();
        for c in children {
            self.mapped_parents[c as usize] += 1;
            if self.mapped_parents[c as usize] as usize == self.parents[c as usize].len() {
                self.fill_lc(c);
                self.extendable.push(c);
                activated.push(c);
            }
        }
        activated
    }

    fn undo(&mut self, u: VertexId, v: VertexId, activated: &[VertexId]) {
        for &c in activated {
            let i = self
                .extendable
                .iter()
                .rposition(|&x| x == c)
                .expect("activated vertex is extendable");
            self.extendable.swap_remove(i);
        }
        for &c in &self.children[u as usize] {
            self.mapped_parents[c as usize] -= 1;
        }
        self.visited_by[v as usize] = NO_VERTEX;
        self.m[u as usize] = NO_VERTEX;
    }

    fn recurse(&mut self, depth: usize) {
        self.tick();
        if self.stopped.is_some() {
            return;
        }
        let n = self.inp.q.num_vertices();
        let idx = self.select();
        let u = self.extendable.swap_remove(idx);
        let lc = std::mem::take(&mut self.lc_cache[u as usize]);
        for &pos in &lc {
            let v = self.inp.candidates.get(u)[pos as usize];
            if self.visited_by[v as usize] != NO_VERTEX {
                continue;
            }
            let activated = self.apply(u, v, pos);
            if depth + 1 == n {
                self.matches += 1;
                self.sink.on_match(&self.m);
                if self.matches >= self.cap {
                    self.stopped = Some(Outcome::CapReached);
                }
            } else {
                self.recurse(depth + 1);
            }
            self.undo(u, v, &activated);
            if self.stopped.is_some() {
                break;
            }
        }
        self.lc_cache[u as usize] = lc;
        self.extendable.push(u);
    }

    fn recurse_fs(&mut self, depth: usize) -> u64 {
        self.tick();
        if self.stopped.is_some() {
            return FULL;
        }
        let n = self.inp.q.num_vertices();
        let idx = self.select();
        let u = self.extendable.swap_remove(idx);
        let lc = std::mem::take(&mut self.lc_cache[u as usize]);
        let mut acc = 0u64;
        let mut early: Option<u64> = None;
        // See engine::recurse_fs: a match below any sibling forces FULL
        // even when a later sibling licenses skipping the rest.
        let mut found_below = false;
        for &pos in &lc {
            let v = self.inp.candidates.get(u)[pos as usize];
            let owner = self.visited_by[v as usize];
            let child_fs = if owner != NO_VERTEX {
                conflict_class(u, owner)
            } else {
                let activated = self.apply(u, v, pos);
                let fs = if depth + 1 == n {
                    self.matches += 1;
                    self.sink.on_match(&self.m);
                    if self.matches >= self.cap {
                        self.stopped = Some(Outcome::CapReached);
                    }
                    FULL
                } else {
                    self.recurse_fs(depth + 1)
                };
                self.undo(u, v, &activated);
                fs
            };
            if child_fs == FULL {
                found_below = true;
            }
            if self.stopped.is_some() {
                acc = FULL;
                break;
            }
            if prunes_siblings(child_fs, u) {
                early = Some(child_fs);
                break;
            }
            acc |= child_fs;
        }
        let empty_lc = lc.is_empty();
        self.lc_cache[u as usize] = lc;
        self.extendable.push(u);
        if let Some(fs) = early {
            return if found_below { FULL } else { fs };
        }
        if empty_lc {
            return emptyset_class(u, &self.parents[u as usize]);
        }
        // Union rule: include u and the LC determiners (DAG parents) — see
        // engine::recurse_fs for why omitting them is unsound.
        acc | emptyset_class(u, &self.parents[u as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate_space::SpaceCoverage;
    use crate::enumerate::CollectSink;
    use crate::fixtures::{paper_data, paper_match, paper_query};
    use crate::{DataContext, QueryContext};

    fn run(failing_sets: bool) -> (u64, Vec<Vec<VertexId>>) {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let (cand, tree) = crate::filter::dpiso::dpiso_candidates(&qc, &gc, 3);
        let space = CandidateSpace::build(&q, &g, &cand, SpaceCoverage::AllEdges, false);
        let config = MatchConfig {
            failing_sets,
            ..Default::default()
        };
        let input = AdaptiveInput {
            q: &q,
            g: &g,
            candidates: &cand,
            space: &space,
            tree: &tree,
            config: &config,
        };
        let mut sink = CollectSink::default();
        let stats = enumerate_adaptive(&input, &mut sink);
        (stats.matches, sink.matches)
    }

    #[test]
    fn finds_the_unique_match() {
        for fs in [false, true] {
            let (n, ms) = run(fs);
            assert_eq!(n, 1, "fs={fs}");
            assert_eq!(ms, vec![paper_match()], "fs={fs}");
        }
    }

    #[test]
    fn weight_array_leaf_is_one() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let (cand, tree) = crate::filter::dpiso::dpiso_candidates(&qc, &gc, 3);
        let space = CandidateSpace::build(&q, &g, &cand, SpaceCoverage::AllEdges, false);
        let config = MatchConfig::default();
        let input = AdaptiveInput {
            q: &q,
            g: &g,
            candidates: &cand,
            space: &space,
            tree: &tree,
            config: &config,
        };
        let w = weight_array(&input);
        // The δ-last vertex has no DAG children: all weights are 1.
        let last = *tree.order.last().unwrap();
        assert!(w[last as usize].iter().all(|&x| x == 1.0));
        // The root's weights are finite and >= 1 on a satisfiable query.
        let root = tree.root;
        assert!(w[root as usize].iter().all(|&x| x.is_finite() && x >= 0.0));
    }
}
