//! The static-order backtracking engine (paper Algorithm 1, lines 4–12)
//! with the four local-candidate computation methods of Algorithms 2–5 and
//! optional failing-set pruning.

use crate::candidate_space::CandidateSpace;
use crate::candidates::Candidates;
use crate::enumerate::{EnumStats, LcMethod, MatchConfig, MatchSink, Outcome};
use sm_graph::types::NO_VERTEX;
use sm_graph::{Graph, Label, VertexId};
use sm_intersect::{intersect_buf, BsrSet, IntersectKind};
use sm_runtime::{CancelReason, CancelToken};
use std::time::Instant;

/// Everything the engine needs for one run.
pub struct EngineInput<'a> {
    /// Query graph.
    pub q: &'a Graph,
    /// Data graph.
    pub g: &'a Graph,
    /// Candidate sets from the filtering step.
    pub candidates: &'a Candidates,
    /// Auxiliary structure (required by [`LcMethod::TreeIndex`] and
    /// [`LcMethod::Intersect`]).
    pub space: Option<&'a CandidateSpace>,
    /// Matching order `φ`.
    pub order: &'a [VertexId],
    /// Pivot parent per query vertex (`NO_VERTEX` for the first vertex
    /// and for vertices with no backward neighbor). For
    /// [`LcMethod::TreeIndex`] this must be the BFS-tree parent whose edge
    /// list exists in the space.
    pub parent: &'a [VertexId],
    /// Local-candidate computation method.
    pub method: LcMethod,
    /// Run configuration.
    pub config: &'a MatchConfig,
    /// Restrict the first level to this subset of its local candidates
    /// (entries in the method's depth-0 convention). Used by
    /// [`crate::enumerate::parallel`] to partition the search across
    /// threads; `None` = full candidate set.
    pub root_subset: Option<&'a [u32]>,
    /// Cross-thread stop flag and global match counter for parallel runs.
    pub shared: Option<&'a SharedControl>,
}

/// Shared state coordinating the worker engines of a parallel run: a
/// global match counter (so the 10^5 cap applies to the *sum*) and one
/// [`CancelToken`] every worker polls. Any worker hitting the cap (or a
/// deadline expiring on any worker) cancels the token, and the reason
/// distinguishes cap from timeout when outcomes are merged.
#[derive(Default)]
pub struct SharedControl {
    /// Cancellation shared by every worker of the run.
    pub cancel: CancelToken,
    /// Total matches across workers.
    pub matches: std::sync::atomic::AtomicU64,
}

impl SharedControl {
    /// Shared state for a run of `config` that started at `started`:
    /// carries the config's deadline (and caller token, when attached) so
    /// every worker observes the same cancellation.
    pub fn for_run(config: &MatchConfig, started: Instant) -> Self {
        SharedControl {
            cancel: config.run_token(started),
            matches: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

/// Derive per-vertex pivot parents from an order: the earliest-matched
/// backward neighbor (or a supplied tree parent when it is backward).
pub fn derive_parents(
    q: &Graph,
    order: &[VertexId],
    tree: Option<&sm_graph::traversal::BfsTree>,
) -> Vec<VertexId> {
    let n = q.num_vertices();
    let mut rank = vec![usize::MAX; n];
    for (i, &u) in order.iter().enumerate() {
        rank[u as usize] = i;
    }
    let mut parent = vec![NO_VERTEX; n];
    for &u in order {
        if rank[u as usize] == 0 {
            continue;
        }
        // Prefer the BFS-tree parent when it precedes u in the order (the
        // TreeIndex method depends on that edge list existing).
        if let Some(t) = tree {
            let p = t.parent[u as usize];
            if p != NO_VERTEX && rank[p as usize] < rank[u as usize] {
                parent[u as usize] = p;
                continue;
            }
        }
        parent[u as usize] = q
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&u2| rank[u2 as usize] < rank[u as usize])
            .min_by_key(|&u2| rank[u2 as usize])
            .unwrap_or(NO_VERTEX);
    }
    parent
}

/// Run the enumeration, streaming matches into `sink`.
pub fn enumerate<S: MatchSink>(input: &EngineInput<'_>, sink: &mut S) -> EnumStats {
    let started = Instant::now();
    let mut eng = Engine::new(input, sink, started);
    if input.method.needs_space() {
        assert!(
            input.space.is_some(),
            "{:?} requires a CandidateSpace",
            input.method
        );
    }
    // See enumerate::failing_sets: the emptyset class is unsound when LC
    // depends on more than the backward neighbors' mappings.
    assert!(
        !(input.config.failing_sets && input.config.vf2pp_rule),
        "failing sets are incompatible with VF2++'s extra runtime rule"
    );
    debug_assert_eq!(input.order.len(), input.q.num_vertices());
    if input.config.failing_sets {
        eng.recurse_fs(0);
    } else {
        eng.recurse(0);
    }
    let outcome = eng.stopped.unwrap_or(Outcome::Complete);
    EnumStats {
        matches: eng.matches,
        recursions: eng.recursions,
        elapsed: started.elapsed(),
        outcome,
        parallel: None,
    }
}

use crate::enumerate::failing_sets::{conflict_class, emptyset_class, prunes_siblings, FULL};

/// Cancellation is polled every this many recursions.
const TIME_CHECK_MASK: u64 = 0x3FF;

struct Engine<'a, S: MatchSink> {
    inp: &'a EngineInput<'a>,
    /// Backward neighbors per query vertex, ordered by match time.
    backward: Vec<Vec<VertexId>>,
    /// VF2++'s forward label requirements per query vertex.
    vf2pp_req: Vec<Vec<(Label, u32)>>,
    m: Vec<VertexId>,
    mpos: Vec<u32>,
    visited_by: Vec<VertexId>,
    lc_bufs: Vec<Vec<u32>>,
    tmp_bufs: Vec<Vec<u32>>,
    bsr_a: Vec<BsrSet>,
    bsr_b: Vec<BsrSet>,
    matches: u64,
    recursions: u64,
    cap: u64,
    cancel: CancelToken,
    stopped: Option<Outcome>,
    sink: &'a mut S,
}

impl<'a, S: MatchSink> Engine<'a, S> {
    fn new(inp: &'a EngineInput<'a>, sink: &'a mut S, started: Instant) -> Self {
        let q = inp.q;
        let n = q.num_vertices();
        let backward = crate::order::backward_neighbors(q, inp.order);
        let vf2pp_req = if inp.config.vf2pp_rule {
            forward_label_requirements(q, inp.order)
        } else {
            vec![Vec::new(); n]
        };
        Engine {
            inp,
            backward,
            vf2pp_req,
            m: vec![NO_VERTEX; n],
            mpos: vec![0; n],
            visited_by: vec![NO_VERTEX; inp.g.num_vertices()],
            lc_bufs: vec![Vec::new(); n],
            tmp_bufs: vec![Vec::new(); n],
            bsr_a: vec![BsrSet::default(); n],
            bsr_b: vec![BsrSet::default(); n],
            matches: 0,
            recursions: 0,
            cap: inp.config.max_matches.unwrap_or(u64::MAX),
            // Workers of a parallel run share the run's token; a solo run
            // derives one from the config (deadline + caller token).
            cancel: match inp.shared {
                Some(sh) => sh.cancel.clone(),
                None => inp.config.run_token(started),
            },
            stopped: None,
            sink,
        }
    }

    #[inline]
    fn tick(&mut self) {
        self.recursions += 1;
        if self.recursions & TIME_CHECK_MASK == 0 {
            if let Some(reason) = self.cancel.poll() {
                self.stopped = Some(match reason {
                    CancelReason::Deadline => Outcome::TimedOut,
                    CancelReason::Stopped => Outcome::CapReached,
                });
            }
        }
    }

    #[inline]
    fn emit_match(&mut self) {
        self.matches += 1;
        self.sink.on_match(&self.m);
        match self.inp.shared {
            Some(sh) => {
                let total = sh
                    .matches
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                    + 1;
                if total >= self.cap {
                    sh.cancel.cancel(CancelReason::Stopped);
                    self.stopped = Some(Outcome::CapReached);
                }
            }
            None => {
                if self.matches >= self.cap {
                    self.stopped = Some(Outcome::CapReached);
                }
            }
        }
    }

    /// Fill `lc_bufs[depth]` for query vertex `u`. Entries are *positions*
    /// into `C(u)` for TreeIndex/Intersect, *data vertex ids* otherwise.
    fn compute_lc(&mut self, depth: usize, u: VertexId) {
        let mut buf = std::mem::take(&mut self.lc_bufs[depth]);
        buf.clear();
        let inp = self.inp;
        if depth == 0 {
            if let Some(sub) = inp.root_subset {
                // Parallel partition: the caller pre-split the depth-0
                // candidates (in this method's entry convention).
                buf.extend_from_slice(sub);
                self.lc_bufs[depth] = buf;
                return;
            }
        }
        let c_u = inp.candidates.get(u);
        let bw = &self.backward[u as usize];
        match inp.method {
            LcMethod::Direct => {
                let parent = inp.parent[u as usize];
                if depth == 0 || parent == NO_VERTEX {
                    buf.extend_from_slice(c_u);
                } else {
                    let g = inp.g;
                    let q = inp.q;
                    let (lu, du) = (q.label(u), q.degree(u));
                    let vp = self.m[parent as usize];
                    'cand: for &v in g.neighbors(vp) {
                        if g.label(v) != lu || g.degree(v) < du {
                            continue;
                        }
                        for &ub in bw {
                            if ub != parent && !g.has_edge(v, self.m[ub as usize]) {
                                continue 'cand;
                            }
                        }
                        if inp.config.vf2pp_rule
                            && !self.vf2pp_pass(u, v)
                        {
                            continue;
                        }
                        buf.push(v);
                    }
                }
            }
            LcMethod::CandidateScan => {
                let g = inp.g;
                'scan: for &v in c_u {
                    for &ub in bw {
                        if !g.has_edge(v, self.m[ub as usize]) {
                            continue 'scan;
                        }
                    }
                    buf.push(v);
                }
            }
            LcMethod::TreeIndex => {
                let parent = inp.parent[u as usize];
                if depth == 0 || parent == NO_VERTEX {
                    buf.extend(0..c_u.len() as u32);
                } else {
                    let space = inp.space.expect("TreeIndex needs space");
                    let g = inp.g;
                    let list =
                        space.neighbors(parent, self.mpos[parent as usize] as usize, u);
                    'tree: for &pos in list {
                        let v = c_u[pos as usize];
                        for &ub in bw {
                            if ub != parent && !g.has_edge(v, self.m[ub as usize]) {
                                continue 'tree;
                            }
                        }
                        buf.push(pos);
                    }
                }
            }
            LcMethod::Intersect => {
                if depth == 0 || bw.is_empty() {
                    buf.extend(0..c_u.len() as u32);
                } else {
                    let space = inp.space.expect("Intersect needs space");
                    if inp.config.intersect == IntersectKind::Bsr {
                        self.intersect_bsr(depth, u, &mut buf);
                    } else {
                        // Gather the A lists of all backward neighbors,
                        // smallest first so the fold stays near the lower
                        // bound the paper's cost model gives.
                        let mut lists: Vec<&[u32]> = bw
                            .iter()
                            .map(|&ub| {
                                space.neighbors(ub, self.mpos[ub as usize] as usize, u)
                            })
                            .collect();
                        lists.sort_by_key(|l| l.len());
                        if lists.len() == 1 {
                            buf.extend_from_slice(lists[0]);
                        } else {
                            let kind = inp.config.intersect;
                            let mut tmp = std::mem::take(&mut self.tmp_bufs[depth]);
                            intersect_buf(kind, lists[0], lists[1], &mut buf);
                            for l in &lists[2..] {
                                if buf.is_empty() {
                                    break;
                                }
                                tmp.clear();
                                intersect_buf(kind, &buf, l, &mut tmp);
                                std::mem::swap(&mut buf, &mut tmp);
                            }
                            self.tmp_bufs[depth] = tmp;
                        }
                    }
                }
            }
        }
        self.lc_bufs[depth] = buf;
    }

    /// BSR-flavored intersection of the backward A lists.
    fn intersect_bsr(&mut self, depth: usize, u: VertexId, buf: &mut Vec<u32>) {
        let inp = self.inp;
        let space = inp.space.expect("Intersect needs space");
        let bw = &self.backward[u as usize];
        let mut sets: Vec<&BsrSet> = bw
            .iter()
            .map(|&ub| {
                space
                    .bsr_neighbors(ub, self.mpos[ub as usize] as usize, u)
                    .expect("space built without BSR encodings")
            })
            .collect();
        sets.sort_by_key(|s| s.len());
        if sets.len() == 1 {
            sets[0].decode_into(buf);
            return;
        }
        let mut a = std::mem::take(&mut self.bsr_a[depth]);
        let mut b = std::mem::take(&mut self.bsr_b[depth]);
        sets[0].intersect_into(sets[1], &mut a);
        for s in &sets[2..] {
            if a.is_empty() {
                break;
            }
            a.intersect_into(s, &mut b);
            std::mem::swap(&mut a, &mut b);
        }
        a.decode_into(buf);
        self.bsr_a[depth] = a;
        self.bsr_b[depth] = b;
    }

    /// VF2++'s runtime rule: for every label `l` among u's *forward*
    /// neighbors, `v` must still have enough unmatched neighbors labeled
    /// `l`.
    fn vf2pp_pass(&self, u: VertexId, v: VertexId) -> bool {
        let req = &self.vf2pp_req[u as usize];
        if req.is_empty() {
            return true;
        }
        let g = self.inp.g;
        for &(l, need) in req {
            let mut have = 0u32;
            for &w in g.neighbors(v) {
                if g.label(w) == l && self.visited_by[w as usize] == NO_VERTEX {
                    have += 1;
                    if have >= need {
                        break;
                    }
                }
            }
            if have < need {
                return false;
            }
        }
        true
    }

    /// Resolve an LC entry to `(data vertex, position)` per the method's
    /// buffer convention. Position is meaningful only for space methods.
    #[inline]
    fn resolve(&self, u: VertexId, entry: u32) -> (VertexId, u32) {
        match self.inp.method {
            LcMethod::TreeIndex | LcMethod::Intersect => {
                (self.inp.candidates.get(u)[entry as usize], entry)
            }
            _ => (entry, 0),
        }
    }

    /// Plain recursion (no failing sets).
    fn recurse(&mut self, depth: usize) {
        self.tick();
        if self.stopped.is_some() {
            return;
        }
        let n = self.inp.order.len();
        let u = self.inp.order[depth];
        self.compute_lc(depth, u);
        let buf = std::mem::take(&mut self.lc_bufs[depth]);
        for &entry in &buf {
            let (v, pos) = self.resolve(u, entry);
            if self.visited_by[v as usize] != NO_VERTEX {
                continue;
            }
            self.m[u as usize] = v;
            self.mpos[u as usize] = pos;
            self.visited_by[v as usize] = u;
            if depth + 1 == n {
                self.emit_match();
            } else {
                self.recurse(depth + 1);
            }
            self.visited_by[v as usize] = NO_VERTEX;
            if self.stopped.is_some() {
                break;
            }
        }
        self.m[u as usize] = NO_VERTEX;
        self.lc_bufs[depth] = buf;
    }

    /// Failing-set recursion: returns the failing set of this subtree as a
    /// bitset over query vertices ([`FULL`] = contains a match / cannot
    /// prune).
    fn recurse_fs(&mut self, depth: usize) -> u64 {
        self.tick();
        if self.stopped.is_some() {
            return FULL;
        }
        let n = self.inp.order.len();
        let u = self.inp.order[depth];
        self.compute_lc(depth, u);
        let buf = std::mem::take(&mut self.lc_bufs[depth]);
        let mut acc: u64 = 0;
        let mut early: Option<u64> = None;
        // Whether any sibling's subtree contained a match: the node's
        // failing set must then be FULL even if a later sibling licenses
        // skipping the rest (skipping is sound — the skipped subtrees hold
        // no matches — but ancestors must not prune on this node's account).
        let mut found_below = false;
        for &entry in &buf {
            let (v, pos) = self.resolve(u, entry);
            let owner = self.visited_by[v as usize];
            let child_fs = if owner != NO_VERTEX {
                conflict_class(u, owner)
            } else {
                self.m[u as usize] = v;
                self.mpos[u as usize] = pos;
                self.visited_by[v as usize] = u;
                let fs = if depth + 1 == n {
                    self.emit_match();
                    FULL
                } else {
                    self.recurse_fs(depth + 1)
                };
                self.visited_by[v as usize] = NO_VERTEX;
                fs
            };
            if child_fs == FULL {
                found_below = true;
            }
            if self.stopped.is_some() {
                acc = FULL;
                break;
            }
            if prunes_siblings(child_fs, u) {
                // The failure does not involve u: every sibling assignment
                // of u fails identically — prune the rest of LC.
                early = Some(child_fs);
                break;
            }
            acc |= child_fs;
        }
        self.m[u as usize] = NO_VERTEX;
        let empty_lc = buf.is_empty();
        self.lc_bufs[depth] = buf;
        if let Some(fs) = early {
            return if found_below { FULL } else { fs };
        }
        if empty_lc {
            return emptyset_class(u, &self.backward[u as usize]);
        }
        // Union rule: the node's failing set must also contain u and the
        // vertices that determined LC(u, M) — otherwise an ancestor could
        // remap one of them, change LC, and wrongly prune candidates this
        // node never explored. (DP-iso achieves the same with ancestor
        // closures; OR-ing the determiners in at every level accumulates
        // them transitively.)
        acc | emptyset_class(u, &self.backward[u as usize])
    }
}

/// For each query vertex `u`, the labels (with multiplicities) of its
/// *forward* neighbors under `order` — VF2++'s runtime requirement table.
fn forward_label_requirements(q: &Graph, order: &[VertexId]) -> Vec<Vec<(Label, u32)>> {
    let n = q.num_vertices();
    let mut rank = vec![usize::MAX; n];
    for (i, &u) in order.iter().enumerate() {
        rank[u as usize] = i;
    }
    let mut out = vec![Vec::new(); n];
    for &u in order {
        let mut labels: Vec<Label> = q
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&u2| rank[u2 as usize] > rank[u as usize])
            .map(|u2| q.label(u2))
            .collect();
        labels.sort_unstable();
        let mut req = Vec::new();
        let mut i = 0;
        while i < labels.len() {
            let l = labels[i];
            let mut c = 0u32;
            while i < labels.len() && labels[i] == l {
                c += 1;
                i += 1;
            }
            req.push((l, c));
        }
        out[u as usize] = req;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate_space::{CandidateSpace, SpaceCoverage};
    use crate::enumerate::{CollectSink, CountSink};
    use crate::fixtures::{paper_data, paper_match, paper_query};
    use crate::{DataContext, QueryContext};

    fn run_method(method: LcMethod, failing_sets: bool) -> (u64, Vec<Vec<VertexId>>) {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let order = vec![0, 1, 2, 3];
        let space = method.needs_space().then(|| {
            CandidateSpace::build(&q, &g, &cand, SpaceCoverage::AllEdges, false)
        });
        let parent = derive_parents(&q, &order, None);
        let config = MatchConfig {
            failing_sets,
            ..Default::default()
        };
        let input = EngineInput {
            q: &q,
            g: &g,
            candidates: &cand,
            space: space.as_ref(),
            order: &order,
            parent: &parent,
            method,
            config: &config,
            root_subset: None,
            shared: None,
        };
        let mut sink = CollectSink::default();
        let stats = enumerate(&input, &mut sink);
        (stats.matches, sink.matches)
    }

    #[test]
    fn all_methods_find_the_unique_match() {
        for method in [
            LcMethod::Direct,
            LcMethod::CandidateScan,
            LcMethod::TreeIndex,
            LcMethod::Intersect,
        ] {
            for fs in [false, true] {
                let (n, ms) = run_method(method, fs);
                assert_eq!(n, 1, "{method:?} fs={fs}");
                assert_eq!(ms, vec![paper_match()], "{method:?} fs={fs}");
            }
        }
    }

    #[test]
    fn intersect_kernels_agree() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let order = vec![0, 1, 2, 3];
        let parent = derive_parents(&q, &order, None);
        for kind in [
            IntersectKind::Merge,
            IntersectKind::Galloping,
            IntersectKind::Hybrid,
            IntersectKind::Bsr,
        ] {
            let space = CandidateSpace::build(
                &q,
                &g,
                &cand,
                SpaceCoverage::AllEdges,
                kind == IntersectKind::Bsr,
            );
            let config = MatchConfig {
                intersect: kind,
                ..Default::default()
            };
            let input = EngineInput {
                q: &q,
                g: &g,
                candidates: &cand,
                space: Some(&space),
                order: &order,
                parent: &parent,
                method: LcMethod::Intersect,
                config: &config,
                root_subset: None,
                shared: None,
            };
            let mut sink = CountSink;
            let stats = enumerate(&input, &mut sink);
            assert_eq!(stats.matches, 1, "{kind:?}");
            assert_eq!(stats.outcome, Outcome::Complete);
        }
    }

    #[test]
    fn match_cap_stops_early() {
        // Query: single A-B edge; fixture has several A-B edges.
        let q = sm_graph::builder::graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let order = vec![1u32, 0, 2];
        let parent = derive_parents(&q, &order, None);
        let config = MatchConfig {
            max_matches: Some(2),
            ..Default::default()
        };
        let input = EngineInput {
            q: &q,
            g: &g,
            candidates: &cand,
            space: None,
            order: &order,
            parent: &parent,
            method: LcMethod::CandidateScan,
            config: &config,
            root_subset: None,
            shared: None,
        };
        let mut sink = CountSink;
        let stats = enumerate(&input, &mut sink);
        assert_eq!(stats.matches, 2);
        assert_eq!(stats.outcome, Outcome::CapReached);
    }

    #[test]
    fn injectivity_enforced() {
        // Query: path B-A-B. Matches must not reuse a data vertex for both
        // B endpoints.
        let q = sm_graph::builder::graph_from_edges(&[1, 0, 1], &[(0, 1), (1, 2)]);
        let g = sm_graph::builder::graph_from_edges(&[0, 1], &[(0, 1)]);
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let order = vec![1u32, 0, 2];
        let parent = derive_parents(&q, &order, None);
        let config = MatchConfig::default();
        let input = EngineInput {
            q: &q,
            g: &g,
            candidates: &cand,
            space: None,
            order: &order,
            parent: &parent,
            method: LcMethod::Direct,
            config: &config,
            root_subset: None,
            shared: None,
        };
        let mut sink = CountSink;
        let stats = enumerate(&input, &mut sink);
        assert_eq!(stats.matches, 0);
    }

    #[test]
    fn vf2pp_rule_preserves_counts() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let order = vec![0u32, 1, 2, 3];
        let parent = derive_parents(&q, &order, None);
        for rule in [false, true] {
            let config = MatchConfig {
                vf2pp_rule: rule,
                ..Default::default()
            };
            let input = EngineInput {
                q: &q,
                g: &g,
                candidates: &cand,
                space: None,
                order: &order,
                parent: &parent,
                method: LcMethod::Direct,
                config: &config,
                root_subset: None,
                shared: None,
            };
            let mut sink = CountSink;
            let stats = enumerate(&input, &mut sink);
            assert_eq!(stats.matches, 1, "vf2pp_rule={rule}");
        }
    }

    #[test]
    fn forward_requirements_table() {
        let q = paper_query();
        let req = forward_label_requirements(&q, &[0, 1, 2, 3]);
        // u0's forward neighbors are u1 (B) and u2 (C).
        assert_eq!(req[0], vec![(1, 1), (2, 1)]);
        // u3 is last: no forward neighbors.
        assert!(req[3].is_empty());
    }

    #[test]
    fn derive_parents_prefers_tree_parent() {
        let q = paper_query();
        let tree = sm_graph::traversal::BfsTree::build(&q, 0);
        let order = vec![0u32, 1, 2, 3];
        let p = derive_parents(&q, &order, Some(&tree));
        assert_eq!(p[0], NO_VERTEX);
        assert_eq!(p[1], 0);
        assert_eq!(p[2], 0);
        assert_eq!(p[3], 1); // tree parent of u3 is u1
        // without the tree, earliest backward neighbor
        let p2 = derive_parents(&q, &order, None);
        assert_eq!(p2[3], 1);
    }
}
