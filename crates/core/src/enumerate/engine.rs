//! The static-order backtracking engine (paper Algorithm 1, lines 4–12)
//! with the four local-candidate computation methods of Algorithms 2–5 and
//! optional failing-set pruning.
//!
//! The engine is a pure *executor*: every order-derived table (backward
//! neighbors, pivot parents, VF2++ requirements) comes precompiled in the
//! [`QueryPlan`], and all per-run mutable state lives in a caller-owned
//! [`Scratch`] so repeated runs (morsels of a parallel execution) allocate
//! nothing in steady state.

use crate::enumerate::control::{RunControl, SharedControl};
use crate::enumerate::scratch::Scratch;
use crate::enumerate::{intersect_counter, EnumStats, Injectivity, LcMethod, MatchSink};
use crate::plan::QueryPlan;
use sm_graph::types::NO_VERTEX;
use sm_graph::{Graph, VertexId};
use sm_intersect::{intersect_buf, BsrSet, IntersectKind};
use sm_runtime::Counter;
use std::time::Instant;

/// One execution of a compiled plan against a data graph.
pub struct EngineInput<'a> {
    /// The compiled plan (order, parents, backward lists, candidates,
    /// space, config — everything run-invariant).
    pub plan: &'a QueryPlan,
    /// Data graph.
    pub g: &'a Graph,
    /// Restrict the first level to this subset of its local candidates
    /// (entries in the method's depth-0 convention). Used by
    /// [`crate::enumerate::parallel`] to partition the search across
    /// threads; `None` = full candidate set.
    pub root_subset: Option<&'a [u32]>,
    /// Cross-thread stop flag and global match counter for parallel runs.
    pub shared: Option<&'a SharedControl>,
}

/// Run the enumeration with a fresh scratch arena, streaming matches into
/// `sink`. One-shot callers use this; repeated callers (workers) keep a
/// [`Scratch`] and use [`enumerate_with`].
pub fn enumerate<S: MatchSink>(input: &EngineInput<'_>, sink: &mut S) -> EnumStats {
    let mut scratch = Scratch::new();
    enumerate_with(input, &mut scratch, sink)
}

/// Run the enumeration reusing `scratch` for all per-run mutable state.
/// When the scratch already has this run's shape (same query/data sizes,
/// as across morsels of one parallel run) no allocation happens.
pub fn enumerate_with<S: MatchSink>(
    input: &EngineInput<'_>,
    scratch: &mut Scratch,
    sink: &mut S,
) -> EnumStats {
    let started = Instant::now();
    let plan = input.plan;
    scratch.prepare(plan.num_query_vertices(), input.g.num_vertices());
    let sem = plan.config.semantics;
    let mut eng = Engine {
        plan,
        g: input.g,
        root_subset: input.root_subset,
        sc: scratch,
        ctl: RunControl::new(&plan.config, input.shared, started, TIME_CHECK_MASK),
        sink,
        inj: sem.injectivity,
        emit: sem.emits(),
    };
    if plan.config.failing_sets {
        eng.recurse_fs(0);
    } else {
        eng.recurse(0);
    }
    let ctl = eng.ctl;
    let mut stats = ctl.into_stats(started);
    stats.plan_build_ns = plan.plan_build_ns();
    stats.scratch_reuse = scratch.reuses();
    stats
}

use crate::enumerate::failing_sets::{conflict_class, emptyset_class, prunes_siblings, FULL};

/// Cancellation is polled every this many recursions.
const TIME_CHECK_MASK: u64 = 0x3FF;

struct Engine<'a, S: MatchSink> {
    plan: &'a QueryPlan,
    g: &'a Graph,
    root_subset: Option<&'a [u32]>,
    sc: &'a mut Scratch,
    ctl: RunControl<'a>,
    sink: &'a mut S,
    /// The plan's injectivity mode, copied out of the config once.
    inj: Injectivity,
    /// Whether matches are materialized into the sink (`false` for
    /// count-only runs: the tally rides [`RunControl::record_match`]'s
    /// accumulators, no embedding buffer is touched).
    emit: bool,
}

impl<'a, S: MatchSink> Engine<'a, S> {
    #[inline]
    fn emit_match(&mut self) {
        if self.ctl.record_match() && self.emit {
            self.sink.on_match(&self.sc.m);
        }
    }

    /// Injectivity check + bookkeeping for extending the embedding with
    /// `u → v`. Returns `false` (claiming nothing) when the extension is
    /// inadmissible under the plan's mode. Must be called before
    /// `m[u]` is written; every `true` return must be paired with a
    /// [`Engine::release`].
    #[inline]
    fn claim(&mut self, u: VertexId, v: VertexId) -> bool {
        let plan = self.plan;
        match self.inj {
            Injectivity::Isomorphism => {
                if self.sc.visited_by[v as usize] != NO_VERTEX {
                    return false;
                }
                self.sc.visited_by[v as usize] = u;
                true
            }
            Injectivity::Homomorphism => true,
            Injectivity::EdgeInjective => self.sc.claim_edges(plan.backward(u), v),
        }
    }

    /// Undo the bookkeeping of a successful [`Engine::claim`].
    #[inline]
    fn release(&mut self, u: VertexId, v: VertexId) {
        let plan = self.plan;
        match self.inj {
            Injectivity::Isomorphism => self.sc.visited_by[v as usize] = NO_VERTEX,
            Injectivity::Homomorphism => {}
            Injectivity::EdgeInjective => self.sc.release_edges(plan.backward(u).len()),
        }
    }

    /// Fill `lc_bufs[depth]` for query vertex `u`. Entries are *positions*
    /// into `C(u)` for TreeIndex/Intersect, *data vertex ids* otherwise.
    fn compute_lc(&mut self, depth: usize, u: VertexId) {
        let mut buf = std::mem::take(&mut self.sc.lc_bufs[depth]);
        buf.clear();
        // Copy the plan reference out so its slices borrow for 'a, not for
        // the duration of the &mut self borrow.
        let plan = self.plan;
        if depth == 0 {
            if let Some(sub) = self.root_subset {
                // Parallel partition: the caller pre-split the depth-0
                // candidates (in this method's entry convention).
                buf.extend_from_slice(sub);
                self.sc.lc_bufs[depth] = buf;
                return;
            }
        }
        let c_u = plan.candidates.get(u);
        let bw = plan.backward(u);
        match plan.method {
            LcMethod::Direct => {
                let parent = plan.parents()[u as usize];
                if depth == 0 || parent == NO_VERTEX {
                    buf.extend_from_slice(c_u);
                } else {
                    let g = self.g;
                    let q = plan.query();
                    let (lu, du) = (q.label(u), q.degree(u));
                    let vp = self.sc.m[parent as usize];
                    'cand: for &v in g.neighbors(vp) {
                        if g.label(v) != lu || g.degree(v) < du {
                            continue;
                        }
                        for &ub in bw {
                            if ub != parent && !g.has_edge(v, self.sc.m[ub as usize]) {
                                continue 'cand;
                            }
                        }
                        if plan.config.vf2pp_rule && !self.vf2pp_pass(u, v) {
                            continue;
                        }
                        buf.push(v);
                    }
                }
            }
            LcMethod::CandidateScan => {
                let g = self.g;
                'scan: for &v in c_u {
                    for &ub in bw {
                        if !g.has_edge(v, self.sc.m[ub as usize]) {
                            continue 'scan;
                        }
                    }
                    buf.push(v);
                }
            }
            LcMethod::TreeIndex => {
                let parent = plan.parents()[u as usize];
                if depth == 0 || parent == NO_VERTEX {
                    buf.extend(0..c_u.len() as u32);
                } else {
                    let space = plan.space.as_ref().expect("TreeIndex needs space");
                    let g = self.g;
                    let list = space.neighbors(parent, self.sc.mpos[parent as usize] as usize, u);
                    // Served from the prebuilt tree-edge list: no
                    // intersection, no scan of C(u).
                    self.ctl.counters.bump(Counter::LcCacheHits);
                    'tree: for &pos in list {
                        let v = c_u[pos as usize];
                        for &ub in bw {
                            if ub != parent && !g.has_edge(v, self.sc.m[ub as usize]) {
                                continue 'tree;
                            }
                        }
                        buf.push(pos);
                    }
                }
            }
            LcMethod::Intersect => {
                if depth == 0 || bw.is_empty() {
                    buf.extend(0..c_u.len() as u32);
                } else {
                    let space = plan.space.as_ref().expect("Intersect needs space");
                    if plan.config.intersect == IntersectKind::Bsr {
                        self.intersect_bsr(depth, u, &mut buf);
                    } else {
                        // Gather the A lists of all backward neighbors,
                        // smallest first so the fold stays near the lower
                        // bound the paper's cost model gives.
                        let mut lists: Vec<&[u32]> = bw
                            .iter()
                            .map(|&ub| space.neighbors(ub, self.sc.mpos[ub as usize] as usize, u))
                            .collect();
                        lists.sort_by_key(|l| l.len());
                        if lists.len() == 1 {
                            // One backward neighbor: LC is its A list as-is.
                            self.ctl.counters.bump(Counter::LcCacheHits);
                            buf.extend_from_slice(lists[0]);
                        } else {
                            let kind = plan.config.intersect;
                            let ctr = intersect_counter(kind);
                            let mut tmp = std::mem::take(&mut self.sc.tmp_bufs[depth]);
                            intersect_buf(kind, lists[0], lists[1], &mut buf);
                            self.ctl.counters.bump(ctr);
                            for l in &lists[2..] {
                                if buf.is_empty() {
                                    break;
                                }
                                tmp.clear();
                                intersect_buf(kind, &buf, l, &mut tmp);
                                self.ctl.counters.bump(ctr);
                                std::mem::swap(&mut buf, &mut tmp);
                            }
                            self.sc.tmp_bufs[depth] = tmp;
                        }
                    }
                }
            }
        }
        self.sc.lc_bufs[depth] = buf;
    }

    /// BSR-flavored intersection of the backward A lists.
    fn intersect_bsr(&mut self, depth: usize, u: VertexId, buf: &mut Vec<u32>) {
        let plan = self.plan;
        let space = plan.space.as_ref().expect("Intersect needs space");
        let bw = plan.backward(u);
        let mut sets: Vec<&BsrSet> = bw
            .iter()
            .map(|&ub| {
                space
                    .bsr_neighbors(ub, self.sc.mpos[ub as usize] as usize, u)
                    .expect("space built without BSR encodings")
            })
            .collect();
        sets.sort_by_key(|s| s.len());
        if sets.len() == 1 {
            self.ctl.counters.bump(Counter::LcCacheHits);
            sets[0].decode_into(buf);
            return;
        }
        let mut a = std::mem::take(&mut self.sc.bsr_a[depth]);
        let mut b = std::mem::take(&mut self.sc.bsr_b[depth]);
        sets[0].intersect_into(sets[1], &mut a);
        self.ctl.counters.bump(Counter::IntersectQfilter);
        for s in &sets[2..] {
            if a.is_empty() {
                break;
            }
            a.intersect_into(s, &mut b);
            self.ctl.counters.bump(Counter::IntersectQfilter);
            std::mem::swap(&mut a, &mut b);
        }
        a.decode_into(buf);
        self.sc.bsr_a[depth] = a;
        self.sc.bsr_b[depth] = b;
    }

    /// VF2++'s runtime rule: for every label `l` among u's *forward*
    /// neighbors, `v` must still have enough unmatched neighbors labeled
    /// `l`.
    fn vf2pp_pass(&self, u: VertexId, v: VertexId) -> bool {
        let req = self.plan.vf2pp_req(u);
        if req.is_empty() {
            return true;
        }
        let g = self.g;
        for &(l, need) in req {
            let mut have = 0u32;
            for &w in g.neighbors(v) {
                if g.label(w) == l && self.sc.visited_by[w as usize] == NO_VERTEX {
                    have += 1;
                    if have >= need {
                        break;
                    }
                }
            }
            if have < need {
                return false;
            }
        }
        true
    }

    /// Resolve an LC entry to `(data vertex, position)` per the method's
    /// buffer convention. Position is meaningful only for space methods.
    #[inline]
    fn resolve(&self, u: VertexId, entry: u32) -> (VertexId, u32) {
        match self.plan.method {
            LcMethod::TreeIndex | LcMethod::Intersect => {
                (self.plan.candidates.get(u)[entry as usize], entry)
            }
            _ => (entry, 0),
        }
    }

    /// Plain recursion (no failing sets).
    fn recurse(&mut self, depth: usize) {
        self.ctl.tick();
        if self.ctl.is_stopped() {
            return;
        }
        let n = self.plan.num_query_vertices();
        let u = self.plan.order()[depth];
        self.compute_lc(depth, u);
        let buf = std::mem::take(&mut self.sc.lc_bufs[depth]);
        for &entry in &buf {
            let (v, pos) = self.resolve(u, entry);
            if !self.claim(u, v) {
                continue;
            }
            self.sc.m[u as usize] = v;
            self.sc.mpos[u as usize] = pos;
            self.ctl
                .counters
                .record_max(Counter::PeakDepth, depth as u64 + 1);
            if depth + 1 == n {
                self.emit_match();
            } else {
                self.recurse(depth + 1);
            }
            self.release(u, v);
            self.ctl.counters.bump(Counter::Backtracks);
            if self.ctl.is_stopped() {
                break;
            }
        }
        self.sc.m[u as usize] = NO_VERTEX;
        self.sc.lc_bufs[depth] = buf;
    }

    /// Failing-set recursion: returns the failing set of this subtree as a
    /// bitset over query vertices ([`FULL`] = contains a match / cannot
    /// prune).
    fn recurse_fs(&mut self, depth: usize) -> u64 {
        self.ctl.tick();
        if self.ctl.is_stopped() {
            return FULL;
        }
        let n = self.plan.num_query_vertices();
        let u = self.plan.order()[depth];
        self.compute_lc(depth, u);
        let buf = std::mem::take(&mut self.sc.lc_bufs[depth]);
        let mut acc: u64 = 0;
        let mut early: Option<u64> = None;
        // Whether any sibling's subtree contained a match: the node's
        // failing set must then be FULL even if a later sibling licenses
        // skipping the rest (skipping is sound — the skipped subtrees hold
        // no matches — but ancestors must not prune on this node's account).
        let mut found_below = false;
        for &entry in &buf {
            let (v, pos) = self.resolve(u, entry);
            let owner = self.sc.visited_by[v as usize];
            let child_fs = if owner != NO_VERTEX {
                conflict_class(u, owner)
            } else {
                self.sc.m[u as usize] = v;
                self.sc.mpos[u as usize] = pos;
                self.sc.visited_by[v as usize] = u;
                self.ctl
                    .counters
                    .record_max(Counter::PeakDepth, depth as u64 + 1);
                let fs = if depth + 1 == n {
                    self.emit_match();
                    FULL
                } else {
                    self.recurse_fs(depth + 1)
                };
                self.sc.visited_by[v as usize] = NO_VERTEX;
                self.ctl.counters.bump(Counter::Backtracks);
                fs
            };
            if child_fs == FULL {
                found_below = true;
            }
            if self.ctl.is_stopped() {
                acc = FULL;
                break;
            }
            if prunes_siblings(child_fs, u) {
                // The failure does not involve u: every sibling assignment
                // of u fails identically — prune the rest of LC.
                early = Some(child_fs);
                break;
            }
            acc |= child_fs;
        }
        self.sc.m[u as usize] = NO_VERTEX;
        let empty_lc = buf.is_empty();
        self.sc.lc_bufs[depth] = buf;
        if let Some(fs) = early {
            return if found_below { FULL } else { fs };
        }
        if empty_lc {
            return emptyset_class(u, self.plan.backward(u));
        }
        // Union rule: the node's failing set must also contain u and the
        // vertices that determined LC(u, M) — otherwise an ancestor could
        // remap one of them, change LC, and wrongly prune candidates this
        // node never explored. (DP-iso achieves the same with ancestor
        // closures; OR-ing the determiners in at every level accumulates
        // them transitively.)
        acc | emptyset_class(u, self.plan.backward(u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate_space::{CandidateSpace, SpaceCoverage};
    use crate::enumerate::{CollectSink, CountSink, MatchConfig, Outcome};
    use crate::fixtures::{paper_data, paper_match, paper_query};
    use crate::{DataContext, QueryContext};

    fn paper_plan(method: LcMethod, config: MatchConfig) -> (QueryPlan, Graph) {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let space = (method.needs_space() || config.intersect == IntersectKind::Bsr).then(|| {
            CandidateSpace::build(
                &q,
                &g,
                &cand,
                SpaceCoverage::AllEdges,
                config.intersect == IntersectKind::Bsr,
            )
        });
        let plan = QueryPlan::assemble(
            &q,
            cand,
            vec![0, 1, 2, 3],
            None,
            space,
            method,
            config,
            false,
        );
        (plan, g)
    }

    fn run_method(method: LcMethod, failing_sets: bool) -> (u64, Vec<Vec<VertexId>>) {
        let config = MatchConfig {
            failing_sets,
            ..Default::default()
        };
        let (plan, g) = paper_plan(method, config);
        let input = EngineInput {
            plan: &plan,
            g: &g,
            root_subset: None,
            shared: None,
        };
        let mut sink = CollectSink::default();
        let stats = enumerate(&input, &mut sink);
        (stats.matches, sink.matches)
    }

    #[test]
    fn all_methods_find_the_unique_match() {
        for method in [
            LcMethod::Direct,
            LcMethod::CandidateScan,
            LcMethod::TreeIndex,
            LcMethod::Intersect,
        ] {
            for fs in [false, true] {
                let (n, ms) = run_method(method, fs);
                assert_eq!(n, 1, "{method:?} fs={fs}");
                assert_eq!(ms, vec![paper_match()], "{method:?} fs={fs}");
            }
        }
    }

    #[test]
    fn intersect_kernels_agree() {
        for kind in [
            IntersectKind::Merge,
            IntersectKind::Galloping,
            IntersectKind::Hybrid,
            IntersectKind::Bsr,
        ] {
            let config = MatchConfig {
                intersect: kind,
                ..Default::default()
            };
            let (plan, g) = paper_plan(LcMethod::Intersect, config);
            let input = EngineInput {
                plan: &plan,
                g: &g,
                root_subset: None,
                shared: None,
            };
            let mut sink = CountSink;
            let stats = enumerate(&input, &mut sink);
            assert_eq!(stats.matches, 1, "{kind:?}");
            assert_eq!(stats.outcome, Outcome::Complete);
        }
    }

    #[test]
    fn match_cap_stops_early() {
        // Query: single A-B edge; fixture has several A-B edges.
        let q = sm_graph::builder::graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let config = MatchConfig {
            max_matches: Some(2),
            ..Default::default()
        };
        let plan = QueryPlan::assemble(
            &q,
            cand,
            vec![1, 0, 2],
            None,
            None,
            LcMethod::CandidateScan,
            config,
            false,
        );
        let input = EngineInput {
            plan: &plan,
            g: &g,
            root_subset: None,
            shared: None,
        };
        let mut sink = CountSink;
        let stats = enumerate(&input, &mut sink);
        assert_eq!(stats.matches, 2);
        assert_eq!(stats.outcome, Outcome::CapReached);
    }

    #[test]
    fn injectivity_enforced() {
        // Query: path B-A-B. Matches must not reuse a data vertex for both
        // B endpoints.
        let q = sm_graph::builder::graph_from_edges(&[1, 0, 1], &[(0, 1), (1, 2)]);
        let g = sm_graph::builder::graph_from_edges(&[0, 1], &[(0, 1)]);
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let plan = QueryPlan::assemble(
            &q,
            cand,
            vec![1, 0, 2],
            None,
            None,
            LcMethod::Direct,
            MatchConfig::default(),
            false,
        );
        let input = EngineInput {
            plan: &plan,
            g: &g,
            root_subset: None,
            shared: None,
        };
        let mut sink = CountSink;
        let stats = enumerate(&input, &mut sink);
        assert_eq!(stats.matches, 0);
    }

    #[test]
    fn vf2pp_rule_preserves_counts() {
        for rule in [false, true] {
            let config = MatchConfig {
                vf2pp_rule: rule,
                ..Default::default()
            };
            let (plan, g) = paper_plan(LcMethod::Direct, config);
            let input = EngineInput {
                plan: &plan,
                g: &g,
                root_subset: None,
                shared: None,
            };
            let mut sink = CountSink;
            let stats = enumerate(&input, &mut sink);
            assert_eq!(stats.matches, 1, "vf2pp_rule={rule}");
        }
    }

    #[test]
    fn scratch_reuse_across_runs() {
        let (plan, g) = paper_plan(LcMethod::Intersect, MatchConfig::default());
        let input = EngineInput {
            plan: &plan,
            g: &g,
            root_subset: None,
            shared: None,
        };
        let mut scratch = Scratch::new();
        let mut sink = CountSink;
        for expected_reuses in [0u64, 1, 2] {
            let stats = enumerate_with(&input, &mut scratch, &mut sink);
            assert_eq!(stats.matches, 1);
            assert_eq!(scratch.reuses(), expected_reuses);
        }
    }
}
