//! Ullmann's algorithm (JACM 1976) — the original backtracking subgraph
//! isomorphism algorithm (paper Table 1), kept as a historical baseline.
//!
//! Ullmann maintains a boolean candidate matrix `M[u][v]` and, before each
//! extension, **refines** it: `M[u][v]` stays set only while every
//! neighbor `u'` of `u` still has some candidate `v' ∈ N(v)` with
//! `M[u'][v']` set — the 1976 ancestor of the paper's Filtering Rule 3.1,
//! applied at every search node rather than once up front.

use crate::enumerate::control::RunControl;
use crate::enumerate::{EnumStats, MatchConfig, MatchSink};
use crate::util::Bitmap;
use sm_graph::types::NO_VERTEX;
use sm_graph::{Graph, VertexId};
use sm_runtime::Counter;
use std::time::Instant;

/// Cancellation is polled every this many recursions (Ullmann's nodes are
/// expensive — refinement per node — so the poll interval is short).
const TIME_CHECK_MASK: u64 = 0xFF;

/// Run Ullmann's algorithm, streaming matches into `sink`.
///
/// ```
/// use sm_graph::builder::graph_from_edges;
/// use sm_match::enumerate::{CountSink, MatchConfig};
///
/// let tri = graph_from_edges(&[0; 3], &[(0, 1), (1, 2), (0, 2)]);
/// let mut sink = CountSink;
/// let stats = sm_match::ullmann::ullmann_match(&tri, &tri, &MatchConfig::find_all(), &mut sink);
/// assert_eq!(stats.matches, 6); // the triangle's automorphisms
/// ```
pub fn ullmann_match<S: MatchSink>(
    q: &Graph,
    g: &Graph,
    config: &MatchConfig,
    sink: &mut S,
) -> EnumStats {
    let started = Instant::now();
    let nq = q.num_vertices();
    let ng = g.num_vertices();
    // Initial matrix from label + degree.
    let mut matrix: Vec<Bitmap> = (0..nq as VertexId)
        .map(|u| {
            let mut row = Bitmap::new(ng);
            for &v in g.vertices_with_label(q.label(u)) {
                if g.degree(v) >= q.degree(u) {
                    row.set(v);
                }
            }
            row
        })
        .collect();
    let trace = config.trace.clone();
    let span = trace.is_enabled().then(|| trace.span("execute"));
    let mut st = UllmannState {
        q,
        g,
        m: vec![NO_VERTEX; nq],
        g_used: vec![false; ng],
        ctl: RunControl::new(config, None, started, TIME_CHECK_MASK),
        sink,
    };
    if st.refine(&mut matrix) {
        st.recurse(0, &matrix);
    }
    let stats = st.ctl.into_stats(started);
    trace.flush_counters(0, &stats.counters);
    drop(span);
    stats
}

struct UllmannState<'a, S: MatchSink> {
    q: &'a Graph,
    g: &'a Graph,
    m: Vec<VertexId>,
    g_used: Vec<bool>,
    ctl: RunControl<'a>,
    sink: &'a mut S,
}

impl<S: MatchSink> UllmannState<'_, S> {
    /// Ullmann's refinement to fixpoint. Returns false if a row empties.
    fn refine(&self, matrix: &mut [Bitmap]) -> bool {
        let nq = self.q.num_vertices();
        let ng = self.g.num_vertices() as VertexId;
        loop {
            let mut changed = false;
            for u in 0..nq as VertexId {
                let mut any = false;
                for v in 0..ng {
                    if !matrix[u as usize].get(v) {
                        continue;
                    }
                    let ok = self.q.neighbors(u).iter().all(|&u2| {
                        self.g
                            .neighbors(v)
                            .iter()
                            .any(|&v2| matrix[u2 as usize].get(v2))
                    });
                    if ok {
                        any = true;
                    } else {
                        matrix[u as usize].unset(v);
                        changed = true;
                    }
                }
                if !any {
                    return false;
                }
            }
            if !changed {
                return true;
            }
        }
    }

    fn recurse(&mut self, depth: usize, matrix: &[Bitmap]) {
        self.ctl.tick();
        if self.ctl.is_stopped() {
            return;
        }
        let nq = self.q.num_vertices();
        if depth == nq {
            if self.ctl.record_match() {
                self.sink.on_match(&self.m);
            }
            return;
        }
        let u = depth as VertexId; // Ullmann uses the natural row order
        for v in 0..self.g.num_vertices() as VertexId {
            if self.ctl.is_stopped() {
                return;
            }
            if self.g_used[v as usize] || !matrix[u as usize].get(v) {
                continue;
            }
            // Copy the matrix, pin (u, v), and refine — Ullmann's costly
            // but powerful per-node pruning.
            let mut next: Vec<Bitmap> = matrix.to_vec();
            let mut pinned = Bitmap::new(self.g.num_vertices());
            pinned.set(v);
            next[u as usize] = pinned;
            for row in next.iter_mut().skip(depth + 1) {
                row.unset(v);
            }
            if self.refine(&mut next) {
                self.m[u as usize] = v;
                self.g_used[v as usize] = true;
                self.ctl
                    .counters
                    .record_max(Counter::PeakDepth, depth as u64 + 1);
                self.recurse(depth + 1, &next);
                self.g_used[v as usize] = false;
                self.m[u as usize] = NO_VERTEX;
                self.ctl.counters.bump(Counter::Backtracks);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{CollectSink, CountSink};
    use crate::fixtures::{paper_data, paper_match, paper_query};
    use crate::reference::brute_force_count;
    use sm_graph::builder::graph_from_edges;

    fn count(q: &Graph, g: &Graph) -> u64 {
        let mut sink = CountSink;
        ullmann_match(q, g, &MatchConfig::find_all(), &mut sink).matches
    }

    #[test]
    fn fixture_match() {
        let q = paper_query();
        let g = paper_data();
        let mut sink = CollectSink::default();
        let stats = ullmann_match(&q, &g, &MatchConfig::find_all(), &mut sink);
        assert_eq!(stats.matches, 1);
        assert_eq!(sink.matches, vec![paper_match()]);
    }

    #[test]
    fn agrees_with_brute_force() {
        let tri = graph_from_edges(&[0; 3], &[(0, 1), (1, 2), (0, 2)]);
        let k4 = graph_from_edges(&[0; 4], &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(count(&tri, &k4), brute_force_count(&tri, &k4, None));
        let star = graph_from_edges(&[0, 1, 1], &[(0, 1), (0, 2)]);
        let g = graph_from_edges(&[0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        assert_eq!(count(&star, &g), brute_force_count(&star, &g, None));
    }

    #[test]
    fn refinement_prunes_before_search() {
        // Query star needs a center with two leaves; data is a single
        // edge: the initial refinement must empty a row immediately.
        let star = graph_from_edges(&[0, 1, 1], &[(0, 1), (0, 2)]);
        let edge = graph_from_edges(&[0, 1], &[(0, 1)]);
        let mut sink = CountSink;
        let stats = ullmann_match(&star, &edge, &MatchConfig::find_all(), &mut sink);
        assert_eq!(stats.matches, 0);
        assert_eq!(stats.recursions, 0, "refinement should kill it pre-search");
    }

    #[test]
    fn no_match_on_label_mismatch() {
        let q = graph_from_edges(&[9, 9], &[(0, 1)]);
        let g = graph_from_edges(&[0, 0], &[(0, 1)]);
        assert_eq!(count(&q, &g), 0);
    }
}
