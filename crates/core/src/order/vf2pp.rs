//! VF2++'s ordering (Jüttner & Madarasi, Discrete Applied Mathematics
//! 2018): root at the query vertex whose label is rarest in `G` (largest
//! degree on ties), then a BFS tree processed depth by depth; within a
//! depth, repeatedly take the vertex with the most already-ordered
//! neighbors, breaking ties by larger degree, then rarer label.

use crate::order::OrderInput;
use sm_graph::traversal::BfsTree;
use sm_graph::VertexId;

/// Compute VF2++'s matching order.
pub fn vf2pp_order(input: &OrderInput<'_>) -> Vec<VertexId> {
    let q = input.q.graph;
    let g = input.g.graph;
    let n = q.num_vertices();
    let root = q
        .vertices()
        .min_by_key(|&u| {
            (
                g.label_frequency(q.label(u)),
                std::cmp::Reverse(q.degree(u)),
                u,
            )
        })
        .expect("non-empty query");
    let tree = BfsTree::build(q, root);
    let mut order = Vec::with_capacity(n);
    let mut in_order = vec![false; n];
    for depth in 0..=tree.max_depth() {
        let mut level = tree.vertices_at_depth(depth);
        while !level.is_empty() {
            let (idx, _) = level
                .iter()
                .enumerate()
                .max_by_key(|&(_, &u)| {
                    let backward = q
                        .neighbors(u)
                        .iter()
                        .filter(|&&u2| in_order[u2 as usize])
                        .count();
                    (
                        backward,
                        q.degree(u),
                        std::cmp::Reverse(g.label_frequency(q.label(u))),
                        std::cmp::Reverse(u),
                    )
                })
                .expect("non-empty level");
            let u = level.swap_remove(idx);
            in_order[u as usize] = true;
            order.push(u);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_data, paper_query};
    use crate::order::{is_connected_order, OrderInput};
    use crate::{DataContext, QueryContext};

    #[test]
    fn order_is_connected_and_level_wise() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let input = OrderInput {
            q: &qc,
            g: &gc,
            candidates: &cand,
            bfs_tree: None,
            space: None,
        };
        let order = vf2pp_order(&input);
        assert!(is_connected_order(&q, &order));
    }

    #[test]
    fn root_has_rarest_label() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let input = OrderInput {
            q: &qc,
            g: &gc,
            candidates: &cand,
            bfs_tree: None,
            space: None,
        };
        let order = vf2pp_order(&input);
        let min_freq = q
            .vertices()
            .map(|u| g.label_frequency(q.label(u)))
            .min()
            .unwrap();
        assert_eq!(g.label_frequency(q.label(order[0])), min_freq);
    }
}
