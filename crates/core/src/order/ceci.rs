//! CECI's ordering: the BFS traversal order of `q` rooted at
//! `argmin |C(u)| / d(u)`.

use crate::order::OrderInput;
use sm_graph::traversal::BfsTree;
use sm_graph::VertexId;

/// CECI's matching order.
pub fn ceci_order(input: &OrderInput<'_>) -> Vec<VertexId> {
    // Reuse the filter's BFS tree when available (its root was selected by
    // the same rule); otherwise compute one.
    if let Some(tree) = input.bfs_tree {
        return tree.order.clone();
    }
    bfs_delta_order(input)
}

/// The BFS order `δ` from the `argmin |C(u)|/d(u)` root — also the static
/// spine of DP-iso's adaptive ordering.
pub fn bfs_delta_order(input: &OrderInput<'_>) -> Vec<VertexId> {
    if let Some(tree) = input.bfs_tree {
        return tree.order.clone();
    }
    let q = input.q.graph;
    let root = q
        .vertices()
        .map(|u| {
            let score = input.candidates.get(u).len() as f64 / q.degree(u).max(1) as f64;
            (score, u)
        })
        .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)))
        .map(|(_, u)| u)
        .expect("non-empty query");
    BfsTree::build(q, root).order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_data, paper_query};
    use crate::order::{is_connected_order, OrderInput};
    use crate::{DataContext, QueryContext};

    #[test]
    fn bfs_order_is_connected() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::nlf::nlf_candidates(&qc, &gc);
        let input = OrderInput {
            q: &qc,
            g: &gc,
            candidates: &cand,
            bfs_tree: None,
            space: None,
        };
        let order = ceci_order(&input);
        assert!(is_connected_order(&q, &order));
    }

    #[test]
    fn reuses_filter_tree() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let (cand, tree) = crate::filter::ceci::ceci_candidates(&qc, &gc);
        let input = OrderInput {
            q: &qc,
            g: &gc,
            candidates: &cand,
            bfs_tree: Some(&tree),
            space: None,
        };
        assert_eq!(ceci_order(&input), tree.order);
    }
}
