//! CFL's path-based ordering (Bi et al., SIGMOD 2016).
//!
//! The BFS tree's root-to-leaf paths are ranked by the estimated number of
//! path embeddings `c(P)` in the auxiliary structure, computed by dynamic
//! programming over candidate adjacency. The first path minimizes
//! `c(P) / |NT(P)|` (favoring paths touching many non-tree edges); each
//! following path minimizes `c(P^u) / |C(u)|` where `u` is its connection
//! vertex to the current order.
//!
//! Section 5.3 of the study attributes CFL's unsolved queries to exactly
//! this design: edges *between* paths get low priority in the estimates.

use crate::order::OrderInput;
use sm_graph::traversal::BfsTree;
use sm_graph::VertexId;
use std::collections::HashMap;

/// Compute CFL's matching order.
pub fn cfl_order(input: &OrderInput<'_>) -> Vec<VertexId> {
    let q = input.q.graph;
    let n = q.num_vertices();
    if n == 1 {
        return vec![0];
    }
    // Reuse the filter's tree; fall back to CFL's root rule.
    let owned_tree;
    let tree: &BfsTree = match input.bfs_tree {
        Some(t) => t,
        None => {
            let root = crate::filter::cfl::select_cfl_root(input.q, input.g);
            owned_tree = BfsTree::build(q, root);
            &owned_tree
        }
    };
    let paths = tree.root_to_leaf_paths();
    let non_tree: Vec<(VertexId, VertexId)> = tree.non_tree_edges(q);

    // Per-path suffix embedding estimates via DP over candidate adjacency.
    let path_sums: Vec<Vec<f64>> = paths
        .iter()
        .map(|p| suffix_embedding_counts(input, p))
        .collect();

    let nt_count = |p: &[VertexId]| -> usize {
        non_tree
            .iter()
            .filter(|&&(a, b)| p.contains(&a) || p.contains(&b))
            .count()
    };

    let mut remaining: Vec<usize> = (0..paths.len()).collect();
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut in_order = vec![false; n];

    // First path: min c(P) / |NT(P)|.
    let first = remaining
        .iter()
        .copied()
        .min_by(|&a, &b| {
            let sa = path_sums[a][0] / nt_count(&paths[a]).max(1) as f64;
            let sb = path_sums[b][0] / nt_count(&paths[b]).max(1) as f64;
            sa.partial_cmp(&sb).unwrap().then(paths[a].cmp(&paths[b]))
        })
        .expect("tree has at least one path");
    for &u in &paths[first] {
        if !in_order[u as usize] {
            in_order[u as usize] = true;
            order.push(u);
        }
    }
    remaining.retain(|&i| i != first);

    // Remaining paths: min c(P^u) / |C(u)| at the connection vertex u.
    while !remaining.is_empty() {
        let (pick, _) = remaining
            .iter()
            .copied()
            .map(|i| {
                let p = &paths[i];
                // Connection vertex: deepest vertex of P already ordered
                // (paths share the root, so this always exists).
                let j = p
                    .iter()
                    .rposition(|&u| in_order[u as usize])
                    .expect("paths share the root");
                let u = p[j];
                let score = path_sums[i][j] / input.candidates.get(u).len().max(1) as f64;
                (i, score)
            })
            .min_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap()
                    .then(paths[a.0].cmp(&paths[b.0]))
            })
            .expect("non-empty remaining");
        for &u in &paths[pick] {
            if !in_order[u as usize] {
                in_order[u as usize] = true;
                order.push(u);
            }
        }
        remaining.retain(|&i| i != pick);
    }
    order
}

/// `sums[j] = Σ_{v ∈ C(p_j)} W_j(v)` where `W_j(v)` counts embeddings of
/// the path suffix `p_j..` starting at `v`, following candidate adjacency.
fn suffix_embedding_counts(input: &OrderInput<'_>, path: &[VertexId]) -> Vec<f64> {
    let g = input.g.graph;
    let c = input.candidates;
    let k = path.len();
    let mut sums = vec![0.0; k];
    // weights for level j+1, keyed by data vertex
    let mut next: HashMap<VertexId, f64> = HashMap::new();
    for (j, &u) in path.iter().enumerate().rev() {
        let mut cur: HashMap<VertexId, f64> = HashMap::with_capacity(c.get(u).len());
        if j + 1 == k {
            for &v in c.get(u) {
                cur.insert(v, 1.0);
            }
        } else {
            for &v in c.get(u) {
                let mut w = 0.0;
                for &nb in g.neighbors(v) {
                    if let Some(&wn) = next.get(&nb) {
                        w += wn;
                    }
                }
                if w > 0.0 {
                    cur.insert(v, w);
                }
            }
        }
        sums[j] = cur.values().sum();
        next = cur;
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_data, paper_query};
    use crate::order::{is_connected_order, OrderInput};
    use crate::{DataContext, QueryContext};

    #[test]
    fn order_is_connected() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let (cand, tree) = crate::filter::cfl::cfl_candidates(&qc, &gc);
        let input = OrderInput {
            q: &qc,
            g: &gc,
            candidates: &cand,
            bfs_tree: Some(&tree),
            space: None,
        };
        let order = cfl_order(&input);
        assert!(is_connected_order(&q, &order), "{order:?}");
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn suffix_counts_on_path_query() {
        // Query path u0-u1; candidates u0:{v0}, u1:{v4, v6}? Use fixture
        // candidates: count embeddings of an A-B path.
        let q = sm_graph::builder::graph_from_edges(&[0, 1], &[(0, 1)]);
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let input = OrderInput {
            q: &qc,
            g: &gc,
            candidates: &cand,
            bfs_tree: None,
            space: None,
        };
        let sums = suffix_embedding_counts(&input, &[0, 1]);
        // C(u0) = {v0} (only A vertex with degree >= 1 adjacent to B... LDF
        // keeps all A vertices with degree >= 1); each contributes its
        // B-neighbor count. Just sanity: leaf level counts candidates.
        assert_eq!(sums[1], cand.get(1).len() as f64);
        assert!(sums[0] >= 1.0);
    }

    #[test]
    fn works_without_prebuilt_tree() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::nlf::nlf_candidates(&qc, &gc);
        let input = OrderInput {
            q: &qc,
            g: &gc,
            candidates: &cand,
            bfs_tree: None,
            space: None,
        };
        let order = cfl_order(&input);
        assert!(is_connected_order(&q, &order));
    }
}
