//! Ordering methods (Section 3.2 of the paper): pick the matching order
//! `φ`, a permutation of `V(q)`.
//!
//! | Method | Strategy |
//! |---|---|
//! | [`OrderKind::QuickSi`] | infrequent-edge first over label statistics of `G` |
//! | [`OrderKind::GraphQl`] | left-deep join: greedy min `\|C(u)\|` over the connected frontier |
//! | [`OrderKind::Cfl`] | path-based: BFS-tree root-to-leaf paths ranked by estimated embedding counts |
//! | [`OrderKind::Ceci`] | the BFS traversal order itself |
//! | [`OrderKind::Ri`] | structure-only greedy maximizing backward neighbors, with RI's tie-breakers |
//! | [`OrderKind::Vf2pp`] | BFS level order, within levels max backward neighbors / degree / label rarity |
//! | [`OrderKind::Adaptive`] | DP-iso: vertex chosen at runtime (engine-side); the static part is the BFS order `δ` that fixes the DAG |
//! | [`OrderKind::Fixed`] | externally supplied order (spectrum analysis) |
//!
//! Every produced order is **connected**: each vertex after the first has
//! at least one backward neighbor. The engines rely on this to bound local
//! candidates.

pub mod ceci;
pub mod cfl;
pub mod gql;
pub mod qsi;
pub mod random;
pub mod ri;
pub mod vf2pp;

use crate::candidate_space::CandidateSpace;
use crate::candidates::Candidates;
use crate::context::{DataContext, QueryContext};
use sm_graph::traversal::BfsTree;
use sm_graph::types::NO_VERTEX;
use sm_graph::VertexId;

/// Which ordering method to run.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum OrderKind {
    /// QuickSI's infrequent-edge-first order.
    QuickSi,
    /// GraphQL's left-deep join (min candidate count) order.
    GraphQl,
    /// CFL's path-based order.
    Cfl,
    /// CECI's BFS order.
    Ceci,
    /// RI's structure-only greedy order.
    Ri,
    /// VF2++'s BFS-level order.
    Vf2pp,
    /// DP-iso's adaptive runtime ordering (static part: BFS order `δ`).
    Adaptive,
    /// An externally supplied matching order (spectrum analysis).
    Fixed(Vec<VertexId>),
}

impl OrderKind {
    /// Stable display name (paper abbreviations).
    pub fn name(&self) -> &'static str {
        match self {
            OrderKind::QuickSi => "QSI",
            OrderKind::GraphQl => "GQL",
            OrderKind::Cfl => "CFL",
            OrderKind::Ceci => "CECI",
            OrderKind::Ri => "RI",
            OrderKind::Vf2pp => "VF2PP",
            OrderKind::Adaptive => "DP",
            OrderKind::Fixed(_) => "FIXED",
        }
    }

    /// The seven named ordering methods compared in Figure 11.
    pub fn all_static() -> Vec<OrderKind> {
        vec![
            OrderKind::QuickSi,
            OrderKind::GraphQl,
            OrderKind::Cfl,
            OrderKind::Ceci,
            OrderKind::Ri,
            OrderKind::Vf2pp,
            OrderKind::Adaptive,
        ]
    }
}

/// Everything an ordering method may consult.
pub struct OrderInput<'a> {
    /// Query context.
    pub q: &'a QueryContext<'a>,
    /// Data context.
    pub g: &'a DataContext<'a>,
    /// Candidate sets from the filtering step.
    pub candidates: &'a Candidates,
    /// BFS tree from a tree-based filter, if one ran.
    pub bfs_tree: Option<&'a BfsTree>,
    /// Auxiliary structure, if already built.
    pub space: Option<&'a CandidateSpace>,
}

/// Compute the matching order for `kind`.
pub fn run_order(kind: &OrderKind, input: &OrderInput<'_>) -> Vec<VertexId> {
    match kind {
        OrderKind::QuickSi => qsi::qsi_order(input),
        OrderKind::GraphQl => gql::gql_order(input),
        OrderKind::Cfl => cfl::cfl_order(input),
        OrderKind::Ceci => ceci::ceci_order(input),
        OrderKind::Ri => ri::ri_order(input),
        OrderKind::Vf2pp => vf2pp::vf2pp_order(input),
        // The adaptive engine consumes the BFS order δ as its DAG spine.
        OrderKind::Adaptive => ceci::bfs_delta_order(input),
        OrderKind::Fixed(order) => order.clone(),
    }
}

/// Whether `order` is a permutation of `V(q)` in which every vertex after
/// the first has a backward neighbor (connected prefix).
pub fn is_connected_order(q: &sm_graph::Graph, order: &[VertexId]) -> bool {
    let n = q.num_vertices();
    if order.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for (i, &u) in order.iter().enumerate() {
        if (u as usize) >= n || seen[u as usize] {
            return false;
        }
        if i > 0 && !q.neighbors(u).iter().any(|&u2| seen[u2 as usize]) {
            return false;
        }
        seen[u as usize] = true;
    }
    true
}

/// Backward neighbors of every vertex under `order` (paper notation
/// `N^φ_+(u)`), indexed by query vertex id.
pub fn backward_neighbors(q: &sm_graph::Graph, order: &[VertexId]) -> Vec<Vec<VertexId>> {
    let n = q.num_vertices();
    let mut rank = vec![usize::MAX; n];
    for (i, &u) in order.iter().enumerate() {
        rank[u as usize] = i;
    }
    let mut out = vec![Vec::new(); n];
    for &u in order {
        let mut b: Vec<VertexId> = q
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&u2| rank[u2 as usize] < rank[u as usize])
            .collect();
        // Sort by match time so engines can pick the most recent / first.
        b.sort_by_key(|&u2| rank[u2 as usize]);
        out[u as usize] = b;
    }
    out
}

/// Derive per-vertex pivot parents from an order: the earliest-matched
/// backward neighbor (or a supplied tree parent when it is backward).
///
/// This is the one canonical derivation — [`crate::plan::QueryPlan`] calls
/// it at plan-build time and the engines consume the result; none of them
/// re-derive parents per run.
pub fn derive_parents(
    q: &sm_graph::Graph,
    order: &[VertexId],
    tree: Option<&BfsTree>,
) -> Vec<VertexId> {
    let n = q.num_vertices();
    let mut rank = vec![usize::MAX; n];
    for (i, &u) in order.iter().enumerate() {
        rank[u as usize] = i;
    }
    let mut parent = vec![NO_VERTEX; n];
    for &u in order {
        if rank[u as usize] == 0 {
            continue;
        }
        // Prefer the BFS-tree parent when it precedes u in the order (the
        // TreeIndex method depends on that edge list existing).
        if let Some(t) = tree {
            let p = t.parent[u as usize];
            if p != NO_VERTEX && rank[p as usize] < rank[u as usize] {
                parent[u as usize] = p;
                continue;
            }
        }
        parent[u as usize] = q
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&u2| rank[u2 as usize] < rank[u as usize])
            .min_by_key(|&u2| rank[u2 as usize])
            .unwrap_or(NO_VERTEX);
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{run_filter, FilterKind};
    use crate::fixtures::{paper_data, paper_query};

    #[test]
    fn all_methods_emit_connected_orders() {
        let q = paper_query();
        let g = paper_data();
        let qc = crate::QueryContext::new(&q);
        let gc = crate::DataContext::new(&g);
        let f = run_filter(FilterKind::GraphQl, &qc, &gc).unwrap();
        let input = OrderInput {
            q: &qc,
            g: &gc,
            candidates: &f.candidates,
            bfs_tree: f.bfs_tree.as_ref(),
            space: None,
        };
        for kind in OrderKind::all_static() {
            let order = run_order(&kind, &input);
            assert!(is_connected_order(&q, &order), "{}: {order:?}", kind.name());
        }
    }

    #[test]
    fn backward_neighbors_of_natural_order() {
        let q = paper_query();
        let order = vec![0, 1, 2, 3];
        let b = backward_neighbors(&q, &order);
        assert!(b[0].is_empty());
        assert_eq!(b[1], vec![0]);
        assert_eq!(b[2], vec![0, 1]);
        assert_eq!(b[3], vec![1, 2]);
    }

    #[test]
    fn derive_parents_prefers_tree_parent() {
        let q = paper_query();
        let tree = BfsTree::build(&q, 0);
        let order = vec![0u32, 1, 2, 3];
        let p = derive_parents(&q, &order, Some(&tree));
        assert_eq!(p[0], NO_VERTEX);
        assert_eq!(p[1], 0);
        assert_eq!(p[2], 0);
        assert_eq!(p[3], 1); // tree parent of u3 is u1
                             // without the tree, earliest backward neighbor
        let p2 = derive_parents(&q, &order, None);
        assert_eq!(p2[3], 1);
    }

    #[test]
    fn connected_order_validation() {
        let q = paper_query();
        assert!(is_connected_order(&q, &[0, 1, 2, 3]));
        assert!(is_connected_order(&q, &[3, 1, 0, 2]));
        assert!(!is_connected_order(&q, &[0, 3, 1, 2])); // u3 not adjacent u0
        assert!(!is_connected_order(&q, &[0, 1, 2])); // too short
        assert!(!is_connected_order(&q, &[0, 0, 1, 2])); // duplicate
    }
}
