//! QuickSI's infrequent-edge-first ordering (Shang et al., PVLDB 2008).
//!
//! The query is viewed as a weighted graph: vertex weight `w(u)` is the
//! frequency of `L(u)` in `G`, edge weight `w(e(u,u'))` is the number of
//! data edges between labels `L(u)` and `L(u')`. The order starts with the
//! globally cheapest edge and grows by repeatedly taking the cheapest edge
//! leaving the already-ordered set.

use crate::order::OrderInput;
use sm_graph::VertexId;

/// Compute QuickSI's matching order.
pub fn qsi_order(input: &OrderInput<'_>) -> Vec<VertexId> {
    let q = input.q.graph;
    let n = q.num_vertices();
    if n == 1 {
        return vec![0];
    }
    let w_vertex = |u: VertexId| input.g.graph.label_frequency(q.label(u)) as u64;
    let w_edge = |u: VertexId, u2: VertexId| input.g.label_pairs.count(q.label(u), q.label(u2));

    // Cheapest edge overall seeds the order; endpoints by ascending vertex
    // weight, ties by id for determinism.
    let (mut a, mut b) = q
        .edges()
        .min_by_key(|&(u, u2)| (w_edge(u, u2), u, u2))
        .expect("connected query with >= 2 vertices has an edge");
    if (w_vertex(b), b) < (w_vertex(a), a) {
        std::mem::swap(&mut a, &mut b);
    }
    let mut order = vec![a, b];
    let mut in_order = vec![false; n];
    in_order[a as usize] = true;
    in_order[b as usize] = true;

    while order.len() < n {
        // Cheapest edge from the ordered set to the frontier.
        let mut best: Option<(u64, VertexId, VertexId)> = None;
        for &u in &order {
            for &u2 in q.neighbors(u) {
                if !in_order[u2 as usize] {
                    let key = (w_edge(u, u2), u2, u);
                    if best.is_none_or(|(bw, bu2, _)| (key.0, key.1) < (bw, bu2)) {
                        best = Some(key);
                    }
                }
            }
        }
        let (_, next, _) = best.expect("query is connected");
        in_order[next as usize] = true;
        order.push(next);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_data, paper_query};
    use crate::order::{is_connected_order, OrderInput};
    use crate::{Candidates, DataContext, QueryContext};

    fn input_for<'a>(
        qc: &'a QueryContext<'a>,
        gc: &'a DataContext<'a>,
        cand: &'a Candidates,
    ) -> OrderInput<'a> {
        OrderInput {
            q: qc,
            g: gc,
            candidates: cand,
            bfs_tree: None,
            space: None,
        }
    }

    #[test]
    fn starts_with_rarest_edge() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let order = qsi_order(&input_for(&qc, &gc, &cand));
        assert!(is_connected_order(&q, &order));
        // In the fixture, B-D and C-D edges are rarer than A-B/A-C edges;
        // the first two vertices must come from one of the rare edges.
        let first_two: Vec<u32> = order[..2].to_vec();
        let rare: [&[u32]; 2] = [&[1, 3], &[2, 3]];
        assert!(
            rare.iter().any(|r| r.iter().all(|v| first_two.contains(v))),
            "order {order:?}"
        );
    }

    #[test]
    fn single_vertex_query() {
        let q = sm_graph::builder::graph_from_edges(&[0], &[]);
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        assert_eq!(qsi_order(&input_for(&qc, &gc, &cand)), vec![0]);
    }

    #[test]
    fn deterministic() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let o1 = qsi_order(&input_for(&qc, &gc, &cand));
        let o2 = qsi_order(&input_for(&qc, &gc, &cand));
        assert_eq!(o1, o2);
    }
}
