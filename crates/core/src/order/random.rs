//! Random matching orders for the paper's spectrum analysis (Section 5.3):
//! sample many orders, run each with a small time budget, and compare the
//! best against the orders the heuristics produce.

use sm_graph::{Graph, VertexId};
use sm_runtime::rng::Rng64;

/// Sample a uniformly random *connected* matching order: a random start
/// vertex, then repeatedly a random frontier vertex. Connectedness keeps
/// the comparison fair — a disconnected prefix forces a Cartesian product
/// no ordering method would emit.
pub fn random_connected_order(q: &Graph, rng: &mut Rng64) -> Vec<VertexId> {
    let n = q.num_vertices();
    assert!(n >= 1);
    let start = rng.gen_range(0..n) as VertexId;
    let mut order = vec![start];
    let mut in_order = vec![false; n];
    in_order[start as usize] = true;
    let mut frontier: Vec<VertexId> = q
        .neighbors(start)
        .iter()
        .copied()
        .filter(|&u| !in_order[u as usize])
        .collect();
    while order.len() < n {
        debug_assert!(!frontier.is_empty(), "query must be connected");
        let i = rng.gen_range(0..frontier.len());
        let u = frontier.swap_remove(i);
        if in_order[u as usize] {
            continue;
        }
        in_order[u as usize] = true;
        order.push(u);
        for &u2 in q.neighbors(u) {
            if !in_order[u2 as usize] {
                frontier.push(u2);
            }
        }
    }
    order
}

/// Sample `count` distinct-ish random connected orders (duplicates are
/// possible for tiny queries, matching the paper's straightforward
/// sampling).
pub fn sample_orders(q: &Graph, count: usize, rng: &mut Rng64) -> Vec<Vec<VertexId>> {
    (0..count).map(|_| random_connected_order(q, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_query;
    use crate::order::is_connected_order;

    #[test]
    fn sampled_orders_are_connected_permutations() {
        let q = paper_query();
        let mut rng = Rng64::seed_from_u64(42);
        for order in sample_orders(&q, 200, &mut rng) {
            assert!(is_connected_order(&q, &order), "{order:?}");
        }
    }

    #[test]
    fn covers_multiple_orders() {
        let q = paper_query();
        let mut rng = Rng64::seed_from_u64(7);
        let orders = sample_orders(&q, 100, &mut rng);
        let distinct: std::collections::HashSet<_> = orders.into_iter().collect();
        assert!(distinct.len() > 3);
    }
}
