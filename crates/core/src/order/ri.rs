//! RI's structure-only ordering (Bonnici et al., BMC Bioinformatics 2013).
//!
//! RI never looks at the data graph: start at the max-degree query vertex,
//! then repeatedly take the frontier vertex with the most backward
//! neighbors — which is exactly what front-loads non-tree edges, the
//! property Section 5.3 credits for RI's strength on sparse data graphs.
//! Ties break by RI's two secondary scores, then by vertex id.

use crate::order::OrderInput;
use sm_graph::VertexId;

/// Compute RI's matching order.
pub fn ri_order(input: &OrderInput<'_>) -> Vec<VertexId> {
    let q = input.q.graph;
    let n = q.num_vertices();
    let start = q
        .vertices()
        .max_by_key(|&u| (q.degree(u), std::cmp::Reverse(u)))
        .expect("non-empty query");
    let mut order = vec![start];
    let mut in_order = vec![false; n];
    in_order[start as usize] = true;

    while order.len() < n {
        let mut best: Option<(usize, usize, usize, std::cmp::Reverse<VertexId>)> = None;
        let mut best_u = None;
        for u in q.vertices() {
            if in_order[u as usize] {
                continue;
            }
            // candidate pool: frontier N(φ) − φ
            let backward = q
                .neighbors(u)
                .iter()
                .filter(|&&u2| in_order[u2 as usize])
                .count();
            if backward == 0 {
                continue;
            }
            // Tie-break 1: |{u' ∈ φ adjacent to u with a neighbor outside φ}|
            let score2 = q
                .neighbors(u)
                .iter()
                .filter(|&&u2| {
                    in_order[u2 as usize]
                        && q.neighbors(u2)
                            .iter()
                            .any(|&u3| !in_order[u3 as usize] && u3 != u)
                })
                .count();
            // Tie-break 2: |{u' ∈ N(u) − φ with no neighbor in φ}|
            let score3 = q
                .neighbors(u)
                .iter()
                .filter(|&&u2| {
                    !in_order[u2 as usize]
                        && !q.neighbors(u2).iter().any(|&u3| in_order[u3 as usize])
                })
                .count();
            let key = (backward, score2, score3, std::cmp::Reverse(u));
            if best.is_none_or(|b| key > b) {
                best = Some(key);
                best_u = Some(u);
            }
        }
        let next = best_u.expect("query is connected");
        in_order[next as usize] = true;
        order.push(next);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_data, paper_query};
    use crate::order::{backward_neighbors, is_connected_order, OrderInput};
    use crate::{DataContext, QueryContext};
    use sm_graph::builder::graph_from_edges;

    fn order_of(q: &sm_graph::Graph) -> Vec<VertexId> {
        let g = paper_data();
        let qc = QueryContext::new(q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::ldf::ldf_candidates(&qc, &gc);
        let input = OrderInput {
            q: &qc,
            g: &gc,
            candidates: &cand,
            bfs_tree: None,
            space: None,
        };
        ri_order(&input)
    }

    #[test]
    fn starts_with_max_degree() {
        let q = paper_query();
        let order = order_of(&q);
        assert!(is_connected_order(&q, &order));
        assert_eq!(q.degree(order[0]), 3);
    }

    #[test]
    fn prefers_many_backward_neighbors() {
        let q = paper_query();
        let order = order_of(&q);
        // Third and fourth vertices should each have 2+ backward neighbors
        // (RI front-loads the dense part).
        let b = backward_neighbors(&q, &order);
        assert!(b[order[2] as usize].len() >= 2, "order {order:?}");
        assert!(b[order[3] as usize].len() >= 2, "order {order:?}");
    }

    #[test]
    fn star_query_order() {
        // star: center 0 with 3 leaves — center first, leaves after.
        let q = graph_from_edges(&[0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]);
        let order = order_of(&q);
        assert_eq!(order[0], 0);
        assert!(is_connected_order(&q, &order));
    }
}
