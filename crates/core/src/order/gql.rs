//! GraphQL's left-deep-join ordering (He & Singh, SIGMOD 2008): start at
//! the query vertex with the fewest candidates, then repeatedly pick the
//! frontier vertex (`N(φ) − φ`) with the fewest candidates.

use crate::order::OrderInput;
use sm_graph::VertexId;

/// Compute GraphQL's matching order.
pub fn gql_order(input: &OrderInput<'_>) -> Vec<VertexId> {
    let q = input.q.graph;
    let n = q.num_vertices();
    let c = input.candidates;
    let start = (0..n as VertexId)
        .min_by_key(|&u| (c.get(u).len(), u))
        .expect("non-empty query");
    let mut order = vec![start];
    let mut in_order = vec![false; n];
    in_order[start as usize] = true;
    while order.len() < n {
        let next = order
            .iter()
            .flat_map(|&u| q.neighbors(u).iter().copied())
            .filter(|&u2| !in_order[u2 as usize])
            .min_by_key(|&u2| (c.get(u2).len(), u2))
            .expect("query is connected");
        in_order[next as usize] = true;
        order.push(next);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_data, paper_query};
    use crate::order::{is_connected_order, OrderInput};
    use crate::{DataContext, QueryContext};

    #[test]
    fn starts_with_smallest_candidate_set() {
        let q = paper_query();
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let cand = crate::filter::gql::gql_candidates(&qc, &gc, Default::default());
        let input = OrderInput {
            q: &qc,
            g: &gc,
            candidates: &cand,
            bfs_tree: None,
            space: None,
        };
        let order = gql_order(&input);
        assert!(is_connected_order(&q, &order));
        let min_size = q.vertices().map(|u| cand.get(u).len()).min().unwrap();
        assert_eq!(cand.get(order[0]).len(), min_size);
    }

    #[test]
    fn greedy_frontier_choice() {
        // Path query A-B-C with candidate sizes forced: start at smallest.
        let q = sm_graph::builder::graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let cand = crate::Candidates::new(vec![vec![0, 1, 2], vec![0], vec![0, 1]]);
        let g = paper_data();
        let qc = QueryContext::new(&q);
        let gc = DataContext::new(&g);
        let input = OrderInput {
            q: &qc,
            g: &gc,
            candidates: &cand,
            bfs_tree: None,
            space: None,
        };
        // start = u1 (1 candidate), then frontier {u0 (3), u2 (2)} → u2.
        assert_eq!(gql_order(&input), vec![1, 2, 0]);
    }
}
