//! Smoke tests: every experiment subcommand runs to completion without
//! panicking at tiny scale. These catch regressions in the harness wiring
//! (dataset loading, query generation, table assembly) that unit tests on
//! individual pieces miss.

use sm_bench::args::HarnessOptions;
use sm_bench::experiments;
use std::time::Duration;

fn tiny(datasets: &[&str]) -> HarnessOptions {
    HarnessOptions {
        command: "smoke".into(),
        datasets: Some(datasets.iter().map(|s| s.to_string()).collect()),
        queries: 2,
        time_limit: Duration::from_millis(100),
        orders: 5,
        threads: 1,
        ..HarnessOptions::default()
    }
}

#[test]
fn table3_runs() {
    experiments::table3::run(&tiny(&["ye", "hu"]));
}

#[test]
fn fig7_and_fig8_run() {
    let opts = tiny(&["ye"]);
    experiments::fig07::run(&opts);
    experiments::fig08::run(&opts);
}

#[test]
fn fig9_and_fig10_run() {
    let opts = tiny(&["ye"]);
    experiments::fig09::run(&opts);
    experiments::fig10::run(&opts);
}

#[test]
fn ordering_figures_run() {
    let opts = tiny(&["ye"]);
    experiments::fig11::run(&opts);
    experiments::fig12::run(&opts);
    experiments::fig13::run(&opts);
}

#[test]
fn spectrum_figures_run() {
    let opts = tiny(&["ye"]);
    experiments::fig14::run(&opts);
    experiments::table6::run(&opts);
}

#[test]
fn optimization_figures_run() {
    let opts = tiny(&["ye"]);
    experiments::table5::run(&opts);
    experiments::fig15::run(&opts);
}

#[test]
fn fig16_runs_with_glasgow() {
    experiments::fig16::run(&tiny(&["ye"]));
}

#[test]
fn ablation_runs() {
    experiments::ablation::run(&tiny(&["ye"]));
}

#[test]
fn parallel_runs() {
    experiments::parallel::run(&tiny(&["ye"]));
}

#[test]
fn shard_runs() {
    let opts = HarnessOptions {
        shards: vec![1, 2],
        ..tiny(&["ye"])
    };
    experiments::shard::run(&opts);
}

#[test]
fn top_runs() {
    let opts = HarnessOptions {
        shards: vec![2],
        duration: Duration::from_millis(300),
        refresh: Duration::from_millis(100),
        ..tiny(&["ye"])
    };
    experiments::metrics::top(&opts);
}

#[test]
fn metrics_overhead_runs() {
    // The smoke only exercises the wiring (measurement, parse-back,
    // JSON emission); the 2% bound is enforced when CI runs the real
    // subcommand via scripts/ci.sh, at a scale where it is measurable.
    experiments::metrics::overhead(&tiny(&["ye"]), None);
}
