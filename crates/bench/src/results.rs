//! Machine-readable bench emission: `BENCH_<name>.json` files tracking
//! the performance trajectory across PRs.
//!
//! The workspace is dependency-free, so this is a minimal hand-rolled
//! JSON value with **insertion-ordered objects**: the same run always
//! serializes byte-identically (modulo the measured numbers), which
//! keeps the files diffable. Every file carries a `schema` tag
//! ([`SCHEMA`]) so downstream tooling can detect layout changes.

use std::fmt::Write as _;

/// Schema tag stamped into every bench file. Bump on layout changes.
/// v2: `serve` and `shard` rows carry a `latency` object sourced from
/// the service-side telemetry histograms (see [`latency_obj`]).
pub const SCHEMA: &str = "sm-bench/v2";

/// A JSON value with insertion-ordered object keys.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (serialized without a fraction).
    Int(i64),
    /// Float; non-finite values serialize as `null`.
    Num(f64),
    /// String (escaped on write).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, keys kept in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serialize with 2-space indentation and stable key order.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(f) if f.is_finite() => {
                let _ = write!(out, "{f}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The standard `latency` object of a nanosecond telemetry histogram
/// ([`sm_runtime::metrics::HistSnapshot`]): count plus
/// p50/p90/p99/p999/max/mean in milliseconds. Service-side
/// (submit→terminal) latency, as opposed to the client-observed
/// percentiles the experiments also report.
pub fn latency_obj(h: &sm_runtime::metrics::HistSnapshot) -> Json {
    let ms = |ns: u64| ns as f64 / 1e6;
    Json::obj(vec![
        ("count", Json::Int(h.count() as i64)),
        ("p50_ms", Json::Num(ms(h.quantile(0.50)))),
        ("p90_ms", Json::Num(ms(h.quantile(0.90)))),
        ("p99_ms", Json::Num(ms(h.quantile(0.99)))),
        ("p999_ms", Json::Num(ms(h.quantile(0.999)))),
        ("max_ms", Json::Num(ms(h.max()))),
        ("mean_ms", Json::Num(h.mean() / 1e6)),
    ])
}

/// Wrap per-bench content in the standard envelope:
/// `{schema, bench, <content pairs…>}`.
pub fn envelope(bench: &str, content: Vec<(&'static str, Json)>) -> Json {
    let mut pairs = vec![("schema", Json::str(SCHEMA)), ("bench", Json::str(bench))];
    pairs.extend(content);
    Json::obj(pairs)
}

/// Write `BENCH_<bench>.json` to the current directory. Prints (and
/// returns) the path so harness logs record where results went; I/O
/// failure is reported, not fatal — benches still print their tables.
pub fn write_bench_json(bench: &str, value: &Json) -> Option<String> {
    let path = format!("BENCH_{bench}.json");
    match std::fs::write(&path, value.to_pretty()) {
        Ok(()) => {
            println!("(wrote {path})");
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: could not write {path}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_is_stable_and_ordered() {
        let v = envelope(
            "demo",
            vec![
                ("zeta", Json::Int(1)),
                ("alpha", Json::Num(2.5)),
                (
                    "rows",
                    Json::Arr(vec![Json::obj(vec![
                        ("b", Json::Bool(true)),
                        ("a", Json::str("x\"y")),
                    ])]),
                ),
                ("empty", Json::Arr(vec![])),
            ],
        );
        let s = v.to_pretty();
        // Insertion order preserved (zeta before alpha), schema stamped.
        let zeta = s.find("\"zeta\"").unwrap();
        let alpha = s.find("\"alpha\"").unwrap();
        assert!(zeta < alpha);
        assert!(s.starts_with("{\n  \"schema\": \"sm-bench/v2\",\n  \"bench\": \"demo\""));
        assert!(s.contains("\"a\": \"x\\\"y\""));
        assert!(s.contains("\"empty\": []"));
        // Deterministic: same value, same bytes.
        assert_eq!(s, v.to_pretty());
    }

    #[test]
    fn latency_obj_reports_quantiles_in_ms() {
        let h = sm_runtime::metrics::Histogram::new();
        for _ in 0..99 {
            h.record(1_000_000); // 1 ms
        }
        h.record(100_000_000); // 100 ms tail
        let j = latency_obj(&h.snapshot());
        let s = j.to_pretty();
        assert!(s.contains("\"count\": 100"));
        // p50 sits in the 1 ms bucket (≤12.5% relative error), max exact.
        match &j {
            Json::Obj(pairs) => {
                let p50 = pairs.iter().find(|(k, _)| k == "p50_ms").unwrap();
                if let Json::Num(v) = p50.1 {
                    assert!((0.8..=1.2).contains(&v), "p50 {v} not ~1ms");
                }
                let max = pairs.iter().find(|(k, _)| k == "max_ms").unwrap();
                assert_eq!(max.1, Json::Num(100.0));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_pretty(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).to_pretty(), "null\n");
    }
}
