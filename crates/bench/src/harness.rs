//! Query-set evaluation: run one pipeline over a set of queries
//! (optionally across threads) and aggregate the paper's metrics.

use sm_graph::Graph;
use sm_match::{DataContext, MatchConfig, MatchOutput, Pipeline};
use std::time::Duration;

/// Per-query outcome retained for aggregation.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Plan-build time (filter + build + order): everything before the
    /// executor starts enumerating.
    pub plan_build: Duration,
    /// Enumeration time. For unsolved queries this is clamped to the time
    /// limit, as the paper does for its averages.
    pub enumeration: Duration,
    /// Matches found.
    pub matches: u64,
    /// Killed by the time limit.
    pub unsolved: bool,
    /// Average candidate count.
    pub candidate_avg: f64,
    /// Auxiliary structure bytes.
    pub space_memory: usize,
}

impl QueryResult {
    fn from_output(out: &MatchOutput, limit: Option<Duration>) -> Self {
        let unsolved = out.unsolved();
        let enumeration = if unsolved {
            limit.unwrap_or(out.enum_time)
        } else {
            out.enum_time
        };
        QueryResult {
            plan_build: out.plan_build_time(),
            enumeration,
            matches: out.matches,
            unsolved,
            candidate_avg: out.candidate_avg,
            space_memory: out.space_memory,
        }
    }
}

/// Aggregated metrics over one query set (the paper's reporting unit).
#[derive(Clone, Debug)]
pub struct SetSummary {
    /// Per-query results, in query order.
    pub results: Vec<QueryResult>,
}

impl SetSummary {
    /// Mean plan-build time in ms (the paper's "preprocessing time").
    pub fn avg_plan_build_ms(&self) -> f64 {
        mean(
            self.results
                .iter()
                .map(|r| r.plan_build.as_secs_f64() * 1e3),
        )
    }

    /// Mean enumeration time in ms (unsolved clamped to the limit).
    pub fn avg_enum_ms(&self) -> f64 {
        mean(
            self.results
                .iter()
                .map(|r| r.enumeration.as_secs_f64() * 1e3),
        )
    }

    /// Standard deviation of the enumeration time in ms (Figure 12).
    pub fn sd_enum_ms(&self) -> f64 {
        let xs: Vec<f64> = self
            .results
            .iter()
            .map(|r| r.enumeration.as_secs_f64() * 1e3)
            .collect();
        if xs.len() < 2 {
            return 0.0;
        }
        let m = mean(xs.iter().copied());
        (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
    }

    /// Number of unsolved (killed) queries.
    pub fn unsolved(&self) -> usize {
        self.results.iter().filter(|r| r.unsolved).count()
    }

    /// Mean candidate count (Figure 8).
    pub fn avg_candidates(&self) -> f64 {
        mean(self.results.iter().map(|r| r.candidate_avg))
    }

    /// Mean number of matches among solved queries (Figure 17's result
    /// count), `None` if more than half the queries are unsolved — the
    /// paper discards such points.
    pub fn avg_matches_if_mostly_solved(&self) -> Option<f64> {
        if self.results.is_empty() || self.unsolved() * 2 > self.results.len() {
            return None;
        }
        let solved: Vec<f64> = self
            .results
            .iter()
            .filter(|r| !r.unsolved)
            .map(|r| r.matches as f64)
            .collect();
        (!solved.is_empty()).then(|| mean(solved.iter().copied()))
    }

    /// Buckets for Figure 13: fraction of queries with enumeration time in
    /// `[0, t1)`, `[t1, t2)`, `[t2, limit)`, and unsolved.
    pub fn time_buckets(&self, t1: Duration, t2: Duration) -> [f64; 4] {
        let n = self.results.len().max(1) as f64;
        let mut b = [0.0f64; 4];
        for r in &self.results {
            let idx = if r.unsolved {
                3
            } else if r.enumeration < t1 {
                0
            } else if r.enumeration < t2 {
                1
            } else {
                2
            };
            b[idx] += 1.0;
        }
        b.iter_mut().for_each(|x| *x /= n);
        b
    }
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut s, mut n) = (0.0, 0usize);
    for x in xs {
        s += x;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        s / n as f64
    }
}

/// Evaluate `pipeline` over `queries`, optionally across `threads`
/// (timings are per-query wall clock; use 1 thread for clean numbers).
pub fn eval_query_set(
    pipeline: &Pipeline,
    queries: &[Graph],
    g: &DataContext<'_>,
    config: &MatchConfig,
    threads: usize,
) -> SetSummary {
    let limit = config.time_limit;
    if threads <= 1 || queries.len() <= 1 {
        let results = queries
            .iter()
            .map(|q| QueryResult::from_output(&pipeline.run(q, g, config), limit))
            .collect();
        return SetSummary { results };
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let per_worker = sm_runtime::pool::scoped_map(threads.min(queries.len()), |_wid| {
        let mut mine = Vec::new();
        loop {
            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if i >= queries.len() {
                break;
            }
            let r = QueryResult::from_output(&pipeline.run(&queries[i], g, config), limit);
            mine.push((i, r));
        }
        mine
    });
    let mut slots: Vec<Option<QueryResult>> = vec![None; queries.len()];
    for (i, r) in per_worker.into_iter().flatten() {
        slots[i] = Some(r);
    }
    SetSummary {
        results: slots
            .into_iter()
            .map(|r| r.expect("all slots filled"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_match::fixtures::{paper_data, paper_query};
    use sm_match::{Algorithm, DataContext};

    #[test]
    fn eval_sequential_and_parallel_agree_on_counts() {
        let g = paper_data();
        let gc = DataContext::new(&g);
        let queries: Vec<_> = (0..6).map(|_| paper_query()).collect();
        let p = Algorithm::GraphQl.optimized();
        let cfg = MatchConfig::default();
        let seq = eval_query_set(&p, &queries, &gc, &cfg, 1);
        let par = eval_query_set(&p, &queries, &gc, &cfg, 3);
        assert_eq!(seq.results.len(), 6);
        for (a, b) in seq.results.iter().zip(&par.results) {
            assert_eq!(a.matches, b.matches);
        }
        assert_eq!(seq.unsolved(), 0);
        assert!(seq.avg_candidates() > 0.0);
    }

    #[test]
    fn summary_math() {
        let mk = |ms: u64, unsolved: bool| QueryResult {
            plan_build: Duration::from_millis(1),
            enumeration: Duration::from_millis(ms),
            matches: 1,
            unsolved,
            candidate_avg: 2.0,
            space_memory: 0,
        };
        let s = SetSummary {
            results: vec![mk(10, false), mk(30, false), mk(1000, true)],
        };
        assert!((s.avg_enum_ms() - (10.0 + 30.0 + 1000.0) / 3.0).abs() < 1e-9);
        assert_eq!(s.unsolved(), 1);
        let b = s.time_buckets(Duration::from_millis(20), Duration::from_millis(100));
        assert!((b[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!((b[1] - 1.0 / 3.0).abs() < 1e-9);
        assert!((b[2] - 0.0).abs() < 1e-9);
        assert!((b[3] - 1.0 / 3.0).abs() < 1e-9);
        assert!(s.sd_enum_ms() > 0.0);
        // 1/3 unsolved → still reports mean matches of solved
        assert!(s.avg_matches_if_mostly_solved().is_some());
    }

    #[test]
    fn mostly_unsolved_discarded() {
        let mk = |unsolved: bool| QueryResult {
            plan_build: Duration::ZERO,
            enumeration: Duration::from_millis(1),
            matches: 5,
            unsolved,
            candidate_avg: 0.0,
            space_memory: 0,
        };
        let s = SetSummary {
            results: vec![mk(true), mk(true), mk(false)],
        };
        assert!(s.avg_matches_if_mostly_solved().is_none());
    }
}
