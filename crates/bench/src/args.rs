//! A tiny dependency-free argument parser for the `experiments` binary.
//!
//! ```text
//! experiments <subcommand> [--datasets ye,hu,...] [--queries N]
//!             [--time-limit-ms N] [--orders N] [--threads N] [--clients N]
//!             [--seed N] [--shards 1,2,4,8] [--partitioner hash|label]
//!             [--duration-ms N] [--refresh-ms N]
//!             [--full] [--trace] [--profile-out PATH]
//! ```

use sm_planner::PlanCombo;
use std::time::Duration;

/// Plan selection for the service-tier experiments (`serve`, `shard`,
/// `update`, `top`): keep each experiment's built-in pipeline, let the
/// self-tuning planner choose per canonical form (`auto`), or force one
/// specific combo (`fixed:<filter>/<order>/<kernel>`).
#[derive(Clone, Debug, PartialEq, Default)]
pub enum PlanChoice {
    /// The experiment's built-in fixed pipeline (no `--plan` flag).
    #[default]
    Default,
    /// `--plan auto`: the sm-planner cost model picks the combo.
    Auto,
    /// `--plan fixed:<combo>`: one forced combo, e.g. `fixed:GQL/RI/Hybrid`.
    Fixed(PlanCombo),
}

impl PlanChoice {
    /// Parse a `--plan` value.
    pub fn parse(v: &str) -> Result<PlanChoice, String> {
        if v.eq_ignore_ascii_case("auto") {
            return Ok(PlanChoice::Auto);
        }
        if let Some(label) = v.strip_prefix("fixed:") {
            return PlanCombo::parse(label)
                .map(PlanChoice::Fixed)
                .ok_or_else(|| {
                    format!("--plan fixed:<combo> wants <filter>/<order>/<kernel>, got {label}")
                });
        }
        Err(format!("--plan must be auto or fixed:<combo>, got {v}"))
    }

    /// Display label for experiment headers.
    pub fn label(&self) -> String {
        match self {
            PlanChoice::Default => "default".to_string(),
            PlanChoice::Auto => "auto".to_string(),
            PlanChoice::Fixed(c) => format!("fixed:{}", c.label()),
        }
    }
}

/// Parsed harness options with laptop-friendly defaults.
#[derive(Clone, Debug)]
pub struct HarnessOptions {
    /// Subcommand (e.g. `fig7`, `table5`, `all`).
    pub command: String,
    /// Dataset abbreviations to run on (`None` = each experiment's
    /// default).
    pub datasets: Option<Vec<String>>,
    /// Queries per query set (paper: 200; default here: 20).
    pub queries: usize,
    /// Per-query kill limit (paper: 5 min; default here: 1 s).
    pub time_limit: Duration,
    /// Random-order samples for the spectrum experiments (paper: 1000).
    pub orders: usize,
    /// Worker threads for query-set evaluation.
    pub threads: usize,
    /// Concurrent client threads for the `serve` experiment.
    pub clients: usize,
    /// Seed for workload generation (`serve` client schedules, `update`
    /// streams, `shard` client schedules and partitioning) — same seed,
    /// same workload, run to run.
    pub seed: u64,
    /// Shard counts for the `shard` experiment's scaling sweep.
    pub shards: Vec<usize>,
    /// Partition strategy for the `shard` experiment (`hash` | `label`).
    pub partitioner: String,
    /// How long the `top` live view keeps its workload running.
    pub duration: Duration,
    /// Refresh interval of the `top` live view.
    pub refresh: Duration,
    /// Attach an sm-runtime [`sm_runtime::Trace`] to supported experiments
    /// and print the per-phase span tree after each traced run.
    pub trace: bool,
    /// Write machine-readable JSONL run profiles here (implies tracing in
    /// the experiments that support it).
    pub profile_out: Option<String>,
    /// Plan selection for the service-tier experiments (`--plan
    /// auto|fixed:<combo>`).
    pub plan: PlanChoice,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            command: "all".to_string(),
            datasets: None,
            queries: 20,
            time_limit: Duration::from_millis(1000),
            orders: 100,
            threads: 1,
            clients: 2,
            seed: 42,
            shards: vec![1, 2, 4, 8],
            partitioner: "label".to_string(),
            duration: Duration::from_millis(2000),
            refresh: Duration::from_millis(500),
            trace: false,
            profile_out: None,
            plan: PlanChoice::Default,
        }
    }
}

impl HarnessOptions {
    /// Parse from an argument iterator (excluding argv[0]). Returns an
    /// error string for unknown/malformed flags.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = HarnessOptions::default();
        let mut it = args.into_iter();
        let mut saw_command = false;
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--datasets" => {
                    let v = it.next().ok_or("--datasets needs a value")?;
                    opts.datasets = Some(v.split(',').map(|s| s.trim().to_string()).collect());
                }
                "--queries" => {
                    opts.queries = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--queries needs an integer")?;
                }
                "--time-limit-ms" => {
                    let ms: u64 = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--time-limit-ms needs an integer")?;
                    opts.time_limit = Duration::from_millis(ms);
                }
                "--orders" => {
                    opts.orders = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--orders needs an integer")?;
                }
                "--threads" => {
                    opts.threads = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&t: &usize| t >= 1)
                        .ok_or("--threads needs a positive integer")?;
                }
                "--clients" => {
                    opts.clients = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&c: &usize| c >= 1)
                        .ok_or("--clients needs a positive integer")?;
                }
                "--seed" => {
                    opts.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--seed needs an unsigned integer")?;
                }
                "--shards" => {
                    let v = it.next().ok_or("--shards needs a comma list")?;
                    let parsed: Result<Vec<usize>, _> =
                        v.split(',').map(|s| s.trim().parse()).collect();
                    opts.shards = parsed
                        .ok()
                        .filter(|s: &Vec<usize>| !s.is_empty() && s.iter().all(|&k| k >= 1))
                        .ok_or("--shards needs a comma list of positive integers")?;
                }
                "--partitioner" => {
                    let v = it.next().ok_or("--partitioner needs hash|label")?;
                    if v != "hash" && v != "label" {
                        return Err(format!("--partitioner must be hash or label, got {v}"));
                    }
                    opts.partitioner = v;
                }
                "--duration-ms" => {
                    let ms: u64 = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&d| d >= 1)
                        .ok_or("--duration-ms needs a positive integer")?;
                    opts.duration = Duration::from_millis(ms);
                }
                "--refresh-ms" => {
                    let ms: u64 = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&d| d >= 1)
                        .ok_or("--refresh-ms needs a positive integer")?;
                    opts.refresh = Duration::from_millis(ms);
                }
                "--plan" => {
                    let v = it.next().ok_or("--plan needs auto or fixed:<combo>")?;
                    opts.plan = PlanChoice::parse(&v)?;
                }
                "--trace" => {
                    opts.trace = true;
                }
                "--profile-out" => {
                    let v = it.next().ok_or("--profile-out needs a path")?;
                    opts.profile_out = Some(v);
                }
                "--full" => {
                    // Paper-scale settings (slow!).
                    opts.queries = 200;
                    opts.time_limit = Duration::from_secs(300);
                    opts.orders = 1000;
                }
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag {flag}"));
                }
                cmd if !saw_command => {
                    opts.command = cmd.to_string();
                    saw_command = true;
                }
                extra => return Err(format!("unexpected argument {extra}")),
            }
        }
        Ok(opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<HarnessOptions, String> {
        HarnessOptions::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.command, "all");
        assert_eq!(o.queries, 20);
        assert_eq!(o.threads, 1);
    }

    #[test]
    fn full_parse() {
        let o = parse(&[
            "fig7",
            "--datasets",
            "ye,hu",
            "--queries",
            "50",
            "--time-limit-ms",
            "2000",
            "--orders",
            "500",
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(o.command, "fig7");
        assert_eq!(
            o.datasets.as_deref(),
            Some(&["ye".to_string(), "hu".to_string()][..])
        );
        assert_eq!(o.queries, 50);
        assert_eq!(o.time_limit, Duration::from_secs(2));
        assert_eq!(o.orders, 500);
        assert_eq!(o.threads, 4);
    }

    #[test]
    fn full_preset() {
        let o = parse(&["table5", "--full"]).unwrap();
        assert_eq!(o.queries, 200);
        assert_eq!(o.time_limit, Duration::from_secs(300));
        assert_eq!(o.orders, 1000);
    }

    #[test]
    fn errors() {
        assert!(parse(&["--queries"]).is_err());
        assert!(parse(&["--queries", "x"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["fig7", "extra"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--clients", "0"]).is_err());
        assert!(parse(&["--profile-out"]).is_err());
    }

    #[test]
    fn clients_flag() {
        let o = parse(&["serve", "--clients", "4"]).unwrap();
        assert_eq!(o.command, "serve");
        assert_eq!(o.clients, 4);
        assert_eq!(parse(&[]).unwrap().clients, 2);
    }

    #[test]
    fn seed_flag() {
        let o = parse(&["update", "--seed", "7"]).unwrap();
        assert_eq!(o.seed, 7);
        assert_eq!(parse(&[]).unwrap().seed, 42);
        assert!(parse(&["--seed", "x"]).is_err());
        assert!(parse(&["--seed"]).is_err());
    }

    #[test]
    fn shards_and_partitioner_flags() {
        let o = parse(&["shard", "--shards", "1,2,4", "--partitioner", "hash"]).unwrap();
        assert_eq!(o.command, "shard");
        assert_eq!(o.shards, vec![1, 2, 4]);
        assert_eq!(o.partitioner, "hash");
        let d = parse(&[]).unwrap();
        assert_eq!(d.shards, vec![1, 2, 4, 8]);
        assert_eq!(d.partitioner, "label");
        assert!(parse(&["--shards"]).is_err());
        assert!(parse(&["--shards", "x"]).is_err());
        assert!(parse(&["--shards", "2,0"]).is_err());
        assert!(parse(&["--shards", ""]).is_err());
        assert!(parse(&["--partitioner", "bogus"]).is_err());
        assert!(parse(&["--partitioner"]).is_err());
    }

    #[test]
    fn duration_and_refresh_flags() {
        let o = parse(&["top", "--duration-ms", "800", "--refresh-ms", "100"]).unwrap();
        assert_eq!(o.command, "top");
        assert_eq!(o.duration, Duration::from_millis(800));
        assert_eq!(o.refresh, Duration::from_millis(100));
        let d = parse(&[]).unwrap();
        assert_eq!(d.duration, Duration::from_millis(2000));
        assert_eq!(d.refresh, Duration::from_millis(500));
        assert!(parse(&["--duration-ms"]).is_err());
        assert!(parse(&["--duration-ms", "0"]).is_err());
        assert!(parse(&["--refresh-ms", "x"]).is_err());
    }

    #[test]
    fn plan_flag() {
        assert_eq!(parse(&[]).unwrap().plan, PlanChoice::Default);
        assert_eq!(
            parse(&["serve", "--plan", "auto"]).unwrap().plan,
            PlanChoice::Auto
        );
        let o = parse(&["serve", "--plan", "fixed:GQL/RI/Hybrid"]).unwrap();
        match o.plan {
            PlanChoice::Fixed(c) => assert_eq!(c.label(), "GQL/RI/Hybrid"),
            other => panic!("expected fixed combo, got {other:?}"),
        }
        assert!(parse(&["--plan"]).is_err());
        assert!(parse(&["--plan", "bogus"]).is_err());
        assert!(parse(&["--plan", "fixed:GQL/RI"]).is_err());
        assert!(parse(&["--plan", "fixed:NOPE/RI/Hybrid"]).is_err());
    }

    #[test]
    fn trace_flags() {
        let o = parse(&["parallel", "--trace", "--profile-out", "/tmp/p.jsonl"]).unwrap();
        assert!(o.trace);
        assert_eq!(o.profile_out.as_deref(), Some("/tmp/p.jsonl"));
        let d = parse(&[]).unwrap();
        assert!(!d.trace);
        assert!(d.profile_out.is_none());
    }
}
