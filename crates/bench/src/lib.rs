//! Shared harness utilities for the experiment binary: query-set
//! evaluation, aggregation, timer-based micro-benchmarks, and table
//! printing in the shape the paper reports.

#![warn(missing_docs)]

pub mod args;
pub mod experiments;
pub mod harness;
pub mod micro;
pub mod profile;
pub mod results;
pub mod table;

pub use args::HarnessOptions;
pub use harness::{eval_query_set, QueryResult, SetSummary};
