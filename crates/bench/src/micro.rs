//! Timer-based micro-benchmarks (`experiments bench-<fig>`), replacing
//! the former Criterion benches one-for-one. Each case is warmed up once
//! and then sampled on [`std::time::Instant`]; the table reports min /
//! median / mean wall-clock per iteration. Criterion's statistical
//! machinery is overkill here — the reproduction target is relative
//! ordering between methods, which min/median capture — and dropping it
//! keeps the build free of external crates.

use crate::args::HarnessOptions;
use crate::table::{ms, TextTable};
use sm_datasets::Dataset;
use sm_glasgow::{glasgow_match, GlasgowConfig};
use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_intersect::{intersect_buf, BsrSet, IntersectKind};
use sm_match::filter::{run_filter, FilterKind};
use sm_match::{Algorithm, DataContext, LcMethod, MatchConfig, OrderKind, Pipeline, QueryContext};
use std::time::Instant;

/// Default samples per case (Criterion used 15–20 for these groups).
const SAMPLES: usize = 10;

/// A running micro-benchmark table: one row per [`MicroBench::case`].
pub struct MicroBench {
    samples: usize,
    table: TextTable,
}

impl MicroBench {
    /// Start a benchmark group; `title` is printed as a heading.
    pub fn new(title: &str) -> Self {
        println!("\n## {title}");
        MicroBench {
            samples: SAMPLES,
            table: TextTable::new(vec!["case", "min ms", "median ms", "mean ms", "samples"]),
        }
    }

    /// Time `f` (one warmup iteration, then `samples` measured ones) and
    /// append a row.
    pub fn case(&mut self, label: &str, mut f: impl FnMut()) {
        f(); // warmup: touch caches, fault in lazily-loaded data
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        self.table.row(vec![
            label.to_string(),
            ms(min),
            ms(median),
            ms(mean),
            self.samples.to_string(),
        ]);
    }

    /// Print the accumulated table.
    pub fn finish(self) {
        self.table.print();
    }
}

/// Figure 7: filtering time of the four candidate-generation methods.
pub fn bench_fig07(_opts: &HarnessOptions) {
    let ds = Dataset::load("ye").expect("yeast stand-in");
    let gc = DataContext::new(&ds.graph);
    let queries = generate_query_set(
        &ds.graph,
        QuerySetSpec {
            num_vertices: 16,
            density: Density::Dense,
            count: 4,
        },
        7,
    );
    let mut b = MicroBench::new("bench-fig7: filtering (ye, Q16D)");
    for kind in [
        FilterKind::GraphQl,
        FilterKind::Cfl,
        FilterKind::Ceci,
        FilterKind::DpIso,
    ] {
        b.case(kind.name(), || {
            for q in &queries {
                let qc = QueryContext::new(q);
                std::hint::black_box(run_filter(kind, &qc, &gc));
            }
        });
    }
    b.finish();
}

/// Figure 8: pruning-power vs cost of every filter, incl. the STEADY
/// fixpoint. (Figure 8 itself reports candidate *counts*; this pins the
/// time each filter pays for its pruning.)
pub fn bench_fig08(_opts: &HarnessOptions) {
    let ds = Dataset::load("ye").expect("yeast stand-in");
    let gc = DataContext::new(&ds.graph);
    let queries = generate_query_set(
        &ds.graph,
        QuerySetSpec {
            num_vertices: 16,
            density: Density::Sparse,
            count: 4,
        },
        8,
    );
    let mut b = MicroBench::new("bench-fig8: candidate generation (ye, Q16S)");
    for kind in [
        FilterKind::Ldf,
        FilterKind::Nlf,
        FilterKind::GraphQl,
        FilterKind::Cfl,
        FilterKind::Ceci,
        FilterKind::DpIso,
        FilterKind::Steady,
    ] {
        b.case(kind.name(), || {
            for q in &queries {
                let qc = QueryContext::new(q);
                std::hint::black_box(run_filter(kind, &qc, &gc));
            }
        });
    }
    b.finish();
}

/// Figure 9: the four local-candidate methods on one workload.
pub fn bench_fig09(_opts: &HarnessOptions) {
    let ds = Dataset::load("ye").expect("yeast stand-in");
    let gc = DataContext::new(&ds.graph);
    let queries = generate_query_set(
        &ds.graph,
        QuerySetSpec {
            num_vertices: 12,
            density: Density::Dense,
            count: 4,
        },
        9,
    );
    let cfg = MatchConfig::default();
    let mut b = MicroBench::new("bench-fig9: enumeration methods (ye, Q12D)");
    for method in [
        LcMethod::Direct,
        LcMethod::CandidateScan,
        LcMethod::TreeIndex,
        LcMethod::Intersect,
    ] {
        let pipeline = Pipeline::new(
            method.name(),
            FilterKind::GraphQl,
            OrderKind::GraphQl,
            method,
        );
        b.case(method.name(), || {
            for q in &queries {
                std::hint::black_box(pipeline.run(q, &gc, &cfg));
            }
        });
    }
    b.finish();
}

/// Figure 10: raw set-intersection kernels, dense vs sparse regimes.
pub fn bench_fig10(_opts: &HarnessOptions) {
    // consecutive runs: BSR blocks are nearly full
    let dense = (
        (0..8000u32).filter(|x| x % 4 != 3).collect::<Vec<u32>>(),
        (0..8000u32).filter(|x| x % 3 != 2).collect::<Vec<u32>>(),
    );
    // far-apart elements: one bit per BSR block
    let sparse = (
        (0..3000u32).map(|x| x * 97).collect::<Vec<u32>>(),
        (0..3000u32).map(|x| x * 101).collect::<Vec<u32>>(),
    );
    let mut bench = MicroBench::new("bench-fig10: intersection kernels");
    for (regime, (a, b)) in [("dense", dense), ("sparse", sparse)] {
        for kind in [
            IntersectKind::Merge,
            IntersectKind::Galloping,
            IntersectKind::Hybrid,
        ] {
            let mut out = Vec::with_capacity(a.len());
            bench.case(&format!("{}/{}", regime, kind.name()), || {
                out.clear();
                intersect_buf(kind, &a, &b, &mut out);
                std::hint::black_box(out.len());
            });
        }
        // QFilter-style with precomputed encodings (how the engine uses it).
        let ba = BsrSet::from_sorted(&a);
        let bb = BsrSet::from_sorted(&b);
        let mut out = BsrSet::default();
        bench.case(&format!("{regime}/QFilter"), || {
            ba.intersect_into(&bb, &mut out);
            std::hint::black_box(out.len());
        });
    }
    bench.finish();
}

/// Figure 11: full query runs under each algorithm's ordering.
pub fn bench_fig11(_opts: &HarnessOptions) {
    let ds = Dataset::load("ye").expect("yeast stand-in");
    let gc = DataContext::new(&ds.graph);
    let queries = generate_query_set(
        &ds.graph,
        QuerySetSpec {
            num_vertices: 12,
            density: Density::Dense,
            count: 4,
        },
        11,
    );
    let cfg = MatchConfig::default();
    let mut b = MicroBench::new("bench-fig11: ordering methods (ye, Q12D)");
    for alg in Algorithm::all() {
        let pipeline = alg.optimized();
        let name = pipeline.name.clone();
        b.case(&name, || {
            for q in &queries {
                std::hint::black_box(pipeline.run(q, &gc, &cfg));
            }
        });
    }
    b.finish();
}

/// Figure 15: DP-iso with/without failing-set pruning, small vs large
/// queries (the crossover the paper reports).
pub fn bench_fig15(_opts: &HarnessOptions) {
    let ds = Dataset::load("ye").expect("yeast stand-in");
    let gc = DataContext::new(&ds.graph);
    let pipeline = Algorithm::DpIso.optimized();
    let mut b = MicroBench::new("bench-fig15: failing sets (ye)");
    for size in [8usize, 16] {
        let queries = generate_query_set(
            &ds.graph,
            QuerySetSpec {
                num_vertices: size,
                density: Density::Dense,
                count: 3,
            },
            15,
        );
        for fs in [false, true] {
            let cfg = MatchConfig::default().with_failing_sets(fs);
            let label = format!("Q{size}D/{}", if fs { "w-fs" } else { "wo-fs" });
            b.case(&label, || {
                for q in &queries {
                    std::hint::black_box(pipeline.run(q, &gc, &cfg));
                }
            });
        }
    }
    b.finish();
}

/// Figure 16: end-to-end time of the optimized compositions vs the
/// originals and Glasgow.
pub fn bench_fig16(_opts: &HarnessOptions) {
    let ds = Dataset::load("ye").expect("yeast stand-in");
    let gc = DataContext::new(&ds.graph);
    let queries = generate_query_set(
        &ds.graph,
        QuerySetSpec {
            num_vertices: 12,
            density: Density::Dense,
            count: 3,
        },
        16,
    );
    let mut b = MicroBench::new("bench-fig16: overall comparison (ye, Q12D)");
    let fs = MatchConfig::default().with_failing_sets(true);
    let plain = MatchConfig::default();
    let competitors = [
        ("GQLfs", Algorithm::GraphQl.optimized(), &fs),
        ("RIfs", Algorithm::Ri.optimized(), &fs),
        ("O-CECI", Algorithm::Ceci.original(), &plain),
        ("O-DP", Algorithm::DpIso.original(), &plain),
        ("O-RI", Algorithm::Ri.original(), &plain),
        ("O-2PP", Algorithm::Vf2pp.original(), &plain),
    ];
    for (name, pipeline, cfg) in competitors {
        b.case(name, || {
            for q in &queries {
                std::hint::black_box(pipeline.run(q, &gc, cfg));
            }
        });
    }
    let glw_cfg = GlasgowConfig::default();
    b.case("GLW", || {
        for q in &queries {
            std::hint::black_box(glasgow_match(q, &ds.graph, &glw_cfg).unwrap());
        }
    });
    b.finish();
}

/// Run every micro-benchmark (`bench-all`).
pub fn run_all(opts: &HarnessOptions) {
    bench_fig07(opts);
    bench_fig08(opts);
    bench_fig09(opts);
    bench_fig10(opts);
    bench_fig11(opts);
    bench_fig15(opts);
    bench_fig16(opts);
}
