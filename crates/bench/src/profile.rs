//! Trace-driven run profiling for the experiment harness: the `profile`,
//! `trace-overhead` and `check-profile` subcommands, plus the helpers the
//! table experiments use for `--trace` / `--profile-out`.
//!
//! A *profiled cell* is one (dataset, query, config) run executed with an
//! enabled [`Trace`] under a top-level `run` span. The resulting
//! [`RunProfile`] renders three ways: the human per-phase tree (`--trace`),
//! a JSONL line-stream (`--profile-out`, appendable across cells), and
//! flamegraph folded stacks (written next to the JSONL as `.folded`).

use crate::args::HarnessOptions;
use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_graph::Graph;
use sm_match::enumerate::parallel::ParallelStrategy;
use sm_match::pipeline::MatchOutput;
use sm_match::{DataContext, MatchConfig, Pipeline};
use sm_runtime::trace::profile::{RunMeta, RunProfile};
use sm_runtime::Trace;
use std::io::Write;

/// Run one cell with an enabled trace: attach a fresh [`Trace`] to the
/// config, wrap plan + execution in a `run` span, and snapshot the result
/// into a [`RunProfile`]. `threads <= 1` runs sequentially.
pub fn traced_cell(
    pipeline: &Pipeline,
    q: &Graph,
    gc: &DataContext<'_>,
    cfg: &MatchConfig,
    threads: usize,
    strategy: ParallelStrategy,
    meta: RunMeta,
) -> (MatchOutput, RunProfile) {
    let trace = Trace::enabled();
    let cfg = cfg.clone().with_trace(trace.clone());
    let out = {
        let _run = trace.span("run");
        if threads <= 1 {
            pipeline.run(q, gc, &cfg)
        } else {
            pipeline.run_parallel_with(q, gc, &cfg, threads, strategy)
        }
    };
    let mut meta = meta;
    meta.threads = threads.max(1);
    meta.cancelled = trace.was_cancelled();
    let profile = RunProfile::from_snapshot(meta, &trace.snapshot());
    (out, profile)
}

/// Append profiles to a JSONL file (one self-describing line per record;
/// cells separated by their `meta` lines) and write the folded-stacks
/// sibling file (`<path>.folded`). Best-effort: IO errors are reported to
/// stderr, not fatal to the experiment.
pub fn write_profiles(path: &str, profiles: &[RunProfile]) {
    let jsonl: String = profiles.iter().map(RunProfile::to_jsonl).collect();
    let folded: String = profiles.iter().map(RunProfile::folded_stacks).collect();
    let write = |p: &str, data: &str| -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(p)?;
        f.write_all(data.as_bytes())
    };
    if let Err(e) = write(path, &jsonl) {
        eprintln!("warning: cannot write {path}: {e}");
    }
    let folded_path = format!("{path}.folded");
    if let Err(e) = write(&folded_path, &folded) {
        eprintln!("warning: cannot write {folded_path}: {e}");
    }
}

/// Split a concatenated JSONL stream into per-cell profile texts (each
/// starting at a `meta` line), so a multi-cell `--profile-out` file can be
/// re-parsed with [`RunProfile::parse_jsonl`].
pub fn split_profiles(text: &str) -> Vec<String> {
    let mut cells: Vec<String> = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.contains("\"type\":\"meta\"") || cells.is_empty() {
            cells.push(String::new());
        }
        let cell = cells.last_mut().expect("pushed above");
        cell.push_str(trimmed);
        cell.push('\n');
    }
    cells
}

/// The deterministic workload the standalone profiling subcommands share:
/// a small RMAT graph and a handful of dense queries — enumeration-heavy
/// enough for steals and deep recursion, small enough for CI.
fn workload(opts: &HarnessOptions) -> (Graph, Vec<Graph>) {
    let g = rmat_graph(10_000, 10.0, 4, RmatParams::PAPER, 0x51E);
    let queries = generate_query_set(
        &g,
        QuerySetSpec {
            num_vertices: 6,
            density: Density::Dense,
            count: opts.queries.clamp(1, 4),
        },
        0x51F,
    );
    (g, queries)
}

fn workload_config(opts: &HarnessOptions) -> MatchConfig {
    MatchConfig {
        max_matches: Some(200_000),
        time_limit: Some(opts.time_limit.max(std::time::Duration::from_secs(5))),
        ..Default::default()
    }
}

/// `experiments profile` — run the workload traced, print each cell's span
/// tree, and (with `--profile-out`) dump JSONL + folded stacks.
pub fn run(opts: &HarnessOptions) {
    let (g, queries) = workload(opts);
    let gc = DataContext::new(&g);
    let pipeline = sm_match::Algorithm::GraphQl.optimized();
    let cfg = workload_config(opts);
    let threads = opts.threads.max(1);
    let mut profiles = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let meta = RunMeta {
            dataset: "rmat10k".into(),
            query: format!("q{i}"),
            config: format!("{}-t{}", pipeline.name, threads),
            threads,
            cancelled: false,
        };
        let (out, profile) = traced_cell(
            &pipeline,
            q,
            &gc,
            &cfg,
            threads,
            ParallelStrategy::Morsel,
            meta,
        );
        println!(
            "\n-- q{i}: {} matches in {:.2} ms ({:?})",
            out.matches,
            out.total_time().as_secs_f64() * 1e3,
            out.outcome
        );
        print!("{}", profile.render_tree());
        if let Err(e) = profile.validate() {
            eprintln!("warning: q{i} profile failed validation: {e}");
        }
        profiles.push(profile);
    }
    if let Some(path) = &opts.profile_out {
        write_profiles(path, &profiles);
        println!(
            "\nwrote {} profile(s) to {path} (+ {path}.folded)",
            profiles.len()
        );
    }
}

/// `experiments check-profile` — emit one traced cell, serialize, re-parse
/// and validate; exits non-zero on any mismatch. The CI schema gate.
pub fn check_profile(opts: &HarnessOptions) {
    let (g, queries) = workload(opts);
    let gc = DataContext::new(&g);
    let pipeline = sm_match::Algorithm::GraphQl.optimized();
    let cfg = workload_config(opts);
    let threads = opts.threads.max(2);
    let meta = RunMeta {
        dataset: "rmat10k".into(),
        query: "q0".into(),
        config: format!("{}-t{}", pipeline.name, threads),
        threads,
        cancelled: false,
    };
    let (_, profile) = traced_cell(
        &pipeline,
        &queries[0],
        &gc,
        &cfg,
        threads,
        ParallelStrategy::Morsel,
        meta,
    );
    let text = profile.to_jsonl();
    let reparsed = match RunProfile::parse_jsonl(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("check-profile: re-parse failed: {e}");
            std::process::exit(1);
        }
    };
    if reparsed != profile {
        eprintln!("check-profile: profile does not round-trip through JSONL");
        std::process::exit(1);
    }
    if let Err(e) = reparsed.validate() {
        eprintln!("check-profile: validation failed: {e}");
        std::process::exit(1);
    }
    println!(
        "check-profile: ok ({} spans, {} counter blocks, {} event rings, {} JSONL lines)",
        reparsed.spans.len(),
        reparsed.counters.len(),
        reparsed.events.len(),
        text.lines().count()
    );
}

/// `experiments trace-overhead` — run the same parallel workload with the
/// disabled trace handle and with tracing enabled, and report the relative
/// execution-time overhead. Exits non-zero above the smoke bound (50%,
/// generous because the workload runs milliseconds and CI machines are
/// noisy; the target for the *disabled* path — the baseline here — is <2%
/// against the pre-trace build, checked offline on the parallel bench).
pub fn trace_overhead(opts: &HarnessOptions) {
    const ROUNDS: usize = 3;
    const SMOKE_BOUND: f64 = 0.50;
    let (g, queries) = workload(opts);
    let gc = DataContext::new(&g);
    let pipeline = sm_match::Algorithm::GraphQl.optimized();
    let cfg = workload_config(opts);
    let threads = opts.threads.max(2);

    let run_all = |traced: bool| -> (f64, u64) {
        let mut total = 0.0f64;
        let mut matches = 0u64;
        for _ in 0..ROUNDS {
            for q in &queries {
                let cfg = if traced {
                    cfg.clone().with_trace(Trace::enabled())
                } else {
                    cfg.clone()
                };
                let out =
                    pipeline.run_parallel_with(q, &gc, &cfg, threads, ParallelStrategy::Morsel);
                total += out.enum_time.as_secs_f64();
                matches += out.matches;
            }
        }
        (total, matches)
    };
    // Warm-up round (page cache, allocator) discarded.
    let _ = run_all(false);
    let (disabled, m0) = run_all(false);
    let (enabled, m1) = run_all(true);
    assert_eq!(m0, m1, "tracing must not change results");
    let overhead = (enabled - disabled) / disabled.max(1e-9);
    println!(
        "trace-overhead: disabled {:.2} ms, enabled {:.2} ms, overhead {:+.1}% (smoke bound {:.0}%)",
        disabled * 1e3,
        enabled * 1e3,
        overhead * 100.0,
        SMOKE_BOUND * 100.0
    );
    if overhead > SMOKE_BOUND {
        eprintln!("trace-overhead: enabled tracing exceeds the smoke bound");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_profiles_separates_cells() {
        let a = "{\"type\":\"meta\",\"schema\":1}\n{\"type\":\"totals\"}\n";
        let b = "{\"type\":\"meta\",\"schema\":1}\n{\"type\":\"span\",\"id\":0}\n";
        let cells = split_profiles(&format!("{a}{b}"));
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0], a);
        assert_eq!(cells[1], b);
        assert!(split_profiles("").is_empty());
    }

    #[test]
    fn traced_cell_produces_valid_profile() {
        let g = sm_match::fixtures::paper_data();
        let q = sm_match::fixtures::paper_query();
        let gc = DataContext::new(&g);
        let pipeline = sm_match::Algorithm::GraphQl.optimized();
        let meta = RunMeta {
            dataset: "fixture".into(),
            query: "paper".into(),
            config: "GQL-t1".into(),
            threads: 1,
            cancelled: false,
        };
        let (out, profile) = traced_cell(
            &pipeline,
            &q,
            &gc,
            &MatchConfig::default(),
            1,
            ParallelStrategy::Morsel,
            meta,
        );
        assert_eq!(out.matches, 1);
        profile.validate().unwrap();
        let names: Vec<&str> = profile.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"run"));
        assert!(names.contains(&"plan"));
        assert!(names.contains(&"filter"));
        assert!(names.contains(&"execute"));
        assert!(profile.totals.get(sm_runtime::Counter::Matches) >= 1);
    }
}
