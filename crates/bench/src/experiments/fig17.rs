//! Figure 17: scalability on synthetic RMAT graphs — vary average degree,
//! label-set size, and vertex count around the paper's "sane default"
//! (scaled from |V| = 1M, d = 16, |Σ| = 16 to laptop size).
//!
//! GQLfs and RIfs must find **all** results (no 10^5 cap); points where
//! more than half the queries are unsolved are discarded, as in the paper.

use crate::args::HarnessOptions;
use crate::harness::eval_query_set;
use crate::table::{ms, TextTable};
use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_match::{Algorithm, DataContext, MatchConfig, Pipeline};

/// Scaled baseline: |V| = 100k, d = 16, |Σ| = 16.
pub const BASE_V: usize = 100_000;
/// Baseline average degree.
pub const BASE_D: f64 = 16.0;
/// Baseline label count.
pub const BASE_L: usize = 16;

fn pipelines() -> Vec<(Pipeline, &'static str)> {
    let mut gqlfs = Algorithm::GraphQl.optimized();
    gqlfs.name = "GQLfs".into();
    let mut rifs = Algorithm::Ri.optimized();
    rifs.name = "RIfs".into();
    vec![(gqlfs, "GQLfs"), (rifs, "RIfs")]
}

fn eval_point(g: &sm_graph::Graph, opts: &HarnessOptions) -> Vec<PointRow> {
    let gc = DataContext::new(g);
    let set = QuerySetSpec {
        num_vertices: 16,
        density: Density::Dense,
        count: opts.queries,
    };
    let queries = generate_query_set(g, set, 0xF17);
    let mut cfg = MatchConfig::find_all().with_failing_sets(true);
    cfg.time_limit = Some(opts.time_limit);
    pipelines()
        .into_iter()
        .map(|(p, name)| {
            let s = eval_query_set(&p, &queries, &gc, &cfg, opts.threads);
            (
                name.to_string(),
                s.avg_plan_build_ms() + s.avg_enum_ms(),
                s.unsolved(),
                s.avg_matches_if_mostly_solved(),
            )
        })
        .collect()
}

/// (algorithm name, avg time ms, unsolved count, avg results if mostly solved)
type PointRow = (String, f64, usize, Option<f64>);

fn print_sweep(label: &str, points: Vec<(String, Vec<PointRow>)>) {
    println!("\n=== Figure 17 ({label}): Q16D on RMAT, find-all ===");
    let mut t = TextTable::new(vec![
        "point",
        "algorithm",
        "time ms",
        "unsolved",
        "avg results",
    ]);
    for (point, rows) in points {
        for (name, time, unsolved, results) in rows {
            t.row(vec![
                point.clone(),
                name,
                ms(time),
                unsolved.to_string(),
                results.map_or("-".to_string(), |r| format!("{r:.0}")),
            ]);
        }
    }
    t.print();
}

/// Run the experiment.
pub fn run(opts: &HarnessOptions) {
    // (a) vary degree
    let mut pts = Vec::new();
    for d in [8.0, 12.0, 16.0, 20.0] {
        let g = rmat_graph(BASE_V, d, BASE_L, RmatParams::PAPER, 0x17A);
        pts.push((format!("d={d}"), eval_point(&g, opts)));
    }
    print_sweep("vary d(G)", pts);

    // (b) vary label count
    let mut pts = Vec::new();
    for l in [8usize, 12, 16, 20] {
        let g = rmat_graph(BASE_V, BASE_D, l, RmatParams::PAPER, 0x17B);
        pts.push((format!("|Sigma|={l}"), eval_point(&g, opts)));
    }
    print_sweep("vary |Sigma|", pts);

    // (c) vary vertex count
    let mut pts = Vec::new();
    for v in [25_000usize, 50_000, 100_000, 200_000] {
        let g = rmat_graph(v, BASE_D, BASE_L, RmatParams::PAPER, 0x17C);
        pts.push((format!("|V|={}k", v / 1000), eval_point(&g, opts)));
    }
    print_sweep("vary |V(G)|", pts);
    println!("(paper: sensitive to |Sigma| and d(G), much less to |V(G)|)");
}
