//! Self-tuning planner evaluation (`experiments planner`): Auto plan
//! selection vs fixed filter/order/kernel combos on Yeast and a seeded
//! RMAT graph.
//!
//! Per query, a fixed **panel** of representative combos (one per filter
//! family, spanning orders and kernels) is measured end to end; the
//! planner then runs the same query twice:
//!
//! * **auto-cold** — a first-arrival run: ranking from the cost model
//!   alone (no feedback for this form yet) plus the enumeration, with
//!   jump-redo enabled;
//! * **auto-warm** — the steady state after the panel measurements were
//!   folded into the feedback store: the form is ranked once and the
//!   ranking reused across [`WARM_RUNS`] repeat runs, exactly how the
//!   service tier's plan cache amortizes plan selection per canonical
//!   form. The reported time is the per-run mean including the
//!   amortized ranking.
//!
//! The table reports per-query best/worst fixed panel times against both
//! auto passes. A forced-mispredict row demonstrates the jump-redo path:
//! the measured-worst combo is deliberately ranked first and the run must
//! bail mid-enumeration and redo under the next combo, still producing
//! the reference count.
//!
//! The experiment is also a correctness and regression smoke (CI runs
//! it): every completed auto count is asserted equal to the completed
//! fixed counts, the forced mispredict must actually replan, and the
//! warm auto total must stay within [`AUTO_GATE`]× of the per-query best
//! fixed total.

use crate::args::HarnessOptions;
use crate::results::{envelope, write_bench_json, Json};
use crate::table::{ms, TextTable};
use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_graph::Graph;
use sm_match::{DataContext, MatchConfig, Outcome};
use sm_planner::{canon_hash, FeedbackStore, ObservedRun, PlanCombo, Planner, PlannerConfig};
use std::sync::Arc;
use std::time::Instant;

/// CI gate: warm auto may cost at most this factor of the per-query best
/// fixed total (planning overhead included).
pub const AUTO_GATE: f64 = 1.5;

/// Repeat runs the warm pass amortizes one ranking over — the plan-cache
/// steady state of the service tier (a hot form is ranked once, then
/// served from the cache).
const WARM_RUNS: usize = 8;

/// The fixed-combo comparison panel: one combo per filter family,
/// spanning the order heuristics and all four kernels. Best/worst are
/// defined over this panel (measuring all 168 combos per query would
/// dwarf the experiment).
const PANEL: [&str; 8] = [
    "LDF/QSI/Merge",
    "NLF/RI/Galloping",
    "GQL/GQL/Merge",
    "CFL/CFL/Hybrid",
    "CECI/CECI/QFilter",
    "DP/RI/Hybrid",
    "STEADY/VF2PP/QFilter",
    "LDF/GQL/Hybrid",
];

struct FixedRun {
    combo: PlanCombo,
    total_ns: u64,
    matches: u64,
    complete: bool,
    recursions: u64,
}

struct QueryRow {
    name: String,
    best: FixedRun,
    worst_label: String,
    worst_ns: u64,
    cold_ns: u64,
    warm_ns: u64,
}

/// Run one fixed panel combo end to end (filter + order + build + enum).
fn run_fixed(combo: PlanCombo, q: &Graph, ctx: &DataContext<'_>, cfg: &MatchConfig) -> FixedRun {
    let mut run_cfg = cfg.clone();
    run_cfg.intersect = combo.kernel;
    let out = combo.pipeline().run(q, ctx, &run_cfg);
    FixedRun {
        combo,
        total_ns: out.total_time().as_nanos() as u64,
        matches: out.matches,
        complete: out.outcome == Outcome::Complete,
        recursions: out.recursions,
    }
}

/// Evaluate one dataset; returns the per-query rows plus JSON rows.
fn run_dataset(
    name: &str,
    graph: &Graph,
    queries: &[Graph],
    cfg: &MatchConfig,
    table: &mut TextTable,
) -> (Vec<QueryRow>, Vec<Json>) {
    let ctx = DataContext::new(graph);
    let panel: Vec<PlanCombo> = PANEL
        .iter()
        .map(|l| PlanCombo::parse(l).expect("panel labels parse"))
        .collect();
    let planner = Planner::new();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (qi, q) in queries.iter().enumerate() {
        let qname = format!("{name}/q{qi}");
        let canon = canon_hash(q);

        // Auto-cold first: the model alone, before any feedback exists
        // for this canonical form (the planner observes its own runs, so
        // order matters).
        let t0 = Instant::now();
        let cold = planner.run_auto(q, &ctx, cfg, 1);
        let cold_ns = t0.elapsed().as_nanos() as u64;

        // The fixed panel, every run folded into the planner's feedback
        // store — this is the cross-run learning signal the warm pass
        // ranks with. Backtracks are proxied by recursions (every visited
        // node is eventually retracted; the pipeline API does not expose
        // the exact counter).
        let fixed: Vec<FixedRun> = panel.iter().map(|&c| run_fixed(c, q, &ctx, cfg)).collect();
        for f in &fixed {
            planner.observe(
                canon,
                &ObservedRun {
                    combo: f.combo,
                    total_ns: f.total_ns,
                    enum_ns: f.total_ns,
                    recursions: f.recursions,
                    backtracks: f.recursions,
                    completed: f.complete,
                    bailed: false,
                },
            );
        }
        let best_idx = (0..fixed.len())
            .min_by_key(|&i| fixed[i].total_ns)
            .expect("panel nonempty");
        let worst_idx = (0..fixed.len())
            .max_by_key(|&i| fixed[i].total_ns)
            .expect("panel nonempty");
        let worst_ns = fixed[worst_idx].total_ns;
        let worst_label = fixed[worst_idx].combo.label();

        // Warm steady state: one feedback-informed ranking, reused for
        // every repeat (the plan cache's behavior), timed per run with
        // the ranking amortized in.
        let t1 = Instant::now();
        let ranked = planner.rank(q, &ctx, cfg, canon);
        let rank_ns = t1.elapsed().as_nanos() as u64;
        let mut warm_bails = 0usize;
        let mut warm_run_ns = 0u64;
        let mut warm_last = None;
        for _ in 0..WARM_RUNS {
            let t = Instant::now();
            let (run, _) = planner.run_ranked(q, &ctx, cfg, canon, &ranked, 1, false);
            warm_run_ns += t.elapsed().as_nanos() as u64;
            warm_bails += run.attempts.iter().filter(|a| a.bailed).count();
            warm_last = Some(run);
        }
        let warm = warm_last.expect("WARM_RUNS > 0");
        let warm_ns = (rank_ns + warm_run_ns) / WARM_RUNS as u64;

        // Completed runs of any plan agree exactly — the correctness
        // smoke this experiment doubles as.
        if let Some(r) = fixed.iter().find(|f| f.complete) {
            for f in fixed.iter().filter(|f| f.complete) {
                assert_eq!(
                    f.matches,
                    r.matches,
                    "{qname}: fixed {} and {} disagree",
                    f.combo.label(),
                    r.combo.label()
                );
            }
            if cold.outcome == Outcome::Complete {
                assert_eq!(cold.matches, r.matches, "{qname}: auto-cold count diverges");
            }
            if warm.outcome == Outcome::Complete {
                assert_eq!(warm.matches, r.matches, "{qname}: auto-warm count diverges");
            }
        }

        let replans = (cold.attempts.iter().filter(|a| a.bailed).count() + warm_bails) as u64;
        let warm_combo = warm.combo.map_or("unsat".to_string(), |c| c.label());
        table.row(vec![
            qname.clone(),
            format!(
                "{} {}",
                ms(fixed[best_idx].total_ns as f64 / 1e6),
                fixed[best_idx].combo.label()
            ),
            format!("{} {}", ms(worst_ns as f64 / 1e6), worst_label),
            ms(cold_ns as f64 / 1e6),
            ms(warm_ns as f64 / 1e6),
            warm_combo.clone(),
            replans.to_string(),
        ]);
        json_rows.push(Json::obj(vec![
            ("query", Json::str(qname.clone())),
            (
                "best_fixed_ms",
                Json::Num(fixed[best_idx].total_ns as f64 / 1e6),
            ),
            ("best_combo", Json::str(fixed[best_idx].combo.label())),
            ("worst_fixed_ms", Json::Num(worst_ns as f64 / 1e6)),
            ("worst_combo", Json::str(worst_label.clone())),
            ("auto_cold_ms", Json::Num(cold_ns as f64 / 1e6)),
            ("auto_warm_ms", Json::Num(warm_ns as f64 / 1e6)),
            ("rank_ms", Json::Num(rank_ns as f64 / 1e6)),
            ("warm_runs", Json::Int(WARM_RUNS as i64)),
            ("auto_combo", Json::str(warm_combo)),
            ("replans", Json::Int(replans as i64)),
            ("matches", Json::Int(warm.matches as i64)),
        ]));
        let best = fixed.into_iter().nth(best_idx).expect("index in range");
        rows.push(QueryRow {
            name: qname,
            best,
            worst_label,
            worst_ns,
            cold_ns,
            warm_ns,
        });
    }
    (rows, json_rows)
}

/// Demonstrate the jump-redo path on the heaviest query: rank the
/// measured-worst combo first, the measured-best second, and run with a
/// tiny bailout budget. The first attempt must bail mid-enumeration and
/// the redo must still produce the reference count.
fn forced_mispredict(
    name: &str,
    graph: &Graph,
    q: &Graph,
    cfg: &MatchConfig,
    worst: &str,
    best: &str,
) -> Option<(Json, u64)> {
    let ctx = DataContext::new(graph);
    let demo = Planner::with_feedback(
        PlannerConfig {
            margin: 0.0,
            min_budget: 1,
            max_attempts: 2,
        },
        Arc::new(FeedbackStore::new()),
    );
    let canon = canon_hash(q);
    let ranked = demo.rank(q, &ctx, cfg, canon);
    let pick = |label: &str| ranked.iter().find(|s| s.combo.label() == label).copied();
    let misranked = vec![pick(worst)?, pick(best)?];
    let (run, _) = demo.run_ranked(q, &ctx, cfg, canon, &misranked, 1, false);
    let replans = run.attempts.iter().filter(|a| a.bailed).count() as u64;
    let attempts: Vec<Json> = run
        .attempts
        .iter()
        .map(|a| {
            Json::obj(vec![
                ("combo", Json::str(a.combo.label())),
                ("budget", Json::Int(a.budget as i64)),
                ("backtracks", Json::Int(a.backtracks as i64)),
                ("bailed", Json::Bool(a.bailed)),
                ("enum_ms", Json::Num(a.enum_ns as f64 / 1e6)),
            ])
        })
        .collect();
    println!(
        "jump-redo on {name}: misranked {worst} first -> {} attempts, {replans} replan(s), {} matches via {}",
        run.attempts.len(),
        run.matches,
        run.combo.map_or("unsat".to_string(), |c| c.label()),
    );
    Some((
        Json::obj(vec![
            ("dataset", Json::str(name)),
            ("misranked_first", Json::str(worst)),
            ("replans", Json::Int(replans as i64)),
            ("matches", Json::Int(run.matches as i64)),
            ("attempts", Json::Arr(attempts)),
        ]),
        replans,
    ))
}

/// Run the planner experiment.
pub fn run(opts: &HarnessOptions) {
    let count = opts.queries.clamp(2, 6);
    let specs = super::datasets_for(opts, &["ye"]);
    let Some(spec) = specs.first() else {
        eprintln!("planner: no dataset resolved");
        return;
    };
    let ds = super::load(spec);
    // 16-vertex dense queries: heavy enough that enumeration dominates
    // the per-query planning overhead the auto passes pay.
    let yeast_queries = super::query_set(
        &ds,
        QuerySetSpec {
            num_vertices: 16,
            density: Density::Dense,
            count,
        },
    );
    // A labelled power-law graph the repo generates rather than ships:
    // same generator family as the scaling experiments, seeded from
    // --seed so runs are reproducible.
    let rmat = rmat_graph(10_000, 8.0, 4, RmatParams::PAPER, opts.seed ^ 0xA11CE);
    let rmat_queries: Vec<Graph> = generate_query_set(
        &rmat,
        QuerySetSpec {
            num_vertices: 6,
            density: Density::Sparse,
            count,
        },
        opts.seed ^ 0x9E37,
    )
    .into_iter()
    .filter(|q| q.num_edges() >= 1)
    .collect();
    println!(
        "\n=== Planner: auto vs {}-combo fixed panel on {} + RMAT-10k ({} queries each, seed {}) ===",
        PANEL.len(),
        spec.name,
        count,
        opts.seed,
    );
    let mut table = TextTable::new(vec![
        "query",
        "best fixed",
        "worst fixed",
        "auto cold",
        "auto warm",
        "auto combo",
        "replans",
    ]);
    let cfg = MatchConfig::default().with_time_limit(opts.time_limit);
    let mut all_rows = Vec::new();
    let mut datasets_json = Vec::new();
    for (name, graph, queries) in [
        (spec.name, &ds.graph, &yeast_queries),
        ("rmat-10k", &rmat, &rmat_queries),
    ] {
        let (rows, json_rows) = run_dataset(name, graph, queries, &cfg, &mut table);
        datasets_json.push(Json::obj(vec![
            ("name", Json::str(name)),
            ("queries", Json::Int(rows.len() as i64)),
            ("rows", Json::Arr(json_rows)),
        ]));
        all_rows.extend(rows);
    }
    table.print();

    let best_total: u64 = all_rows.iter().map(|r| r.best.total_ns).sum();
    let worst_total: u64 = all_rows.iter().map(|r| r.worst_ns).sum();
    let cold_total: u64 = all_rows.iter().map(|r| r.cold_ns).sum();
    let warm_total: u64 = all_rows.iter().map(|r| r.warm_ns).sum();
    let vs_best = warm_total as f64 / best_total.max(1) as f64;
    let vs_worst = worst_total as f64 / warm_total.max(1) as f64;
    println!(
        "totals: best fixed {} | worst fixed {} | auto cold {} | auto warm {}",
        ms(best_total as f64 / 1e6),
        ms(worst_total as f64 / 1e6),
        ms(cold_total as f64 / 1e6),
        ms(warm_total as f64 / 1e6),
    );
    println!(
        "auto-warm (ranking amortized over {WARM_RUNS} runs) vs per-query best fixed: {vs_best:.2}x (target <= 1.2x, gate <= {AUTO_GATE}x); worst fixed vs auto-warm: {vs_worst:.1}x (target >= 2x)"
    );

    // Jump-redo demonstration: the heaviest query (most best-plan
    // recursions) from whichever dataset provides one deep enough to
    // cross the engine's poll boundary.
    let demo_row = all_rows
        .iter()
        .filter(|r| r.best.recursions > 4096 && r.worst_label != r.best.combo.label())
        .max_by_key(|r| r.best.recursions);
    let (jump_json, demo_replans) = demo_row
        .and_then(|r| {
            let (name, idx) = r.name.rsplit_once("/q").expect("row name format");
            let qi: usize = idx.parse().expect("row index");
            let (graph, queries): (&Graph, &Vec<Graph>) = if name == "rmat-10k" {
                (&rmat, &rmat_queries)
            } else {
                (&ds.graph, &yeast_queries)
            };
            forced_mispredict(
                name,
                graph,
                &queries[qi],
                &cfg,
                &r.worst_label,
                &r.best.combo.label(),
            )
        })
        .unwrap_or((Json::Null, 0));
    assert!(
        demo_replans >= 1,
        "forced mispredict must trigger at least one jump-redo replan"
    );
    assert!(
        vs_best <= AUTO_GATE,
        "auto-warm total {vs_best:.2}x exceeds the {AUTO_GATE}x gate over best fixed"
    );

    write_bench_json(
        "planner",
        &envelope(
            "planner",
            vec![
                ("seed", Json::Int(opts.seed as i64)),
                (
                    "time_limit_ms",
                    Json::Num(opts.time_limit.as_secs_f64() * 1e3),
                ),
                (
                    "panel",
                    Json::Arr(PANEL.iter().map(|l| Json::str(*l)).collect()),
                ),
                ("datasets", Json::Arr(datasets_json)),
                ("best_fixed_total_ms", Json::Num(best_total as f64 / 1e6)),
                ("worst_fixed_total_ms", Json::Num(worst_total as f64 / 1e6)),
                ("auto_cold_total_ms", Json::Num(cold_total as f64 / 1e6)),
                ("auto_warm_total_ms", Json::Num(warm_total as f64 / 1e6)),
                ("auto_vs_best", Json::Num(vs_best)),
                ("worst_vs_auto", Json::Num(vs_worst)),
                ("jump_redo", jump_json),
            ],
        ),
    );
}
