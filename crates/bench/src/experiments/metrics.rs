//! Telemetry-surface experiments: the `top` live view and the
//! `metrics-overhead` CI gate.
//!
//! **`top`** runs a multi-client workload against a sharded tier for
//! `--duration-ms` and prints a refreshed per-shard line every
//! `--refresh-ms`: queries/s and cache hit rate over the rolling
//! window, service-side p99, plus the tier's halo/skew gauges — all
//! read from [`sm_shard::ShardedService::metrics_report`], the same
//! snapshot a scraper would poll.
//!
//! **`metrics-overhead`** is the cost gate for always-on telemetry: the
//! same single-service workload runs with metrics enabled and disabled
//! in back-to-back per-query pairs, each query's best observed time
//! per side is kept, and the median per-query slowdown of the enabled
//! path must stay within
//! [`OVERHEAD_BOUND`] of the disabled one — the budget that justifies
//! defaulting [`sm_service::MetricsConfig::enabled`] to `true`. The
//! gate also round-trips the Prometheus exposition through
//! [`sm_runtime::metrics::prom::parse`] so a scrape regression fails CI
//! here, not in a dashboard.

use crate::args::HarnessOptions;
use crate::results::{envelope, write_bench_json, Json};
use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_graph::gen::random::erdos_renyi;
use sm_runtime::metrics::prom;
use sm_runtime::{Counter, Rng64};
use sm_service::{MetricsConfig, QueryRequest, Service, ServiceConfig};
use sm_shard::{PartitionStrategy, ShardConfig, ShardedService};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Allowed relative slowdown of the metrics-enabled service (2%).
pub const OVERHEAD_BOUND: f64 = 0.02;

/// Rounds in the overhead gate; each round runs one disabled/enabled
/// instance pair through [`OVERHEAD_PASSES`] passes of the query set.
const OVERHEAD_ROUNDS: usize = 20;

/// Query-set passes per round. Rounds × passes is the number of timed
/// samples each query's best-observed time is taken over.
const OVERHEAD_PASSES: usize = 6;

/// Service instances per side. Each instance's heap layout is a fresh
/// draw (ASLR, allocation order), and layout luck persists for the
/// whole process — a per-instance bias no amount of re-sampling on that
/// instance removes. Taking each query's best time across several
/// instances per side removes the draw along with the noise.
const OVERHEAD_INSTANCES: usize = 5;

/// Per-query embedding cap in the overhead workload: the generated
/// queries would otherwise enumerate unbounded millions on the dense
/// synthetic graph. Capped counts are exact (`CapHit` counts equal the
/// cap), so both services must still report identical totals.
const OVERHEAD_CAP: u64 = 20_000;

/// The `top` subcommand: live per-shard telemetry under load.
pub fn top(opts: &HarnessOptions) {
    let strategy = PartitionStrategy::from_name(&opts.partitioner)
        .expect("args parser admits only hash|label");
    // A per-shard view needs at least two shards to be interesting:
    // take the first requested count ≥ 2, else the last.
    let shards = opts
        .shards
        .iter()
        .copied()
        .find(|&s| s >= 2)
        .or_else(|| opts.shards.last().copied())
        .unwrap_or(2);
    let specs = super::datasets_for(opts, &["ye"]);
    let Some(spec) = specs.first() else {
        eprintln!("top: no dataset resolved");
        return;
    };
    let ds = super::load(spec);
    let (queries, halo_depth) =
        super::shard::supported_queries(&ds.graph, opts.queries.min(6).max(2), opts.seed ^ 0x51AB);
    let clients = opts.clients;
    let svc = Arc::new(ShardedService::new(
        ds.graph.clone(),
        ShardConfig {
            shards,
            strategy,
            halo_depth,
            seed: opts.seed,
            service: {
                let mut svc_cfg = ServiceConfig {
                    workers: (opts.threads.max(2) + shards - 1) / shards,
                    max_active: clients.max(2),
                    ..ServiceConfig::default()
                };
                super::apply_plan(&mut svc_cfg, &opts.plan);
                svc_cfg
            },
        },
    ));
    println!(
        "\n=== top: {} clients over {} ({} shards, {} partitioner), {:?} at {:?} refresh ===",
        clients,
        spec.name,
        shards,
        strategy.name(),
        opts.duration,
        opts.refresh,
    );
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let svc = svc.clone();
            let stop = stop.clone();
            let queries = queries.clone();
            let mut rng = Rng64::seed_from_u64(opts.seed ^ (c as u64).wrapping_mul(0x9e37));
            std::thread::spawn(move || {
                let mut done = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let idx = rng.next_u64_below(queries.len() as u64) as usize;
                    svc.run_count(queries[idx].clone());
                    done += 1;
                }
                done
            })
        })
        .collect();
    let started = Instant::now();
    let mut ticks = 0u64;
    while started.elapsed() < opts.duration {
        std::thread::sleep(opts.refresh.min(opts.duration));
        ticks += 1;
        let tier = svc.metrics_report();
        let skew = tier.merged.counters.get(Counter::ShardSkew);
        let halo = tier.merged.counters.get(Counter::HaloVerticesReplicated);
        println!(
            "[{:5.1}s] all: {:7.1} q/s  p99 {:8.2} ms  hit {:3.0}%  skew {skew}%  halo {halo}",
            started.elapsed().as_secs_f64(),
            tier.merged.qps(),
            tier.merged.total().quantile(0.99) as f64 / 1e6,
            tier.merged.cache_hit_rate() * 100.0,
        );
        for (i, r) in tier.per_shard.iter().enumerate() {
            println!(
                "         shard {i}: {:7.1} q/s  p99 {:8.2} ms  hit {:3.0}%",
                r.qps(),
                r.total().quantile(0.99) as f64 / 1e6,
                r.cache_hit_rate() * 100.0,
            );
        }
    }
    stop.store(true, Ordering::Relaxed);
    let total_done: u64 = workers
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .sum();
    // Planner activity (nonzero under `--plan auto`): how many plans the
    // cost model picked, how many live runs it abandoned mid-flight, and
    // how much feedback it folded back.
    let counters = svc.counters();
    println!(
        "planner: autotuned={} replans={} feedback={} evals={}",
        counters.get(Counter::PlansAutotuned),
        counters.get(Counter::ReplansTriggered),
        counters.get(Counter::FeedbackRecords),
        counters.get(Counter::EstimatorEvals),
    );
    let tier = svc.metrics_report();
    assert!(
        tier.merged.enabled && tier.merged.total().count() >= total_done,
        "telemetry saw every client submission ({} < {total_done})",
        tier.merged.total().count(),
    );
    println!(
        "top: {total_done} client queries over {ticks} refreshes; final merged p99 {:.2} ms",
        tier.merged.total().quantile(0.99) as f64 / 1e6
    );
}

/// The `metrics-overhead` subcommand: the always-on-telemetry cost
/// gate. Exits nonzero when the enabled service is more than
/// `bound` slower than the disabled one (CI passes
/// [`OVERHEAD_BOUND`]; the smoke test passes `None` — at smoke scale
/// the measurement is noise, only the wiring is under test), or when
/// the Prometheus exposition fails to parse back.
pub fn overhead(opts: &HarnessOptions, bound: Option<f64>) {
    // Serving-representative workload: a seeded Erdős–Rényi graph with
    // a small label alphabet, so each cached Q6 query enumerates
    // thousands of embeddings (up to [`OVERHEAD_CAP`]) — the telemetry's
    // fixed per-query cost is measured against real enumeration work,
    // not against the submission machinery alone.
    let graph = erdos_renyi(2_000, 12_000, 4, 0xC0FFEE ^ opts.seed);
    let queries: Vec<_> = generate_query_set(
        &graph,
        QuerySetSpec {
            num_vertices: 6,
            density: Density::Sparse,
            count: opts.queries.min(6).max(2),
        },
        opts.seed ^ 0x0BED,
    )
    .into_iter()
    .filter(|q| q.num_edges() >= 1)
    .collect();
    // One worker, deliberately: serial morsel execution makes each
    // query's runtime reproducible (a parallel cap race finishes at a
    // scheduler-dependent moment, burying a 2% signal in run-to-run
    // noise), and the telemetry cost under test is per-query, not
    // per-worker.
    let workers = 1;
    let build = |enabled: bool| {
        Service::new(
            graph.clone(),
            ServiceConfig {
                workers,
                metrics: MetricsConfig {
                    enabled,
                    ..MetricsConfig::default()
                },
                ..ServiceConfig::default()
            },
        )
    };
    // Steady-state serving cost: [`OVERHEAD_INSTANCES`] services per
    // configuration (construction interleaved so neither side gets the
    // systematically luckier heap addresses), a warm pass each to
    // compile and cache every plan (and fill the slow log to its
    // converged shape), then interleaved cache-hit passes — the path the
    // always-on default actually pays for on every query. Each timed
    // sample is one query run back to back on the disabled and the
    // enabled service (order alternating), so an off/on pair shares the
    // same ~millisecond of machine weather — frequency drift and noisy
    // neighbors hit both sides of a pair, not one. The statistic is
    // each query's **best** observed time per side over all of that
    // side's instances, summed: the work is deterministic and serial,
    // so timing noise is strictly additive and the minimum over many
    // samples converges to the true execution time — while the minimum
    // over several instances also sheds each instance's persistent
    // memory-layout draw, which re-sampling one instance never
    // averages out.
    let timed = |svc: &Service, q: &sm_graph::Graph, best: &mut f64| -> u64 {
        let t0 = Instant::now();
        let m = svc
            .submit(QueryRequest::count(q.clone()).with_cap(OVERHEAD_CAP))
            .wait()
            .matches;
        *best = best.min(t0.elapsed().as_secs_f64());
        m
    };
    let mut svcs_off = Vec::new();
    let mut svcs_on = Vec::new();
    for _ in 0..OVERHEAD_INSTANCES {
        svcs_off.push(build(false));
        svcs_on.push(build(true));
    }
    let mut best_off = vec![f64::INFINITY; queries.len()];
    let mut best_on = vec![f64::INFINITY; queries.len()];
    // Warm-up (plan compile + cache, allocator) discarded.
    let mut sink = f64::INFINITY;
    for j in 0..OVERHEAD_INSTANCES {
        for q in &queries {
            timed(&svcs_off[j], q, &mut sink);
            timed(&svcs_on[j], q, &mut sink);
        }
    }
    for i in 0..OVERHEAD_ROUNDS {
        let j = i % OVERHEAD_INSTANCES;
        let (off, on) = (&svcs_off[j], &svcs_on[j]);
        for p in 0..OVERHEAD_PASSES {
            for (qi, q) in queries.iter().enumerate() {
                // Alternate which side runs first within each pair, so
                // even a weather shift *between* the two runs of a pair
                // never lands systematically on one side.
                let (m0, m1) = if (i + p + qi) % 2 == 0 {
                    let m0 = timed(off, q, &mut best_off[qi]);
                    (m0, timed(on, q, &mut best_on[qi]))
                } else {
                    let m1 = timed(on, q, &mut best_on[qi]);
                    (timed(off, q, &mut best_off[qi]), m1)
                };
                assert_eq!(m0, m1, "telemetry must not change results");
            }
        }
    }
    let disabled: f64 = best_off.iter().sum();
    let enabled: f64 = best_on.iter().sum();
    // Gate statistic: the **median** of per-query overhead ratios. The
    // telemetry cost under test is per-query, so every query should
    // show it; the median reports that consensus while shrugging off
    // one query whose minima landed on an unlucky layout draw — which
    // a sum over queries would let tip the whole gate.
    let mut ratios: Vec<f64> = best_on
        .iter()
        .zip(&best_off)
        .map(|(on, off)| on / off.max(1e-9) - 1.0)
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    let overhead = (ratios[(ratios.len() - 1) / 2] + ratios[ratios.len() / 2]) / 2.0;
    println!(
        "metrics-overhead: disabled {:.2} ms, enabled {:.2} ms per query set \
         (best-of-{} per query over {} instances/side), median overhead {:+.2}% (bound {})",
        disabled * 1e3,
        enabled * 1e3,
        OVERHEAD_ROUNDS * OVERHEAD_PASSES,
        OVERHEAD_INSTANCES,
        overhead * 100.0,
        bound.map_or("none".to_string(), |b| format!("{:.0}%", b * 100.0)),
    );

    // Prometheus parse-back smoke on the service that did real work.
    let text = svcs_on[0].metrics_report().to_prometheus();
    let samples = prom::parse(&text).expect("exposition parses back");
    assert!(
        samples
            .iter()
            .any(|s| s.name == "sm_queries_admitted" && s.value >= queries.len() as f64),
        "exposition carries the admission counter"
    );
    assert!(
        samples.iter().any(|s| s.name == "sm_query_total_ns_count"),
        "exposition carries the latency summary"
    );
    println!(
        "metrics-overhead: exposition parse-back ok ({} samples)",
        samples.len()
    );

    write_bench_json(
        "metrics_overhead",
        &envelope(
            "metrics_overhead",
            vec![
                ("dataset", Json::str("er-2000-12000-l4")),
                ("queries", Json::Int(queries.len() as i64)),
                ("workers", Json::Int(workers as i64)),
                ("instances_per_side", Json::Int(OVERHEAD_INSTANCES as i64)),
                (
                    "samples_per_query",
                    Json::Int((OVERHEAD_ROUNDS * OVERHEAD_PASSES) as i64),
                ),
                ("disabled_ms", Json::Num(disabled * 1e3)),
                ("enabled_ms", Json::Num(enabled * 1e3)),
                ("overhead_pct", Json::Num(overhead * 100.0)),
                (
                    "sum_overhead_pct",
                    Json::Num((enabled - disabled) / disabled.max(1e-9) * 100.0),
                ),
                (
                    "bound_pct",
                    bound.map_or(Json::Null, |b| Json::Num(b * 100.0)),
                ),
            ],
        ),
    );
    if let Some(b) = bound {
        if overhead > b {
            eprintln!(
                "metrics-overhead: always-on telemetry exceeds the {:.0}% bound",
                b * 100.0
            );
            std::process::exit(1);
        }
    }
}
