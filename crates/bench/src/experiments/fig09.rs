//! Figure 9: speedup of the set-intersection local-candidate computation
//! (Algorithm 5 + all-edge candidate index) over each algorithm's original
//! enumeration, for QSI, GQL, CFL and VF2++.
//!
//! Per Section 5.2: QSI and 2PP keep their LDF candidates, GQL and CFL
//! keep their own filters; 2PP's extra runtime rules are removed in the
//! optimized variant.

use crate::args::HarnessOptions;
use crate::experiments::{datasets_for, default_query_sets, load, query_set};
use crate::harness::eval_query_set;
use crate::table::{ratio, TextTable};
use sm_match::{FilterKind, LcMethod, OrderKind, Pipeline};

/// The (name, original, optimized) pipeline pairs of Figure 9.
pub fn pairs() -> Vec<(&'static str, Pipeline, Pipeline)> {
    let mut vf_orig = Pipeline::new(
        "2PP-orig",
        FilterKind::Ldf,
        OrderKind::Vf2pp,
        LcMethod::Direct,
    );
    vf_orig.vf2pp_rule = true;
    vec![
        (
            "QSI",
            Pipeline::new(
                "QSI-orig",
                FilterKind::Ldf,
                OrderKind::QuickSi,
                LcMethod::Direct,
            ),
            Pipeline::new(
                "QSI-opt",
                FilterKind::Ldf,
                OrderKind::QuickSi,
                LcMethod::Intersect,
            ),
        ),
        (
            "GQL",
            Pipeline::new(
                "GQL-orig",
                FilterKind::GraphQl,
                OrderKind::GraphQl,
                LcMethod::CandidateScan,
            ),
            Pipeline::new(
                "GQL-opt",
                FilterKind::GraphQl,
                OrderKind::GraphQl,
                LcMethod::Intersect,
            ),
        ),
        (
            "CFL",
            Pipeline::new(
                "CFL-orig",
                FilterKind::Cfl,
                OrderKind::Cfl,
                LcMethod::TreeIndex,
            ),
            Pipeline::new(
                "CFL-opt",
                FilterKind::Cfl,
                OrderKind::Cfl,
                LcMethod::Intersect,
            ),
        ),
        (
            "2PP",
            vf_orig,
            Pipeline::new(
                "2PP-opt",
                FilterKind::Ldf,
                OrderKind::Vf2pp,
                LcMethod::Intersect,
            ),
        ),
    ]
}

/// Run the experiment.
pub fn run(opts: &HarnessOptions) {
    println!("\n=== Figure 9: enumeration speedup of intersection-based LC (orig/opt) ===");
    let specs = datasets_for(opts, &["ye", "hu", "yt", "eu"]);
    let cfg = crate::experiments::measure_config(opts);
    let mut t = TextTable::new(
        std::iter::once("algorithm".to_string())
            .chain(specs.iter().map(|d| d.abbrev.to_string()))
            .collect(),
    );
    let prs = pairs();
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for spec in &specs {
        let ds = load(spec);
        let gc = sm_match::DataContext::new(&ds.graph);
        let mut queries = Vec::new();
        for (_, s) in default_query_sets(spec, opts.queries) {
            queries.extend(query_set(&ds, s));
        }
        let col = prs
            .iter()
            .map(|(_, orig, opt)| {
                let a = eval_query_set(orig, &queries, &gc, &cfg, opts.threads);
                let b = eval_query_set(opt, &queries, &gc, &cfg, opts.threads);
                let bo = b.avg_enum_ms().max(1e-6);
                a.avg_enum_ms() / bo
            })
            .collect();
        cols.push(col);
    }
    for (pi, (name, _, _)) in prs.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for col in &cols {
            row.push(ratio(col[pi]));
        }
        t.row(row);
    }
    t.print();
    println!("(values > 1 mean the Algorithm-5 optimization is faster)");
}
