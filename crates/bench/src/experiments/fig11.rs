//! Figure 11: enumeration time of the seven ordering methods under the
//! Section-5.3 controls: every engine uses intersection-based local
//! candidates; QSI, RI and 2PP borrow GraphQL's candidate sets; failing
//! sets are disabled.

use crate::args::HarnessOptions;
use crate::experiments::{
    datasets_for, default_query_sets, dense_sweep, load, measure_config, query_set, sparse_sweep,
    ALL_DATASETS,
};
use crate::harness::eval_query_set;
use crate::table::{ms, TextTable};
use sm_match::{Algorithm, DataContext, Pipeline};

/// The measured pipelines: exactly [`Algorithm::optimized`] for the seven
/// framework algorithms (which encodes the section's candidate-set
/// borrowing).
pub fn ordering_pipelines() -> Vec<Pipeline> {
    Algorithm::all().iter().map(|a| a.optimized()).collect()
}

/// Run the experiment.
pub fn run(opts: &HarnessOptions) {
    let pipelines = ordering_pipelines();
    let cfg = measure_config(opts); // failing sets off by default

    println!("\n=== Figure 11(a): enumeration time (ms) per dataset (ordering methods) ===");
    let specs = datasets_for(opts, &ALL_DATASETS);
    let mut t = TextTable::new(
        std::iter::once("order".to_string())
            .chain(specs.iter().map(|d| d.abbrev.to_string()))
            .collect(),
    );
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for spec in &specs {
        let ds = load(spec);
        let gc = DataContext::new(&ds.graph);
        let mut queries = Vec::new();
        for (_, s) in default_query_sets(spec, opts.queries) {
            queries.extend(query_set(&ds, s));
        }
        cols.push(
            pipelines
                .iter()
                .map(|p| eval_query_set(p, &queries, &gc, &cfg, opts.threads).avg_enum_ms())
                .collect(),
        );
    }
    for (pi, p) in pipelines.iter().enumerate() {
        let mut row = vec![p.name.clone()];
        for col in &cols {
            row.push(ms(col[pi]));
        }
        t.row(row);
    }
    t.print();

    let spec = specs
        .iter()
        .find(|d| d.abbrev == "yt")
        .copied()
        .unwrap_or(specs[0]);
    let ds = load(&spec);
    let gc = DataContext::new(&ds.graph);

    println!(
        "\n=== Figure 11(b): enumeration time (ms) on {}, vary |V(q)| (dense) ===",
        spec.abbrev
    );
    let sweep = dense_sweep(&spec, opts.queries);
    let mut t = TextTable::new(
        std::iter::once("order".to_string())
            .chain(sweep.iter().map(|(n, _)| n.clone()))
            .collect(),
    );
    let sweep_queries: Vec<_> = sweep.iter().map(|(_, s)| query_set(&ds, *s)).collect();
    for p in &pipelines {
        let mut row = vec![p.name.clone()];
        for qs in &sweep_queries {
            row.push(ms(
                eval_query_set(p, qs, &gc, &cfg, opts.threads).avg_enum_ms()
            ));
        }
        t.row(row);
    }
    t.print();

    println!(
        "\n=== Figure 11(c): enumeration time (ms) on {}, dense vs sparse ===",
        spec.abbrev
    );
    let dense = query_set(&ds, dense_sweep(&spec, opts.queries).last().unwrap().1);
    let sparse = query_set(&ds, sparse_sweep(&spec, opts.queries).last().unwrap().1);
    let mut t = TextTable::new(vec!["order", "dense", "sparse"]);
    for p in &pipelines {
        t.row(vec![
            p.name.clone(),
            ms(eval_query_set(p, &dense, &gc, &cfg, opts.threads).avg_enum_ms()),
            ms(eval_query_set(p, &sparse, &gc, &cfg, opts.threads).avg_enum_ms()),
        ]);
    }
    t.print();
}
