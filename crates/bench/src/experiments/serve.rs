//! Multi-client service throughput — an extension experiment over the
//! `sm-service` layer: N client threads submit a small query workload
//! (each client walking the set from a different offset, so the same
//! plans are requested concurrently) against one [`Service`].
//!
//! What the table shows, per configuration:
//!
//! * **throughput** and latency percentiles (p50/p99) across all client
//!   submissions,
//! * the **plan-cache hit rate** — with caching on, every query after a
//!   plan's first compilation reuses it; the `no-cache` row pays
//!   compilation on every submission,
//! * a **deadline** row where every query carries a tiny budget and must
//!   terminate with an explicit `Deadline` outcome (partial counts), not
//!   a hang.
//!
//! The experiment is also a correctness smoke (CI runs it): every
//! concurrent per-query count is asserted equal to the sequential
//! [`sm_match::Pipeline`] count of the same query, and the cached run
//! must observe a nonzero hit rate — violations panic.

use crate::args::HarnessOptions;
use crate::results::{envelope, latency_obj, write_bench_json, Json};
use crate::table::{ms, TextTable};
use sm_graph::gen::query::{Density, QuerySetSpec};
use sm_match::{DataContext, MatchConfig};
use sm_runtime::{Counter, Rng64};
use sm_service::{QueryRequest, Service, ServiceConfig, ServiceOutcome};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rounds each client walks the query set.
const ROUNDS: usize = 4;

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

/// Run the service experiment.
pub fn run(opts: &HarnessOptions) {
    let specs = super::datasets_for(opts, &["ye"]);
    let Some(spec) = specs.first() else {
        eprintln!("serve: no dataset resolved");
        return;
    };
    let ds = super::load(spec);
    let queries = super::query_set(
        &ds,
        QuerySetSpec {
            num_vertices: 8,
            density: Density::Dense,
            count: opts.queries.min(6).max(2),
        },
    );
    let clients = opts.clients;
    let pipeline = sm_match::Algorithm::GraphQl.optimized();

    // Sequential ground truth, one plan compile + run per query.
    let gc = DataContext::new(&ds.graph);
    let cfg = MatchConfig::default(); // 10^5 cap, no time limit
    let expected: Vec<u64> = queries
        .iter()
        .map(|q| pipeline.run(q, &gc, &cfg).matches)
        .collect();
    println!(
        "\n=== Service: {} clients x {} rounds over {} queries (Q8D) on {} ({} workers, seed {}, plan {}) ===",
        clients,
        ROUNDS,
        queries.len(),
        spec.name,
        opts.threads.max(2),
        opts.seed,
        opts.plan.label(),
    );

    let mut t = TextTable::new(vec![
        "mode", "queries", "wall ms", "q/s", "p50 ms", "p99 ms", "svc p50", "svc p99", "hit rate",
        "outcomes",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    for (mode, cache_capacity) in [("cached", 256usize), ("no-cache", 0)] {
        let mut svc_cfg = ServiceConfig {
            workers: opts.threads.max(2),
            max_active: clients.max(2),
            cache_capacity,
            pipeline: pipeline.clone(),
            ..ServiceConfig::default()
        };
        super::apply_plan(&mut svc_cfg, &opts.plan);
        let svc = Arc::new(Service::new(ds.graph.clone(), svc_cfg));
        let started = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let svc = svc.clone();
                let queries = queries.clone();
                let expected = expected.clone();
                // Seeded per-client schedule: the same --seed replays the
                // same submission order run to run, while different
                // clients still interleave the same plans concurrently.
                let mut rng = Rng64::seed_from_u64(opts.seed ^ (c as u64).wrapping_mul(0x9e37));
                std::thread::spawn(move || {
                    let mut lat = Vec::new();
                    for _ in 0..ROUNDS {
                        for _ in 0..queries.len() {
                            let idx = rng.next_u64_below(queries.len() as u64) as usize;
                            let t0 = Instant::now();
                            let report = svc.run_count(queries[idx].clone());
                            lat.push(t0.elapsed().as_secs_f64() * 1e3);
                            let complete = matches!(
                                report.outcome,
                                ServiceOutcome::Complete | ServiceOutcome::CapHit
                            );
                            assert!(complete, "unexpected outcome {:?}", report.outcome);
                            assert_eq!(
                                report.matches, expected[idx],
                                "count mismatch on query {idx}: concurrent {} vs sequential {}",
                                report.matches, expected[idx]
                            );
                        }
                    }
                    lat
                })
            })
            .collect();
        let mut lat: Vec<f64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect();
        let wall = started.elapsed().as_secs_f64() * 1e3;
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let counters = svc.counters();
        let (hits, misses, _, _) = svc.cache_stats();
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
        if cache_capacity > 0 {
            assert!(
                hits > 0,
                "cached mode must observe plan-cache hits (got {hits}/{misses})"
            );
        }
        // Service-side (submit→terminal) latency from the always-on
        // telemetry histograms — the cross-check for the client-observed
        // percentiles above.
        let report = svc.metrics_report();
        let total = report.total();
        assert_eq!(
            total.count(),
            lat.len() as u64,
            "telemetry saw every submission"
        );
        t.row(vec![
            mode.to_string(),
            lat.len().to_string(),
            ms(wall),
            format!("{:.0}", lat.len() as f64 / (wall / 1e3).max(1e-9)),
            ms(percentile(&lat, 0.5)),
            ms(percentile(&lat, 0.99)),
            ms(total.quantile(0.50) as f64 / 1e6),
            ms(total.quantile(0.99) as f64 / 1e6),
            format!("{:.0}%", hit_rate * 100.0),
            format!(
                "admitted={} rejected={}",
                counters.get(Counter::QueriesAdmitted),
                counters.get(Counter::QueriesRejected)
            ),
        ]);
        rows.push(Json::obj(vec![
            ("mode", Json::str(mode)),
            ("queries", Json::Int(lat.len() as i64)),
            ("wall_ms", Json::Num(wall)),
            ("qps", Json::Num(lat.len() as f64 / (wall / 1e3).max(1e-9))),
            ("p50_ms", Json::Num(percentile(&lat, 0.5))),
            ("p99_ms", Json::Num(percentile(&lat, 0.99))),
            ("latency", latency_obj(&total)),
            ("cache_hit_rate", Json::Num(hit_rate)),
            (
                "admitted",
                Json::Int(counters.get(Counter::QueriesAdmitted) as i64),
            ),
            (
                "rejected",
                Json::Int(counters.get(Counter::QueriesRejected) as i64),
            ),
        ]));
    }

    // Deadline row: every query under a 1-tick budget terminates with an
    // explicit Deadline outcome (or completes if it truly was that fast).
    {
        let mut svc_cfg = ServiceConfig {
            workers: opts.threads.max(2),
            pipeline: pipeline.clone(),
            default_deadline: Some(Duration::from_micros(1)),
            ..ServiceConfig::default()
        };
        super::apply_plan(&mut svc_cfg, &opts.plan);
        let svc = Service::new(ds.graph.clone(), svc_cfg);
        let started = Instant::now();
        let mut deadline_hits = 0usize;
        let mut lat = Vec::new();
        for q in &queries {
            let t0 = Instant::now();
            let report = svc.submit(QueryRequest::count(q.clone())).wait();
            lat.push(t0.elapsed().as_secs_f64() * 1e3);
            match report.outcome {
                ServiceOutcome::Deadline => deadline_hits += 1,
                ServiceOutcome::Complete | ServiceOutcome::CapHit => {}
                other => panic!("deadline run ended with {other:?}"),
            }
        }
        let wall = started.elapsed().as_secs_f64() * 1e3;
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let total = svc.metrics_report().total();
        t.row(vec![
            "deadline-1µs".to_string(),
            queries.len().to_string(),
            ms(wall),
            format!("{:.0}", queries.len() as f64 / (wall / 1e3).max(1e-9)),
            ms(percentile(&lat, 0.5)),
            ms(percentile(&lat, 0.99)),
            ms(total.quantile(0.50) as f64 / 1e6),
            ms(total.quantile(0.99) as f64 / 1e6),
            "-".to_string(),
            format!("deadline={deadline_hits}/{}", queries.len()),
        ]);
        rows.push(Json::obj(vec![
            ("mode", Json::str("deadline-1us")),
            ("queries", Json::Int(queries.len() as i64)),
            ("wall_ms", Json::Num(wall)),
            ("p50_ms", Json::Num(percentile(&lat, 0.5))),
            ("p99_ms", Json::Num(percentile(&lat, 0.99))),
            ("latency", latency_obj(&total)),
            ("deadline_hits", Json::Int(deadline_hits as i64)),
        ]));
    }
    t.print();
    println!("(per-query counts asserted equal to sequential Pipeline runs; 'cached' must hit the plan cache. hit rate counts plan-cache lookups; q/s is client-observed throughput)");
    write_bench_json(
        "serve",
        &envelope(
            "serve",
            vec![
                ("dataset", Json::str(spec.name)),
                ("clients", Json::Int(clients as i64)),
                ("rounds", Json::Int(ROUNDS as i64)),
                ("workers", Json::Int(opts.threads.max(2) as i64)),
                ("seed", Json::Int(opts.seed as i64)),
                ("rows", Json::Arr(rows)),
            ],
        ),
    );
}
