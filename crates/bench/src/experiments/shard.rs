//! Sharded serving scaling — the `sm-shard` scatter-gather tier under a
//! multi-client workload, swept over shard counts (`--shards`, default
//! 1,2,4,8) on Yeast plus a seeded RMAT graph.
//!
//! What the table shows, per (dataset, shard count):
//!
//! * **throughput** and latency percentiles (p50/p99) across all client
//!   submissions routed through the scatter-gather path,
//! * the **halo cost** — how many vertices the k-hop replication
//!   duplicates onto non-owner shards at this shard count,
//! * **skew** — the max per-shard local edge count as a percentage of
//!   the even share (100% = perfectly balanced),
//! * **stitched** — embeddings that crossed a shard border and were
//!   attributed through the halo (exactly-once via minimum-id
//!   ownership).
//!
//! The experiment is also a correctness smoke (CI runs it): every
//! sharded per-query count is asserted equal to the single-`Service`
//! ground-truth count of the same query, and the router's fan-out
//! counter must equal submissions x shards — violations panic.

use crate::args::HarnessOptions;
use crate::results::{envelope, latency_obj, write_bench_json, Json};
use crate::table::{ms, TextTable};
use sm_graph::builder::graph_from_edges;
use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_graph::traversal::diameter;
use sm_graph::Graph;
use sm_runtime::{Counter, Rng64};
use sm_service::{Service, ServiceConfig, ServiceOutcome};
use sm_shard::{PartitionStrategy, ShardConfig, ShardedService};
use std::sync::Arc;
use std::time::Instant;

/// Rounds each client walks the query set.
const ROUNDS: usize = 3;

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

/// Queries the sharded tier supports: connected, at least one edge.
/// The halo depth is then sized to the largest surviving diameter, so
/// every kept query is answerable at any shard count.
pub(crate) fn supported_queries(g: &Graph, count: usize, seed: u64) -> (Vec<Graph>, u32) {
    let mut qs: Vec<Graph> = generate_query_set(
        g,
        QuerySetSpec {
            num_vertices: 8,
            density: Density::Dense,
            count,
        },
        seed,
    )
    .into_iter()
    .filter(|q| q.num_edges() >= 1 && diameter(q).is_some())
    .collect();
    if qs.is_empty() {
        // Degenerate generator output: fall back to a triangle.
        qs.push(graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]));
    }
    let halo = qs.iter().filter_map(diameter).max().unwrap_or(1).max(1);
    (qs, halo)
}

/// Run the sharding experiment.
pub fn run(opts: &HarnessOptions) {
    let strategy = PartitionStrategy::from_name(&opts.partitioner)
        .expect("args parser admits only hash|label");
    let count = opts.queries.min(6).max(2);
    let clients = opts.clients;
    let total_workers = opts.threads.max(2);

    // Yeast (the paper's smallest dataset) plus a seeded RMAT stand-in
    // with more vertices and skewed degrees — partitioning behaves very
    // differently on the two.
    let mut datasets: Vec<(String, Graph)> = Vec::new();
    for spec in super::datasets_for(opts, &["ye"]) {
        datasets.push((spec.name.to_string(), super::load(&spec).graph));
    }
    datasets.push((
        "rmat-1k".to_string(),
        rmat_graph(1000, 8.0, 4, RmatParams::PAPER, opts.seed),
    ));

    println!(
        "\n=== Sharded serving: {} clients x {} rounds, {} partitioner, shards {:?} ({} total workers, seed {}) ===",
        clients, ROUNDS, strategy.name(), opts.shards, total_workers, opts.seed,
    );
    let mut t = TextTable::new(vec![
        "dataset", "shards", "queries", "wall ms", "q/s", "p50 ms", "p99 ms", "svc p99", "halo",
        "skew", "stitched",
    ]);
    let mut rows: Vec<Json> = Vec::new();

    for (ds_name, graph) in &datasets {
        let (queries, halo_depth) = supported_queries(graph, count, opts.seed ^ 0x51AB);
        // Single-service ground truth with the same cap semantics: the
        // router enforces the exact same default cap across shards.
        let oracle = Service::new(graph.clone(), ServiceConfig::default());
        let expected: Vec<u64> = queries
            .iter()
            .map(|q| oracle.run_count(q.clone()).matches)
            .collect();
        drop(oracle);

        for &shards in &opts.shards {
            // Fixed total worker budget: scaling out divides the pool.
            let per_shard_workers = (total_workers + shards - 1) / shards;
            let svc = Arc::new(ShardedService::new(
                graph.clone(),
                ShardConfig {
                    shards,
                    strategy,
                    halo_depth,
                    seed: opts.seed,
                    service: {
                        let mut svc_cfg = ServiceConfig {
                            workers: per_shard_workers.max(1),
                            max_active: clients.max(2),
                            ..ServiceConfig::default()
                        };
                        super::apply_plan(&mut svc_cfg, &opts.plan);
                        svc_cfg
                    },
                },
            ));
            let started = Instant::now();
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let svc = svc.clone();
                    let queries = queries.clone();
                    let expected = expected.clone();
                    // Seeded per-(client, shard-count) schedule: the same
                    // --seed replays the same submission order.
                    let mut rng = Rng64::seed_from_u64(
                        opts.seed
                            ^ (c as u64).wrapping_mul(0x9e37)
                            ^ (shards as u64).wrapping_mul(0xA5A5_A5A5),
                    );
                    std::thread::spawn(move || {
                        let mut lat = Vec::new();
                        for _ in 0..ROUNDS {
                            for _ in 0..queries.len() {
                                let idx = rng.next_u64_below(queries.len() as u64) as usize;
                                let t0 = Instant::now();
                                let report = svc.run_count(queries[idx].clone());
                                lat.push(t0.elapsed().as_secs_f64() * 1e3);
                                let complete = matches!(
                                    report.outcome,
                                    ServiceOutcome::Complete | ServiceOutcome::CapHit
                                );
                                assert!(complete, "unexpected outcome {:?}", report.outcome);
                                assert_eq!(
                                    report.matches,
                                    expected[idx],
                                    "count mismatch on query {idx} at {} shards: \
                                     sharded {} vs single-service {}",
                                    svc.num_shards(),
                                    report.matches,
                                    expected[idx]
                                );
                            }
                        }
                        lat
                    })
                })
                .collect();
            let mut lat: Vec<f64> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread panicked"))
                .collect();
            let wall = started.elapsed().as_secs_f64() * 1e3;
            lat.sort_by(|a, b| a.partial_cmp(b).unwrap());

            // Merged shard-side telemetry: per-shard submit→terminal
            // latency folded across shards (the shard services see one
            // fan-out submission per client query each).
            let tier = svc.metrics_report();
            let total = tier.merged.total();
            let counters = svc.counters();
            let fanned = counters.get(Counter::QueriesFannedOut);
            let stitched = counters.get(Counter::BoundaryEmbeddingsStitched);
            let halo_vertices = counters.get(Counter::HaloVerticesReplicated);
            let skew = counters.get(Counter::ShardSkew);
            assert_eq!(
                fanned,
                (lat.len() * shards) as u64,
                "every submission fans out to every shard"
            );
            let details: Vec<Json> = svc
                .shard_details()
                .iter()
                .map(|d| {
                    Json::obj(vec![
                        ("shard", Json::Int(d.shard as i64)),
                        ("owned", Json::Int(d.owned as i64)),
                        ("halo", Json::Int(d.halo as i64)),
                        ("local_edges", Json::Int(d.local_edges as i64)),
                        ("epoch", Json::Int(d.epoch as i64)),
                        (
                            "admitted",
                            Json::Int(d.counters.get(Counter::QueriesAdmitted) as i64),
                        ),
                        (
                            "streamed",
                            Json::Int(d.counters.get(Counter::EmbeddingsStreamed) as i64),
                        ),
                    ])
                })
                .collect();

            t.row(vec![
                ds_name.clone(),
                shards.to_string(),
                lat.len().to_string(),
                ms(wall),
                format!("{:.0}", lat.len() as f64 / (wall / 1e3).max(1e-9)),
                ms(percentile(&lat, 0.5)),
                ms(percentile(&lat, 0.99)),
                ms(total.quantile(0.99) as f64 / 1e6),
                halo_vertices.to_string(),
                format!("{skew}%"),
                stitched.to_string(),
            ]);
            rows.push(Json::obj(vec![
                ("dataset", Json::str(ds_name.clone())),
                ("shards", Json::Int(shards as i64)),
                ("halo_depth", Json::Int(halo_depth as i64)),
                ("queries", Json::Int(lat.len() as i64)),
                ("wall_ms", Json::Num(wall)),
                ("qps", Json::Num(lat.len() as f64 / (wall / 1e3).max(1e-9))),
                ("p50_ms", Json::Num(percentile(&lat, 0.5))),
                ("p99_ms", Json::Num(percentile(&lat, 0.99))),
                ("latency", latency_obj(&total)),
                ("fanned_out", Json::Int(fanned as i64)),
                ("stitched", Json::Int(stitched as i64)),
                ("halo_vertices", Json::Int(halo_vertices as i64)),
                ("skew_pct", Json::Int(skew as i64)),
                ("shard_details", Json::Arr(details)),
            ]));
        }
    }
    t.print();
    println!(
        "(per-query sharded counts asserted equal to single-service ground truth; \
         halo = vertices replicated onto non-owner shards; skew = max shard's local \
         edges vs even share; stitched = kept embeddings crossing a shard border)"
    );
    write_bench_json(
        "shard",
        &envelope(
            "shard",
            vec![
                (
                    "datasets",
                    Json::Arr(datasets.iter().map(|(n, _)| Json::str(n.clone())).collect()),
                ),
                ("partitioner", Json::str(strategy.name())),
                (
                    "shard_counts",
                    Json::Arr(opts.shards.iter().map(|&s| Json::Int(s as i64)).collect()),
                ),
                ("clients", Json::Int(clients as i64)),
                ("rounds", Json::Int(ROUNDS as i64)),
                ("workers", Json::Int(total_workers as i64)),
                ("seed", Json::Int(opts.seed as i64)),
                ("rows", Json::Arr(rows)),
            ],
        ),
    );
}
