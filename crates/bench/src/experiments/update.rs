//! Dynamic-graph update benchmark — an extension experiment over
//! `sm-delta`: a seeded update stream mutates the benchmark graph batch
//! by batch while a set of standing queries is maintained two ways —
//! **incrementally** (delta-driven enumeration seeded from each changed
//! edge) and by **full recompute** on the materialized post graph.
//!
//! What the table shows, per batch:
//!
//! * commit latency (normalization + overlay patching),
//! * incremental maintenance time vs full-recompute time and the
//!   resulting **speedup** — the point of the subsystem: for small
//!   batches the incremental path touches only embeddings using changed
//!   edges, so the speedup should be large (the acceptance bar is ≥5×
//!   on the default configuration),
//! * the embedding churn (added/retracted) of the batch.
//!
//! The experiment is also a correctness smoke (CI runs it): after every
//! batch the incrementally maintained embedding set of every standing
//! query is asserted equal to the from-scratch set, and a snapshot
//! pinned before the stream still materializes the original graph —
//! violations panic. A service row at the end measures the end-to-end
//! [`sm_service::Service::apply_update`] path (install + scoped cache
//! retargeting + standing maintenance) on the same stream.

use crate::args::HarnessOptions;
use crate::results::{envelope, write_bench_json, Json};
use crate::table::{ms, TextTable};
use sm_delta::{delta_matches, StandingQuery, UpdateStream, UpdateStreamSpec, VersionedGraph};
use sm_graph::gen::query::{Density, QuerySetSpec};
use sm_graph::{Graph, VertexId};
use sm_match::enumerate::CollectSink;
use sm_match::{DataContext, FilterKind, LcMethod, MatchConfig, OrderKind, Pipeline};
use sm_service::{Service, ServiceConfig};
use std::sync::Arc;
use std::time::Instant;

/// Update batches applied per run.
const STEPS: usize = 10;
/// Operations per batch — small on purpose: the incremental-vs-full
/// speedup claim is about small deltas.
const BATCH_OPS: usize = 8;

/// From-scratch sorted embedding set (the representation
/// `DeltaMatches::apply_to` maintains).
fn full_matches(q: &Graph, g: &Graph) -> Vec<Vec<VertexId>> {
    let ctx = DataContext::new(g);
    let p = Pipeline::new("ref", FilterKind::Ldf, OrderKind::Ri, LcMethod::Direct);
    let mut sink = CollectSink::default();
    p.run_with_sink(q, &ctx, &MatchConfig::find_all(), &mut sink);
    let mut m = sink.matches;
    m.sort_unstable();
    m
}

/// Compile a standing query (plan against the query itself — always
/// satisfiable; the incremental engine only reads the plan's query).
fn standing_query(q: &Graph) -> Option<StandingQuery> {
    let ctx = DataContext::new(q);
    let order: Vec<VertexId> = (0..q.num_vertices() as VertexId).collect();
    let p = Pipeline::new(
        "standing",
        FilterKind::Ldf,
        OrderKind::Fixed(order),
        LcMethod::Direct,
    );
    let plan = p.plan(q, &ctx, &MatchConfig::default()).ok()?;
    StandingQuery::new(Arc::new(plan))
}

/// The unordered vertex-label pair with the most edges.
fn top_edge_label_pair(g: &Graph) -> Option<(u32, u32)> {
    let mut counts = std::collections::HashMap::new();
    for v in 0..g.num_vertices() as VertexId {
        for &w in g.neighbors(v) {
            if v < w {
                let (a, b) = (g.label(v).min(g.label(w)), g.label(v).max(g.label(w)));
                *counts.entry((a, b)).or_insert(0u32) += 1;
            }
        }
    }
    counts.into_iter().max_by_key(|&(_, c)| c).map(|(p, _)| p)
}

/// Run the update experiment.
pub fn run(opts: &HarnessOptions) {
    let specs = super::datasets_for(opts, &["ye"]);
    let Some(spec) = specs.first() else {
        eprintln!("update: no dataset resolved");
        return;
    };
    let ds = super::load(spec);
    let g0 = ds.graph.clone();
    let num_labels = (0..g0.num_vertices() as VertexId)
        .map(|v| g0.label(v) as usize + 1)
        .max()
        .unwrap_or(1);

    // Small standing queries sampled from the graph (so they match), plus
    // the generator may hand us shapes the incremental engine rejects
    // (disconnected) — those are skipped.
    let mut raw = super::query_set(
        &ds,
        QuerySetSpec {
            num_vertices: 4,
            density: Density::Dense,
            count: opts.queries.clamp(2, 4),
        },
    );
    // A 1-edge query over the graph's most frequent edge label pair:
    // random stream deletions hit it often, so the per-batch embedding
    // churn (added/removed) is visibly nonzero, not just asserted.
    if let Some((la, lb)) = top_edge_label_pair(&g0) {
        raw.push(sm_graph::builder::graph_from_edges(&[la, lb], &[(0, 1)]));
    }
    let standing: Vec<StandingQuery> = raw.iter().filter_map(standing_query).collect();
    assert!(!standing.is_empty(), "no supported standing queries");
    let threads = opts.threads;
    println!(
        "\n=== Updates: {STEPS} batches x {BATCH_OPS} ops on {} ({} standing queries, {threads} threads, seed {}) ===",
        spec.name,
        standing.len(),
        opts.seed,
    );

    let vg = VersionedGraph::new(g0.clone());
    let pinned = vg.snapshot();
    let mut stream = UpdateStream::new(
        UpdateStreamSpec {
            batch_size: BATCH_OPS,
            insert_ratio: 0.5,
            vertex_add_ratio: 0.05,
            num_labels,
        },
        opts.seed,
    );
    let mut maintained: Vec<Vec<Vec<VertexId>>> = standing
        .iter()
        .map(|sq| full_matches(sq.plan().query(), &g0))
        .collect();

    let mut t = TextTable::new(vec![
        "step",
        "ops",
        "commit ms",
        "incr ms",
        "full ms",
        "speedup",
        "added",
        "removed",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    let mut incr_total = 0.0f64;
    let mut full_total = 0.0f64;
    let mut ops_total = 0usize;
    for step in 0..STEPS {
        let batch = stream.next_batch(&vg.snapshot());
        let t0 = Instant::now();
        let committed = vg.commit(&batch);
        let commit_ms = t0.elapsed().as_secs_f64() * 1e3;
        let ops = committed.info.edges_inserted.len() + committed.info.edges_deleted.len();
        ops_total += ops;

        // Incremental: enumerate only embeddings using changed edges.
        let t1 = Instant::now();
        let mut added = 0usize;
        let mut removed = 0usize;
        for (sq, acc) in standing.iter().zip(maintained.iter_mut()) {
            let d = delta_matches(sq, &committed, threads);
            added += d.added.len();
            removed += d.removed.len();
            *acc = d.apply_to(acc);
        }
        let incr_ms = t1.elapsed().as_secs_f64() * 1e3;

        // Full recompute on the materialized post graph — and the
        // correctness assertion that makes this a CI smoke.
        let (mat, _) = committed.post.materialize();
        let t2 = Instant::now();
        for (qi, (sq, acc)) in standing.iter().zip(maintained.iter()).enumerate() {
            let want = full_matches(sq.plan().query(), &mat);
            assert_eq!(
                *acc, want,
                "incremental != full recompute (query {qi}, step {step})"
            );
        }
        let full_ms = t2.elapsed().as_secs_f64() * 1e3;
        incr_total += incr_ms;
        full_total += full_ms;
        let speedup = full_ms / incr_ms.max(1e-9);
        t.row(vec![
            step.to_string(),
            ops.to_string(),
            ms(commit_ms),
            ms(incr_ms),
            ms(full_ms),
            format!("{speedup:.1}x"),
            added.to_string(),
            removed.to_string(),
        ]);
        rows.push(Json::obj(vec![
            ("step", Json::Int(step as i64)),
            ("ops", Json::Int(ops as i64)),
            ("commit_ms", Json::Num(commit_ms)),
            ("incremental_ms", Json::Num(incr_ms)),
            ("full_ms", Json::Num(full_ms)),
            ("speedup", Json::Num(speedup)),
            ("added", Json::Int(added as i64)),
            ("removed", Json::Int(removed as i64)),
        ]));
    }
    t.print();

    // The pre-stream snapshot is still the original graph.
    let (old, _) = pinned.materialize();
    assert_eq!(
        (old.num_vertices(), old.num_edges()),
        (g0.num_vertices(), g0.num_edges()),
        "pinned snapshot drifted"
    );

    // Snapshot overhead: pin latency is the cost a reader pays per query.
    let t3 = Instant::now();
    let pins = 1000;
    for _ in 0..pins {
        std::hint::black_box(vg.snapshot());
    }
    let pin_ns = t3.elapsed().as_nanos() as f64 / pins as f64;

    // End-to-end service path on the same stream (fresh seed replay):
    // apply_update = commit + materialize/install + scoped cache
    // retargeting + standing maintenance.
    let svc = {
        let mut svc_cfg = ServiceConfig {
            workers: threads.max(1),
            ..ServiceConfig::default()
        };
        super::apply_plan(&mut svc_cfg, &opts.plan);
        Service::new(g0.clone(), svc_cfg)
    };
    for q in &raw {
        let _ = svc.register_standing(q);
    }
    let mut svc_stream = UpdateStream::new(
        UpdateStreamSpec {
            batch_size: BATCH_OPS,
            insert_ratio: 0.5,
            vertex_add_ratio: 0.05,
            num_labels,
        },
        opts.seed,
    );
    let t4 = Instant::now();
    for _ in 0..STEPS {
        let batch = svc_stream.next_batch(&svc.snapshot());
        svc.apply_update(&batch);
    }
    let svc_wall_ms = t4.elapsed().as_secs_f64() * 1e3;

    let speedup = full_total / incr_total.max(1e-9);
    let stats = vg.stats();
    println!(
        "incremental total {} vs full {} -> {speedup:.1}x speedup | snapshot pin {pin_ns:.0} ns | \
         service apply_update {:.1} batches/s | epoch {} live-delta {}",
        ms(incr_total),
        ms(full_total),
        STEPS as f64 / (svc_wall_ms / 1e3).max(1e-9),
        stats.epoch,
        stats.delta_edges_live,
    );
    println!("(incremental embedding sets asserted equal to full recompute after every batch; a snapshot pinned before the stream still materializes the original graph)");
    if speedup < 5.0 {
        eprintln!("warning: incremental speedup {speedup:.1}x below the 5x target");
    }

    write_bench_json(
        "update",
        &envelope(
            "update",
            vec![
                ("dataset", Json::str(spec.name)),
                ("steps", Json::Int(STEPS as i64)),
                ("batch_ops", Json::Int(BATCH_OPS as i64)),
                ("effective_ops", Json::Int(ops_total as i64)),
                ("standing_queries", Json::Int(standing.len() as i64)),
                ("threads", Json::Int(threads as i64)),
                ("seed", Json::Int(opts.seed as i64)),
                ("incremental_ms", Json::Num(incr_total)),
                ("full_ms", Json::Num(full_total)),
                ("speedup", Json::Num(speedup)),
                ("snapshot_pin_ns", Json::Num(pin_ns)),
                ("service_wall_ms", Json::Num(svc_wall_ms)),
                ("rows", Json::Arr(rows)),
            ],
        ),
    );
}
