//! Durability benchmark — an extension experiment over `sm-durable`:
//! write-ahead logging throughput under each fsync policy, then a
//! kill-and-recover cycle timing instant restart (snapshot + WAL tail
//! replay) against a cold text-parse load of the same evolved graph.
//!
//! What the run shows:
//!
//! * **WAL throughput** per [`FsyncPolicy`] — the same seeded update
//!   stream is logged under `per-batch`, `interval(5ms)` and `off`,
//!   reporting batches/s and logged MB/s; the spread is the price of
//!   the crash-loss window each policy buys back,
//! * **recovery vs cold load** — the `off` run compacts, applies a
//!   short WAL tail, and is killed (dropped); [`Service::open`] — CSR
//!   snapshot load plus tail replay — is timed against parsing the
//!   equivalent `.graph` text file and rebuilding a fresh service,
//! * **compaction and instant restart** — a manual snapshot absorbs
//!   the log; the reopen replays zero batches, and that
//!   snapshot-current restart is the headline speedup against the cold
//!   text load. The acceptance target is ≥5× (reported, warned when
//!   missed — machines differ). Both ratios land in the JSON.
//!
//! The experiment is also a correctness smoke (CI runs it): the
//! recovered service must answer a probe query set identically to the
//! pre-crash service — epoch, sorted embedding sets and standing sets —
//! and the post-compaction reopen must agree again; violations panic.

use crate::args::HarnessOptions;
use crate::results::{envelope, write_bench_json, Json};
use crate::table::{ms, TextTable};
use sm_delta::{UpdateStream, UpdateStreamSpec};
use sm_graph::io::{load_graph, save_graph};
use sm_graph::{Graph, VertexId};
use sm_runtime::trace::Counter;
use sm_service::{DurabilityOptions, FsyncPolicy, QueryRequest, Service, ServiceConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Update batches logged per policy run.
const STEPS: usize = 24;
/// Operations per batch.
const BATCH_OPS: usize = 8;
/// Batches applied after the pre-crash compaction point: the WAL tail
/// recovery has to replay. Kept short — periodic compaction is what
/// makes restart instant.
const TAIL: usize = 3;

/// Fresh per-run scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sm-bench-durability-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The unordered vertex-label pair with the *fewest* (nonzero) edges —
/// a selective 1-edge probe query whose standing set stays small enough
/// that snapshot size reflects the graph, not the probe.
fn rare_edge_label_pair(g: &Graph) -> Option<(u32, u32)> {
    let mut counts = std::collections::HashMap::new();
    for v in 0..g.num_vertices() as VertexId {
        for &w in g.neighbors(v) {
            if v < w {
                let (a, b) = (g.label(v).min(g.label(w)), g.label(v).max(g.label(w)));
                *counts.entry((a, b)).or_insert(0u32) += 1;
            }
        }
    }
    counts.into_iter().min_by_key(|&(_, c)| c).map(|(p, _)| p)
}

fn sorted_embeddings(svc: &Service, q: &Graph) -> Vec<Vec<VertexId>> {
    let mut m: Vec<Vec<VertexId>> = svc.submit(QueryRequest::streaming(q.clone())).collect();
    m.sort_unstable();
    m
}

/// Apply `n` batches of the seeded stream to `svc`, generating each
/// batch against the service's own evolving graph. Returns the wall
/// time.
fn drive(svc: &Service, n: usize, num_labels: usize, seed: u64) -> Duration {
    let mut stream = UpdateStream::new(
        UpdateStreamSpec {
            batch_size: BATCH_OPS,
            insert_ratio: 0.5,
            vertex_add_ratio: 0.05,
            num_labels,
        },
        seed,
    );
    let t0 = Instant::now();
    for _ in 0..n {
        let batch = stream.next_batch(&svc.snapshot());
        svc.apply_update(&batch);
    }
    t0.elapsed()
}

/// Run the durability experiment.
pub fn run(opts: &HarnessOptions) {
    let specs = super::datasets_for(opts, &["up"]);
    let Some(spec) = specs.first() else {
        eprintln!("durability: no dataset resolved");
        return;
    };
    let ds = super::load(spec);
    let g0 = ds.graph.clone();
    let num_labels = (0..g0.num_vertices() as VertexId)
        .map(|v| g0.label(v) as usize + 1)
        .max()
        .unwrap_or(1);
    let cfg = ServiceConfig {
        workers: opts.threads.max(1),
        ..ServiceConfig::default()
    };
    let probe = rare_edge_label_pair(&g0)
        .map(|(la, lb)| sm_graph::builder::graph_from_edges(&[la, lb], &[(0, 1)]))
        .expect("dataset has at least one edge");
    println!(
        "\n=== Durability: {STEPS} batches x {BATCH_OPS} ops on {} (seed {}) ===",
        spec.name, opts.seed,
    );

    // --- WAL throughput per fsync policy -----------------------------
    let policies: [(&str, FsyncPolicy); 3] = [
        ("per-batch", FsyncPolicy::PerBatch),
        (
            "interval-5ms",
            FsyncPolicy::Interval(Duration::from_millis(5)),
        ),
        ("off", FsyncPolicy::Off),
    ];
    let mut t = TextTable::new(vec![
        "fsync",
        "batches",
        "wall ms",
        "batches/s",
        "wal KiB",
        "MiB/s",
    ]);
    let mut policy_rows: Vec<Json> = Vec::new();
    let mut off_run = None;
    for (name, fsync) in policies {
        let dir = scratch(name);
        let dopts = DurabilityOptions {
            fsync,
            snapshot_threshold_bytes: 0, // manual snapshots only
            ..DurabilityOptions::default()
        };
        let svc = Service::new_durable(g0.clone(), cfg.clone(), &dir, dopts)
            .expect("create durable service");
        let sid = svc.register_standing(&probe).expect("register probe query");
        let wall = drive(&svc, STEPS, num_labels, opts.seed);
        svc.sync_durable().expect("final sync");
        let c = svc.counters();
        let (appends, bytes) = (c.get(Counter::WalAppends), c.get(Counter::WalBytes));
        let wall_ms = wall.as_secs_f64() * 1e3;
        let bps = appends as f64 / wall.as_secs_f64().max(1e-9);
        let mibs = bytes as f64 / (1 << 20) as f64 / wall.as_secs_f64().max(1e-9);
        t.row(vec![
            name.to_string(),
            appends.to_string(),
            ms(wall_ms),
            format!("{bps:.0}"),
            format!("{:.1}", bytes as f64 / 1024.0),
            format!("{mibs:.1}"),
        ]);
        policy_rows.push(Json::obj(vec![
            ("fsync", Json::str(name)),
            ("batches", Json::Int(appends as i64)),
            ("wall_ms", Json::Num(wall_ms)),
            ("batches_per_s", Json::Num(bps)),
            ("wal_bytes", Json::Int(bytes as i64)),
            ("mib_per_s", Json::Num(mibs)),
        ]));
        if fsync == FsyncPolicy::Off {
            off_run = Some((dir, svc, sid));
        } else {
            drop(svc);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    t.print();
    let (dir, svc, sid) = off_run.expect("off run kept");

    // --- Kill and recover, vs cold text-parse load -------------------
    // Compact, then apply a short tail the WAL alone holds: recovery =
    // snapshot load + TAIL-batch replay, the steady state of a service
    // with periodic compaction.
    assert!(svc.snapshot_now().expect("pre-crash compaction"));
    drive(&svc, TAIL, num_labels, opts.seed ^ 0x5eed);
    let expect_epoch = svc.epoch();
    let expect_embeddings = sorted_embeddings(&svc, &probe);
    let expect_standing = svc.standing_matches(sid);
    let (evolved, _) = svc.snapshot().materialize();
    drop(svc); // kill

    let t0 = Instant::now();
    let recovered = Service::open(&dir, cfg.clone(), DurabilityOptions::default())
        .expect("recover from WAL + snapshot");
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    let report = recovered.recovery_report().expect("recovery happened");
    assert_eq!(recovered.epoch(), expect_epoch, "recovered epoch");
    assert_eq!(
        sorted_embeddings(&recovered, &probe),
        expect_embeddings,
        "recovered service answers the probe query set identically"
    );
    assert_eq!(
        recovered.standing_matches(sid),
        expect_standing,
        "recovered standing set"
    );

    // Cold path: parse the evolved graph from its text form and build a
    // fresh service (NLF + label-pair indexes from scratch).
    let text = scratch("coldload").join("evolved.graph");
    std::fs::create_dir_all(text.parent().unwrap()).expect("create cold-load dir");
    save_graph(&evolved, &text).expect("write text graph");
    let t1 = Instant::now();
    let reparsed = load_graph(&text).expect("parse text graph");
    let cold = Service::new(reparsed, cfg.clone());
    let cold_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert_eq!(cold.epoch(), 0);
    let tail_ratio = cold_ms / recovery_ms.max(1e-9);

    // --- Compaction: snapshot absorbs the log ------------------------
    // The reopen after compaction is the *snapshot-current restart* —
    // the steady state a periodically-compacting service restarts from,
    // and the headline "instant restart" number: page in the CSR
    // snapshot, replay nothing.
    let t2 = Instant::now();
    assert!(recovered.snapshot_now().expect("manual snapshot"));
    let snapshot_ms = t2.elapsed().as_secs_f64() * 1e3;
    drop(recovered);
    let t3 = Instant::now();
    let compacted =
        Service::open(&dir, cfg, DurabilityOptions::default()).expect("reopen after compaction");
    let restart_ms = t3.elapsed().as_secs_f64() * 1e3;
    let report2 = compacted.recovery_report().expect("second recovery");
    assert_eq!(report2.replayed_batches, 0, "snapshot absorbed the log");
    assert_eq!(
        sorted_embeddings(&compacted, &probe),
        expect_embeddings,
        "post-compaction reopen agrees"
    );
    let ratio = cold_ms / restart_ms.max(1e-9);

    println!(
        "crash recovery {} (replayed {} batches, {} registrations) vs cold text load {} -> {tail_ratio:.1}x",
        ms(recovery_ms),
        report.replayed_batches,
        report.replayed_registrations,
        ms(cold_ms),
    );
    println!(
        "snapshot-current restart {} (snapshot took {}) vs cold text load {} -> {ratio:.1}x",
        ms(restart_ms),
        ms(snapshot_ms),
        ms(cold_ms),
    );
    println!("(recovered service asserted identical to pre-crash on epoch, probe embeddings and standing sets)");
    if ratio < 5.0 {
        eprintln!("warning: restart speedup {ratio:.1}x below the 5x target");
    }

    drop(compacted);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(text.parent().unwrap());

    write_bench_json(
        "durability",
        &envelope(
            "durability",
            vec![
                ("dataset", Json::str(spec.name)),
                ("steps", Json::Int(STEPS as i64)),
                ("batch_ops", Json::Int(BATCH_OPS as i64)),
                ("seed", Json::Int(opts.seed as i64)),
                ("policies", Json::Arr(policy_rows)),
                (
                    "replayed_batches",
                    Json::Int(report.replayed_batches as i64),
                ),
                ("tail_recovery_ms", Json::Num(recovery_ms)),
                ("tail_recovery_speedup", Json::Num(tail_ratio)),
                ("cold_load_ms", Json::Num(cold_ms)),
                ("snapshot_ms", Json::Num(snapshot_ms)),
                ("restart_ms", Json::Num(restart_ms)),
                ("recovery_speedup", Json::Num(ratio)),
            ],
        ),
    );
}
