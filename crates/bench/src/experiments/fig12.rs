//! Figure 12: standard deviation of the enumeration time on Youtube —
//! the paper's evidence that per-query times within a set vary wildly.

use crate::args::HarnessOptions;
use crate::experiments::fig11::ordering_pipelines;
use crate::experiments::{datasets_for, default_query_sets, load, measure_config, query_set};
use crate::harness::eval_query_set;
use crate::table::{ms, TextTable};
use sm_match::DataContext;

/// Run the experiment.
pub fn run(opts: &HarnessOptions) {
    let specs = datasets_for(opts, &["yt"]);
    let spec = specs[0];
    println!(
        "\n=== Figure 12: enumeration time SD (ms) on {} (ordering methods) ===",
        spec.abbrev
    );
    let ds = load(&spec);
    let gc = DataContext::new(&ds.graph);
    let cfg = measure_config(opts);
    let sets = default_query_sets(&spec, opts.queries);
    let mut t = TextTable::new(
        std::iter::once("order".to_string())
            .chain(sets.iter().map(|(n, _)| format!("{n} mean")))
            .chain(sets.iter().map(|(n, _)| format!("{n} SD")))
            .collect(),
    );
    let set_queries: Vec<_> = sets.iter().map(|(_, s)| query_set(&ds, *s)).collect();
    for p in ordering_pipelines() {
        let summaries: Vec<_> = set_queries
            .iter()
            .map(|qs| eval_query_set(&p, qs, &gc, &cfg, opts.threads))
            .collect();
        let mut row = vec![p.name.clone()];
        for s in &summaries {
            row.push(ms(s.avg_enum_ms()));
        }
        for s in &summaries {
            row.push(ms(s.sd_enum_ms()));
        }
        t.row(row);
    }
    t.print();
    println!("(large SD = per-query times within a set vary greatly, as in the paper)");
}
