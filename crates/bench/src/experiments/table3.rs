//! Table 3: properties of the (stand-in) datasets.

use crate::args::HarnessOptions;
use crate::experiments::{datasets_for, load, ALL_DATASETS};
use crate::table::TextTable;

/// Print the dataset table: paper shape vs realized stand-in shape.
pub fn run(opts: &HarnessOptions) {
    println!("\n=== Table 3: dataset properties (paper original -> stand-in) ===");
    let mut t = TextTable::new(vec![
        "Category",
        "Dataset",
        "Name",
        "|V| paper",
        "|E| paper",
        "|V|",
        "|E|",
        "|Sigma|",
        "d",
    ]);
    for spec in datasets_for(opts, &ALL_DATASETS) {
        let ds = load(&spec);
        t.row(vec![
            spec.category.to_string(),
            spec.name.to_string(),
            spec.abbrev.to_string(),
            spec.paper_vertices.to_string(),
            spec.paper_edges.to_string(),
            ds.stats.num_vertices.to_string(),
            ds.stats.num_edges.to_string(),
            ds.stats.num_labels.to_string(),
            format!("{:.1}", ds.stats.avg_degree),
        ]);
    }
    t.print();
}
