//! Figure 18: scalability on the friendster stand-in — a single large
//! RMAT graph (the original has 124M vertices / 1.8B edges; the stand-in
//! keeps its density, d ≈ 29, at laptop scale) with the paper's two
//! sweeps: fraction of edges kept (40/60/80/100 %) and label-set size
//! (64/96/128/160).

use crate::args::HarnessOptions;
use crate::harness::eval_query_set;
use crate::table::{ms, TextTable};
use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_graph::gen::random::{assign_labels_uniform, sample_edges};
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_match::{Algorithm, DataContext, MatchConfig};

/// Stand-in scale: 200k vertices at friendster's density.
pub const FRIENDSTER_V: usize = 200_000;
/// friendster's average degree `2·1.8B/124M ≈ 29`.
pub const FRIENDSTER_D: f64 = 29.0;

fn eval(g: &sm_graph::Graph, opts: &HarnessOptions) -> Vec<(String, f64, usize)> {
    let gc = DataContext::new(g);
    let set = QuerySetSpec {
        num_vertices: 16,
        density: Density::Dense,
        count: opts.queries,
    };
    let queries = generate_query_set(g, set, 0xF18);
    let mut cfg = MatchConfig::default().with_failing_sets(true);
    cfg.time_limit = Some(opts.time_limit);
    let mut gqlfs = Algorithm::GraphQl.optimized();
    gqlfs.name = "GQLfs".into();
    let mut rifs = Algorithm::Ri.optimized();
    rifs.name = "RIfs".into();
    [gqlfs, rifs]
        .iter()
        .map(|p| {
            let s = eval_query_set(p, &queries, &gc, &cfg, opts.threads);
            (
                p.name.clone(),
                s.avg_plan_build_ms() + s.avg_enum_ms(),
                s.unsolved(),
            )
        })
        .collect()
}

/// Run the experiment.
pub fn run(opts: &HarnessOptions) {
    println!(
        "\n=== Figure 18: friendster stand-in ({FRIENDSTER_V} vertices, d≈{FRIENDSTER_D}) ==="
    );
    let base = rmat_graph(FRIENDSTER_V, FRIENDSTER_D, 64, RmatParams::PAPER, 0xF18);

    println!("\n--- (a) vary density: fraction of edges kept ---");
    let mut t = TextTable::new(vec!["edges kept", "algorithm", "time ms", "unsolved"]);
    for share in [0.4, 0.6, 0.8, 1.0] {
        let g = if share < 1.0 {
            sample_edges(&base, share, 0x18A)
        } else {
            base.clone()
        };
        for (name, time, unsolved) in eval(&g, opts) {
            t.row(vec![
                format!("{:.0}%", share * 100.0),
                name,
                ms(time),
                unsolved.to_string(),
            ]);
        }
    }
    t.print();

    println!("\n--- (b) vary |Sigma| ---");
    let mut t = TextTable::new(vec!["|Sigma|", "algorithm", "time ms", "unsolved"]);
    for labels in [64usize, 96, 128, 160] {
        let g = assign_labels_uniform(&base, labels, 0x18B ^ labels as u64);
        for (name, time, unsolved) in eval(&g, opts) {
            t.row(vec![
                labels.to_string(),
                name,
                ms(time),
                unsolved.to_string(),
            ]);
        }
    }
    t.print();
    println!("(paper: query time drops as density falls or |Sigma| rises)");
}
