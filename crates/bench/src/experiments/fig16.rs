//! Figure 16: overall performance — the study's optimized GQLfs and RIfs
//! against the original algorithms (O-CECI, O-DP, O-RI, O-2PP) and the
//! Glasgow CP solver, which only fits in memory on the small datasets.

use crate::args::HarnessOptions;
use crate::experiments::{datasets_for, default_query_sets, load, query_set, ALL_DATASETS};
use crate::harness::eval_query_set;
use crate::table::{ms, TextTable};
use sm_glasgow::{glasgow_match, GlasgowConfig, GlasgowError};
use sm_match::{Algorithm, DataContext, MatchConfig, Pipeline};

/// The framework competitors of Figure 16.
pub fn competitors() -> Vec<(Pipeline, MatchConfig)> {
    let fs = MatchConfig::default().with_failing_sets(true);
    let plain = MatchConfig::default();
    let mut gqlfs = Algorithm::GraphQl.optimized();
    gqlfs.name = "GQLfs".into();
    let mut rifs = Algorithm::Ri.optimized();
    rifs.name = "RIfs".into();
    vec![
        (gqlfs, fs.clone()),
        (rifs, fs),
        (Algorithm::Ceci.original(), plain.clone()),
        (Algorithm::DpIso.original(), plain.clone()),
        (Algorithm::Ri.original(), plain.clone()),
        (Algorithm::Vf2pp.original(), plain),
    ]
}

/// Run the experiment.
pub fn run(opts: &HarnessOptions) {
    println!("\n=== Figure 16: overall query time (ms), incl. preprocessing ===");
    let specs = datasets_for(opts, &ALL_DATASETS);
    let comps = competitors();
    let mut t = TextTable::new(
        std::iter::once("algorithm".to_string())
            .chain(specs.iter().map(|d| d.abbrev.to_string()))
            .collect(),
    );
    let mut cols: Vec<Vec<String>> = Vec::new();
    for spec in &specs {
        let ds = load(spec);
        let gc = DataContext::new(&ds.graph);
        let mut queries = Vec::new();
        for (_, s) in default_query_sets(spec, opts.queries) {
            queries.extend(query_set(&ds, s));
        }
        let mut col = Vec::new();
        for (p, base_cfg) in &comps {
            let mut cfg = base_cfg.clone();
            cfg.time_limit = Some(opts.time_limit);
            let s = eval_query_set(p, &queries, &gc, &cfg, opts.threads);
            col.push(ms(s.avg_plan_build_ms() + s.avg_enum_ms()));
        }
        // Glasgow row: per-query CP solve or OOM.
        col.push(glasgow_cell(&queries, &ds.graph, opts));
        cols.push(col);
    }
    for (ci, (p, _)) in comps.iter().enumerate() {
        let mut row = vec![p.name.clone()];
        for col in &cols {
            row.push(col[ci].clone());
        }
        t.row(row);
    }
    let mut row = vec!["GLW".to_string()];
    for col in &cols {
        row.push(col[comps.len()].clone());
    }
    t.row(row);
    t.print();
    println!("(GLW reports OOM where its bitset state exceeds the 2 GiB budget, as in the paper)");
}

/// Glasgow's memory budget, scaled with the stand-ins: the paper's
/// machine had 128 GB against full-size graphs; our graphs are ~10–40×
/// smaller in |V| and Glasgow's bitset state grows as |V|², so a 64 MiB
/// budget reproduces the paper's "GLW only works on hp, ye, hu".
pub const SCALED_GLASGOW_BUDGET: usize = 64 << 20;

fn glasgow_cell(queries: &[sm_graph::Graph], g: &sm_graph::Graph, opts: &HarnessOptions) -> String {
    let cfg = GlasgowConfig {
        max_matches: Some(100_000),
        time_limit: Some(opts.time_limit),
        memory_budget_bytes: SCALED_GLASGOW_BUDGET,
        ..Default::default()
    };
    let mut total = 0.0;
    for q in queries {
        match glasgow_match(q, g, &cfg) {
            Ok(stats) => {
                total += if stats.timed_out {
                    opts.time_limit.as_secs_f64() * 1e3
                } else {
                    stats.elapsed.as_secs_f64() * 1e3
                };
            }
            Err(GlasgowError::OutOfMemory { .. }) => return "OOM".to_string(),
        }
    }
    if queries.is_empty() {
        "-".to_string()
    } else {
        ms(total / queries.len() as f64)
    }
}
