//! Figure 7: preprocessing (filtering) time of GQL, CFL, CECI and DP-iso.
//!
//! (a) across datasets on their default query sets; (b) varying `|V(q)|`
//! on Youtube; (c) dense vs sparse on Youtube.

use crate::args::HarnessOptions;
use crate::experiments::{
    datasets_for, default_query_sets, dense_sweep, load, query_set, sparse_sweep, ALL_DATASETS,
};
use crate::table::{ms, TextTable};
use sm_datasets::DatasetSpec;
use sm_graph::Graph;
use sm_match::filter::{run_filter, FilterKind};
use sm_match::{DataContext, QueryContext};
use std::time::Instant;

/// The four filters Figure 7 compares.
pub const FILTERS: [FilterKind; 4] = [
    FilterKind::GraphQl,
    FilterKind::Cfl,
    FilterKind::Ceci,
    FilterKind::DpIso,
];

/// Mean filtering time (ms) of `kind` over `queries`.
pub fn avg_filter_ms(kind: FilterKind, queries: &[Graph], gc: &DataContext<'_>) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for q in queries {
        let qc = QueryContext::new(q);
        let t = Instant::now();
        let _ = run_filter(kind, &qc, gc);
        total += t.elapsed().as_secs_f64() * 1e3;
    }
    total / queries.len() as f64
}

/// Run the experiment.
pub fn run(opts: &HarnessOptions) {
    println!("\n=== Figure 7(a): filtering time (ms) per dataset, default query sets ===");
    let specs = datasets_for(opts, &ALL_DATASETS);
    let mut t = TextTable::new(
        std::iter::once("filter".to_string())
            .chain(specs.iter().map(|d| d.abbrev.to_string()))
            .collect(),
    );
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for spec in &specs {
        columns.push(dataset_column(spec, opts));
    }
    for (fi, f) in FILTERS.iter().enumerate() {
        let mut row = vec![f.name().to_string()];
        for col in &columns {
            row.push(ms(col[fi]));
        }
        t.row(row);
    }
    t.print();

    // (b) and (c) on Youtube (or the first selected dataset).
    let spec = specs
        .iter()
        .find(|d| d.abbrev == "yt")
        .copied()
        .unwrap_or(specs[0]);
    let ds = load(&spec);
    let gc = DataContext::new(&ds.graph);

    println!(
        "\n=== Figure 7(b): filtering time (ms) on {}, dense sizes ===",
        spec.abbrev
    );
    let sweep = dense_sweep(&spec, opts.queries);
    let mut t = TextTable::new(
        std::iter::once("filter".to_string())
            .chain(sweep.iter().map(|(n, _)| n.clone()))
            .collect(),
    );
    let sweep_queries: Vec<Vec<Graph>> = sweep.iter().map(|(_, s)| query_set(&ds, *s)).collect();
    for f in FILTERS {
        let mut row = vec![f.name().to_string()];
        for qs in &sweep_queries {
            row.push(ms(avg_filter_ms(f, qs, &gc)));
        }
        t.row(row);
    }
    t.print();

    println!(
        "\n=== Figure 7(c): filtering time (ms) on {}, dense vs sparse ===",
        spec.abbrev
    );
    let dense = query_set(&ds, dense_sweep(&spec, opts.queries).last().unwrap().1);
    let sparse = query_set(&ds, sparse_sweep(&spec, opts.queries).last().unwrap().1);
    let mut t = TextTable::new(vec!["filter", "dense", "sparse"]);
    for f in FILTERS {
        t.row(vec![
            f.name().to_string(),
            ms(avg_filter_ms(f, &dense, &gc)),
            ms(avg_filter_ms(f, &sparse, &gc)),
        ]);
    }
    t.print();
}

fn dataset_column(spec: &DatasetSpec, opts: &HarnessOptions) -> Vec<f64> {
    let ds = load(spec);
    let gc = DataContext::new(&ds.graph);
    let mut queries = Vec::new();
    for (_, s) in default_query_sets(spec, opts.queries) {
        queries.extend(query_set(&ds, s));
    }
    FILTERS
        .iter()
        .map(|&f| avg_filter_ms(f, &queries, &gc))
        .collect()
}
