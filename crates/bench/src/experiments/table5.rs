//! Table 5: number of unsolved queries per algorithm, without and with
//! failing-set pruning, on yt, up, hu and wn — plus the fail-all count.

use crate::args::HarnessOptions;
use crate::experiments::fig11::ordering_pipelines;
use crate::experiments::{datasets_for, default_query_sets, load, measure_config, query_set};
use crate::harness::eval_query_set;
use crate::table::TextTable;
use sm_match::DataContext;

/// Run the experiment.
pub fn run(opts: &HarnessOptions) {
    println!("\n=== Table 5: unsolved queries (wo/fs | w/fs) ===");
    let specs = datasets_for(opts, &["yt", "up", "hu", "wn"]);
    let pipelines = ordering_pipelines();
    let mut header = vec!["algorithm".to_string()];
    for d in &specs {
        header.push(format!("{} wo/fs", d.abbrev));
        header.push(format!("{} w/fs", d.abbrev));
    }
    let mut t = TextTable::new(header);
    // rows[pipeline][dataset] = (unsolved wo/fs, unsolved w/fs)
    let mut rows = vec![vec![(0usize, 0usize); specs.len()]; pipelines.len()];
    let mut fail_all = vec![(0usize, 0usize); specs.len()];
    for (di, spec) in specs.iter().enumerate() {
        let ds = load(spec);
        let gc = DataContext::new(&ds.graph);
        let mut queries = Vec::new();
        for (_, s) in default_query_sets(spec, opts.queries) {
            queries.extend(query_set(&ds, s));
        }
        let cfg = measure_config(opts);
        let cfg_fs = {
            let mut c = cfg.clone();
            c.failing_sets = true;
            c
        };
        // per-query solved masks to compute fail-all
        let nq = queries.len();
        let mut solved_wo = vec![false; nq];
        let mut solved_w = vec![false; nq];
        for (pi, p) in pipelines.iter().enumerate() {
            let wo = eval_query_set(p, &queries, &gc, &cfg, opts.threads);
            let w = eval_query_set(p, &queries, &gc, &cfg_fs, opts.threads);
            rows[pi][di] = (wo.unsolved(), w.unsolved());
            for (i, r) in wo.results.iter().enumerate() {
                solved_wo[i] |= !r.unsolved;
            }
            for (i, r) in w.results.iter().enumerate() {
                solved_w[i] |= !r.unsolved;
            }
        }
        fail_all[di] = (
            solved_wo.iter().filter(|&&s| !s).count(),
            solved_w.iter().filter(|&&s| !s).count(),
        );
    }
    for (pi, p) in pipelines.iter().enumerate() {
        let mut row = vec![p.name.clone()];
        for (wo, w) in &rows[pi] {
            row.push(wo.to_string());
            row.push(w.to_string());
        }
        t.row(row);
    }
    let mut row = vec!["Fail-All".to_string()];
    for (wo, w) in &fail_all {
        row.push(wo.to_string());
        row.push(w.to_string());
    }
    t.row(row);
    t.print();
    println!(
        "(each dataset column covers {} queries; paper uses 1800 with a 5-min limit — run with --full for paper scale)",
        opts.queries * 2
    );
}
