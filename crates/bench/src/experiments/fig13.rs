//! Figure 13: percentage of short / median / long / unsolved queries on
//! Youtube, per ordering method and query size.
//!
//! The paper buckets at 1 s / 60 s / 300 s against its 5-minute kill; we
//! keep the same *proportions* of the configured time limit
//! (limit/300, limit/5, limit), so with `--full` the buckets are exactly
//! the paper's.

use crate::args::HarnessOptions;
use crate::experiments::fig11::ordering_pipelines;
use crate::experiments::{
    datasets_for, dense_sweep, load, measure_config, query_set, sparse_sweep,
};
use crate::harness::eval_query_set;
use crate::table::TextTable;
use sm_match::DataContext;

/// Run the experiment.
pub fn run(opts: &HarnessOptions) {
    let specs = datasets_for(opts, &["yt"]);
    let spec = specs[0];
    let ds = load(&spec);
    let gc = DataContext::new(&ds.graph);
    let cfg = measure_config(opts);
    let t1 = opts.time_limit / 300;
    let t2 = opts.time_limit / 5;
    for (label, sweep) in [
        ("dense", dense_sweep(&spec, opts.queries)),
        ("sparse", sparse_sweep(&spec, opts.queries)),
    ] {
        println!(
            "\n=== Figure 13 ({label} on {}): % short/median/long/unsolved (buckets at {:?}/{:?}/{:?}) ===",
            spec.abbrev, t1, t2, opts.time_limit
        );
        // Skip the small sizes the paper omits ("every query in Q4/Q8 within 1s").
        let sweep: Vec<_> = sweep
            .into_iter()
            .filter(|(_, s)| s.num_vertices > 8)
            .collect();
        let mut t = TextTable::new(
            std::iter::once("order".to_string())
                .chain(sweep.iter().map(|(n, _)| n.clone()))
                .collect(),
        );
        let sweep_queries: Vec<_> = sweep.iter().map(|(_, s)| query_set(&ds, *s)).collect();
        for p in ordering_pipelines() {
            let mut row = vec![p.name.clone()];
            for qs in &sweep_queries {
                let s = eval_query_set(&p, qs, &gc, &cfg, opts.threads);
                let b = s.time_buckets(t1, t2);
                row.push(format!(
                    "{:.0}/{:.0}/{:.0}/{:.0}",
                    b[0] * 100.0,
                    b[1] * 100.0,
                    b[2] * 100.0,
                    b[3] * 100.0
                ));
            }
            t.row(row);
        }
        t.print();
    }
}
