//! Intra-query parallel scaling — an extension experiment: the paper's
//! Table 1 lists parallel variants (pRI, VF3P, parallel CECI/Glasgow) and
//! Section 2.2 notes CECI "can run in parallel"; this measures the
//! standard root-partition decomposition on our static engines.
//!
//! The workload is deliberately enumeration-heavy (few labels, find-all):
//! root-partitioning only parallelizes the enumeration phase, so
//! preprocessing-bound queries (most of the paper's default sets) show no
//! scaling — which the table makes visible by reporting both phases.

use crate::args::HarnessOptions;
use crate::table::{ms, ratio, TextTable};
use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_match::{Algorithm, DataContext, MatchConfig};

/// Run the scaling experiment.
pub fn run(opts: &HarnessOptions) {
    // Few labels + moderate density = huge match counts per query.
    let g = rmat_graph(50_000, 12.0, 4, RmatParams::PAPER, 0x9A7);
    let gc = DataContext::new(&g);
    let queries = generate_query_set(
        &g,
        QuerySetSpec {
            num_vertices: 8,
            density: Density::Dense,
            count: opts.queries.min(5),
        },
        0x9A8,
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n=== Parallel scaling: {} dense 8-vertex queries on RMAT(50k, d=12, |Sigma|=4), cap 10^6 ({cores} core(s) available) ===",
        queries.len()
    );
    if cores == 1 {
        println!("note: single-core machine — expect no wall-clock speedup; counts stay exact");
    }
    let pipeline = Algorithm::GraphQl.optimized();
    let cfg = MatchConfig {
        max_matches: Some(1_000_000),
        time_limit: Some(opts.time_limit.max(std::time::Duration::from_secs(5))),
        ..Default::default()
    };
    let mut t = TextTable::new(vec!["threads", "prep ms", "enum ms", "enum speedup"]);
    let mut base = None;
    for threads in [1usize, 2, 4, 8] {
        let (mut prep, mut enumt) = (0.0f64, 0.0f64);
        for q in &queries {
            let out = pipeline.run_parallel(q, &gc, &cfg, threads);
            prep += out.preprocessing_time().as_secs_f64() * 1e3;
            enumt += out.enum_time.as_secs_f64() * 1e3;
        }
        let base_ms = *base.get_or_insert(enumt);
        t.row(vec![
            threads.to_string(),
            ms(prep),
            ms(enumt),
            ratio(base_ms / enumt.max(1e-9)),
        ]);
    }
    t.print();
    println!("(root-partition parallelism speeds up enumeration only; preprocessing stays sequential)");
}
