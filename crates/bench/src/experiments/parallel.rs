//! Intra-query parallel scaling — an extension experiment: the paper's
//! Table 1 lists parallel variants (pRI, VF3P, parallel CECI/Glasgow) and
//! Section 2.2 notes CECI "can run in parallel"; this compares the two
//! root-distribution strategies on our static engines:
//!
//! * `static` — classic fixed round-robin root partition (no rebalancing),
//! * `morsel` — morsel-driven work stealing ([`sm_runtime::pool`]).
//!
//! The workload is deliberately enumeration-heavy *and skewed* (RMAT
//! hubs, few labels, find-all): under static partition the worker that
//! owns the hub roots serializes the run, which is exactly where work
//! stealing pays. Per-worker morsel/steal counters make the balancing
//! visible even on machines where wall-clock speedup is impossible
//! (single core).

use crate::args::HarnessOptions;
use crate::profile::{traced_cell, write_profiles};
use crate::table::{ms, ratio, TextTable};
use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_match::enumerate::parallel::ParallelStrategy;
use sm_match::{Algorithm, DataContext, MatchConfig};
use sm_runtime::trace::profile::RunMeta;

/// Run the scaling experiment.
pub fn run(opts: &HarnessOptions) {
    // Few labels + moderate density = huge match counts per query; RMAT's
    // power-law degree skew concentrates the enumeration work under a few
    // hub roots.
    let g = rmat_graph(50_000, 12.0, 4, RmatParams::PAPER, 0x9A7);
    let gc = DataContext::new(&g);
    let queries = generate_query_set(
        &g,
        QuerySetSpec {
            num_vertices: 8,
            density: Density::Dense,
            count: opts.queries.min(5),
        },
        0x9A8,
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n=== Parallel scaling: {} dense 8-vertex queries on RMAT(50k, d=12, |Sigma|=4), cap 10^6 ({cores} core(s) available) ===",
        queries.len()
    );
    if cores == 1 {
        println!("note: single-core machine — expect no wall-clock speedup; counts stay exact and steal counters still show the balancing");
    }
    let pipeline = Algorithm::GraphQl.optimized();
    let cfg = MatchConfig {
        max_matches: Some(1_000_000),
        time_limit: Some(opts.time_limit.max(std::time::Duration::from_secs(5))),
        ..Default::default()
    };
    let tracing = opts.trace || opts.profile_out.is_some();
    let mut profiles = Vec::new();
    let mut t = TextTable::new(vec![
        "threads",
        "strategy",
        "plan ms",
        "exec ms",
        "exec speedup",
        "matches",
        "reuse",
        "steal lat",
        "idle ms",
        "pool",
        "per-worker",
    ]);
    let mut base = None;
    for threads in [1usize, 2, 4, 8] {
        for strategy in [ParallelStrategy::Static, ParallelStrategy::Morsel] {
            let (mut plan, mut enumt, mut matches) = (0.0f64, 0.0f64, 0u64);
            let mut reuse = 0u64;
            let mut pool = sm_runtime::WorkerMetrics::default();
            let mut per_worker = String::new();
            let mut pool_all = sm_runtime::PoolMetrics::default();
            let strat_name = match strategy {
                ParallelStrategy::Static => "static",
                ParallelStrategy::Morsel => "morsel",
            };
            for (qi, q) in queries.iter().enumerate() {
                let out = if tracing && !(threads == 1 && strategy == ParallelStrategy::Morsel) {
                    let meta = RunMeta {
                        dataset: "rmat50k".into(),
                        query: format!("q{qi}"),
                        config: format!("{strat_name}-t{threads}"),
                        threads,
                        cancelled: false,
                    };
                    let (out, profile) =
                        traced_cell(&pipeline, q, &gc, &cfg, threads, strategy, meta);
                    if opts.trace && qi == 0 {
                        print!("{}", profile.render_tree());
                    }
                    profiles.push(profile);
                    out
                } else {
                    pipeline.run_parallel_with(q, &gc, &cfg, threads, strategy)
                };
                plan += out.plan_build_time().as_secs_f64() * 1e3;
                enumt += out.enum_time.as_secs_f64() * 1e3;
                matches += out.matches;
                reuse += out.scratch_reuse;
                if let Some(m) = &out.parallel {
                    for w in &m.workers {
                        pool.merge(w);
                    }
                    per_worker = m.per_worker(); // last query: representative
                    while pool_all.workers.len() < m.workers.len() {
                        pool_all.workers.push(Default::default());
                    }
                    for (slot, w) in pool_all.workers.iter_mut().zip(&m.workers) {
                        slot.merge(w);
                    }
                }
            }
            // 1-thread runs are sequential under either label; print once.
            if threads == 1 && strategy == ParallelStrategy::Morsel {
                continue;
            }
            let base_ms = *base.get_or_insert(enumt);
            let pool_cell = if pool.morsels == 0 {
                "-".to_string()
            } else {
                format!(
                    "m={} s={} busy={:.0}%",
                    pool.morsels,
                    pool.steals,
                    100.0 * pool.busy.as_secs_f64()
                        / (pool.busy + pool.idle).as_secs_f64().max(1e-12)
                )
            };
            let steal_lat = if pool_all.total_steals() == 0 {
                "-".to_string()
            } else {
                format!("{:.1}µs", pool_all.mean_steal_wait().as_secs_f64() * 1e6)
            };
            let idle_cell = if pool_all.workers.is_empty() {
                "-".to_string()
            } else {
                format!("{:.2}", pool_all.total_idle().as_secs_f64() * 1e3)
            };
            t.row(vec![
                threads.to_string(),
                if threads == 1 {
                    "seq".to_string()
                } else {
                    strat_name.to_string()
                },
                ms(plan),
                ms(enumt),
                ratio(base_ms / enumt.max(1e-9)),
                matches.to_string(),
                reuse.to_string(),
                steal_lat,
                idle_cell,
                pool_cell,
                if per_worker.is_empty() {
                    "-".to_string()
                } else {
                    per_worker
                },
            ]);
        }
    }
    t.print();
    println!("(root distribution parallelizes execution only; the plan is built once, sequentially, and shared by all workers. m=morsels executed, s=stolen, reuse=scratch-arena reuses; steal lat=mean time a steal spent finding remote work, idle ms=summed worker time spent looking for work, per-worker idle/sw show the same per worker)");
    if let Some(path) = &opts.profile_out {
        write_profiles(path, &profiles);
        println!(
            "wrote {} profile(s) to {path} (+ {path}.folded)",
            profiles.len()
        );
    }
}
