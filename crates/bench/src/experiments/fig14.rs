//! Figure 14: spectrum analysis — the distribution of enumeration times
//! over randomly sampled matching orders for one dense and one sparse
//! query, with GQL's and RI's orders marked against it.

use crate::args::HarnessOptions;
use crate::experiments::{
    datasets_for, dense_sweep, load, measure_config, query_set, sparse_sweep,
};
use crate::table::{ms, TextTable};
use sm_match::spectrum::spectrum_analysis;
use sm_match::{Algorithm, DataContext};

/// Run the experiment.
pub fn run(opts: &HarnessOptions) {
    let specs = datasets_for(opts, &["yt"]);
    let spec = specs[0];
    let ds = load(&spec);
    let gc = DataContext::new(&ds.graph);
    let cfg = measure_config(opts);

    // Only the first query of each class is analyzed; generate exactly one
    // (the first accepted query is seed-identical regardless of count).
    let dense_set = query_set(&ds, dense_sweep(&spec, 1).last().unwrap().1);
    let sparse_set = query_set(&ds, sparse_sweep(&spec, 1).last().unwrap().1);
    let picks = [
        (format!("q{}D", spec.max_query_size), dense_set.first()),
        (format!("q{}S", spec.max_query_size), sparse_set.first()),
    ];

    println!(
        "\n=== Figure 14: spectrum of {} random orders on {} (per-order limit {:?}) ===",
        opts.orders, spec.abbrev, opts.time_limit
    );
    let mut t = TextTable::new(vec![
        "query",
        "completed",
        "min",
        "median",
        "max",
        "GQL",
        "RI",
    ]);
    for (name, q) in picks {
        let Some(q) = q else {
            continue;
        };
        let res = spectrum_analysis(q, &gc, opts.orders, opts.time_limit, 0xF14);
        let mut times: Vec<f64> = res
            .points
            .iter()
            .filter_map(|p| p.enum_time.map(|d| d.as_secs_f64() * 1e3))
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let gql = Algorithm::GraphQl.optimized().run(q, &gc, &cfg);
        let ri = Algorithm::Ri.optimized().run(q, &gc, &cfg);
        let fmt = |o: &sm_match::MatchOutput| {
            if o.unsolved() {
                "unsolved".to_string()
            } else {
                ms(o.enum_time.as_secs_f64() * 1e3)
            }
        };
        if times.is_empty() {
            t.row(vec![
                name,
                "0".to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                fmt(&gql),
                fmt(&ri),
            ]);
        } else {
            t.row(vec![
                name,
                format!("{}/{}", times.len(), res.points.len()),
                ms(times[0]),
                ms(times[times.len() / 2]),
                ms(*times.last().unwrap()),
                fmt(&gql),
                fmt(&ri),
            ]);
        }
    }
    t.print();
    println!("(min far below GQL/RI reproduces the paper's 'orders can be improved' finding)");
}
