//! One experiment module per table/figure of the paper's evaluation
//! section. Each prints the same rows/series the paper reports; shapes
//! (who wins, rough factors, crossovers) are the reproduction target, not
//! absolute times — the data graphs are scaled stand-ins (see DESIGN.md).

pub mod ablation;
pub mod durability;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod metrics;
pub mod parallel;
pub mod planner;
pub mod semantics;
pub mod serve;
pub mod shard;
pub mod table3;
pub mod table5;
pub mod table6;
pub mod update;

use crate::args::{HarnessOptions, PlanChoice};
use sm_datasets::{by_abbrev, queries, Dataset, DatasetSpec};
use sm_graph::gen::query::{Density, QuerySetSpec};
use sm_graph::Graph;
use sm_match::{MatchConfig, PlanSelection};
use sm_service::ServiceConfig;

/// Resolve the dataset list for an experiment: the `--datasets` override,
/// else the experiment's default abbreviations.
pub fn datasets_for(opts: &HarnessOptions, default: &[&str]) -> Vec<DatasetSpec> {
    match &opts.datasets {
        Some(list) => list
            .iter()
            .filter_map(|ab| {
                let d = by_abbrev(ab);
                if d.is_none() {
                    eprintln!("warning: unknown dataset '{ab}', skipping");
                }
                d
            })
            .collect(),
        None => default.iter().filter_map(|ab| by_abbrev(ab)).collect(),
    }
}

/// All eight dataset abbreviations, paper order.
pub const ALL_DATASETS: [&str; 8] = ["ye", "hu", "hp", "wn", "up", "yt", "db", "eu"];

/// Load a dataset stand-in (cached on disk after the first call).
pub fn load(spec: &DatasetSpec) -> Dataset {
    Dataset::load(spec.abbrev).expect("known dataset")
}

/// The dataset's *default* query sets per the paper (Q32D/Q32S, or
/// Q20D/Q20S for Human and WordNet).
pub fn default_query_sets(spec: &DatasetSpec, count: usize) -> Vec<(String, QuerySetSpec)> {
    let s = spec.max_query_size;
    [Density::Dense, Density::Sparse]
        .iter()
        .map(|&density| {
            let qs = QuerySetSpec {
                num_vertices: s,
                density,
                count,
            };
            (qs.name(), qs)
        })
        .collect()
}

/// Generate the queries of one set (deterministic).
pub fn query_set(ds: &Dataset, set: QuerySetSpec) -> Vec<Graph> {
    queries(&ds.graph, &ds.spec, set)
}

/// The paper's measurement configuration: 10^5 match cap plus the
/// harness's per-query time limit.
pub fn measure_config(opts: &HarnessOptions) -> MatchConfig {
    MatchConfig::default().with_time_limit(opts.time_limit)
}

/// Apply the `--plan` flag to a service configuration: `auto` switches
/// plan selection to the self-tuning planner, `fixed:<combo>` swaps in
/// that combo's pipeline and kernel; `default` leaves the experiment's
/// own choice alone.
pub fn apply_plan(cfg: &mut ServiceConfig, plan: &PlanChoice) {
    match plan {
        PlanChoice::Default => {}
        PlanChoice::Auto => cfg.base_config.plan = PlanSelection::Auto,
        PlanChoice::Fixed(combo) => {
            cfg.pipeline = combo.pipeline();
            cfg.base_config.intersect = combo.kernel;
        }
    }
}

/// The dense query-size sweep of a dataset (`Q8D..Q32D` or `..Q20D`).
pub fn dense_sweep(spec: &DatasetSpec, count: usize) -> Vec<(String, QuerySetSpec)> {
    let sizes: &[usize] = if spec.max_query_size == 20 {
        &[8, 12, 16, 20]
    } else {
        &[8, 16, 24, 32]
    };
    sizes
        .iter()
        .map(|&s| {
            let qs = QuerySetSpec {
                num_vertices: s,
                density: Density::Dense,
                count,
            };
            (qs.name(), qs)
        })
        .collect()
}

/// The sparse query-size sweep.
pub fn sparse_sweep(spec: &DatasetSpec, count: usize) -> Vec<(String, QuerySetSpec)> {
    let sizes: &[usize] = if spec.max_query_size == 20 {
        &[8, 12, 16, 20]
    } else {
        &[8, 16, 24, 32]
    };
    sizes
        .iter()
        .map(|&s| {
            let qs = QuerySetSpec {
                num_vertices: s,
                density: Density::Sparse,
                count,
            };
            (qs.name(), qs)
        })
        .collect()
}

/// Run every experiment in paper order (the `all` subcommand).
pub fn run_all(opts: &HarnessOptions) {
    table3::run(opts);
    fig07::run(opts);
    fig08::run(opts);
    fig09::run(opts);
    fig10::run(opts);
    fig11::run(opts);
    fig12::run(opts);
    fig13::run(opts);
    fig14::run(opts);
    table5::run(opts);
    table6::run(opts);
    fig15::run(opts);
    fig16::run(opts);
    fig17::run(opts);
    fig18::run(opts);
    ablation::run(opts);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sets_for_human_are_q20() {
        let hu = by_abbrev("hu").unwrap();
        let sets = default_query_sets(&hu, 5);
        assert_eq!(sets[0].0, "Q20D");
        assert_eq!(sets[1].0, "Q20S");
    }

    #[test]
    fn dataset_resolution() {
        let opts = HarnessOptions {
            datasets: Some(vec!["ye".into(), "nope".into()]),
            ..Default::default()
        };
        let ds = datasets_for(&opts, &["hu"]);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].abbrev, "ye");
        let opts2 = HarnessOptions::default();
        let ds2 = datasets_for(&opts2, &["hu", "ye"]);
        assert_eq!(ds2.len(), 2);
    }

    #[test]
    fn sweeps_match_table4() {
        let ye = by_abbrev("ye").unwrap();
        let names: Vec<String> = dense_sweep(&ye, 1).into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["Q8D", "Q16D", "Q24D", "Q32D"]);
        let wn = by_abbrev("wn").unwrap();
        let names: Vec<String> = sparse_sweep(&wn, 1).into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["Q8S", "Q12S", "Q16S", "Q20S"]);
    }
}
