//! Ablations of the design choices DESIGN.md calls out, beyond the
//! paper's own figures:
//!
//! 1. **Refinement iteration count** — DP-iso's `k` (paper default 3) and
//!    GraphQL's global-refinement rounds (paper default 1): pruning power
//!    vs filtering time.
//! 2. **Candidate-index coverage** — CFL's tree-edges-only index vs the
//!    all-edges index (memory vs enumeration speed; the structural side of
//!    Figure 9).
//! 3. **Set-intersection kernel** — all four kernels inside the same
//!    engine (the full version of Figure 10's two-way comparison).

use crate::args::HarnessOptions;
use crate::experiments::{datasets_for, default_query_sets, load, measure_config, query_set};
use crate::harness::eval_query_set;
use crate::table::{ms, TextTable};
use sm_intersect::IntersectKind;
use sm_match::filter::dpiso::dpiso_candidates;
use sm_match::filter::gql::{gql_candidates, GqlParams};
use sm_match::{Algorithm, DataContext, FilterKind, LcMethod, OrderKind, Pipeline, QueryContext};
use std::time::Instant;

/// Run all three ablations.
pub fn run(opts: &HarnessOptions) {
    let specs = datasets_for(opts, &["ye", "yt"]);
    for spec in &specs {
        let ds = load(spec);
        let gc = DataContext::new(&ds.graph);
        let mut queries = Vec::new();
        for (_, s) in default_query_sets(spec, opts.queries) {
            queries.extend(query_set(&ds, s));
        }

        println!(
            "\n=== Ablation 1a ({}): DP-iso refinement rounds k ===",
            spec.abbrev
        );
        let mut t = TextTable::new(vec!["k", "avg candidates", "filter ms"]);
        for k in [0usize, 1, 2, 3, 4, 5] {
            let (mut cand_sum, mut time_sum) = (0.0, 0.0);
            for q in &queries {
                let qc = QueryContext::new(q);
                let t0 = Instant::now();
                let (c, _) = dpiso_candidates(&qc, &gc, k);
                time_sum += t0.elapsed().as_secs_f64() * 1e3;
                cand_sum += c.average();
            }
            let n = queries.len().max(1) as f64;
            t.row(vec![
                k.to_string(),
                format!("{:.1}", cand_sum / n),
                ms(time_sum / n),
            ]);
        }
        t.print();

        println!(
            "\n=== Ablation 1b ({}): GraphQL global-refinement rounds ===",
            spec.abbrev
        );
        let mut t = TextTable::new(vec!["rounds", "avg candidates", "filter ms"]);
        for rounds in [0usize, 1, 2, 4] {
            let (mut cand_sum, mut time_sum) = (0.0, 0.0);
            for q in &queries {
                let qc = QueryContext::new(q);
                let t0 = Instant::now();
                let c = gql_candidates(
                    &qc,
                    &gc,
                    GqlParams {
                        refinement_rounds: rounds,
                    },
                );
                time_sum += t0.elapsed().as_secs_f64() * 1e3;
                cand_sum += c.average();
            }
            let n = queries.len().max(1) as f64;
            t.row(vec![
                rounds.to_string(),
                format!("{:.1}", cand_sum / n),
                ms(time_sum / n),
            ]);
        }
        t.print();

        println!(
            "\n=== Ablation 2 ({}): candidate-index coverage (CFL composition) ===",
            spec.abbrev
        );
        let cfg = measure_config(opts);
        let mut t = TextTable::new(vec!["coverage", "enum ms", "aux memory KiB"]);
        for (label, method) in [
            ("tree edges (Alg. 4)", LcMethod::TreeIndex),
            ("all edges (Alg. 5)", LcMethod::Intersect),
        ] {
            let p = Pipeline::new(label, FilterKind::Cfl, OrderKind::Cfl, method);
            let s = eval_query_set(&p, &queries, &gc, &cfg, opts.threads);
            let mem: usize =
                s.results.iter().map(|r| r.space_memory).sum::<usize>() / s.results.len().max(1);
            t.row(vec![
                label.to_string(),
                ms(s.avg_enum_ms()),
                (mem / 1024).to_string(),
            ]);
        }
        t.print();

        println!(
            "\n=== Ablation 3 ({}): intersection kernel in the optimized GQL engine ===",
            spec.abbrev
        );
        let mut t = TextTable::new(vec!["kernel", "enum ms"]);
        let pipeline = Algorithm::GraphQl.optimized();
        for kind in [
            IntersectKind::Merge,
            IntersectKind::Galloping,
            IntersectKind::Hybrid,
            IntersectKind::Bsr,
        ] {
            let mut cfg = measure_config(opts);
            cfg.intersect = kind;
            let s = eval_query_set(&pipeline, &queries, &gc, &cfg, opts.threads);
            t.row(vec![kind.name().to_string(), ms(s.avg_enum_ms())]);
        }
        t.print();
    }
}
