//! Figure 10: set-intersection kernels — the Hybrid policy vs the
//! QFilter-style block-bitmap layout — inside the optimized GQL engine.
//!
//! The paper finds QFilter ahead on the dense graphs (`eu`, `hu`) and
//! behind on sparse ones, where the compact layout's conversion overhead
//! dominates.

use crate::args::HarnessOptions;
use crate::experiments::{
    datasets_for, default_query_sets, dense_sweep, load, measure_config, query_set,
};
use crate::harness::eval_query_set;
use crate::table::{ms, TextTable};
use sm_intersect::IntersectKind;
use sm_match::{Algorithm, DataContext};

/// Run the experiment.
pub fn run(opts: &HarnessOptions) {
    let kinds = [IntersectKind::Hybrid, IntersectKind::Bsr];
    println!("\n=== Figure 10(a): enumeration time (ms) of optimized GQL, Hybrid vs QFilter ===");
    let specs = datasets_for(opts, &["eu", "hu", "yt", "db"]);
    let pipeline = Algorithm::GraphQl.optimized();
    let mut t = TextTable::new(
        std::iter::once("method".to_string())
            .chain(specs.iter().map(|d| d.abbrev.to_string()))
            .collect(),
    );
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for spec in &specs {
        let ds = load(spec);
        let gc = DataContext::new(&ds.graph);
        let mut queries = Vec::new();
        for (_, s) in default_query_sets(spec, opts.queries) {
            queries.extend(query_set(&ds, s));
        }
        let col = kinds
            .iter()
            .map(|&k| {
                let mut cfg = measure_config(opts);
                cfg.intersect = k;
                eval_query_set(&pipeline, &queries, &gc, &cfg, opts.threads).avg_enum_ms()
            })
            .collect();
        cols.push(col);
    }
    for (ki, k) in kinds.iter().enumerate() {
        let mut row = vec![k.name().to_string()];
        for col in &cols {
            row.push(ms(col[ki]));
        }
        t.row(row);
    }
    t.print();

    let spec = specs
        .iter()
        .find(|d| d.abbrev == "yt")
        .copied()
        .unwrap_or(specs[0]);
    println!(
        "\n=== Figure 10(b): enumeration time (ms) on {}, dense sizes ===",
        spec.abbrev
    );
    let ds = load(&spec);
    let gc = DataContext::new(&ds.graph);
    let sweep = dense_sweep(&spec, opts.queries);
    let mut t = TextTable::new(
        std::iter::once("method".to_string())
            .chain(sweep.iter().map(|(n, _)| n.clone()))
            .collect(),
    );
    let sweep_queries: Vec<_> = sweep.iter().map(|(_, s)| query_set(&ds, *s)).collect();
    for k in kinds {
        let mut row = vec![k.name().to_string()];
        for qs in &sweep_queries {
            let mut cfg = measure_config(opts);
            cfg.intersect = k;
            row.push(ms(
                eval_query_set(&pipeline, qs, &gc, &cfg, opts.threads).avg_enum_ms()
            ));
        }
        t.row(row);
    }
    t.print();
}
