//! Match-semantics benchmark — an extension experiment over the
//! [`sm_match::MatchSemantics`] descriptor: for each injectivity mode
//! (isomorphism / edge-injective / homomorphism) it compares a
//! **count-only** run against a **materializing** run of the same plan
//! on Yeast and a dense seeded RMAT graph.
//!
//! What the table shows, per graph × mode:
//!
//! * the match count under that mode (the homo ≥ edge-injective ≥ iso
//!   containment chain is asserted whenever no run timed out — the
//!   counts share one cap, and `min(cap, total)` preserves the order),
//! * count-only vs materializing wall time and the resulting
//!   **speedup** — the point of the no-materialization path: skipping
//!   the per-match embedding copy is pure win on dense workloads,
//! * embeddings/s throughput for both paths.
//!
//! CI runs this as a smoke: the count-only count is asserted equal to
//! the materialized length for every mode, and the containment chain is
//! asserted on every completed workload.

use crate::args::HarnessOptions;
use crate::results::{envelope, write_bench_json, Json};
use crate::table::{ms, ratio, TextTable};
use sm_graph::builder::graph_from_edges;
use sm_graph::gen::query::{Density, QuerySetSpec};
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_graph::Graph;
use sm_match::enumerate::CollectSink;
use sm_match::{
    Algorithm, DataContext, Executor, Injectivity, MatchConfig, MatchSemantics, Outcome,
};
use std::time::Instant;

/// Shared match cap: both paths of a comparison enumerate the same
/// prefix of the search, so counts stay comparable even when capped.
const CAP: u64 = 300_000;

const MODES: [Injectivity; 3] = [
    Injectivity::Isomorphism,
    Injectivity::EdgeInjective,
    Injectivity::Homomorphism,
];

/// The benchmark workloads: Yeast (paper dataset stand-in) plus a dense
/// RMAT graph whose label scarcity makes materialization cost visible.
fn workloads(opts: &HarnessOptions) -> Vec<(String, Graph, Graph)> {
    let mut out = Vec::new();
    for spec in super::datasets_for(opts, &["ye"]) {
        let ds = super::load(&spec);
        let qs = super::query_set(
            &ds,
            QuerySetSpec {
                num_vertices: 4,
                density: Density::Dense,
                count: 1,
            },
        );
        if let Some(q) = qs.into_iter().next() {
            out.push((spec.abbrev.to_string(), ds.graph.clone(), q));
        }
    }
    // Dense RMAT with few labels. The triangle probes mode differences
    // under real search pressure; the wedge (2-path over the hubs) emits
    // on nearly every recursion and hits the match cap in every mode,
    // which is exactly where skipping the per-match copy pays — the
    // acceptance workload for the count-only speedup.
    let g = rmat_graph(20_000, 8.0, 2, RmatParams::PAPER, opts.seed ^ 0x5E3A);
    let tri = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
    out.push(("rmat-tri".to_string(), g.clone(), tri));
    let wedge = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
    out.push(("rmat-wedge".to_string(), g, wedge));
    out
}

/// Run the semantics experiment.
pub fn run(opts: &HarnessOptions) {
    let time_limit = opts.time_limit.max(std::time::Duration::from_secs(2));
    println!(
        "\n=== Match semantics: count-only vs materializing per injectivity mode (cap {CAP}, limit {time_limit:?}) ==="
    );
    let pipeline = Algorithm::GraphQl.optimized();
    let mut t = TextTable::new(vec![
        "graph",
        "mode",
        "matches",
        "count ms",
        "mat ms",
        "count emb/s",
        "mat emb/s",
        "speedup",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    let mut rmat_speedup = None;

    for (gname, g, q) in workloads(opts) {
        let gc = DataContext::new(&g);
        let mut counts = Vec::new();
        let mut timed_out = false;
        for inj in MODES {
            let base = MatchSemantics {
                injectivity: inj,
                ..MatchSemantics::default()
            };
            let cfg = |sem: MatchSemantics| MatchConfig {
                max_matches: Some(CAP),
                time_limit: Some(time_limit),
                ..MatchConfig::find_all().with_semantics(sem)
            };
            // Two plans, one per output mode; identical search, the only
            // difference is whether each match is copied out to a sink.
            let Ok(count_plan) = pipeline.plan(&q, &gc, &cfg(base.count_only())) else {
                continue;
            };
            let Ok(mat_plan) = pipeline.plan(&q, &gc, &cfg(base)) else {
                continue;
            };

            let t0 = Instant::now();
            let mut count_sink = sm_match::enumerate::CountSink;
            let count_stats = Executor::new(&count_plan, &g).run(&mut count_sink);
            let count_s = t0.elapsed().as_secs_f64();

            let t1 = Instant::now();
            let mut sink = CollectSink::default();
            let mat_stats = Executor::new(&mat_plan, &g).run(&mut sink);
            let mat_s = t1.elapsed().as_secs_f64();

            timed_out |=
                count_stats.outcome == Outcome::TimedOut || mat_stats.outcome == Outcome::TimedOut;
            if !timed_out {
                assert_eq!(
                    count_stats.matches,
                    sink.matches.len() as u64,
                    "{gname}/{}: count-only disagrees with materialization",
                    inj.name()
                );
            }
            counts.push((inj, count_stats.matches));

            let n = count_stats.matches;
            let speedup = mat_s / count_s.max(1e-9);
            if gname.starts_with("rmat") && !timed_out {
                // The acceptance workload: dense RMAT, worst mode wins.
                let best = rmat_speedup.get_or_insert(speedup);
                if speedup > *best {
                    *best = speedup;
                }
            }
            t.row(vec![
                gname.clone(),
                inj.name().to_string(),
                n.to_string(),
                ms(count_s * 1e3),
                ms(mat_s * 1e3),
                format!("{:.2e}", n as f64 / count_s.max(1e-9)),
                format!("{:.2e}", mat_stats.matches as f64 / mat_s.max(1e-9)),
                ratio(speedup),
            ]);
            rows.push(Json::obj(vec![
                ("graph", Json::str(&gname)),
                ("mode", Json::str(inj.name())),
                ("matches", Json::Int(n as i64)),
                ("count_only_ms", Json::Num(count_s * 1e3)),
                ("materialize_ms", Json::Num(mat_s * 1e3)),
                ("speedup", Json::Num(speedup)),
                (
                    "count_outcome",
                    Json::str(outcome_name(count_stats.outcome)),
                ),
                ("mat_outcome", Json::str(outcome_name(mat_stats.outcome))),
            ]));
        }
        // Containment chain: every isomorphism is edge-injective, every
        // edge-injective mapping is a homomorphism. Shared cap keeps the
        // order; only a timeout can break it.
        if !timed_out && counts.len() == 3 {
            let get = |inj| {
                counts
                    .iter()
                    .find(|&&(i, _)| i == inj)
                    .map_or(0, |&(_, c)| c)
            };
            let (iso, edge, homo) = (
                get(Injectivity::Isomorphism),
                get(Injectivity::EdgeInjective),
                get(Injectivity::Homomorphism),
            );
            assert!(
                homo >= edge && edge >= iso,
                "{gname}: containment violated: homo {homo} >= edge {edge} >= iso {iso}"
            );
            println!("{gname}: homo {homo} >= edge-injective {edge} >= iso {iso} ✓");
        }
    }
    t.print();
    if let Some(s) = rmat_speedup {
        println!("count-only speedup on dense RMAT (best mode): {}", ratio(s));
    }

    write_bench_json(
        "semantics",
        &envelope(
            "semantics",
            vec![
                ("cap", Json::Int(CAP as i64)),
                ("seed", Json::Int(opts.seed as i64)),
                (
                    "rmat_count_only_speedup",
                    rmat_speedup.map_or(Json::Null, Json::Num),
                ),
                ("rows", Json::Arr(rows)),
            ],
        ),
    );
}

fn outcome_name(o: Outcome) -> &'static str {
    match o {
        Outcome::Complete => "complete",
        Outcome::CapReached => "cap",
        Outcome::TimedOut => "timeout",
    }
}
