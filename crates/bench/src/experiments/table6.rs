//! Table 6: per-query speedup of the best sampled matching order over the
//! orders GQL and RI generate, on Youtube's default sets.

use crate::args::HarnessOptions;
use crate::experiments::{datasets_for, default_query_sets, load, measure_config, query_set};
use crate::table::TextTable;
use sm_match::spectrum::{spectrum_analysis, speedup_over};
use sm_match::{Algorithm, DataContext};
use std::time::Duration;

/// Run the experiment.
pub fn run(opts: &HarnessOptions) {
    let specs = datasets_for(opts, &["yt"]);
    let spec = specs[0];
    let ds = load(&spec);
    let gc = DataContext::new(&ds.graph);
    let cfg = measure_config(opts);
    // Spectrum queries are expensive (orders × queries); trim the per-order
    // budget and the query count at default scale.
    let per_query = opts.queries.min(10);
    let per_order_limit = opts.time_limit.min(Duration::from_millis(250));
    println!(
        "\n=== Table 6: speedup of best sampled order ({} orders/query, {} queries/set) on {} ===",
        opts.orders, per_query, spec.abbrev
    );
    let mut t = TextTable::new(vec!["algorithm", "set", "mean", "std", "max", ">10"]);
    for (set_name, set) in default_query_sets(&spec, per_query) {
        let queries = query_set(&ds, set);
        for alg in [Algorithm::GraphQl, Algorithm::Ri] {
            let pipeline = alg.optimized();
            let mut speedups = Vec::new();
            for (qi, q) in queries.iter().enumerate() {
                let res =
                    spectrum_analysis(q, &gc, opts.orders, per_order_limit, 0x7AB6 + qi as u64);
                let Some(best) = res.best() else { continue };
                let out = pipeline.run(q, &gc, &cfg);
                let measured = if out.unsolved() {
                    opts.time_limit
                } else {
                    out.enum_time
                };
                speedups.push(speedup_over(best.enum_time.unwrap(), measured));
            }
            if speedups.is_empty() {
                t.row(vec![
                    pipeline.name.clone(),
                    set_name.clone(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            let n = speedups.len() as f64;
            let mean = speedups.iter().sum::<f64>() / n;
            let var = speedups
                .iter()
                .map(|s| (s - mean) * (s - mean))
                .sum::<f64>()
                / n;
            let max = speedups.iter().cloned().fold(f64::MIN, f64::max);
            let gt10 = speedups.iter().filter(|&&s| s > 10.0).count();
            t.row(vec![
                pipeline.name.clone(),
                set_name.clone(),
                format!("{mean:.1}"),
                format!("{:.1}", var.sqrt()),
                format!("{max:.1}"),
                gt10.to_string(),
            ]);
        }
    }
    t.print();
    println!("(speedup = algorithm's enumeration time / best sampled order's time)");
}
