//! Figure 8: pruning power — average candidate count `Σ|C(u)|/|V(q)|` of
//! each filter, against the LDF floor and the STEADY fixpoint baseline.

use crate::args::HarnessOptions;
use crate::experiments::{
    datasets_for, default_query_sets, dense_sweep, load, query_set, sparse_sweep, ALL_DATASETS,
};
use crate::table::TextTable;
use sm_graph::Graph;
use sm_match::filter::{run_filter, FilterKind};
use sm_match::{DataContext, QueryContext};

/// Figure 8's methods: LDF floor, the four filters, and the fixpoint.
pub const METHODS: [FilterKind; 6] = [
    FilterKind::Ldf,
    FilterKind::GraphQl,
    FilterKind::Cfl,
    FilterKind::Ceci,
    FilterKind::DpIso,
    FilterKind::Steady,
];

/// Mean candidate count of `kind` over `queries` (queries with empty
/// candidate sets contribute their average at the point of emptiness —
/// matching the paper's "number of candidate vertices" metric).
pub fn avg_candidates(kind: FilterKind, queries: &[Graph], gc: &DataContext<'_>) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for q in queries {
        let qc = QueryContext::new(q);
        if let Some(out) = run_filter(kind, &qc, gc) {
            total += out.candidates.average();
        }
    }
    total / queries.len() as f64
}

/// Run the experiment.
pub fn run(opts: &HarnessOptions) {
    println!("\n=== Figure 8(a): avg candidate count per dataset, default query sets ===");
    let specs = datasets_for(opts, &ALL_DATASETS);
    let mut t = TextTable::new(
        std::iter::once("method".to_string())
            .chain(specs.iter().map(|d| d.abbrev.to_string()))
            .collect(),
    );
    let mut columns = Vec::new();
    for spec in &specs {
        let ds = load(spec);
        let gc = DataContext::new(&ds.graph);
        let mut queries = Vec::new();
        for (_, s) in default_query_sets(spec, opts.queries) {
            queries.extend(query_set(&ds, s));
        }
        let col: Vec<f64> = METHODS
            .iter()
            .map(|&m| avg_candidates(m, &queries, &gc))
            .collect();
        columns.push(col);
    }
    for (mi, m) in METHODS.iter().enumerate() {
        let mut row = vec![m.name().to_string()];
        for col in &columns {
            row.push(format!("{:.1}", col[mi]));
        }
        t.row(row);
    }
    t.print();

    let spec = specs
        .iter()
        .find(|d| d.abbrev == "yt")
        .copied()
        .unwrap_or(specs[0]);
    let ds = load(&spec);
    let gc = DataContext::new(&ds.graph);

    println!(
        "\n=== Figure 8(b): avg candidates on {}, vary |V(q)| (dense) ===",
        spec.abbrev
    );
    let mut sweep = vec![(
        "Q4".to_string(),
        sm_graph::gen::query::QuerySetSpec {
            num_vertices: 4,
            density: sm_graph::gen::query::Density::Any,
            count: opts.queries,
        },
    )];
    sweep.extend(dense_sweep(&spec, opts.queries));
    let mut t = TextTable::new(
        std::iter::once("method".to_string())
            .chain(sweep.iter().map(|(n, _)| n.clone()))
            .collect(),
    );
    let sweep_queries: Vec<Vec<Graph>> = sweep.iter().map(|(_, s)| query_set(&ds, *s)).collect();
    for m in METHODS {
        let mut row = vec![m.name().to_string()];
        for qs in &sweep_queries {
            row.push(format!("{:.1}", avg_candidates(m, qs, &gc)));
        }
        t.row(row);
    }
    t.print();

    println!(
        "\n=== Figure 8(c): avg candidates on {}, dense vs sparse ===",
        spec.abbrev
    );
    let dense = query_set(&ds, dense_sweep(&spec, opts.queries).last().unwrap().1);
    let sparse = query_set(&ds, sparse_sweep(&spec, opts.queries).last().unwrap().1);
    let mut t = TextTable::new(vec!["method", "dense", "sparse"]);
    for m in METHODS {
        t.row(vec![
            m.name().to_string(),
            format!("{:.1}", avg_candidates(m, &dense, &gc)),
            format!("{:.1}", avg_candidates(m, &sparse, &gc)),
        ]);
    }
    t.print();
}
