//! Figure 15: effect of failing-set pruning.
//!
//! (a) DP-iso with and without failing sets as `|V(q)|` grows — the paper
//! shows w/fs *losing* on the small queries and winning by an order of
//! magnitude on large ones. (b) the speedup w/fs brings to every
//! algorithm on Youtube's default sets.

use crate::args::HarnessOptions;
use crate::experiments::fig11::ordering_pipelines;
use crate::experiments::{
    datasets_for, default_query_sets, dense_sweep, load, measure_config, query_set,
};
use crate::harness::eval_query_set;
use crate::table::{ms, ratio, TextTable};
use sm_graph::gen::query::{Density, QuerySetSpec};
use sm_match::{Algorithm, DataContext};

/// Run the experiment.
pub fn run(opts: &HarnessOptions) {
    let specs = datasets_for(opts, &["yt"]);
    let spec = specs[0];
    let ds = load(&spec);
    let gc = DataContext::new(&ds.graph);
    let cfg = measure_config(opts);
    let cfg_fs = {
        let mut c = cfg.clone();
        c.failing_sets = true;
        c
    };

    println!(
        "\n=== Figure 15(a): DP-iso enumeration time (ms) wo/fs vs w/fs on {}, vary |V(q)| ===",
        spec.abbrev
    );
    let dp = Algorithm::DpIso.optimized();
    let mut sweep = vec![(
        "Q4".to_string(),
        QuerySetSpec {
            num_vertices: 4,
            density: Density::Any,
            count: opts.queries,
        },
    )];
    sweep.extend(dense_sweep(&spec, opts.queries));
    let mut t = TextTable::new(
        std::iter::once("variant".to_string())
            .chain(sweep.iter().map(|(n, _)| n.clone()))
            .collect(),
    );
    let sweep_queries: Vec<_> = sweep.iter().map(|(_, s)| query_set(&ds, *s)).collect();
    for (label, c) in [("wo/fs", &cfg), ("w/fs", &cfg_fs)] {
        let mut row = vec![label.to_string()];
        for qs in &sweep_queries {
            row.push(ms(
                eval_query_set(&dp, qs, &gc, c, opts.threads).avg_enum_ms()
            ));
        }
        t.row(row);
    }
    t.print();

    println!(
        "\n=== Figure 15(b): failing-set speedup (wo/fs time / w/fs time) on {} default sets ===",
        spec.abbrev
    );
    let mut queries = Vec::new();
    for (_, s) in default_query_sets(&spec, opts.queries) {
        queries.extend(query_set(&ds, s));
    }
    let mut t = TextTable::new(vec!["algorithm", "wo/fs ms", "w/fs ms", "speedup"]);
    for p in ordering_pipelines() {
        let wo = eval_query_set(&p, &queries, &gc, &cfg, opts.threads).avg_enum_ms();
        let w = eval_query_set(&p, &queries, &gc, &cfg_fs, opts.threads).avg_enum_ms();
        t.row(vec![p.name.clone(), ms(wo), ms(w), ratio(wo / w.max(1e-6))]);
    }
    t.print();
}
