//! Plain-text table printing for the experiment output, shaped like the
//! paper's figures/tables (rows = methods, columns = datasets or query
//! sizes).

/// A simple left-aligned text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * ncols.saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format milliseconds compactly (paper plots are log-scale ms).
pub fn ms(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Format a ratio/speedup.
pub fn ratio(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else {
        format!("{x:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["method", "ye", "hu"]);
        t.row(vec!["GQL", "1.0", "22.5"]);
        t.row(vec!["CFL", "0.5", "3.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[2].starts_with("GQL"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(123.4), "123");
        assert_eq!(ms(1.234), "1.23");
        assert_eq!(ms(0.01234), "0.0123");
        assert_eq!(ratio(2.5), "2.50x");
        assert_eq!(ratio(1234.0), "1234x");
    }
}
