//! The experiment driver: one subcommand per table/figure of the paper.
//!
//! ```text
//! experiments <cmd> [--datasets ye,hu,...] [--queries N]
//!             [--time-limit-ms N] [--orders N] [--threads N] [--seed N]
//!             [--plan auto|fixed:<combo>]
//!             [--full] [--trace] [--profile-out PATH]
//!
//! cmd: table3 | fig7 | fig8 | fig9 | fig10 | fig11 | fig12 | fig13 |
//!      fig14 | table5 | table6 | fig15 | fig16 | fig17 | fig18 | ablation | parallel
//!      | planner | serve | shard | update | semantics | durability | top
//!      | metrics-overhead | all
//!      | profile | trace-overhead | check-profile
//!      | bench-fig7 | bench-fig8 | bench-fig9 | bench-fig10 | bench-fig11
//!      | bench-fig15 | bench-fig16 | bench-all
//! ```
//!
//! `profile` runs a traced workload and prints per-phase span trees
//! (write machine-readable JSONL + folded stacks with `--profile-out`);
//! `trace-overhead` smoke-checks the cost of enabling tracing;
//! `check-profile` round-trips a JSONL profile and validates its schema.
//! `--trace` also works on `parallel` for per-run span trees.
//! `top` renders live per-shard telemetry (q/s, p99, hit rate, skew)
//! under a client workload for `--duration-ms`, refreshed every
//! `--refresh-ms`; `metrics-overhead` gates the cost of the always-on
//! telemetry (enabled vs disabled service) and round-trips the
//! Prometheus exposition.
//!
//! `planner` evaluates the self-tuning cost-model planner (auto vs a
//! fixed-combo panel, cross-run feedback, a forced jump-redo replan);
//! `--plan auto|fixed:<combo>` switches the `serve`, `shard`, `update`
//! and `top` experiments onto planner-selected or forced plans.
//!
//! The `bench-*` subcommands are the timer-based micro-benchmarks that
//! replaced the former Criterion benches (min/median/mean per case).
//!
//! Defaults are laptop-friendly (20 queries/set, 1 s kill limit, 100
//! spectrum orders); `--full` switches to the paper's scale (200 queries,
//! 5 minutes, 1000 orders).

use sm_bench::args::HarnessOptions;
use sm_bench::experiments;

fn main() {
    let opts = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: experiments <cmd> [--datasets ye,hu] [--queries N] [--time-limit-ms N] [--orders N] [--threads N] [--clients N] [--seed N] [--plan auto|fixed:<combo>] [--duration-ms N] [--refresh-ms N] [--full] [--trace] [--profile-out PATH]");
            std::process::exit(2);
        }
    };
    println!(
        "# subgraph-matching experiments: cmd={} queries/set={} time-limit={:?} threads={}",
        opts.command, opts.queries, opts.time_limit, opts.threads
    );
    match opts.command.as_str() {
        "table3" => experiments::table3::run(&opts),
        "fig7" => experiments::fig07::run(&opts),
        "fig8" => experiments::fig08::run(&opts),
        "fig9" => experiments::fig09::run(&opts),
        "fig10" => experiments::fig10::run(&opts),
        "fig11" => experiments::fig11::run(&opts),
        "fig12" => experiments::fig12::run(&opts),
        "fig13" => experiments::fig13::run(&opts),
        "fig14" => experiments::fig14::run(&opts),
        "table5" => experiments::table5::run(&opts),
        "table6" => experiments::table6::run(&opts),
        "fig15" => experiments::fig15::run(&opts),
        "fig16" => experiments::fig16::run(&opts),
        "fig17" => experiments::fig17::run(&opts),
        "fig18" => experiments::fig18::run(&opts),
        "ablation" => experiments::ablation::run(&opts),
        "parallel" => experiments::parallel::run(&opts),
        "planner" => experiments::planner::run(&opts),
        "serve" => experiments::serve::run(&opts),
        "shard" => experiments::shard::run(&opts),
        "semantics" => experiments::semantics::run(&opts),
        "update" => experiments::update::run(&opts),
        "durability" => experiments::durability::run(&opts),
        "top" => experiments::metrics::top(&opts),
        "metrics-overhead" => {
            experiments::metrics::overhead(&opts, Some(experiments::metrics::OVERHEAD_BOUND))
        }
        "profile" => sm_bench::profile::run(&opts),
        "trace-overhead" => sm_bench::profile::trace_overhead(&opts),
        "check-profile" => sm_bench::profile::check_profile(&opts),
        "all" => experiments::run_all(&opts),
        "bench-fig7" => sm_bench::micro::bench_fig07(&opts),
        "bench-fig8" => sm_bench::micro::bench_fig08(&opts),
        "bench-fig9" => sm_bench::micro::bench_fig09(&opts),
        "bench-fig10" => sm_bench::micro::bench_fig10(&opts),
        "bench-fig11" => sm_bench::micro::bench_fig11(&opts),
        "bench-fig15" => sm_bench::micro::bench_fig15(&opts),
        "bench-fig16" => sm_bench::micro::bench_fig16(&opts),
        "bench-all" => sm_bench::micro::run_all(&opts),
        other => {
            eprintln!("unknown subcommand '{other}'");
            std::process::exit(2);
        }
    }
}
