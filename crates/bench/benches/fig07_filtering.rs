//! Criterion micro-bench behind Figure 7: filtering time of the four
//! candidate-generation methods on the Yeast stand-in.

use criterion::{criterion_group, criterion_main, Criterion};
use sm_datasets::Dataset;
use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_match::filter::{run_filter, FilterKind};
use sm_match::{DataContext, QueryContext};

fn bench_filters(c: &mut Criterion) {
    let ds = Dataset::load("ye").expect("yeast stand-in");
    let gc = DataContext::new(&ds.graph);
    let queries = generate_query_set(
        &ds.graph,
        QuerySetSpec {
            num_vertices: 16,
            density: Density::Dense,
            count: 4,
        },
        7,
    );
    let mut group = c.benchmark_group("fig07_filtering");
    group.sample_size(20);
    for kind in [
        FilterKind::GraphQl,
        FilterKind::Cfl,
        FilterKind::Ceci,
        FilterKind::DpIso,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                for q in &queries {
                    let qc = QueryContext::new(q);
                    std::hint::black_box(run_filter(kind, &qc, &gc));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
