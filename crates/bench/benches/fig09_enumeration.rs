//! Criterion micro-bench behind Figure 9: each local-candidate method on
//! the same workload (GraphQL candidates, GraphQL order, Yeast stand-in).

use criterion::{criterion_group, criterion_main, Criterion};
use sm_datasets::Dataset;
use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_match::{DataContext, FilterKind, LcMethod, MatchConfig, OrderKind, Pipeline};

fn bench_lc_methods(c: &mut Criterion) {
    let ds = Dataset::load("ye").expect("yeast stand-in");
    let gc = DataContext::new(&ds.graph);
    let queries = generate_query_set(
        &ds.graph,
        QuerySetSpec {
            num_vertices: 12,
            density: Density::Dense,
            count: 4,
        },
        9,
    );
    let cfg = MatchConfig::default();
    let mut group = c.benchmark_group("fig09_enumeration");
    group.sample_size(15);
    for method in [
        LcMethod::Direct,
        LcMethod::CandidateScan,
        LcMethod::TreeIndex,
        LcMethod::Intersect,
    ] {
        let pipeline = Pipeline::new(
            method.name(),
            FilterKind::GraphQl,
            OrderKind::GraphQl,
            method,
        );
        group.bench_function(method.name(), |b| {
            b.iter(|| {
                for q in &queries {
                    std::hint::black_box(pipeline.run(q, &gc, &cfg));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lc_methods);
criterion_main!(benches);
