//! Criterion micro-bench behind Figure 10: raw set-intersection kernels on
//! dense vs sparse sorted sets (the regime that decides Hybrid vs QFilter).

use criterion::{criterion_group, criterion_main, Criterion};
use sm_intersect::{intersect_buf, BsrSet, IntersectKind};

fn dense_sets() -> (Vec<u32>, Vec<u32>) {
    // consecutive runs: BSR blocks are nearly full
    let a: Vec<u32> = (0..8000u32).filter(|x| x % 4 != 3).collect();
    let b: Vec<u32> = (0..8000u32).filter(|x| x % 3 != 2).collect();
    (a, b)
}

fn sparse_sets() -> (Vec<u32>, Vec<u32>) {
    // far-apart elements: one bit per BSR block
    let a: Vec<u32> = (0..3000u32).map(|x| x * 97).collect();
    let b: Vec<u32> = (0..3000u32).map(|x| x * 101).collect();
    (a, b)
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_intersection");
    for (regime, (a, b)) in [("dense", dense_sets()), ("sparse", sparse_sets())] {
        for kind in [
            IntersectKind::Merge,
            IntersectKind::Galloping,
            IntersectKind::Hybrid,
        ] {
            group.bench_function(format!("{}/{}", regime, kind.name()), |bch| {
                let mut out = Vec::with_capacity(a.len());
                bch.iter(|| {
                    out.clear();
                    intersect_buf(kind, &a, &b, &mut out);
                    std::hint::black_box(out.len())
                })
            });
        }
        // QFilter-style with precomputed encodings (how the engine uses it).
        let ba = BsrSet::from_sorted(&a);
        let bb = BsrSet::from_sorted(&b);
        group.bench_function(format!("{regime}/QFilter"), |bch| {
            let mut out = BsrSet::default();
            bch.iter(|| {
                ba.intersect_into(&bb, &mut out);
                std::hint::black_box(out.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
