//! Criterion micro-bench behind Figure 8: pruning-power vs cost of each
//! filter, including the STEADY fixpoint, on the Yeast stand-in.
//!
//! (Figure 8 itself reports candidate *counts*; this bench pins the time
//! each filter pays for its pruning, the trade-off Section 5.1 discusses.)

use criterion::{criterion_group, criterion_main, Criterion};
use sm_datasets::Dataset;
use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_match::filter::{run_filter, FilterKind};
use sm_match::{DataContext, QueryContext};

fn bench_candidate_generation(c: &mut Criterion) {
    let ds = Dataset::load("ye").expect("yeast stand-in");
    let gc = DataContext::new(&ds.graph);
    let queries = generate_query_set(
        &ds.graph,
        QuerySetSpec {
            num_vertices: 16,
            density: Density::Sparse,
            count: 4,
        },
        8,
    );
    let mut group = c.benchmark_group("fig08_candidates");
    group.sample_size(20);
    for kind in [
        FilterKind::Ldf,
        FilterKind::Nlf,
        FilterKind::GraphQl,
        FilterKind::Cfl,
        FilterKind::Ceci,
        FilterKind::DpIso,
        FilterKind::Steady,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                for q in &queries {
                    let qc = QueryContext::new(q);
                    std::hint::black_box(run_filter(kind, &qc, &gc));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_candidate_generation);
criterion_main!(benches);
