//! Criterion micro-bench behind Figure 15: DP-iso with and without
//! failing-set pruning, on small vs large queries (the crossover the
//! paper reports).

use criterion::{criterion_group, criterion_main, Criterion};
use sm_datasets::Dataset;
use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_match::{Algorithm, DataContext, MatchConfig};

fn bench_failing_sets(c: &mut Criterion) {
    let ds = Dataset::load("ye").expect("yeast stand-in");
    let gc = DataContext::new(&ds.graph);
    let pipeline = Algorithm::DpIso.optimized();
    let mut group = c.benchmark_group("fig15_failing_sets");
    group.sample_size(15);
    for size in [8usize, 16] {
        let queries = generate_query_set(
            &ds.graph,
            QuerySetSpec {
                num_vertices: size,
                density: Density::Dense,
                count: 3,
            },
            15,
        );
        for fs in [false, true] {
            let cfg = MatchConfig::default().with_failing_sets(fs);
            let label = format!("Q{size}D/{}", if fs { "w-fs" } else { "wo-fs" });
            group.bench_function(label, |b| {
                b.iter(|| {
                    for q in &queries {
                        std::hint::black_box(pipeline.run(q, &gc, &cfg));
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_failing_sets);
criterion_main!(benches);
