//! Criterion micro-bench behind Figure 16: end-to-end query time of the
//! optimized GQLfs/RIfs vs the original compositions and Glasgow, Yeast
//! stand-in.

use criterion::{criterion_group, criterion_main, Criterion};
use sm_datasets::Dataset;
use sm_glasgow::{glasgow_match, GlasgowConfig};
use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_match::{Algorithm, DataContext, MatchConfig};

fn bench_overall(c: &mut Criterion) {
    let ds = Dataset::load("ye").expect("yeast stand-in");
    let gc = DataContext::new(&ds.graph);
    let queries = generate_query_set(
        &ds.graph,
        QuerySetSpec {
            num_vertices: 12,
            density: Density::Dense,
            count: 3,
        },
        16,
    );
    let mut group = c.benchmark_group("fig16_overall");
    group.sample_size(15);

    let fs = MatchConfig::default().with_failing_sets(true);
    let plain = MatchConfig::default();
    let competitors = [
        ("GQLfs", Algorithm::GraphQl.optimized(), &fs),
        ("RIfs", Algorithm::Ri.optimized(), &fs),
        ("O-CECI", Algorithm::Ceci.original(), &plain),
        ("O-DP", Algorithm::DpIso.original(), &plain),
        ("O-RI", Algorithm::Ri.original(), &plain),
        ("O-2PP", Algorithm::Vf2pp.original(), &plain),
    ];
    for (name, pipeline, cfg) in competitors {
        group.bench_function(name, |b| {
            b.iter(|| {
                for q in &queries {
                    std::hint::black_box(pipeline.run(q, &gc, cfg));
                }
            })
        });
    }
    let glw_cfg = GlasgowConfig::default();
    group.bench_function("GLW", |b| {
        b.iter(|| {
            for q in &queries {
                std::hint::black_box(glasgow_match(q, &ds.graph, &glw_cfg).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_overall);
criterion_main!(benches);
