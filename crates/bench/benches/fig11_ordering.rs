//! Criterion micro-bench behind Figure 11: full query runs under each
//! ordering method with the optimized engine, Yeast stand-in.

use criterion::{criterion_group, criterion_main, Criterion};
use sm_datasets::Dataset;
use sm_graph::gen::query::{generate_query_set, Density, QuerySetSpec};
use sm_match::{Algorithm, DataContext, MatchConfig};

fn bench_orderings(c: &mut Criterion) {
    let ds = Dataset::load("ye").expect("yeast stand-in");
    let gc = DataContext::new(&ds.graph);
    let queries = generate_query_set(
        &ds.graph,
        QuerySetSpec {
            num_vertices: 12,
            density: Density::Dense,
            count: 4,
        },
        11,
    );
    let cfg = MatchConfig::default();
    let mut group = c.benchmark_group("fig11_ordering");
    group.sample_size(15);
    for alg in Algorithm::all() {
        let pipeline = alg.optimized();
        group.bench_function(pipeline.name.clone(), |b| {
            b.iter(|| {
                for q in &queries {
                    std::hint::black_box(pipeline.run(q, &gc, &cfg));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orderings);
criterion_main!(benches);
