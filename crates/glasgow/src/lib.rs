//! A Glasgow-style constraint-programming subgraph solver (Archibald et
//! al., CPAIOR 2019), the out-of-framework comparator of the study's
//! Section 3.5 and Figure 16.
//!
//! Subgraph matching is modelled as a CP problem: each query vertex is a
//! variable whose domain is a bitset over data vertices; each query edge
//! is a constraint. The solver:
//!
//! * seeds domains with unary constraints — label, degree, and
//!   neighbourhood degree sequence dominance;
//! * on each assignment `u → v`, propagates: neighbor domains intersect
//!   `N(v)`'s bitset, `v` is removed everywhere (all-different), and a
//!   counting Hall check prunes pigeonhole-infeasible states;
//! * picks the next variable by smallest remaining domain (MRV) and tries
//!   values in descending-degree order, Glasgow's bias toward finding an
//!   embedding quickly;
//! * enumerates all solutions under the usual cap/time limit.
//!
//! Like the original, it materializes one adjacency bitset **per data
//! vertex** — `O(|V(G)|²/8)` bytes — plus per-depth domain copies. That
//! footprint is checked against [`GlasgowConfig::memory_budget_bytes`]
//! before solving, reproducing the paper's observation that Glasgow only
//! runs on the small datasets (`hp`, `ye`, `hu`) and exhausts memory on
//! the rest.

#![warn(missing_docs)]

use sm_graph::{Graph, VertexId};
use sm_runtime::trace::{Counter, CounterBlock, Trace};
use sm_runtime::{CancelReason, CancelToken};
use std::time::{Duration, Instant};

/// Configuration of a Glasgow run.
#[derive(Clone, Debug)]
pub struct GlasgowConfig {
    /// Stop after this many matches.
    pub max_matches: Option<u64>,
    /// Kill the search after this long.
    pub time_limit: Option<Duration>,
    /// Refuse to run if the estimated footprint exceeds this (default 2 GiB,
    /// mirroring "runs out of memory on other datasets").
    pub memory_budget_bytes: usize,
    /// Caller-side cancellation: when set, the solver polls this token in
    /// addition to `time_limit` and stops early (without marking the run
    /// timed out) when it is cancelled.
    pub cancel: Option<CancelToken>,
    /// Observability handle: `init`/`search` spans plus the
    /// `glasgow_nodes` / `glasgow_propagations` counters flow through here.
    pub trace: Trace,
}

impl Default for GlasgowConfig {
    fn default() -> Self {
        GlasgowConfig {
            max_matches: Some(100_000),
            time_limit: None,
            memory_budget_bytes: 2 << 30,
            cancel: None,
            trace: Trace::disabled(),
        }
    }
}

/// Why a Glasgow run could not start or finish.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GlasgowError {
    /// Estimated memory exceeds the budget.
    OutOfMemory {
        /// Bytes the solver would need.
        required: usize,
        /// Configured budget.
        budget: usize,
    },
}

impl std::fmt::Display for GlasgowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GlasgowError::OutOfMemory { required, budget } => write!(
                f,
                "glasgow would need ~{required} bytes of bitset state, budget is {budget}"
            ),
        }
    }
}

impl std::error::Error for GlasgowError {}

/// Result counters of a Glasgow run.
#[derive(Clone, Debug)]
pub struct GlasgowStats {
    /// Matches found.
    pub matches: u64,
    /// Search nodes explored.
    pub nodes: u64,
    /// Wall-clock time including domain initialization.
    pub elapsed: Duration,
    /// Whether the time limit killed the search.
    pub timed_out: bool,
}

/// Estimated bitset footprint: adjacency rows + per-depth domain copies.
pub fn estimate_memory(q: &Graph, g: &Graph) -> usize {
    let n = g.num_vertices();
    let words_per_row = n.div_ceil(64);
    let nq = q.num_vertices();
    let adjacency = n * words_per_row * 8;
    let domains = nq * nq * words_per_row * 8; // one domain set per depth
    adjacency + domains
}

/// Find all matches of `q` in `g` with the CP solver.
///
/// ```
/// use sm_graph::builder::graph_from_edges;
/// use sm_glasgow::{glasgow_match, GlasgowConfig};
///
/// let q = graph_from_edges(&[0, 1], &[(0, 1)]);
/// let g = graph_from_edges(&[0, 1, 1], &[(0, 1), (0, 2)]);
/// let stats = glasgow_match(&q, &g, &GlasgowConfig::default()).unwrap();
/// assert_eq!(stats.matches, 2);
/// ```
pub fn glasgow_match(
    q: &Graph,
    g: &Graph,
    config: &GlasgowConfig,
) -> Result<GlasgowStats, GlasgowError> {
    let required = estimate_memory(q, g);
    if required > config.memory_budget_bytes {
        return Err(GlasgowError::OutOfMemory {
            required,
            budget: config.memory_budget_bytes,
        });
    }
    let started = Instant::now();
    let trace = config.trace.clone();
    let run_span = trace.is_enabled().then(|| trace.span("glasgow"));
    let init_span = trace.is_enabled().then(|| trace.span("init"));
    let n = g.num_vertices();
    let nq = q.num_vertices();
    let words = n.div_ceil(64);

    // Adjacency bitsets: row v = N(v).
    let mut adj = vec![0u64; n * words];
    for v in g.vertices() {
        let row = v as usize * words;
        for &w in g.neighbors(v) {
            adj[row + (w as usize >> 6)] |= 1u64 << (w & 63);
        }
    }

    // Initial domains from unary constraints.
    let mut root_domains = vec![0u64; nq * words];
    let g_nds = degree_sequences(g);
    let q_nds = degree_sequences(q);
    for u in q.vertices() {
        let row = u as usize * words;
        for &v in g.vertices_with_label(q.label(u)).iter() {
            if g.degree(v) >= q.degree(u) && nds_dominates(&g_nds[v as usize], &q_nds[u as usize]) {
                root_domains[row + (v as usize >> 6)] |= 1u64 << (v & 63);
            }
        }
        if root_domains[row..row + words].iter().all(|&w| w == 0) {
            return Ok(GlasgowStats {
                matches: 0,
                nodes: 0,
                elapsed: started.elapsed(),
                timed_out: false,
            });
        }
    }

    let mut solver = Solver {
        q,
        g,
        words,
        adj: &adj,
        // depth-indexed domain arenas: depth d uses rows [d * nq * words ..]
        arena: vec![0u64; (nq + 1) * nq * words],
        assigned: vec![u32::MAX; nq],
        assigned_mask: vec![false; nq],
        matches: 0,
        nodes: 0,
        cap: config.max_matches.unwrap_or(u64::MAX),
        cancel: {
            let deadline = config.time_limit.map(|d| started + d);
            match &config.cancel {
                Some(outer) => outer.child(deadline),
                None => CancelToken::with_deadline(deadline),
            }
        },
        halted: false,
        timed_out: false,
        counters: CounterBlock::new(),
    };
    solver.arena[..nq * words].copy_from_slice(&root_domains);
    drop(init_span);
    let search_span = trace.is_enabled().then(|| trace.span("search"));
    solver.search(0);
    drop(search_span);
    solver.counters.set(Counter::GlasgowNodes, solver.nodes);
    solver.counters.add(Counter::Matches, solver.matches);
    trace.flush_counters(0, &solver.counters);
    if solver.halted && trace.is_enabled() {
        trace.mark_cancelled();
    }
    drop(run_span);
    Ok(GlasgowStats {
        matches: solver.matches,
        nodes: solver.nodes,
        elapsed: started.elapsed(),
        timed_out: solver.timed_out,
    })
}

/// Sorted-descending neighbour degree sequence of every vertex.
fn degree_sequences(g: &Graph) -> Vec<Vec<u32>> {
    g.vertices()
        .map(|v| {
            let mut ds: Vec<u32> = g.neighbors(v).iter().map(|&w| g.degree(w) as u32).collect();
            ds.sort_unstable_by(|a, b| b.cmp(a));
            ds
        })
        .collect()
}

/// Whether the data sequence dominates the query sequence elementwise.
fn nds_dominates(data: &[u32], query: &[u32]) -> bool {
    data.len() >= query.len() && query.iter().zip(data).all(|(qd, gd)| gd >= qd)
}

struct Solver<'a> {
    q: &'a Graph,
    g: &'a Graph,
    words: usize,
    adj: &'a [u64],
    arena: Vec<u64>,
    assigned: Vec<u32>,
    assigned_mask: Vec<bool>,
    matches: u64,
    nodes: u64,
    cap: u64,
    cancel: CancelToken,
    halted: bool,
    timed_out: bool,
    counters: CounterBlock,
}

impl Solver<'_> {
    fn domain_size(&self, depth: usize, u: usize) -> u32 {
        let nq = self.q.num_vertices();
        let base = depth * nq * self.words + u * self.words;
        self.arena[base..base + self.words]
            .iter()
            .map(|w| w.count_ones())
            .sum()
    }

    fn stopped(&self) -> bool {
        self.halted || self.matches >= self.cap
    }

    fn search(&mut self, depth: usize) {
        self.nodes += 1;
        if self.nodes & 0x3FF == 0 {
            if let Some(reason) = self.cancel.poll() {
                self.halted = true;
                self.timed_out = reason == CancelReason::Deadline;
            }
        }
        if self.stopped() {
            return;
        }
        let nq = self.q.num_vertices();
        if depth == nq {
            self.matches += 1;
            return;
        }
        // MRV: unassigned variable with smallest domain.
        let u = (0..nq)
            .filter(|&u| !self.assigned_mask[u])
            .min_by_key(|&u| (self.domain_size(depth, u), u))
            .expect("depth < nq implies an unassigned variable");
        // Hall/pigeonhole check: union of unassigned domains must offer at
        // least as many values as there are unassigned variables.
        if !self.union_large_enough(depth) {
            return;
        }
        // Values in descending degree (Glasgow's value heuristic).
        let mut values = self.domain_values(depth, u);
        values.sort_unstable_by_key(|&v| (std::cmp::Reverse(self.g.degree(v)), v));
        for v in values {
            if self.stopped() {
                return;
            }
            if self.propagate(depth, u, v) {
                self.assigned[u] = v;
                self.assigned_mask[u] = true;
                self.counters
                    .record_max(Counter::PeakDepth, depth as u64 + 1);
                self.search(depth + 1);
                self.assigned_mask[u] = false;
                self.assigned[u] = u32::MAX;
                self.counters.bump(Counter::Backtracks);
            }
        }
    }

    fn domain_values(&self, depth: usize, u: usize) -> Vec<VertexId> {
        let nq = self.q.num_vertices();
        let base = depth * nq * self.words + u * self.words;
        let mut out = Vec::new();
        for (wi, &word) in self.arena[base..base + self.words].iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros();
                out.push((wi as u32) << 6 | bit);
                w &= w - 1;
            }
        }
        out
    }

    /// Counting all-different: the union of the unassigned domains must
    /// hold at least as many values as variables remain.
    fn union_large_enough(&self, depth: usize) -> bool {
        let nq = self.q.num_vertices();
        let remaining = (0..nq).filter(|&u| !self.assigned_mask[u]).count();
        let base = depth * nq * self.words;
        let mut count = 0usize;
        for wi in 0..self.words {
            let mut union = 0u64;
            for u in 0..nq {
                if !self.assigned_mask[u] {
                    union |= self.arena[base + u * self.words + wi];
                }
            }
            count += union.count_ones() as usize;
            if count >= remaining {
                return true;
            }
        }
        count >= remaining
    }

    /// Copy depth's domains to depth+1 applying the assignment `u → v`.
    /// Returns false if some unassigned domain empties (dead end).
    fn propagate(&mut self, depth: usize, u: usize, v: VertexId) -> bool {
        self.counters.bump(Counter::GlasgowPropagations);
        let nq = self.q.num_vertices();
        let words = self.words;
        let src = depth * nq * words;
        let dst = (depth + 1) * nq * words;
        let vrow = v as usize * words;
        let is_nbr: Vec<bool> = {
            let mut m = vec![false; nq];
            for &u2 in self.q.neighbors(u as u32) {
                m[u2 as usize] = true;
            }
            m
        };
        // Index-driven on purpose: u2 selects aligned regions of three
        // parallel arrays (arena src/dst rows and the neighbor mask).
        #[allow(clippy::needless_range_loop)]
        for u2 in 0..nq {
            if u2 == u {
                // pin the assignment
                for wi in 0..words {
                    self.arena[dst + u2 * words + wi] = 0;
                }
                self.arena[dst + u2 * words + (v as usize >> 6)] = 1u64 << (v & 63);
                continue;
            }
            if self.assigned_mask[u2] {
                let av = self.assigned[u2];
                for wi in 0..words {
                    self.arena[dst + u2 * words + wi] = 0;
                }
                self.arena[dst + u2 * words + (av as usize >> 6)] = 1u64 << (av & 63);
                continue;
            }
            let mut nonzero = 0u64;
            for wi in 0..words {
                let mut w = self.arena[src + u2 * words + wi];
                if is_nbr[u2] {
                    w &= self.adj[vrow + wi];
                }
                self.arena[dst + u2 * words + wi] = w;
                nonzero |= w;
            }
            // all-different: drop v
            let cell = dst + u2 * words + (v as usize >> 6);
            self.arena[cell] &= !(1u64 << (v & 63));
            if nonzero == 0 || (!self.domain_nonzero(dst + u2 * words)) {
                return false;
            }
        }
        true
    }

    fn domain_nonzero(&self, base: usize) -> bool {
        self.arena[base..base + self.words].iter().any(|&w| w != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_graph::builder::graph_from_edges;
    // The Figure 1 fixtures live in sm-match (a dev-dependency) so the
    // same graphs back every crate's tests.
    use sm_match::fixtures::{paper_data, paper_query};

    #[test]
    fn finds_the_unique_match() {
        let stats = glasgow_match(&paper_query(), &paper_data(), &GlasgowConfig::default())
            .expect("fits in memory");
        assert_eq!(stats.matches, 1);
        assert!(!stats.timed_out);
        assert!(stats.nodes >= 1);
    }

    #[test]
    fn triangle_counts() {
        let tri = graph_from_edges(&[0; 3], &[(0, 1), (1, 2), (0, 2)]);
        let k4 = graph_from_edges(&[0; 4], &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let stats = glasgow_match(&tri, &k4, &GlasgowConfig::default()).unwrap();
        assert_eq!(stats.matches, 24);
    }

    #[test]
    fn memory_budget_enforced() {
        let q = paper_query();
        let g = paper_data();
        let tight = GlasgowConfig {
            memory_budget_bytes: 16,
            ..Default::default()
        };
        match glasgow_match(&q, &g, &tight) {
            Err(GlasgowError::OutOfMemory { required, budget }) => {
                assert!(required > budget);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn match_cap() {
        let edge = graph_from_edges(&[0, 0], &[(0, 1)]);
        let k4 = graph_from_edges(&[0; 4], &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let cfg = GlasgowConfig {
            max_matches: Some(3),
            ..Default::default()
        };
        let stats = glasgow_match(&edge, &k4, &cfg).unwrap();
        assert_eq!(stats.matches, 3);
    }

    #[test]
    fn nds_rejects_weak_neighborhoods() {
        // query u needs a neighbor of degree 2; data v's neighbors all have
        // degree 1 → NDS prunes v before search.
        assert!(nds_dominates(&[3, 2, 1], &[2, 1]));
        assert!(!nds_dominates(&[1, 1], &[2]));
        assert!(!nds_dominates(&[3], &[2, 2]));
    }

    #[test]
    fn no_label_match_returns_zero() {
        let q = graph_from_edges(&[7, 7], &[(0, 1)]);
        let g = graph_from_edges(&[0, 0], &[(0, 1)]);
        let stats = glasgow_match(&q, &g, &GlasgowConfig::default()).unwrap();
        assert_eq!(stats.matches, 0);
    }
}
