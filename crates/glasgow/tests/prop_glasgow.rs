//! Glasgow must agree with the framework's brute-force reference on random
//! workloads.

use sm_glasgow::{glasgow_match, GlasgowConfig};
use sm_graph::gen::query::{extract_query, Density};
use sm_graph::gen::random::erdos_renyi;
use sm_match::reference::brute_force_count;
use sm_runtime::check::Check;
use sm_runtime::ensure_eq;
use sm_runtime::rng::Rng64;

#[test]
fn glasgow_agrees_with_brute_force() {
    Check::new("glasgow_agrees_with_brute_force").cases(24).run(
        |rng, size| {
            let qsize = 3 + (size as usize * 3 / 100).min(3); // 3..=6
            (rng.gen_range(0..5000u64), rng.gen_range(0..5000u64), qsize)
        },
        |&(data_seed, query_seed, qsize)| {
            let g = erdos_renyi(50, 120, 3, data_seed);
            let mut rng = Rng64::seed_from_u64(query_seed);
            let Some(q) = (0..30).find_map(|_| extract_query(&g, qsize, Density::Any, &mut rng))
            else {
                return Ok(());
            };
            let want = brute_force_count(&q, &g, None);
            let cfg = GlasgowConfig {
                max_matches: None,
                ..Default::default()
            };
            let stats = glasgow_match(&q, &g, &cfg).expect("small graph fits budget");
            ensure_eq!(stats.matches, want, "seeds ({}, {})", data_seed, query_seed);
            Ok(())
        },
    );
}
