//! Glasgow must agree with the framework's brute-force reference on random
//! workloads.

use proptest::prelude::*;
use rand::SeedableRng;
use sm_glasgow::{glasgow_match, GlasgowConfig};
use sm_graph::gen::query::{extract_query, Density};
use sm_graph::gen::random::erdos_renyi;
use sm_match::reference::brute_force_count;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn glasgow_agrees_with_brute_force(
        data_seed in 0u64..5000,
        query_seed in 0u64..5000,
        qsize in 3usize..7,
    ) {
        let g = erdos_renyi(50, 120, 3, data_seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(query_seed);
        let Some(q) = (0..30).find_map(|_| extract_query(&g, qsize, Density::Any, &mut rng)) else {
            return Ok(());
        };
        let want = brute_force_count(&q, &g, None);
        let cfg = GlasgowConfig { max_matches: None, ..Default::default() };
        let stats = glasgow_match(&q, &g, &cfg).expect("small graph fits budget");
        prop_assert_eq!(stats.matches, want, "seeds ({}, {})", data_seed, query_seed);
    }
}
