//! Additional Glasgow solver coverage: limits, labeled workloads, and
//! pruning behaviour.

use sm_glasgow::{estimate_memory, glasgow_match, GlasgowConfig, GlasgowError};
use sm_graph::builder::graph_from_edges;
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use std::time::Duration;

#[test]
fn time_limit_reported() {
    // Single-label moderately dense graph + 9-vertex dense query: the
    // search space is enormous; a 20 ms limit must kill it (or it finishes
    // legitimately, in which case timed_out must be false).
    let g = rmat_graph(5_000, 16.0, 1, RmatParams::PAPER, 3);
    let mut edges = Vec::new();
    for i in 0..9u32 {
        for j in (i + 1)..9u32 {
            if j == i + 1 || (i + j) % 3 == 0 {
                edges.push((i, j));
            }
        }
    }
    let q = graph_from_edges(&[0; 9], &edges);
    let cfg = GlasgowConfig {
        max_matches: None,
        time_limit: Some(Duration::from_millis(20)),
        ..Default::default()
    };
    let stats = glasgow_match(&q, &g, &cfg).unwrap();
    if stats.timed_out {
        assert!(stats.elapsed < Duration::from_millis(500));
    }
}

#[test]
fn memory_estimate_grows_quadratically() {
    let q = graph_from_edges(&[0, 0], &[(0, 1)]);
    let small = rmat_graph(1_000, 4.0, 2, RmatParams::PAPER, 1);
    let large = rmat_graph(4_000, 4.0, 2, RmatParams::PAPER, 1);
    let ms = estimate_memory(&q, &small);
    let ml = estimate_memory(&q, &large);
    // 4x vertices -> ~16x bitset state
    assert!(ml > ms * 10, "{ms} -> {ml}");
}

#[test]
fn oom_error_displays() {
    let e = GlasgowError::OutOfMemory {
        required: 1000,
        budget: 10,
    };
    let s = format!("{e}");
    assert!(s.contains("1000") && s.contains("10"));
}

#[test]
fn labeled_random_workload_agrees_with_framework() {
    use sm_match::{Algorithm, DataContext, MatchConfig};
    let g = rmat_graph(800, 8.0, 5, RmatParams::PAPER, 77);
    let ctx = DataContext::new(&g);
    // a few hand-built labeled patterns
    let patterns = [
        graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]),
        graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]),
        graph_from_edges(&[0, 0, 1, 1], &[(0, 2), (0, 3), (1, 2), (1, 3)]),
        graph_from_edges(&[2, 3, 4, 0], &[(0, 1), (1, 2), (2, 3), (0, 3)]),
    ];
    let glw = GlasgowConfig {
        max_matches: None,
        ..Default::default()
    };
    for (i, q) in patterns.iter().enumerate() {
        let want = Algorithm::GraphQl
            .optimized()
            .run(q, &ctx, &MatchConfig::find_all())
            .matches;
        let got = glasgow_match(q, &g, &glw).unwrap().matches;
        assert_eq!(got, want, "pattern {i}");
    }
}

#[test]
fn nds_prunes_star_centers() {
    // Query: star center with 3 leaves of degree >= 2 each. Data vertex
    // with 3 degree-1 leaves must be excluded by the NDS unary constraint
    // with zero search nodes beyond the root call.
    let q = graph_from_edges(
        &[0, 1, 1, 1, 2, 2, 2],
        &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 5), (3, 6)],
    );
    let g = graph_from_edges(&[0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]);
    let stats = glasgow_match(&q, &g, &GlasgowConfig::default()).unwrap();
    assert_eq!(stats.matches, 0);
    assert!(
        stats.nodes <= 1,
        "NDS should prune before search: {}",
        stats.nodes
    );
}

#[test]
fn counting_all_different_detects_pigeonhole() {
    // Two same-labeled leaves competing for one data vertex: the union of
    // domains is too small once one is assigned.
    let q = graph_from_edges(&[0, 1, 1], &[(0, 1), (0, 2)]);
    let g = graph_from_edges(&[0, 1], &[(0, 1)]);
    let stats = glasgow_match(&q, &g, &GlasgowConfig::default()).unwrap();
    assert_eq!(stats.matches, 0);
}
