//! Self-tuning cost-model planner (`Auto` plan selection).
//!
//! The study's central result is that no single filter × order × kernel
//! composition dominates: the best pipeline depends on the query's shape,
//! its label selectivities, and the data graph. This crate closes that
//! loop. Instead of a caller hard-coding a [`sm_match::Pipeline`], the
//! [`Planner`] scores the whole combination space against the data graph's
//! statistics and picks a plan per *canonical query form*:
//!
//! 1. **Cardinality estimation** ([`estimate`]) — exact LDF candidate
//!    counts per query vertex plus label-pair edge selectivities drive a
//!    prefix-product walk down each concrete matching order, predicting
//!    partial-embedding counts, intersection work, and backtracks.
//! 2. **Cost model** ([`model`]) — per-filter prune factors and pass
//!    costs, per-kernel element costs, and a per-node enumeration cost
//!    turn the walk into nanoseconds; [`Planner::rank`] scores every
//!    combo and sorts.
//! 3. **Cross-run feedback** ([`feedback`]) — observed run counters
//!    (enumeration time, backtracks, per-kernel intersections) are folded
//!    back into a per-canonical-form [`FeedbackStore`], so repeated
//!    queries converge on measured rather than modeled costs. The store
//!    serializes to bytes for durable snapshots and merges across shards.
//! 4. **Jump-redo replanning** ([`Planner::run_ranked`]) — every
//!    non-final attempt runs under a [`sm_match::BailoutMonitor`] whose
//!    backtrack budget is a margin over the *best remaining* prediction;
//!    a mispredicted plan cancels itself mid-enumeration and the planner
//!    redoes the query under the next-ranked combo.
//!
//! The crate is deliberately free of external dependencies and sits above
//! `sm-match`: engines know nothing about plan selection, they only honor
//! the bailout monitor threaded through [`sm_match::MatchConfig`].

#![warn(missing_docs)]

pub mod combo;
pub mod estimate;
pub mod feedback;
pub mod model;
pub mod planner;

pub use combo::{ComboOrder, PlanCombo};
pub use estimate::QueryEstimate;
pub use feedback::{ComboFeedback, FeedbackStore, ObservedRun};
pub use model::{ModelParams, PlanScore};
pub use planner::{Attempt, AutoRun, Planner, PlannerConfig};

/// Canonical-form hash used to key feedback and plan-cache entries — the
/// same invariant hash the service layer computes, exposed here so
/// standalone callers key [`FeedbackStore`] consistently.
pub fn canon_hash(q: &sm_graph::Graph) -> u64 {
    sm_graph::canon::fingerprint(q)
}
