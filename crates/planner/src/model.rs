//! The cost model: turns an [`crate::estimate::OrderWalk`] into predicted
//! nanoseconds per combo.
//!
//! Parameters start at calibrated defaults and are nudged by observed
//! runs (the per-node cost learns from `enum_ns / recursions` of every
//! completed enumeration), so the model self-tunes toward the host
//! machine without ever being trained offline.

use crate::combo::PlanCombo;
use crate::estimate::{OrderWalk, NUM_KERNELS};
use sm_intersect::IntersectKind;
use sm_match::FilterKind;

/// Tunable model parameters. All costs are nanoseconds.
#[derive(Clone, Debug)]
pub struct ModelParams {
    /// Cost per search-tree node (bookkeeping, injectivity checks,
    /// sink dispatch). Learned online from completed runs.
    pub node_ns: f64,
    /// Cost per intersection element-op, per kernel
    /// (`[Merge, Galloping, Hybrid, Bsr]`).
    pub op_ns: [f64; NUM_KERNELS],
    /// Cost per candidate per filter refinement pass.
    pub filter_pass_ns: f64,
    /// Cost per pruned candidate for building the intersection method's
    /// auxiliary candidate space.
    pub build_ns: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            node_ns: 55.0,
            op_ns: [1.2, 2.2, 1.0, 0.7],
            filter_pass_ns: 7.0,
            build_ns: 14.0,
        }
    }
}

/// How many refinement passes a filter performs over the candidate sets —
/// fixed structural knowledge of the seven filtering methods.
pub fn filter_rounds(f: FilterKind) -> f64 {
    match f {
        FilterKind::Ldf => 1.0,
        FilterKind::Nlf => 1.5,
        FilterKind::GraphQl => 4.0,
        FilterKind::Cfl => 3.0,
        FilterKind::Ceci => 2.5,
        FilterKind::DpIso => 3.0,
        FilterKind::Steady => 4.5,
    }
}

/// How much of the LDF candidate set survives each filter — the model's
/// prior on pruning power (Figure 5 of the study: stronger filters keep
/// roughly half to two-thirds of LDF's candidates on the benchmark
/// datasets).
pub fn filter_prune(f: FilterKind) -> f64 {
    match f {
        FilterKind::Ldf => 1.0,
        FilterKind::Nlf => 0.85,
        FilterKind::GraphQl => 0.62,
        FilterKind::Cfl => 0.66,
        FilterKind::Ceci => 0.66,
        FilterKind::DpIso => 0.64,
        FilterKind::Steady => 0.55,
    }
}

fn kernel_slot(k: IntersectKind) -> usize {
    match k {
        IntersectKind::Merge => 0,
        IntersectKind::Galloping => 1,
        IntersectKind::Hybrid => 2,
        IntersectKind::Bsr => 3,
    }
}

/// One scored combo: the model's prediction, possibly overridden by
/// per-form feedback.
#[derive(Clone, Copy, Debug)]
pub struct PlanScore {
    /// The combo scored.
    pub combo: PlanCombo,
    /// Predicted end-to-end cost (filter + build + enumeration).
    pub est_ns: f64,
    /// Predicted search-tree nodes.
    pub est_nodes: f64,
    /// Predicted backtracks — the jump-redo budget is set against this.
    pub est_backtracks: f64,
    /// Whether a per-canonical-form observation replaced the model's
    /// cost (cross-run feedback hit).
    pub from_feedback: bool,
}

impl ModelParams {
    /// Score one (filter, order-walk, kernel) point. `ldf_total` is the
    /// unpruned candidate total the filter itself must scan.
    pub fn score(&self, combo: PlanCombo, walk: &OrderWalk, ldf_total: f64) -> PlanScore {
        let filter_ns = ldf_total * filter_rounds(combo.filter) * self.filter_pass_ns;
        let build_ns = walk.pruned_candidates * self.build_ns;
        let enum_ns = walk.nodes * self.node_ns
            + walk.kernel_ops[kernel_slot(combo.kernel)] * self.op_ns[kernel_slot(combo.kernel)];
        PlanScore {
            combo,
            est_ns: filter_ns + build_ns + enum_ns,
            est_nodes: walk.nodes,
            est_backtracks: walk.backtracks,
            from_feedback: false,
        }
    }

    /// Fold one observed `(enum_ns, recursions)` pair into the per-node
    /// cost (EMA, ignoring tiny runs where fixed overheads dominate).
    pub fn learn_node_cost(&mut self, enum_ns: u64, recursions: u64) {
        if recursions < 512 {
            return;
        }
        let observed = enum_ns as f64 / recursions as f64;
        // Half the per-node wall time is intersection work already billed
        // to op_ns; attribute the rest to the node itself.
        self.node_ns = 0.8 * self.node_ns + 0.2 * (observed * 0.5).clamp(5.0, 5_000.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combo::ComboOrder;

    fn walk() -> OrderWalk {
        OrderWalk {
            nodes: 1_000.0,
            backtracks: 1_000.0,
            matches: 10.0,
            kernel_ops: [4_000.0, 2_000.0, 2_500.0, 3_000.0],
            pruned_candidates: 200.0,
        }
    }

    #[test]
    fn stronger_filters_cost_more_up_front() {
        let m = ModelParams::default();
        let mk = |f| PlanCombo {
            filter: f,
            order: ComboOrder::GraphQl,
            kernel: IntersectKind::Hybrid,
        };
        let w = walk();
        let ldf = m.score(mk(FilterKind::Ldf), &w, 10_000.0);
        let steady = m.score(mk(FilterKind::Steady), &w, 10_000.0);
        assert!(steady.est_ns > ldf.est_ns);
    }

    #[test]
    fn node_cost_learns_toward_observations() {
        let mut m = ModelParams::default();
        let before = m.node_ns;
        m.learn_node_cost(10_000_000, 10_000); // 1000 ns/node observed
        assert!(m.node_ns > before);
        let drifted = m.node_ns;
        m.learn_node_cost(100, 10); // tiny run: ignored
        assert_eq!(m.node_ns, drifted);
    }
}
