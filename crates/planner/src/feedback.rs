//! Cross-run feedback: per-canonical-form, per-combo observations.
//!
//! Completed (and bailed) runs fold their trace counters back into this
//! store; the next time the same canonical query form arrives, the
//! planner ranks measured costs above modeled ones. The store serializes
//! to a flat little-endian byte image so the durable layer can carry it
//! through snapshots, and merges images so a sharded deployment shares
//! one learned state across shards and restarts.

use crate::combo::PlanCombo;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// EMA smoothing: weight of the newest observation.
const ALPHA: f64 = 0.4;

/// Aggregated observations for one combo under one canonical form.
#[derive(Clone, Copy, Debug, Default)]
pub struct ComboFeedback {
    /// Exponential moving average of end-to-end cost (ns).
    pub ema_ns: f64,
    /// Exponential moving average of backtracks.
    pub ema_backtracks: f64,
    /// Runs folded in.
    pub runs: u64,
    /// Runs that were bailed out by the jump-redo monitor (their cost is
    /// a lower bound, so the planner treats them as evidence *against*
    /// the combo rather than a measurement).
    pub bailed_runs: u64,
}

impl ComboFeedback {
    fn fold(&mut self, ns: f64, backtracks: f64, bailed: bool) {
        if self.runs == 0 {
            self.ema_ns = ns;
            self.ema_backtracks = backtracks;
        } else {
            self.ema_ns = (1.0 - ALPHA) * self.ema_ns + ALPHA * ns;
            self.ema_backtracks = (1.0 - ALPHA) * self.ema_backtracks + ALPHA * backtracks;
        }
        self.runs += 1;
        self.bailed_runs += bailed as u64;
    }

    fn merge(&mut self, other: &ComboFeedback) {
        if other.runs == 0 {
            return;
        }
        if self.runs == 0 {
            *self = *other;
            return;
        }
        let (a, b) = (self.runs as f64, other.runs as f64);
        self.ema_ns = (self.ema_ns * a + other.ema_ns * b) / (a + b);
        self.ema_backtracks = (self.ema_backtracks * a + other.ema_backtracks * b) / (a + b);
        self.runs += other.runs;
        self.bailed_runs += other.bailed_runs;
    }
}

/// One run's observation, as reported by whoever executed the plan.
#[derive(Clone, Copy, Debug)]
pub struct ObservedRun {
    /// The combo that ran.
    pub combo: PlanCombo,
    /// End-to-end cost: plan compile + enumeration (ns).
    pub total_ns: u64,
    /// Enumeration-phase cost (ns).
    pub enum_ns: u64,
    /// Search-tree nodes visited.
    pub recursions: u64,
    /// Backtracks performed.
    pub backtracks: u64,
    /// Whether the run enumerated to completion (vs cap/deadline).
    pub completed: bool,
    /// Whether the jump-redo monitor cancelled the run.
    pub bailed: bool,
}

/// Thread-safe feedback store keyed by canonical-form hash.
#[derive(Debug, Default)]
pub struct FeedbackStore {
    forms: Mutex<HashMap<u64, HashMap<u16, ComboFeedback>>>,
    records: AtomicU64,
}

impl FeedbackStore {
    /// An empty store.
    pub fn new() -> FeedbackStore {
        FeedbackStore::default()
    }

    /// Fold one observation in.
    pub fn record(&self, canon: u64, obs: &ObservedRun) {
        let mut forms = self.forms.lock().unwrap();
        forms
            .entry(canon)
            .or_default()
            .entry(obs.combo.id())
            .or_default()
            .fold(obs.total_ns as f64, obs.backtracks as f64, obs.bailed);
        self.records.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations for `(canon, combo)`, if any run has been recorded.
    pub fn observed(&self, canon: u64, combo: PlanCombo) -> Option<ComboFeedback> {
        let forms = self.forms.lock().unwrap();
        forms.get(&canon)?.get(&combo.id()).copied()
    }

    /// Total observations folded in (monotonic, across merges).
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Number of canonical forms with at least one observation.
    pub fn forms(&self) -> usize {
        self.forms.lock().unwrap().len()
    }

    /// Serialize to a flat little-endian image:
    /// `[form_count u64] ( [canon u64] [combo_count u64] ( [id u16]
    /// [runs u64] [bailed u64] [ema_ns f64] [ema_bt f64] )* )*`.
    /// Iteration order is sorted so equal stores produce equal bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let forms = self.forms.lock().unwrap();
        let mut out = Vec::with_capacity(16 + forms.len() * 64);
        out.extend_from_slice(&(forms.len() as u64).to_le_bytes());
        let mut canons: Vec<_> = forms.keys().copied().collect();
        canons.sort_unstable();
        for canon in canons {
            let combos = &forms[&canon];
            out.extend_from_slice(&canon.to_le_bytes());
            out.extend_from_slice(&(combos.len() as u64).to_le_bytes());
            let mut ids: Vec<_> = combos.keys().copied().collect();
            ids.sort_unstable();
            for id in ids {
                let fb = &combos[&id];
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&fb.runs.to_le_bytes());
                out.extend_from_slice(&fb.bailed_runs.to_le_bytes());
                out.extend_from_slice(&fb.ema_ns.to_le_bytes());
                out.extend_from_slice(&fb.ema_backtracks.to_le_bytes());
            }
        }
        out
    }

    /// Merge a serialized image into this store (run-count-weighted).
    /// Returns the number of canonical forms merged, or an error on a
    /// malformed image.
    pub fn merge_bytes(&self, bytes: &[u8]) -> Result<usize, &'static str> {
        let mut at = 0usize;
        let u64_at = |buf: &[u8], at: &mut usize| -> Result<u64, &'static str> {
            let end = at.checked_add(8).ok_or("feedback image truncated")?;
            let s = buf.get(*at..end).ok_or("feedback image truncated")?;
            *at = end;
            Ok(u64::from_le_bytes(s.try_into().unwrap()))
        };
        let form_count = u64_at(bytes, &mut at)?;
        let mut forms = self.forms.lock().unwrap();
        let mut merged_records = 0u64;
        for _ in 0..form_count {
            let canon = u64_at(bytes, &mut at)?;
            let combo_count = u64_at(bytes, &mut at)?;
            if combo_count > 168 {
                return Err("feedback image corrupt: combo count out of range");
            }
            let entry = forms.entry(canon).or_default();
            for _ in 0..combo_count {
                let id_bytes = bytes.get(at..at + 2).ok_or("feedback image truncated")?;
                at += 2;
                let id = u16::from_le_bytes(id_bytes.try_into().unwrap());
                let runs = u64_at(bytes, &mut at)?;
                let bailed_runs = u64_at(bytes, &mut at)?;
                let ema_ns = f64::from_le_bytes(
                    bytes
                        .get(at..at + 8)
                        .ok_or("feedback image truncated")?
                        .try_into()
                        .unwrap(),
                );
                at += 8;
                let ema_backtracks = f64::from_le_bytes(
                    bytes
                        .get(at..at + 8)
                        .ok_or("feedback image truncated")?
                        .try_into()
                        .unwrap(),
                );
                at += 8;
                if !ema_ns.is_finite() || !ema_backtracks.is_finite() {
                    return Err("feedback image corrupt: non-finite EMA");
                }
                entry.entry(id).or_default().merge(&ComboFeedback {
                    ema_ns,
                    ema_backtracks,
                    runs,
                    bailed_runs,
                });
                merged_records += runs;
            }
        }
        if at != bytes.len() {
            return Err("feedback image has trailing bytes");
        }
        self.records.fetch_add(merged_records, Ordering::Relaxed);
        Ok(form_count as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(combo: PlanCombo, ns: u64, bt: u64) -> ObservedRun {
        ObservedRun {
            combo,
            total_ns: ns,
            enum_ns: ns,
            recursions: bt + 1,
            backtracks: bt,
            completed: true,
            bailed: false,
        }
    }

    #[test]
    fn record_then_observe_uses_ema() {
        let store = FeedbackStore::new();
        let combo = PlanCombo::from_id(0).unwrap();
        store.record(7, &obs(combo, 1_000, 100));
        let fb = store.observed(7, combo).unwrap();
        assert_eq!(fb.runs, 1);
        assert!((fb.ema_ns - 1_000.0).abs() < 1e-9);
        store.record(7, &obs(combo, 2_000, 200));
        let fb = store.observed(7, combo).unwrap();
        assert_eq!(fb.runs, 2);
        assert!(fb.ema_ns > 1_000.0 && fb.ema_ns < 2_000.0);
        assert_eq!(store.records(), 2);
        assert!(store.observed(8, combo).is_none());
    }

    #[test]
    fn bytes_roundtrip_and_merge() {
        let a = FeedbackStore::new();
        let c0 = PlanCombo::from_id(0).unwrap();
        let c5 = PlanCombo::from_id(5).unwrap();
        a.record(1, &obs(c0, 1_000, 10));
        a.record(2, &obs(c5, 3_000, 30));
        let img = a.to_bytes();

        let b = FeedbackStore::new();
        b.record(1, &obs(c0, 9_000, 90));
        assert_eq!(b.merge_bytes(&img).unwrap(), 2);
        assert_eq!(b.forms(), 2);
        let fb = b.observed(1, c0).unwrap();
        assert_eq!(fb.runs, 2);
        // run-count-weighted mean of 9000 and 1000
        assert!((fb.ema_ns - 5_000.0).abs() < 1e-6);
        assert_eq!(b.records(), 3);

        // deterministic serialization
        assert_eq!(a.to_bytes(), a.to_bytes());
    }

    #[test]
    fn merge_rejects_malformed_images() {
        let store = FeedbackStore::new();
        assert!(store.merge_bytes(&[1, 2, 3]).is_err());
        let mut img = FeedbackStore::new().to_bytes();
        img.push(0);
        assert!(store.merge_bytes(&img).is_err());
        // claim one form but truncate the body
        let mut img = Vec::new();
        img.extend_from_slice(&1u64.to_le_bytes());
        img.extend_from_slice(&42u64.to_le_bytes());
        assert!(store.merge_bytes(&img).is_err());
    }
}
