//! Statistics-driven cardinality estimation.
//!
//! Built entirely from indexes the framework already maintains: the data
//! graph's label frequency index (exact LDF candidate counts via the
//! per-label vertex buckets), and the label-pair edge counts (QuickSI's
//! edge weights) which give the probability that a random `L(a)`-labeled /
//! `L(b)`-labeled vertex pair is an edge. A prefix-product walk down a
//! concrete matching order then predicts, per depth, how many partial
//! embeddings survive, how much intersection work extending them costs
//! under each kernel, and how many backtracks the enumeration performs.

use sm_graph::{Graph, VertexId};
use sm_match::DataContext;

/// Number of intersection kernels scored per walk (mirrors
/// [`sm_intersect::IntersectKind`]'s variant count).
pub const NUM_KERNELS: usize = 4;

/// Per-query statistics derived once, shared by every order walk.
#[derive(Clone, Debug)]
pub struct QueryEstimate {
    /// Exact LDF candidate count per query vertex: data vertices with the
    /// same label and at least the query vertex's degree.
    pub card: Vec<f64>,
    /// Edge selectivity per query edge slot `u * n + v`:
    /// `pairs(L(u), L(v)) / (freq(L(u)) · freq(L(v)))`, clamped to `(0, 1]`.
    sel: Vec<f64>,
    n: usize,
}

/// What one prefix-product walk down a matching order predicts.
#[derive(Clone, Copy, Debug)]
pub struct OrderWalk {
    /// Search-tree nodes visited (Σ per-depth partial embeddings).
    pub nodes: f64,
    /// Backtracks — every visited node eventually backtracks, so this
    /// tracks `nodes`; it is what the jump-redo budget is set against.
    pub backtracks: f64,
    /// Estimated complete matches.
    pub matches: f64,
    /// Intersection element-operations per kernel
    /// (`[Merge, Galloping, Hybrid, Bsr]` order).
    pub kernel_ops: [f64; NUM_KERNELS],
    /// Total candidates across vertices after the assumed filter prune —
    /// the auxiliary-structure build is proportional to this.
    pub pruned_candidates: f64,
}

impl QueryEstimate {
    /// Derive the statistics for `q` against `g`.
    pub fn build(q: &Graph, g: &DataContext<'_>) -> QueryEstimate {
        let n = q.num_vertices();
        let mut card = Vec::with_capacity(n);
        for u in 0..n as VertexId {
            let dq = q.degree(u);
            let c = g
                .graph
                .vertices_with_label(q.label(u))
                .iter()
                .filter(|&&v| g.graph.degree(v) >= dq)
                .count();
            card.push(c as f64);
        }
        let mut sel = vec![0.0; n * n];
        for u in 0..n as VertexId {
            for &v in q.neighbors(u) {
                let (a, b) = (q.label(u), q.label(v));
                let fa = g.graph.label_frequency(a).max(1) as f64;
                let fb = g.graph.label_frequency(b).max(1) as f64;
                let pairs = g.label_pairs.count(a, b) as f64;
                sel[u as usize * n + v as usize] = (pairs / (fa * fb)).clamp(1e-9, 1.0);
            }
        }
        QueryEstimate { card, sel, n }
    }

    /// Selectivity of query edge `(u, v)` (0 when not an edge).
    pub fn selectivity(&self, u: VertexId, v: VertexId) -> f64 {
        self.sel[u as usize * self.n + v as usize]
    }

    /// Walk `order` assuming a filter that shrinks every candidate set by
    /// `prune` (`1.0` = LDF-exact, smaller = stronger filter), truncating
    /// predicted work at `cap` matches when the run would be capped.
    ///
    /// Model: at depth `i` each of the `P_{i-1}` partial embeddings
    /// intersects the candidate-space adjacency lists of `u = order[i]`'s
    /// backward neighbors. Each list has expected length
    /// `|C(u)| · sel(u, v)`; the surviving extensions multiply all
    /// backward selectivities.
    pub fn walk(&self, q: &Graph, order: &[VertexId], prune: f64, cap: Option<u64>) -> OrderWalk {
        let cardf = |u: VertexId| (self.card[u as usize] * prune).max(1.0);
        let pruned_candidates: f64 = (0..self.n as VertexId).map(cardf).sum();
        let mut walk = OrderWalk {
            nodes: 0.0,
            backtracks: 0.0,
            matches: 0.0,
            kernel_ops: [0.0; NUM_KERNELS],
            pruned_candidates,
        };
        if order.is_empty() {
            return walk;
        }
        let mut prev = cardf(order[0]);
        walk.nodes = prev;
        let mut lists: Vec<f64> = Vec::with_capacity(self.n);
        for (i, &u) in order.iter().enumerate().skip(1) {
            lists.clear();
            let mut ext = cardf(u);
            for &v in &order[..i] {
                if q.has_edge(u, v) {
                    let s = self.selectivity(u, v);
                    ext *= s;
                    lists.push((cardf(u) * s).max(0.5));
                }
            }
            if lists.is_empty() {
                // Disconnected prefix (possible under a poor fixed order):
                // the engine scans the whole candidate set.
                lists.push(cardf(u));
            }
            lists.sort_by(f64::total_cmp);
            let sum: f64 = lists.iter().sum();
            let (lmin, lmax) = (lists[0], *lists.last().unwrap());
            // Per-partial element ops by kernel: merge walks both sides,
            // galloping probes the large side per small element, hybrid
            // dispatches (small constant overhead), BSR touches packed
            // blocks (~1/3 the elements) plus per-list block headers.
            let per = [
                sum + 2.0,
                lmin * (lmax + 2.0).log2() + lists.len() as f64 + 2.0,
                (sum + 2.0).min(lmin * (lmax + 2.0).log2() * 1.15 + 4.0),
                sum * 0.35 + 4.0 * lists.len() as f64 + 2.0,
            ];
            for (acc, p) in walk.kernel_ops.iter_mut().zip(per) {
                *acc += prev * p;
            }
            prev *= ext.max(1e-9);
            walk.nodes += prev;
        }
        walk.matches = prev;
        // A capped run stops once `cap` matches stream out; work scales
        // down roughly proportionally when far more matches exist.
        if let Some(cap) = cap {
            let cap = cap as f64;
            if walk.matches > cap {
                let scale = (cap / walk.matches).max(1e-6);
                walk.nodes *= scale;
                for op in &mut walk.kernel_ops {
                    *op *= scale;
                }
                walk.matches = cap;
            }
        }
        walk.backtracks = walk.nodes;
        walk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_match::fixtures::{paper_data, paper_query};

    #[test]
    fn cardinalities_are_exact_ldf_counts() {
        let q = paper_query();
        let g = paper_data();
        let ctx = DataContext::new(&g);
        let est = QueryEstimate::build(&q, &ctx);
        // Cross-check against the LDF definition directly.
        for u in 0..q.num_vertices() as VertexId {
            let expect = (0..g.num_vertices() as VertexId)
                .filter(|&v| g.label(v) == q.label(u) && g.degree(v) >= q.degree(u))
                .count() as f64;
            assert_eq!(est.card[u as usize], expect);
        }
    }

    #[test]
    fn selectivities_bounded_and_symmetric_edges_only() {
        let q = paper_query();
        let g = paper_data();
        let ctx = DataContext::new(&g);
        let est = QueryEstimate::build(&q, &ctx);
        for u in 0..q.num_vertices() as VertexId {
            for v in 0..q.num_vertices() as VertexId {
                let s = est.selectivity(u, v);
                if q.has_edge(u, v) {
                    assert!(s > 0.0 && s <= 1.0);
                } else {
                    assert_eq!(s, 0.0);
                }
            }
        }
    }

    #[test]
    fn walk_predicts_more_work_without_pruning_and_caps_scale_down() {
        let q = paper_query();
        let g = paper_data();
        let ctx = DataContext::new(&g);
        let est = QueryEstimate::build(&q, &ctx);
        let order: Vec<VertexId> = (0..q.num_vertices() as VertexId).collect();
        let loose = est.walk(&q, &order, 1.0, None);
        let tight = est.walk(&q, &order, 0.5, None);
        assert!(loose.nodes >= tight.nodes);
        assert!(loose.kernel_ops[0] >= tight.kernel_ops[0]);
        assert!(loose.matches > 0.0);
        let capped = est.walk(&q, &order, 1.0, Some(1));
        assert!(capped.nodes <= loose.nodes);
        assert!(capped.matches <= 1.0);
    }
}
