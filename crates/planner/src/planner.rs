//! The planner itself: rank the combo space, run the best plan, and
//! jump-redo onto the next-ranked combo when the live run blows past its
//! predicted backtrack budget.

use crate::combo::{ComboOrder, PlanCombo};
use crate::estimate::QueryEstimate;
use crate::feedback::{FeedbackStore, ObservedRun};
use crate::model::{filter_prune, ModelParams, PlanScore};
use sm_graph::{Graph, VertexId};
use sm_match::enumerate::parallel::ParallelStrategy;
use sm_match::enumerate::{CollectSink, CountSink};
use sm_match::filter::run_filter;
use sm_match::order::{run_order, OrderInput};
use sm_match::{
    BailoutMonitor, DataContext, Executor, FilterKind, Injectivity, MatchConfig, Outcome,
    PlanSelection, QueryContext,
};
use sm_runtime::trace::Counter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Planner tunables.
#[derive(Clone, Copy, Debug)]
pub struct PlannerConfig {
    /// Jump-redo margin: a non-final attempt may spend up to
    /// `margin × best-remaining-predicted-backtracks` before bailing.
    pub margin: f64,
    /// Floor on the bailout budget — tiny predictions should not cause
    /// spurious bails on model noise.
    pub min_budget: u64,
    /// Maximum enumeration attempts per query (first plan + redos). The
    /// final attempt always runs without a monitor so results are exact.
    pub max_attempts: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            margin: 8.0,
            min_budget: 200_000,
            max_attempts: 3,
        }
    }
}

/// One enumeration attempt inside an auto run.
#[derive(Clone, Copy, Debug)]
pub struct Attempt {
    /// The combo attempted.
    pub combo: PlanCombo,
    /// Backtrack budget the monitor enforced (0 on the final, unmonitored
    /// attempt).
    pub budget: u64,
    /// Backtracks the attempt performed.
    pub backtracks: u64,
    /// Whether the monitor cancelled it (a jump-redo).
    pub bailed: bool,
    /// Enumeration-phase nanoseconds.
    pub enum_ns: u64,
    /// Matches the attempt emitted before ending.
    pub matches: u64,
    /// How the attempt ended.
    pub outcome: Outcome,
}

/// Result of [`Planner::run_ranked`] / [`Planner::run_auto`].
#[derive(Clone, Debug)]
pub struct AutoRun {
    /// Matches of the *successful* (non-bailed) attempt.
    pub matches: u64,
    /// Recursions of the successful attempt.
    pub recursions: u64,
    /// Outcome of the successful attempt.
    pub outcome: Outcome,
    /// The combo that produced the answer; `None` when the query was
    /// proven unsatisfiable before enumeration.
    pub combo: Option<PlanCombo>,
    /// End-to-end nanoseconds across every attempt (plans + enumerations,
    /// including bailed work).
    pub total_ns: u64,
    /// Every attempt, in execution order (`attempts.len() - 1` replans).
    pub attempts: Vec<Attempt>,
}

impl AutoRun {
    /// Whether a jump-redo replan happened.
    pub fn replanned(&self) -> bool {
        self.attempts.iter().any(|a| a.bailed)
    }
}

/// Snapshot of the planner's counters, in registry terms.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlannerCounters {
    /// `plans_autotuned`.
    pub plans_autotuned: u64,
    /// `replans_triggered`.
    pub replans_triggered: u64,
    /// `feedback_records` folded by *this* planner (not the shared
    /// store's total — shards share one store, and counter merges sum).
    pub feedback_records: u64,
    /// `estimator_evals`.
    pub estimator_evals: u64,
}

/// Self-tuning planner. Cheap to share (`Arc`); all state is internally
/// synchronized.
#[derive(Debug)]
pub struct Planner {
    cfg: PlannerConfig,
    model: Mutex<ModelParams>,
    feedback: Arc<FeedbackStore>,
    autotuned: AtomicU64,
    replans: AtomicU64,
    records: AtomicU64,
    evals: AtomicU64,
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new()
    }
}

impl Planner {
    /// A planner with default tunables and a fresh feedback store.
    pub fn new() -> Planner {
        Planner::with_feedback(PlannerConfig::default(), Arc::new(FeedbackStore::new()))
    }

    /// A planner sharing `feedback` (shards of one deployment pass the
    /// same store so every shard benefits from every observation).
    pub fn with_feedback(cfg: PlannerConfig, feedback: Arc<FeedbackStore>) -> Planner {
        Planner {
            cfg,
            model: Mutex::new(ModelParams::default()),
            feedback,
            autotuned: AtomicU64::new(0),
            replans: AtomicU64::new(0),
            records: AtomicU64::new(0),
            evals: AtomicU64::new(0),
        }
    }

    /// The shared feedback store.
    pub fn feedback(&self) -> &Arc<FeedbackStore> {
        &self.feedback
    }

    /// Counter snapshot for trace/metrics exposition.
    pub fn counters(&self) -> PlannerCounters {
        PlannerCounters {
            plans_autotuned: self.autotuned.load(Ordering::Relaxed),
            replans_triggered: self.replans.load(Ordering::Relaxed),
            feedback_records: self.records.load(Ordering::Relaxed),
            estimator_evals: self.evals.load(Ordering::Relaxed),
        }
    }

    /// Score every combo for `q` against `g` under `cfg`'s semantics and
    /// cap, cheapest predicted cost first. Returns an empty ranking when
    /// LDF already proves the query unsatisfiable.
    ///
    /// Orders are computed once from the LDF candidate sets (a close
    /// proxy for what each filter would feed its ordering method, at a
    /// fraction of the cost of running all seven filters). Homomorphism
    /// queries skip filter scoring — the pipeline bypasses filtering
    /// there, so only LDF-filter combos are ranked.
    pub fn rank(
        &self,
        q: &Graph,
        g: &DataContext<'_>,
        cfg: &MatchConfig,
        canon: u64,
    ) -> Vec<PlanScore> {
        self.autotuned.fetch_add(1, Ordering::Relaxed);
        let qc = QueryContext::new(q);
        let Some(base) = run_filter(FilterKind::Ldf, &qc, g) else {
            return Vec::new();
        };
        let ldf_total = base.candidates.total() as f64;
        let est = QueryEstimate::build(q, g);
        let cap = cfg.effective_cap();
        let homo = cfg.semantics.injectivity == Injectivity::Homomorphism;
        let filters: &[FilterKind] = if homo {
            &[FilterKind::Ldf]
        } else {
            &FilterKind::all()[..]
        };
        let orders: Vec<(ComboOrder, Vec<VertexId>)> = ComboOrder::ALL
            .into_iter()
            .map(|co| {
                let order = run_order(
                    &co.kind(),
                    &OrderInput {
                        q: &qc,
                        g,
                        candidates: &base.candidates,
                        bfs_tree: base.bfs_tree.as_ref(),
                        space: None,
                    },
                );
                (co, order)
            })
            .collect();
        let model = self.model.lock().unwrap().clone();
        let mut scores = Vec::with_capacity(filters.len() * orders.len() * 4);
        // Observed-vs-modeled cost ratios of this form's completed runs,
        // for calibrating the combos that have no feedback yet.
        let mut ratios: Vec<f64> = Vec::new();
        for &filter in filters {
            let prune = if homo { 1.0 } else { filter_prune(filter) };
            for (co, order) in &orders {
                let walk = est.walk(q, order, prune, cap);
                for combo in PlanCombo::all()
                    .into_iter()
                    .filter(|c| c.filter == filter && c.order == *co)
                {
                    let mut score = model.score(combo, &walk, ldf_total);
                    if let Some(fb) = self.feedback.observed(canon, combo) {
                        score.from_feedback = true;
                        if fb.runs > fb.bailed_runs {
                            // Measured cost beats modeled cost.
                            ratios.push(fb.ema_ns / score.est_ns.max(1.0));
                            score.est_ns = fb.ema_ns;
                            score.est_backtracks = fb.ema_backtracks.max(1.0);
                        } else {
                            // Only bailed runs: the observation is a lower
                            // bound, treat the combo as strictly worse.
                            score.est_ns = score.est_ns.max(fb.ema_ns * 4.0);
                            score.est_backtracks =
                                score.est_backtracks.max(fb.ema_backtracks * 4.0);
                        }
                    }
                    scores.push(score);
                }
            }
        }
        // Per-form calibration: when the model systematically
        // underestimates this query (measured runs cost more than
        // predicted), scale the *unmeasured* combos by the median
        // observed/modeled ratio so a well-measured winner is not
        // displaced by an optimistic never-tried prediction. Only
        // upward (ratio clamped at 1): measured costs may undercut the
        // model freely, unmeasured ones never do.
        if !ratios.is_empty() {
            ratios.sort_by(f64::total_cmp);
            let f = ratios[ratios.len() / 2].max(1.0);
            for s in scores.iter_mut().filter(|s| !s.from_feedback) {
                s.est_ns *= f;
                s.est_backtracks *= f;
            }
        }
        self.evals.fetch_add(scores.len() as u64, Ordering::Relaxed);
        scores.sort_by(|a, b| {
            a.est_ns
                .total_cmp(&b.est_ns)
                .then_with(|| a.combo.id().cmp(&b.combo.id()))
        });
        scores
    }

    /// The best-ranked combo, or `None` when unsatisfiable.
    pub fn choose(
        &self,
        q: &Graph,
        g: &DataContext<'_>,
        cfg: &MatchConfig,
        canon: u64,
    ) -> Option<PlanScore> {
        self.rank(q, g, cfg, canon).into_iter().next()
    }

    /// Fold one observed run into the feedback store and the global model.
    /// Hosting layers call this with counters from *any* completed run
    /// (auto or fixed) so the planner learns from all traffic.
    pub fn observe(&self, canon: u64, obs: &ObservedRun) {
        self.feedback.record(canon, obs);
        self.records.fetch_add(1, Ordering::Relaxed);
        if obs.completed && !obs.bailed {
            self.model
                .lock()
                .unwrap()
                .learn_node_cost(obs.enum_ns, obs.recursions);
        }
    }

    /// Rank, then execute with jump-redo; count-only.
    pub fn run_auto(
        &self,
        q: &Graph,
        g: &DataContext<'_>,
        cfg: &MatchConfig,
        threads: usize,
    ) -> AutoRun {
        let canon = crate::canon_hash(q);
        let ranked = self.rank(q, g, cfg, canon);
        self.run_ranked(q, g, cfg, canon, &ranked, threads, false).0
    }

    /// Rank, then execute with jump-redo, collecting every embedding of
    /// the successful attempt (bailed attempts' partial output is
    /// discarded — only the surviving attempt's matches are returned).
    pub fn collect_auto(
        &self,
        q: &Graph,
        g: &DataContext<'_>,
        cfg: &MatchConfig,
        threads: usize,
    ) -> (AutoRun, Vec<Vec<VertexId>>) {
        let canon = crate::canon_hash(q);
        let ranked = self.rank(q, g, cfg, canon);
        let (run, collected) = self.run_ranked(q, g, cfg, canon, &ranked, threads, true);
        (run, collected.unwrap_or_default())
    }

    /// Execute `ranked` (as produced by [`Planner::rank`], or any caller-
    /// supplied order — the bench's forced-mispredict experiment passes
    /// `[worst, best]`) with jump-redo replanning:
    ///
    /// * attempt `i` runs under a [`BailoutMonitor`] whose budget is
    ///   `margin × min(est_backtracks of the remaining attempts)` — the
    ///   point where abandoning the plan and redoing the query under the
    ///   next combo is predicted cheaper than continuing;
    /// * a bailed attempt records its (lower-bound) cost as feedback and
    ///   falls through to the next combo;
    /// * the final attempt runs unmonitored, so the answer is always
    ///   exact.
    #[allow(clippy::too_many_arguments)]
    pub fn run_ranked(
        &self,
        q: &Graph,
        g: &DataContext<'_>,
        cfg: &MatchConfig,
        canon: u64,
        ranked: &[PlanScore],
        threads: usize,
        collect: bool,
    ) -> (AutoRun, Option<Vec<Vec<VertexId>>>) {
        let mut attempts = Vec::new();
        let mut total_ns = 0u64;
        if ranked.is_empty() {
            // Unsatisfiable before enumeration (empty LDF candidates).
            return (
                AutoRun {
                    matches: 0,
                    recursions: 0,
                    outcome: Outcome::Complete,
                    combo: None,
                    total_ns,
                    attempts,
                },
                collect.then(Vec::new),
            );
        }
        let max_attempts = self.cfg.max_attempts.clamp(1, ranked.len());
        for (i, score) in ranked.iter().take(max_attempts).enumerate() {
            let last = i + 1 == max_attempts;
            let best_remaining = ranked[i..max_attempts]
                .iter()
                .map(|s| s.est_backtracks)
                .fold(f64::INFINITY, f64::min);
            let budget = ((best_remaining * self.cfg.margin) as u64).max(self.cfg.min_budget);
            let monitor = (!last).then(|| BailoutMonitor::new(budget));
            let mut run_cfg = cfg.clone();
            run_cfg.plan = PlanSelection::Fixed;
            run_cfg.intersect = score.combo.kernel;
            run_cfg.bailout = monitor.clone();
            let start = Instant::now();
            let plan = match score.combo.pipeline().plan(q, g, &run_cfg) {
                Ok(p) => p,
                Err(_filter_time) => {
                    // This combo's filter proved the query unsatisfiable —
                    // filters are complete, so the answer is exact.
                    total_ns += start.elapsed().as_nanos() as u64;
                    return (
                        AutoRun {
                            matches: 0,
                            recursions: 0,
                            outcome: Outcome::Complete,
                            combo: Some(score.combo),
                            total_ns,
                            attempts,
                        },
                        collect.then(Vec::new),
                    );
                }
            };
            let exec = Executor::new(&plan, g.graph);
            let enum_start = Instant::now();
            let (stats, collected) = if collect {
                if threads <= 1 {
                    let mut sink = CollectSink::default();
                    let stats = exec.run(&mut sink);
                    (stats, Some(sink.matches))
                } else {
                    let (stats, sinks) =
                        exec.run_parallel::<CollectSink>(threads, ParallelStrategy::Morsel);
                    (
                        stats,
                        Some(sinks.into_iter().flat_map(|s| s.matches).collect()),
                    )
                }
            } else if threads <= 1 {
                let mut sink = CountSink;
                (exec.run(&mut sink), None)
            } else {
                let (stats, _) = exec.run_parallel::<CountSink>(threads, ParallelStrategy::Morsel);
                (stats, None)
            };
            let enum_ns = enum_start.elapsed().as_nanos() as u64;
            total_ns += start.elapsed().as_nanos() as u64;
            let bailed = monitor.as_ref().is_some_and(|m| m.triggered());
            let backtracks = stats.counters.get(Counter::Backtracks);
            self.observe(
                canon,
                &ObservedRun {
                    combo: score.combo,
                    total_ns: start.elapsed().as_nanos() as u64,
                    enum_ns,
                    recursions: stats.recursions,
                    backtracks,
                    completed: stats.outcome == Outcome::Complete && !bailed,
                    bailed,
                },
            );
            attempts.push(Attempt {
                combo: score.combo,
                budget: monitor.as_ref().map_or(0, |m| m.budget()),
                backtracks,
                bailed,
                enum_ns,
                matches: stats.matches,
                outcome: stats.outcome,
            });
            if bailed {
                self.replans.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            return (
                AutoRun {
                    matches: stats.matches,
                    recursions: stats.recursions,
                    outcome: stats.outcome,
                    combo: Some(score.combo),
                    total_ns,
                    attempts,
                },
                collected,
            );
        }
        unreachable!("the final attempt runs unmonitored and cannot bail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_match::fixtures::{paper_data, paper_query};

    #[test]
    fn rank_scores_full_space_and_sorts() {
        let q = paper_query();
        let g = paper_data();
        let ctx = DataContext::new(&g);
        let planner = Planner::new();
        let canon = crate::canon_hash(&q);
        let ranked = planner.rank(&q, &ctx, &MatchConfig::default(), canon);
        assert_eq!(ranked.len(), 168);
        assert!(ranked.windows(2).all(|w| w[0].est_ns <= w[1].est_ns));
        let c = planner.counters();
        assert_eq!(c.plans_autotuned, 1);
        assert_eq!(c.estimator_evals, 168);
    }

    #[test]
    fn run_auto_matches_reference_count() {
        let q = paper_query();
        let g = paper_data();
        let ctx = DataContext::new(&g);
        let planner = Planner::new();
        let run = planner.run_auto(&q, &ctx, &MatchConfig::default(), 1);
        assert_eq!(run.matches, 1); // the fixture's single embedding
        assert_eq!(run.outcome, Outcome::Complete);
        assert!(!run.replanned());
        assert_eq!(run.attempts.len(), 1);
    }

    #[test]
    fn feedback_reranks_toward_observed_winner() {
        let q = paper_query();
        let g = paper_data();
        let ctx = DataContext::new(&g);
        let planner = Planner::new();
        let canon = crate::canon_hash(&q);
        let ranked = planner.rank(&q, &ctx, &MatchConfig::default(), canon);
        // Report the model's 10th choice as dramatically fast.
        let fast = ranked[9].combo;
        for _ in 0..3 {
            planner.observe(
                canon,
                &ObservedRun {
                    combo: fast,
                    total_ns: 1,
                    enum_ns: 1,
                    recursions: 1,
                    backtracks: 1,
                    completed: true,
                    bailed: false,
                },
            );
        }
        let reranked = planner.rank(&q, &ctx, &MatchConfig::default(), canon);
        assert_eq!(reranked[0].combo, fast);
        assert!(reranked[0].from_feedback);
        // A different canonical form is unaffected.
        let other = planner.rank(&q, &ctx, &MatchConfig::default(), canon ^ 1);
        assert!(!other[0].from_feedback);
    }

    #[test]
    fn forced_mispredict_bails_and_redoes() {
        use sm_graph::gen::query::{extract_query, Density};
        use sm_graph::gen::rmat::{rmat_graph, RmatParams};
        use sm_runtime::rng::Rng64;
        // A workload big enough that enumeration crosses poll boundaries:
        // 2 labels on 2k vertices gives every plan plenty of backtracks.
        let g = rmat_graph(2_000, 8.0, 2, RmatParams::PAPER, 11);
        let mut rng = Rng64::seed_from_u64(3);
        let q = (0..64)
            .find_map(|_| extract_query(&g, 6, Density::Sparse, &mut rng))
            .expect("query extraction");
        let ctx = DataContext::new(&g);
        let planner = Planner::with_feedback(
            PlannerConfig {
                margin: 0.0,
                min_budget: 1,
                max_attempts: 2,
            },
            Arc::new(FeedbackStore::new()),
        );
        let canon = crate::canon_hash(&q);
        let cfg = MatchConfig::default();
        let ranked = planner.rank(&q, &ctx, &cfg, canon);
        // First attempt gets a 1-backtrack budget: it must bail, and the
        // second (final) attempt must still produce the exact answer.
        let (run, _) = planner.run_ranked(&q, &ctx, &cfg, canon, &ranked, 1, false);
        assert_eq!(run.attempts.len(), 2);
        assert!(run.attempts[0].bailed);
        assert!(!run.attempts[1].bailed);
        assert!(run.replanned());
        // The redo's answer equals a plain fixed run of the same combo
        // (both are cap-bounded identically).
        let plan = run.combo.unwrap().pipeline().plan(&q, &ctx, &cfg).unwrap();
        let mut sink = CountSink;
        let reference = Executor::new(&plan, ctx.graph).run(&mut sink);
        assert_eq!(run.matches, reference.matches);
        assert_eq!(planner.counters().replans_triggered, 1);
    }

    #[test]
    fn unsatisfiable_query_short_circuits() {
        use sm_graph::builder::graph_from_edges;
        let q = graph_from_edges(&[9, 9], &[(0, 1)]); // label absent from data
        let g = paper_data();
        let ctx = DataContext::new(&g);
        let planner = Planner::new();
        let run = planner.run_auto(&q, &ctx, &MatchConfig::default(), 1);
        assert_eq!(run.matches, 0);
        assert_eq!(run.outcome, Outcome::Complete);
        assert!(run.combo.is_none());
        assert!(run.attempts.is_empty());
    }
}
