//! The planner's discrete choice space: filter × static order × kernel.
//!
//! The local-candidate method is fixed to [`LcMethod::Intersect`] — the
//! study's Section 7 recommendation and the only method where the
//! intersection kernel matters — so a combo is one of 7 filters × 6
//! static orders × 4 kernels = 168 candidate pipelines. The adaptive
//! order is excluded (it runs its own sequential engine and ignores the
//! kernel choice), as is `Fixed` (no heuristic to score).

use sm_intersect::IntersectKind;
use sm_match::{FilterKind, LcMethod, OrderKind, Pipeline};

/// The six static ordering heuristics the planner scores. A thin `Copy`
/// mirror of [`OrderKind`] minus the variants that are not plannable
/// (`Adaptive` is engine-switching and sequential-only; `Fixed` carries a
/// caller-supplied order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ComboOrder {
    /// QuickSI's spanning-tree order.
    QuickSi,
    /// GraphQL's greedy left-deep order.
    GraphQl,
    /// CFL's core-forest-leaf decomposition order.
    Cfl,
    /// CECI's BFS order.
    Ceci,
    /// RI's structure-first order.
    Ri,
    /// VF2++'s BFS-level order.
    Vf2pp,
}

impl ComboOrder {
    /// All plannable orders, in registry order.
    pub const ALL: [ComboOrder; 6] = [
        ComboOrder::QuickSi,
        ComboOrder::GraphQl,
        ComboOrder::Cfl,
        ComboOrder::Ceci,
        ComboOrder::Ri,
        ComboOrder::Vf2pp,
    ];

    /// The [`OrderKind`] this selection compiles to.
    pub fn kind(self) -> OrderKind {
        match self {
            ComboOrder::QuickSi => OrderKind::QuickSi,
            ComboOrder::GraphQl => OrderKind::GraphQl,
            ComboOrder::Cfl => OrderKind::Cfl,
            ComboOrder::Ceci => OrderKind::Ceci,
            ComboOrder::Ri => OrderKind::Ri,
            ComboOrder::Vf2pp => OrderKind::Vf2pp,
        }
    }

    /// Stable display name (matches [`OrderKind::name`]).
    pub fn name(self) -> &'static str {
        self.kind().name()
    }
}

/// One point in the planner's choice space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanCombo {
    /// Filtering method.
    pub filter: FilterKind,
    /// Static matching-order heuristic.
    pub order: ComboOrder,
    /// Set-intersection kernel for local candidates.
    pub kernel: IntersectKind,
}

const KERNELS: [IntersectKind; 4] = [
    IntersectKind::Merge,
    IntersectKind::Galloping,
    IntersectKind::Hybrid,
    IntersectKind::Bsr,
];

impl PlanCombo {
    /// Every combo, in a stable enumeration order (`7 × 6 × 4 = 168`).
    pub fn all() -> Vec<PlanCombo> {
        let mut v = Vec::with_capacity(168);
        for filter in FilterKind::all() {
            for order in ComboOrder::ALL {
                for kernel in KERNELS {
                    v.push(PlanCombo {
                        filter,
                        order,
                        kernel,
                    });
                }
            }
        }
        v
    }

    /// Dense identifier in `0..168`, stable across runs — the key the
    /// feedback store serializes.
    pub fn id(&self) -> u16 {
        let f = FilterKind::all()
            .iter()
            .position(|k| *k == self.filter)
            .unwrap() as u16;
        let o = ComboOrder::ALL
            .iter()
            .position(|k| *k == self.order)
            .unwrap() as u16;
        let k = KERNELS.iter().position(|k| *k == self.kernel).unwrap() as u16;
        f * 24 + o * 4 + k
    }

    /// Inverse of [`PlanCombo::id`].
    pub fn from_id(id: u16) -> Option<PlanCombo> {
        if id >= 168 {
            return None;
        }
        Some(PlanCombo {
            filter: FilterKind::all()[(id / 24) as usize],
            order: ComboOrder::ALL[((id / 4) % 6) as usize],
            kernel: KERNELS[(id % 4) as usize],
        })
    }

    /// Display label, e.g. `"GQL/RI/Hybrid"` — also the grammar
    /// [`PlanCombo::parse`] accepts.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.filter.name(),
            self.order.name(),
            self.kernel.name()
        )
    }

    /// Parse a `"FILTER/ORDER/KERNEL"` label (case-insensitive; the
    /// kernel also accepts `bsr` for `QFilter`). This is what the bench
    /// CLI's `--plan fixed:<combo>` flag feeds through.
    pub fn parse(s: &str) -> Option<PlanCombo> {
        let mut parts = s.split('/');
        let (f, o, k) = (parts.next()?, parts.next()?, parts.next()?);
        if parts.next().is_some() {
            return None;
        }
        let filter = FilterKind::all()
            .into_iter()
            .find(|x| x.name().eq_ignore_ascii_case(f))?;
        let order = ComboOrder::ALL
            .into_iter()
            .find(|x| x.name().eq_ignore_ascii_case(o))?;
        let kernel = KERNELS.into_iter().find(|x| {
            x.name().eq_ignore_ascii_case(k)
                || (*x == IntersectKind::Bsr && k.eq_ignore_ascii_case("bsr"))
        })?;
        Some(PlanCombo {
            filter,
            order,
            kernel,
        })
    }

    /// Compile this combo into a runnable [`Pipeline`] (intersection-based
    /// local candidates, no VF2++ runtime rule — the kernel choice rides
    /// in [`sm_match::MatchConfig::intersect`]).
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::new(
            self.label(),
            self.filter,
            self.order.kind(),
            LcMethod::Intersect,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combo_space_is_168_with_dense_stable_ids() {
        let all = PlanCombo::all();
        assert_eq!(all.len(), 168);
        for (i, c) in all.iter().enumerate() {
            assert_eq!(c.id() as usize, i);
            assert_eq!(PlanCombo::from_id(c.id()), Some(*c));
        }
        assert_eq!(PlanCombo::from_id(168), None);
    }

    #[test]
    fn label_roundtrips_through_parse() {
        for c in PlanCombo::all() {
            assert_eq!(PlanCombo::parse(&c.label()), Some(c), "{}", c.label());
        }
        assert_eq!(
            PlanCombo::parse("gql/ri/hybrid"),
            Some(PlanCombo {
                filter: FilterKind::GraphQl,
                order: ComboOrder::Ri,
                kernel: IntersectKind::Hybrid,
            })
        );
        // bsr alias for the QFilter kernel
        assert_eq!(
            PlanCombo::parse("LDF/QSI/bsr").map(|c| c.kernel),
            Some(IntersectKind::Bsr)
        );
        assert_eq!(PlanCombo::parse("GQL/RI"), None);
        assert_eq!(PlanCombo::parse("GQL/RI/Hybrid/extra"), None);
        assert_eq!(PlanCombo::parse("NOPE/RI/Hybrid"), None);
    }
}
