//! Cross-plan equivalence property: on the same query, the planner's
//! auto path and every fixed combo must produce identical sorted
//! embedding sets — across the three injectivity modes, at one and four
//! threads, and when a jump-redo bailout abandons an attempt mid-run.

use sm_graph::gen::query::{extract_query, Density};
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_graph::{Graph, VertexId};
use sm_match::enumerate::parallel::ParallelStrategy;
use sm_match::enumerate::CollectSink;
use sm_match::{DataContext, Executor, Injectivity, MatchConfig, Outcome};
use sm_planner::{FeedbackStore, PlanCombo, Planner, PlannerConfig};
use sm_runtime::rng::Rng64;
use std::sync::Arc;

fn sorted(mut v: Vec<Vec<VertexId>>) -> Vec<Vec<VertexId>> {
    v.sort();
    v
}

/// Run one fixed combo, collecting embeddings. `Err` filters (query
/// proven unsatisfiable) return the empty set — filters are complete, so
/// that *is* the exact answer.
fn collect_fixed(
    combo: PlanCombo,
    q: &Graph,
    ctx: &DataContext<'_>,
    cfg: &MatchConfig,
    threads: usize,
) -> (Outcome, u64, Vec<Vec<VertexId>>) {
    let mut run_cfg = cfg.clone();
    run_cfg.intersect = combo.kernel;
    let plan = match combo.pipeline().plan(q, ctx, &run_cfg) {
        Ok(p) => p,
        Err(_) => return (Outcome::Complete, 0, Vec::new()),
    };
    let exec = Executor::new(&plan, ctx.graph);
    if threads <= 1 {
        let mut sink = CollectSink::default();
        let stats = exec.run(&mut sink);
        (stats.outcome, stats.recursions, sink.matches)
    } else {
        let (stats, sinks) = exec.run_parallel::<CollectSink>(threads, ParallelStrategy::Morsel);
        (
            stats.outcome,
            stats.recursions,
            sinks.into_iter().flat_map(|s| s.matches).collect(),
        )
    }
}

/// A seeded workload whose reference enumeration completes under the
/// default cap in every injectivity mode (embedding sets are only
/// comparable on completed runs).
fn workload() -> (Graph, Graph) {
    let g = rmat_graph(400, 5.0, 3, RmatParams::PAPER, 21);
    let mut rng = Rng64::seed_from_u64(6);
    let q = (0..64)
        .find_map(|_| extract_query(&g, 5, Density::Dense, &mut rng))
        .expect("query extraction succeeds");
    (g, q)
}

fn mode_config(mode: Injectivity) -> MatchConfig {
    let mut cfg = MatchConfig::default();
    cfg.semantics.injectivity = mode;
    cfg
}

#[test]
fn every_fixed_combo_and_auto_agree_across_modes_and_threads() {
    let (g, q) = workload();
    let ctx = DataContext::new(&g);
    for mode in [
        Injectivity::Isomorphism,
        Injectivity::EdgeInjective,
        Injectivity::Homomorphism,
    ] {
        let cfg = mode_config(mode);
        let (outcome, _, reference) = collect_fixed(PlanCombo::all()[0], &q, &ctx, &cfg, 1);
        assert_eq!(
            outcome,
            Outcome::Complete,
            "{mode:?}: reference must complete for set comparison"
        );
        let reference = sorted(reference);
        for combo in PlanCombo::all() {
            let (out, _, got) = collect_fixed(combo, &q, &ctx, &cfg, 1);
            assert_eq!(out, Outcome::Complete, "{mode:?}/{}", combo.label());
            assert_eq!(
                sorted(got),
                reference,
                "{mode:?}: fixed {} diverges from reference",
                combo.label()
            );
        }
        for threads in [1usize, 4] {
            let planner = Planner::new();
            let (run, got) = planner.collect_auto(&q, &ctx, &cfg, threads);
            assert_eq!(run.outcome, Outcome::Complete, "{mode:?} auto t{threads}");
            assert_eq!(
                sorted(got),
                reference,
                "{mode:?}: auto at {threads} thread(s) diverges"
            );
        }
        // Fixed parallel spot-check: one combo per filter family.
        for combo in PlanCombo::all().into_iter().step_by(26) {
            let (out, _, got) = collect_fixed(combo, &q, &ctx, &cfg, 4);
            assert_eq!(out, Outcome::Complete);
            assert_eq!(
                sorted(got),
                reference,
                "{mode:?}: fixed {} at 4 threads diverges",
                combo.label()
            );
        }
    }
}

#[test]
fn jump_redo_bailout_preserves_embedding_set() {
    // A workload big enough that enumeration crosses the engine's poll
    // boundary, so a 1-backtrack budget genuinely cancels mid-run.
    let g = rmat_graph(2_000, 6.0, 4, RmatParams::PAPER, 11);
    let ctx = DataContext::new(&g);
    let mut rng = Rng64::seed_from_u64(3);
    let cfg = MatchConfig::default();
    // Find a query whose reference run completes (embedding sets are
    // only comparable on completed runs) yet is deep enough to bail.
    let (q, reference) = (0..64)
        .find_map(|_| {
            let q = extract_query(&g, 6, Density::Sparse, &mut rng)?;
            let (out, recursions, matches) = collect_fixed(PlanCombo::all()[0], &q, &ctx, &cfg, 1);
            (out == Outcome::Complete && recursions > 8_192 && !matches.is_empty())
                .then(|| (q, sorted(matches)))
        })
        .expect("a completing query exists");
    for threads in [1usize, 4] {
        let planner = Planner::with_feedback(
            PlannerConfig {
                margin: 0.0,
                min_budget: 1,
                max_attempts: 2,
            },
            Arc::new(FeedbackStore::new()),
        );
        let (run, got) = planner.collect_auto(&q, &ctx, &cfg, threads);
        assert!(
            run.replanned(),
            "the 1-backtrack budget must actually force a mid-run bailout"
        );
        assert_eq!(run.outcome, Outcome::Complete);
        assert_eq!(
            sorted(got),
            reference,
            "bailed-and-redone run at {threads} thread(s) diverges"
        );
    }
}
