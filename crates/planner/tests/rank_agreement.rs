//! Rank agreement between the planner's cost model and the measured
//! order spectrum (satellite of the self-tuning planner): run
//! `spectrum_analysis`, round-trip its JSON fixture export, score every
//! sampled order with `QueryEstimate::walk`, and require a positive rank
//! correlation between estimated and measured search-tree size.

use sm_graph::gen::query::{extract_query, Density};
use sm_graph::gen::rmat::{rmat_graph, RmatParams};
use sm_match::spectrum::spectrum_analysis;
use sm_match::{DataContext, FilterKind};
use sm_planner::model::filter_prune;
use sm_planner::QueryEstimate;
use sm_runtime::rng::Rng64;
use std::time::Duration;

/// Minimal parser for the `sm-spectrum/v1` fixture: extracts each
/// point's `order` array and `recursions` count. Deliberately consumes
/// the JSON export (not the in-memory structs) so the fixture format
/// itself is under test.
fn parse_points(json: &str) -> Vec<(Vec<u32>, u64)> {
    assert!(
        json.starts_with("{\"schema\":\"sm-spectrum/v1\""),
        "fixture schema tag missing"
    );
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find("{\"order\":[") {
        rest = &rest[i + 10..];
        let end = rest.find(']').expect("order array closes");
        let order: Vec<u32> = rest[..end]
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().expect("vertex id"))
            .collect();
        let ri = rest.find("\"recursions\":").expect("recursions field");
        let after = &rest[ri + 13..];
        let rend = after.find('}').expect("point object closes");
        let recursions: u64 = after[..rend].parse().expect("recursion count");
        out.push((order, recursions));
        rest = after;
    }
    out
}

/// Average rank of a value's position (midrank for ties).
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut r = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let mid = (i + j) as f64 / 2.0;
        for &k in &idx[i..=j] {
            r[k] = mid;
        }
        i = j + 1;
    }
    r
}

/// Spearman rank correlation.
fn spearman(a: &[f64], b: &[f64]) -> f64 {
    let (ra, rb) = (ranks(a), ranks(b));
    let n = a.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
    for i in 0..a.len() {
        let (da, db) = (ra[i] - mean, rb[i] - mean);
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}

#[test]
fn estimator_ranking_correlates_with_measured_spectrum() {
    let g = rmat_graph(1_000, 6.0, 3, RmatParams::PAPER, 5);
    let ctx = DataContext::new(&g);
    let mut rng = Rng64::seed_from_u64(17);
    let q = (0..64)
        .find_map(|_| extract_query(&g, 6, Density::Dense, &mut rng))
        .expect("query extraction succeeds");

    let spectrum = spectrum_analysis(&q, &ctx, 40, Duration::from_secs(5), 9);
    let fixture = spectrum.to_json("rmat-1k", "q6d", 9);
    let points = parse_points(&fixture);
    assert_eq!(points.len(), spectrum.points.len(), "fixture round-trip");
    assert!(points.len() >= 20, "need enough orders to rank");

    // Score each measured order with the same estimator the planner's
    // cost model uses, at the spectrum engine's filter strength.
    let est = QueryEstimate::build(&q, &ctx);
    let prune = filter_prune(FilterKind::GraphQl);
    let mut predicted = Vec::with_capacity(points.len());
    let mut measured = Vec::with_capacity(points.len());
    for (order, recursions) in &points {
        let walk = est.walk(&q, order, prune, Some(100_000));
        predicted.push(walk.nodes.max(1.0).ln());
        measured.push((*recursions as f64).max(1.0).ln());
    }

    let rho = spearman(&predicted, &measured);
    println!("spearman(est nodes, measured recursions) = {rho:.3}");
    assert!(
        rho > 0.2,
        "cost model should rank orders in rough agreement with the \
         measured spectrum (spearman = {rho:.3})"
    );
}
