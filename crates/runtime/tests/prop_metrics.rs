//! Randomized invariants for the metrics histograms: quantiles agree
//! with a sorted-sample oracle within one bucket's relative error
//! (12.5% for the 8-sub-bucket log-linear scheme), merging behaves like
//! recording the combined sample set, quantiles are monotone in `q`,
//! and concurrent recording loses nothing.

use sm_runtime::check::Check;
use sm_runtime::metrics::{HistSnapshot, Histogram};
use sm_runtime::rng::Rng64;
use sm_runtime::{ensure, ensure_eq};
use std::sync::Arc;

/// One bucket's relative error: values land in buckets at most 1/8 of
/// their magnitude wide (plus 1 for the integer edges).
const REL_ERR: f64 = 0.125;

fn sample(rng: &mut Rng64, size: u32) -> Vec<u64> {
    let len = 1 + rng.gen_range(0..(3 * size as usize + 2));
    // Mix magnitudes so both the exact (<8) and log-linear regimes get
    // exercised in one sample set.
    (0..len)
        .map(|_| {
            let shift = rng.gen_range(0u32..40);
            rng.gen_range(0u64..1 << shift)
        })
        .collect()
}

fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn within_one_bucket(est: u64, exact: u64) -> bool {
    let tol = (exact as f64 * REL_ERR) + 1.0;
    (est as f64 - exact as f64).abs() <= tol
}

fn record_all(values: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

const QS: [f64; 6] = [0.0, 0.5, 0.9, 0.99, 0.999, 1.0];

#[test]
fn quantiles_agree_with_sorted_sample_oracle() {
    Check::new("quantiles_agree_with_sorted_sample_oracle")
        .cases(64)
        .run(sample, |values| {
            let snap = record_all(values);
            let mut sorted = values.clone();
            sorted.sort_unstable();
            ensure_eq!(snap.count(), sorted.len() as u64);
            ensure_eq!(snap.sum(), sorted.iter().sum::<u64>());
            ensure_eq!(snap.min(), sorted[0]);
            ensure_eq!(snap.max(), *sorted.last().unwrap());
            for q in QS {
                let est = snap.quantile(q);
                let exact = oracle_quantile(&sorted, q);
                ensure!(
                    within_one_bucket(est, exact),
                    "q={q}: est {est} vs exact {exact} (n={})",
                    sorted.len()
                );
            }
            Ok(())
        });
}

#[test]
fn merge_equals_recording_the_union() {
    Check::new("merge_equals_recording_the_union")
        .cases(48)
        .run(
            |rng, size| (sample(rng, size), sample(rng, size)),
            |(a, b)| {
                let sa = record_all(a);
                let sb = record_all(b);
                let mut merged = sa.clone();
                merged.merge(&sb);

                // Merging snapshots is exactly recording the union.
                let mut union = a.clone();
                union.extend_from_slice(b);
                ensure_eq!(&merged, &record_all(&union));

                // And each merged quantile is bracketed by the inputs'
                // quantiles, up to one bucket of slack per side.
                for q in QS {
                    let m = merged.quantile(q) as f64;
                    let lo = sa.quantile(q).min(sb.quantile(q)) as f64;
                    let hi = sa.quantile(q).max(sb.quantile(q)) as f64;
                    ensure!(
                        m >= lo - (lo * REL_ERR + 1.0) && m <= hi + (hi * REL_ERR + 1.0),
                        "q={q}: merged {m} outside [{lo}, {hi}]"
                    );
                }
                Ok(())
            },
        );
}

#[test]
fn quantiles_are_monotone_in_q() {
    Check::new("quantiles_are_monotone_in_q")
        .cases(48)
        .run(sample, |values| {
            let snap = record_all(values);
            let mut prev = snap.quantile(0.0);
            for i in 1..=100 {
                let cur = snap.quantile(i as f64 / 100.0);
                ensure!(
                    cur >= prev,
                    "quantile({}) = {cur} < {prev}",
                    i as f64 / 100.0
                );
                prev = cur;
            }
            Ok(())
        });
}

#[test]
fn recording_more_never_lowers_the_max_quantile() {
    Check::new("recording_more_never_lowers_the_max_quantile")
        .cases(32)
        .run(sample, |values| {
            let h = Histogram::new();
            let mut prev = 0u64;
            for &v in values {
                h.record(v);
                let top = h.snapshot().quantile(1.0);
                ensure!(top >= prev, "quantile(1.0) fell {prev} -> {top}");
                prev = top;
            }
            Ok(())
        });
}

#[test]
fn cross_thread_recording_equals_single_thread() {
    Check::new("cross_thread_recording_equals_single_thread")
        .cases(12)
        .max_size(40)
        .run(
            |rng, size| {
                let mut v = sample(rng, size);
                // Pad so every thread gets work.
                while v.len() < 8 {
                    v.push(v.len() as u64);
                }
                v
            },
            |values| {
                // All threads record into ONE shared histogram...
                let shared = Arc::new(Histogram::new());
                // ...and each also into its own, merged afterwards.
                let locals: Vec<_> = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..4)
                        .map(|t| {
                            let shared = shared.clone();
                            let chunk: Vec<u64> =
                                values.iter().skip(t).step_by(4).copied().collect();
                            s.spawn(move || {
                                let local = Histogram::new();
                                for v in chunk {
                                    shared.record(v);
                                    local.record(v);
                                }
                                local.snapshot()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                let expect = record_all(values);
                ensure_eq!(&shared.snapshot(), &expect, "shared recording diverged");
                let mut merged = HistSnapshot::empty();
                for l in &locals {
                    merged.merge(l);
                }
                ensure_eq!(&merged, &expect, "worker-local merge diverged");
                Ok(())
            },
        );
}
