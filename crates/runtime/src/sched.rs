//! Fair multi-source morsel scheduling: the multi-query counterpart of
//! [`crate::pool`].
//!
//! [`crate::pool::MorselQueue`] distributes the morsels of *one* run
//! across a fixed set of workers. A query service has the inverse
//! problem: many concurrent runs ("sources"), one shared worker pool, and
//! a fairness requirement — a query with a million root candidates must
//! not starve the ten-candidate query submitted after it. The
//! [`FairScheduler`] solves this with round-robin dispatch at morsel
//! granularity: workers [`claim`](FairScheduler::claim) one morsel at a
//! time, and consecutive claims rotate over the registered sources, so
//! every active source advances at the same morsel rate regardless of its
//! total size.
//!
//! The scheduler is deliberately engine-agnostic (`T` is whatever a
//! morsel means to the caller) and blocking: workers park on a condvar
//! when no source has work and are woken by
//! [`register`](FairScheduler::register) or
//! [`shutdown`](FairScheduler::shutdown). Lifecycle bookkeeping is
//! built in — [`complete`](FairScheduler::complete) reports exactly once,
//! to exactly one worker, that a source is fully drained (no queued
//! morsels, none in flight), which is the finalize-the-query signal a
//! service needs.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Identifies one registered morsel source (one query run).
pub type SourceId = u64;

/// What a blocking [`FairScheduler::claim`] returned.
#[derive(Debug, PartialEq, Eq)]
pub enum Claim<T> {
    /// One morsel of `source`. The worker must call
    /// [`FairScheduler::complete`] with this id when the morsel is done.
    Morsel {
        /// The source the morsel belongs to.
        source: SourceId,
        /// The morsel payload.
        item: T,
    },
    /// The scheduler was shut down; the worker should exit.
    Shutdown,
}

struct Source<T> {
    id: SourceId,
    morsels: VecDeque<T>,
    in_flight: usize,
}

struct Inner<T> {
    sources: Vec<Source<T>>,
    /// Round-robin position: index into `sources` of the next source to
    /// serve.
    cursor: usize,
    next_id: SourceId,
    shutdown: bool,
}

/// A blocking, round-robin-fair morsel scheduler over dynamically
/// registered sources. See the module docs for the protocol.
pub struct FairScheduler<T> {
    inner: Mutex<Inner<T>>,
    work: Condvar,
}

impl<T> Default for FairScheduler<T> {
    fn default() -> Self {
        FairScheduler::new()
    }
}

impl<T> FairScheduler<T> {
    /// An empty scheduler.
    pub fn new() -> Self {
        FairScheduler {
            inner: Mutex::new(Inner {
                sources: Vec::new(),
                cursor: 0,
                next_id: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
        }
    }

    /// Register a new source with its morsel list and wake parked
    /// workers. Registering an empty list is allowed; the source is
    /// trivially drained and never surfaces in a claim, so the caller
    /// must finalize it itself (a real service finalizes zero-work
    /// queries at submission).
    pub fn register(&self, morsels: impl IntoIterator<Item = T>) -> SourceId {
        let mut inner = self.inner.lock().unwrap();
        let id = inner.next_id;
        inner.next_id += 1;
        let queue: VecDeque<T> = morsels.into_iter().collect();
        if !queue.is_empty() {
            inner.sources.push(Source {
                id,
                morsels: queue,
                in_flight: 0,
            });
            drop(inner);
            self.work.notify_all();
        }
        id
    }

    /// Drop every still-queued morsel of `source` (e.g. its query was
    /// cancelled), returning how many were dropped. Morsels already in
    /// flight keep running; the source stays registered until they
    /// [`complete`](FairScheduler::complete).
    pub fn revoke(&self, source: SourceId) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let Some(idx) = inner.sources.iter().position(|s| s.id == source) else {
            return 0;
        };
        let dropped = inner.sources[idx].morsels.len();
        inner.sources[idx].morsels.clear();
        if inner.sources[idx].in_flight == 0 {
            inner.sources.remove(idx);
            if inner.cursor > idx {
                inner.cursor -= 1;
            }
        }
        dropped
    }

    /// Block until a morsel is available (or the scheduler shuts down)
    /// and claim it. Consecutive claims rotate round-robin over the
    /// sources that currently have queued morsels.
    pub fn claim(&self) -> Claim<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.shutdown {
                return Claim::Shutdown;
            }
            let n = inner.sources.len();
            let start = if n == 0 { 0 } else { inner.cursor % n };
            let mut found = None;
            for off in 0..n {
                let idx = (start + off) % n;
                if !inner.sources[idx].morsels.is_empty() {
                    found = Some(idx);
                    break;
                }
            }
            if let Some(idx) = found {
                let src = &mut inner.sources[idx];
                let item = src.morsels.pop_front().expect("non-empty by scan");
                src.in_flight += 1;
                let id = src.id;
                inner.cursor = (idx + 1) % n.max(1);
                return Claim::Morsel { source: id, item };
            }
            inner = self.work.wait(inner).unwrap();
        }
    }

    /// Report one claimed morsel of `source` finished. Returns `true`
    /// exactly once per source: on the call that drains it (no queued
    /// morsels, no other morsel in flight), after which the source is
    /// deregistered. The `true` return is the caller's signal to finalize
    /// the source's run.
    pub fn complete(&self, source: SourceId) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let Some(idx) = inner.sources.iter().position(|s| s.id == source) else {
            return false;
        };
        let src = &mut inner.sources[idx];
        debug_assert!(src.in_flight > 0, "complete without a claim");
        src.in_flight -= 1;
        if src.in_flight == 0 && src.morsels.is_empty() {
            inner.sources.remove(idx);
            if inner.cursor > idx {
                inner.cursor -= 1;
            }
            true
        } else {
            false
        }
    }

    /// Number of sources still registered (queued or in flight).
    pub fn live_sources(&self) -> usize {
        self.inner.lock().unwrap().sources.len()
    }

    /// Shut down: every parked or future [`claim`](FairScheduler::claim)
    /// returns [`Claim::Shutdown`]. Queued morsels are abandoned.
    pub fn shutdown(&self) {
        self.inner.lock().unwrap().shutdown = true;
        self.work.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::scoped_map;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn round_robin_alternates_sources() {
        let s = FairScheduler::new();
        let a = s.register(vec![1, 2, 3]);
        let b = s.register(vec![10, 20, 30]);
        let mut order = Vec::new();
        for _ in 0..6 {
            match s.claim() {
                Claim::Morsel { source, item } => {
                    order.push((source, item));
                    s.complete(source);
                }
                Claim::Shutdown => panic!("not shut down"),
            }
        }
        // strict alternation: a,b,a,b,a,b (ids in registration order)
        let sources: Vec<SourceId> = order.iter().map(|(s, _)| *s).collect();
        assert_eq!(sources, vec![a, b, a, b, a, b]);
        // FIFO within a source
        let a_items: Vec<i32> = order
            .iter()
            .filter(|(s, _)| *s == a)
            .map(|(_, i)| *i)
            .collect();
        assert_eq!(a_items, vec![1, 2, 3]);
        assert_eq!(s.live_sources(), 0);
    }

    #[test]
    fn complete_reports_drain_exactly_once() {
        let s = FairScheduler::new();
        let id = s.register(vec![1, 2]);
        let Claim::Morsel { source: s1, .. } = s.claim() else {
            panic!()
        };
        let Claim::Morsel { source: s2, .. } = s.claim() else {
            panic!()
        };
        assert_eq!((s1, s2), (id, id));
        // first completion: still one in flight
        assert!(!s.complete(id));
        // second completion drains the source
        assert!(s.complete(id));
        // source is gone now
        assert!(!s.complete(id));
    }

    #[test]
    fn empty_registration_never_surfaces() {
        let s: FairScheduler<u32> = FairScheduler::new();
        s.register(Vec::new());
        assert_eq!(s.live_sources(), 0);
        s.shutdown();
        assert_eq!(s.claim(), Claim::Shutdown);
    }

    #[test]
    fn revoke_drops_queued_morsels() {
        let s = FairScheduler::new();
        let id = s.register(vec![1, 2, 3, 4]);
        let Claim::Morsel { .. } = s.claim() else {
            panic!()
        };
        assert_eq!(s.revoke(id), 3);
        // the in-flight morsel still completes, and that drains the source
        assert!(s.complete(id));
        assert_eq!(s.live_sources(), 0);
        // revoking an unknown source is a no-op
        assert_eq!(s.revoke(999), 0);
    }

    #[test]
    fn shutdown_unblocks_parked_workers() {
        let s: FairScheduler<u32> = FairScheduler::new();
        let done = AtomicUsize::new(0);
        scoped_map(3, |wid| {
            if wid == 0 {
                // give the others a moment to park
                std::thread::sleep(std::time::Duration::from_millis(10));
                s.shutdown();
            } else {
                assert_eq!(s.claim(), Claim::Shutdown);
                done.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn register_wakes_claimers() {
        let s: FairScheduler<u32> = FairScheduler::new();
        let executed = AtomicUsize::new(0);
        scoped_map(4, |wid| {
            if wid == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
                s.register(0..32u32);
                // drain-finalization happens on some worker; wait for it
                while s.live_sources() > 0 {
                    std::thread::yield_now();
                }
                s.shutdown();
            } else {
                loop {
                    match s.claim() {
                        Claim::Morsel { source, .. } => {
                            executed.fetch_add(1, Ordering::Relaxed);
                            s.complete(source);
                        }
                        Claim::Shutdown => break,
                    }
                }
            }
        });
        assert_eq!(executed.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn fairness_interleaves_a_large_and_a_small_source() {
        let s = FairScheduler::new();
        let big = s.register(0..100u32);
        let small = s.register(0..3u32);
        // claims alternate, so the small source finishes within 6 claims
        let mut small_done_at = None;
        for step in 0..103 {
            let Claim::Morsel { source, .. } = s.claim() else {
                panic!()
            };
            if s.complete(source) && source == small {
                small_done_at = Some(step);
            }
        }
        let _ = big;
        assert_eq!(s.live_sources(), 0);
        assert!(
            small_done_at.expect("small source drained") <= 5,
            "small source starved: done at {small_done_at:?}"
        );
    }
}
